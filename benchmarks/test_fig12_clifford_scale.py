"""Figure 12 — γ(pQEC/NISQ) for Ising and Heisenberg models at scale.

Paper: Clifford-state (stabilizer-proxy) simulation of depth-1 FCHE VQE for
16–100 qubits and J ∈ {0.25, 0.5, 1.0}; pQEC beats NISQ on every instance
(Ising: avg 6.83x, max 257x; Heisenberg: avg 12.59x, max 189x).

The default sweep is trimmed for runtime (set REPRO_FULL=1 for 16–100 qubits
and all couplings); the shape checks are: γ ≥ 1 everywhere and the average γ
well above 1.
"""


from repro.ansatz import FullyConnectedAnsatz
from repro.core import NISQRegime, PQECRegime, summarize_gammas
from repro.operators import heisenberg_hamiltonian, ising_hamiltonian
from repro.vqe import GeneticOptimizer, compare_regimes_clifford

from conftest import full_mode, print_table

if full_mode():
    QUBIT_SWEEP = tuple(range(16, 104, 12))
    COUPLINGS = (0.25, 0.50, 1.00)
    GA_KWARGS = dict(population_size=24, generations=15)
else:
    QUBIT_SWEEP = (16, 24, 32)
    COUPLINGS = (0.25, 1.00)
    GA_KWARGS = dict(population_size=12, generations=5)


def compute_figure12():
    comparisons = {"ising": [], "heisenberg": []}
    rows = []
    for family, builder in (("ising", ising_hamiltonian),
                            ("heisenberg", heisenberg_hamiltonian)):
        for num_qubits in QUBIT_SWEEP:
            for coupling in COUPLINGS:
                hamiltonian = builder(num_qubits, coupling)
                ansatz = FullyConnectedAnsatz(num_qubits, 1)
                seed = 100 + num_qubits + int(coupling * 100)
                # The reference chromosome is rescored under each regime's
                # noise (Optimal Parameter Resilience) rather than re-optimized
                # inside the noise: with the trimmed GA budget a noisy search
                # can otherwise out-converge the noiseless reference, which
                # corrupts the γ denominator.
                outcome = compare_regimes_clifford(
                    hamiltonian, ansatz, PQECRegime(), NISQRegime(),
                    optimizer_factory=lambda s=seed: GeneticOptimizer(seed=s,
                                                                      **GA_KWARGS),
                    benchmark_name=f"{family}_n{num_qubits}_J{coupling:g}",
                    seed=seed, reoptimize_under_noise=False)
                comparison = outcome["comparison"]
                comparisons[family].append(comparison)
                rows.append([family, num_qubits, coupling,
                             f"{comparison.reference_energy:.3f}",
                             f"{comparison.energy_a:.3f}",
                             f"{comparison.energy_b:.3f}",
                             f"{comparison.gamma:.2f}x"])
    return rows, comparisons


def test_fig12_clifford_scale(benchmark):
    rows, comparisons = benchmark.pedantic(compute_figure12, rounds=1, iterations=1)
    print_table("Fig. 12: gamma(pQEC/NISQ), Clifford-proxy VQE "
                "(paper: Ising avg 6.83x max 257x; Heisenberg avg 12.59x max 189x)",
                ["family", "qubits", "J", "E0", "E(pQEC)", "E(NISQ)", "gamma"], rows)
    for family, values in comparisons.items():
        summary = summarize_gammas(values)
        print(f"{family}: mean gamma = {summary['mean']:.2f}, "
              f"max = {summary['max']:.2f}, min = {summary['min']:.2f}")
        assert summary["min"] >= 1.0
        assert summary["mean"] > 1.2
