"""Ablation: NISQ-inherited mitigation layers composed with EFT execution.

Complements the Fig. 15 bench: CAFQA initialization (how much of the
optimization gap the Clifford bootstrap closes for free) and VAQEM-style
dynamical-decoupling selection under coherent idle drift.
"""

import numpy as np

from repro.ansatz import FullyConnectedAnsatz
from repro.mitigation import (DynamicalDecouplingSelector,
                              cafqa_initialization)
from repro.operators import heisenberg_hamiltonian, ising_hamiltonian
from repro.vqe import BackendEnergyEvaluator, GeneticOptimizer

from conftest import full_mode, print_table

NUM_QUBITS = 10 if full_mode() else 8


def test_ablation_cafqa_bootstrap(benchmark):
    """The CAFQA Clifford bootstrap closes most of the gap to E0 before any
    continuous (quantum-device) optimization happens."""

    def compute():
        rows = []
        fractions = []
        for family, builder in (("ising", ising_hamiltonian),
                                ("heisenberg", heisenberg_hamiltonian)):
            hamiltonian = builder(NUM_QUBITS, 1.0)
            ansatz = FullyConnectedAnsatz(NUM_QUBITS, 1)
            reference = hamiltonian.ground_state_energy()
            bootstrap = cafqa_initialization(
                hamiltonian, ansatz,
                optimizer=GeneticOptimizer(population_size=16, generations=10,
                                           seed=7),
                seed=7)
            evaluator = BackendEnergyEvaluator.exact(hamiltonian)
            random_energy = float(np.mean([
                evaluator(ansatz.bound_circuit(
                    0.1 * np.random.default_rng(seed).standard_normal(
                        ansatz.num_parameters())))
                for seed in range(3)]))
            gap_random = random_energy - reference
            gap_cafqa = bootstrap.clifford_energy - reference
            closed = 1.0 - gap_cafqa / gap_random if gap_random > 0 else 1.0
            fractions.append(closed)
            rows.append([family, f"{reference:.3f}", f"{random_energy:.3f}",
                         f"{bootstrap.clifford_energy:.3f}", f"{closed:.0%}"])
        return rows, fractions

    rows, fractions = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table("Ablation: CAFQA bootstrap vs random initialization "
                "(fraction of the optimization gap closed for free)",
                ["model", "E0", "E(random start)", "E(CAFQA start)",
                 "gap closed"], rows)
    assert all(fraction > 0.3 for fraction in fractions)


def test_ablation_dynamical_decoupling(benchmark):
    """Under coherent idle drift, some DD sequence always does at least as
    well as no protection, and typically strictly better."""

    hamiltonian = ising_hamiltonian(6, 1.0)
    ansatz = FullyConnectedAnsatz(6, 1)
    circuit = ansatz.bound_circuit(
        0.4 * np.ones(ansatz.num_parameters()))

    def compute():
        rows = []
        improvements = []
        for drift in (0.1, 0.2, 0.4):
            selector = DynamicalDecouplingSelector(
                BackendEnergyEvaluator.exact(hamiltonian), drift_angle=drift)
            selection = selector.select(circuit)
            improvements.append(selection.improvement)
            rows.append([drift, selection.best_sequence,
                         f"{selection.energies['none']:.4f}",
                         f"{selection.energies[selection.best_sequence]:.4f}",
                         f"{selection.improvement:+.4f}"])
        return rows, improvements

    rows, improvements = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table("Ablation: VAQEM-style DD selection under coherent idle drift",
                ["drift angle", "selected", "E(no DD)", "E(selected)",
                 "improvement"], rows)
    assert all(delta >= -1e-9 for delta in improvements)
    assert max(improvements) > 0.0
