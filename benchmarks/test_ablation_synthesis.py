"""Ablation: explicit Clifford+T synthesis versus the Ross–Selinger cost model.

The qec-conventional baseline's cost is driven by the T-count per rotation
(Sec. 2.5).  The explicit ε-net / Solovay–Kitaev synthesizer provides real
sequences at moderate precision; this bench checks that (a) its achieved
error decreases as the T budget grows, and (b) the asymptotic cost model the
figures rely on upper-bounds what the explicit search achieves at the
precisions it can reach.
"""


import pytest

from repro.qec import t_count_for_precision
from repro.synthesis import (approximate_rz, build_epsilon_net)
from repro.synthesis.verification import operator_distance, rz_unitary, \
    sequence_unitary

from conftest import full_mode, print_table

ANGLES = (0.37, 1.111, 2.5, 4.2)
NET_T_COUNTS = (2, 4, 6) if not full_mode() else (2, 4, 6, 7)


def test_ablation_epsilon_net_resolution(benchmark):
    """The ε-net resolution (worst-case Rz distance) shrinks with T budget."""

    def compute():
        return {t: build_epsilon_net(t).resolution(num_samples=32)
                for t in NET_T_COUNTS}

    resolutions = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = [[t, build_epsilon_net(t).size, f"{resolutions[t]:.4f}"]
            for t in NET_T_COUNTS]
    print_table("Ablation: Clifford+T ε-net resolution vs T budget",
                ["max T count", "net size", "worst-case Rz distance"], rows)
    values = [resolutions[t] for t in NET_T_COUNTS]
    assert values == sorted(values, reverse=True)
    assert values[-1] < values[0]


def test_ablation_synthesis_vs_cost_model(benchmark):
    """At precisions the explicit search reaches, its T-count stays at or
    below the Ross–Selinger model's estimate (the model is the conservative
    cost the qec-conventional figures charge per rotation)."""

    def compute():
        rows = []
        consistent = []
        for theta in ANGLES:
            for target_error in (0.3, 0.1, 0.03):
                result = approximate_rz(theta, target_error,
                                        max_net_t_count=6, max_sk_depth=2)
                model_count = t_count_for_precision(target_error)
                measured = operator_distance(
                    sequence_unitary(result.sequence), rz_unitary(theta))
                consistent.append(
                    (result.achieved_error, measured, result.explicit,
                     result.t_count, model_count))
                rows.append([f"{theta:.3f}", target_error,
                             "yes" if result.explicit else "model",
                             result.t_count, model_count,
                             f"{result.achieved_error:.4f}"])
        return rows, consistent

    rows, consistent = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table("Ablation: explicit Rz synthesis vs Ross–Selinger T-count model",
                ["theta", "target error", "explicit?", "T count (explicit)",
                 "T count (model)", "achieved error"], rows)
    for achieved, measured, explicit, t_count, model_count in consistent:
        assert measured == pytest.approx(achieved, abs=1e-9)
        if explicit:
            # The ε-net / Solovay–Kitaev search is not T-optimal; it may use a
            # constant factor more T gates than the number-theoretic optimum
            # the model estimates, but never orders of magnitude more.
            assert t_count <= 4 * model_count + 12
        else:
            # When the explicit search cannot reach the precision, the cost
            # model supplies (at least) the Ross–Selinger count.
            assert t_count >= model_count
