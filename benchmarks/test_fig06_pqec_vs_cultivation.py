"""Figure 6 — relative fidelity of pQEC over qec-cultivation.

Paper: 10–70 logical qubits on 10k- and 20k-qubit devices.  pQEC does as well
as or better than cultivation everywhere, and its advantage grows with the
number of logical qubits as cultivation units get squeezed out and T-state
latency (hence memory error) grows.
"""


from repro.ansatz import FullyConnectedAnsatz
from repro.core import (CircuitProfile, EFTDevice, PQECRegime,
                        QECCultivationRegime, pqec_fidelity,
                        qec_cultivation_fidelity)

from conftest import full_mode, print_table

QUBIT_SWEEP = (12, 20, 28, 36, 40, 52, 60, 68) if full_mode() else (12, 20, 28, 40)
DEVICE_SIZES = (10_000, 20_000)


def compute_figure6():
    rows = []
    ratios = {size: [] for size in DEVICE_SIZES}
    for num_qubits in QUBIT_SWEEP:
        profile = CircuitProfile.from_ansatz(FullyConnectedAnsatz(num_qubits, 1))
        row = [num_qubits]
        for device_qubits in DEVICE_SIZES:
            device = EFTDevice(device_qubits)
            pqec = pqec_fidelity(profile, PQECRegime(), device)
            cultivation = qec_cultivation_fidelity(profile, QECCultivationRegime(),
                                                   device)
            if not pqec.feasible:
                row.append("white")
                continue
            if not cultivation.feasible or cultivation.fidelity == 0:
                row.append("inf")
                ratios[device_qubits].append(float("inf"))
                continue
            ratio = pqec.fidelity / cultivation.fidelity
            ratios[device_qubits].append(ratio)
            row.append(f"{ratio:.2f}x")
        rows.append(row)
    return rows, ratios


def test_fig06_pqec_vs_cultivation(benchmark):
    rows, ratios = benchmark(compute_figure6)
    print_table("Fig. 6: F(pQEC)/F(qec-cultivation) "
                "(paper: >=1 everywhere, grows with logical qubits)",
                ["logical qubits"] + [f"{d // 1000}k device" for d in DEVICE_SIZES],
                rows)
    for device_qubits in DEVICE_SIZES:
        finite = [r for r in ratios[device_qubits] if r != float("inf")]
        # pQEC roughly matches cultivation for tiny programs and wins at scale.
        assert all(r >= 0.95 for r in finite)
        if len(finite) >= 2:
            assert finite[-1] >= finite[0]
