"""Ablation: qubit placement and explicit bus routing on the proposed layout.

Section 4.3's blocked_all_to_all ansatz is layout-aware by construction; for
layout-agnostic ansatze (FCHE) the placement pass recovers part of that
latency, and the contention-aware router validates that the analytic
scheduler's cycle counts are not hiding routing conflicts.
"""


from repro.ansatz import BlockedAllToAllAnsatz, FullyConnectedAnsatz
from repro.architecture import (ContentionAwareScheduler,
                                ProposedLayoutGeometry, make_layout,
                                optimize_placement, schedule_on_layout)

from conftest import full_mode, print_table

SIZES = (8, 12, 16, 20) if full_mode() else (8, 12, 16)


def test_ablation_placement(benchmark):
    """Placement recovers the blocked ansatz's latency when its qubit labels
    have been scrambled, and leaves naturally-numbered ansatze unchanged."""
    import numpy as np

    from repro.architecture import PlacedAnsatz, placement_cost, make_layout

    def compute():
        rows = []
        recovered_fractions = []
        natural_improvements = []
        for num_qubits in SIZES:
            blocked = BlockedAllToAllAnsatz(num_qubits, 1)
            layout = make_layout("proposed", num_qubits)
            natural_cost = placement_cost(
                blocked, tuple(range(num_qubits)), layout)
            # Scramble the logical qubit labels: the workload is the same, but
            # the programmer did not write it with the layout in mind.
            rng = np.random.default_rng(num_qubits)
            scrambled = PlacedAnsatz(blocked,
                                     tuple(rng.permutation(num_qubits).tolist()))
            report = optimize_placement(scrambled, anneal_iterations=250, seed=5)
            recovered = (report.identity_cycles - report.best_cycles) / max(
                report.identity_cycles - natural_cost, 1e-9)
            recovered = min(max(recovered, 0.0), 1.0)
            recovered_fractions.append(
                (report.identity_cycles, natural_cost, recovered))
            natural = optimize_placement(blocked, anneal_iterations=60, seed=5)
            natural_improvements.append(natural.improvement)
            rows.append([num_qubits, f"{natural_cost:.0f}",
                         f"{report.identity_cycles:.0f}",
                         f"{report.best_cycles:.0f}", f"{recovered:.0%}",
                         f"{natural.improvement:.0%}"])
        return rows, recovered_fractions, natural_improvements

    rows, recovered_fractions, natural_improvements = benchmark.pedantic(
        compute, rounds=1, iterations=1)
    print_table("Ablation: placement on the proposed layout "
                "(scrambled blocked ansatz is recovered; natural numbering "
                "needs nothing)",
                ["qubits", "natural cycles", "scrambled cycles",
                 "placed cycles", "latency gap recovered", "natural saving"],
                rows)
    for identity_cycles, natural_cost, recovered in recovered_fractions:
        if identity_cycles > natural_cost:   # scrambling actually hurt
            assert recovered >= 0.3
    assert all(improvement >= -1e-9 for improvement in natural_improvements)


def test_ablation_bus_contention(benchmark):
    """Explicit routing confirms the analytic scheduler's serialization story:
    the contention-aware cycle count stays within a small factor of the
    analytic model for both ansatz families."""

    def compute():
        rows = []
        ratios = []
        for num_qubits in SIZES:
            geometry = ProposedLayoutGeometry((num_qubits - 4) // 4)
            for family, ansatz in (("fche", FullyConnectedAnsatz(num_qubits, 1)),
                                   ("blocked", BlockedAllToAllAnsatz(num_qubits, 1))):
                contended = ContentionAwareScheduler(geometry).schedule(ansatz)
                analytic = schedule_on_layout(
                    ansatz, make_layout("proposed", num_qubits))
                ratio = contended.total_cycles / analytic.cycles
                ratios.append(ratio)
                rows.append([family, num_qubits, f"{analytic.cycles:.0f}",
                             f"{contended.total_cycles:.0f}",
                             f"{contended.stalled_cycles:.0f}",
                             f"{ratio:.2f}x"])
        return rows, ratios

    rows, ratios = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table("Ablation: contention-aware routing vs analytic scheduler",
                ["ansatz", "qubits", "analytic cycles", "routed cycles",
                 "stalls", "ratio"], rows)
    assert all(0.4 <= ratio <= 4.0 for ratio in ratios)
