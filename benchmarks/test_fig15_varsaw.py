"""Figure 15 — VarSaw measurement-error mitigation composed with NISQ and pQEC.

Paper: for 12-qubit Ising and Heisenberg (J=1) VQE, adding VarSaw lets the
optimizer converge to a lower energy under both NISQ and pQEC execution.

The reproduction evaluates the converged Clifford-proxy solution with and
without readout mitigation under both regimes (8 qubits by default,
REPRO_FULL=1 for 12).
"""


from repro.ansatz import FullyConnectedAnsatz
from repro.core import NISQRegime, PQECRegime
from repro.mitigation import MitigatedEnergyEvaluator
from repro.operators import heisenberg_hamiltonian, ising_hamiltonian
from repro.vqe import BackendEnergyEvaluator, CliffordVQE, GeneticOptimizer

from conftest import full_mode, print_table

NUM_QUBITS = 12 if full_mode() else 8
GA_KWARGS = dict(population_size=14, generations=6)


def compute_figure15():
    rows = []
    improvements = []
    nisq_improvements = []
    for family, builder in (("ising", ising_hamiltonian),
                            ("heisenberg", heisenberg_hamiltonian)):
        hamiltonian = builder(NUM_QUBITS, 1.0)
        ansatz = FullyConnectedAnsatz(NUM_QUBITS, 1)
        for regime in (NISQRegime(), PQECRegime()):
            noise = regime.noise_model()
            seed = 5 + NUM_QUBITS
            vqe = CliffordVQE(hamiltonian, ansatz, noise,
                              GeneticOptimizer(seed=seed, **GA_KWARGS), seed=seed)
            converged = vqe.run()
            base = BackendEnergyEvaluator.clifford(hamiltonian, noise)
            mitigated = MitigatedEnergyEvaluator(base)
            # The unmitigated energy includes the regime's readout error
            # (terminal measurements on every qubit); the VarSaw evaluator
            # measures the same per-term values and divides out the
            # calibrated readout attenuation.
            measured_circuit = ansatz.build(include_measurement=True) \
                .bind_parameters(list(converged.best_parameters))
            plain_circuit = ansatz.build().bind_parameters(
                list(converged.best_parameters))
            unmitigated_energy = base(measured_circuit)
            mitigated_energy = mitigated(plain_circuit)
            improvement = unmitigated_energy - mitigated_energy
            improvements.append(improvement)
            if regime.name == "nisq":
                nisq_improvements.append(improvement)
            rows.append([family, regime.name, f"{unmitigated_energy:.4f}",
                         f"{mitigated_energy:.4f}", f"{improvement:+.4f}"])
    return rows, improvements, nisq_improvements


def test_fig15_varsaw(benchmark):
    rows, improvements, nisq_improvements = benchmark.pedantic(
        compute_figure15, rounds=1, iterations=1)
    print_table("Fig. 15: converged VQE energy with and without VarSaw "
                "(paper: mitigation lowers the converged energy for both regimes)",
                ["benchmark", "regime", "E (unmitigated)", "E (VarSaw)",
                 "improvement"], rows)
    # Mitigation must help (lower energy) in the readout-dominated NISQ rows
    # and never hurt meaningfully in any row (pQEC readout error is ~1e-7, so
    # its improvement is positive but tiny).
    assert all(delta > 0.0 for delta in nisq_improvements)
    assert all(delta >= -1e-6 for delta in improvements)
