"""Section-level quantitative claims: packing efficiency (Sec. 4.1), the
CNOT:Rz design rule (Sec. 4.4), the Clifford+T overheads (Sec. 2.5), and the
patch-shuffling proof (Sec. 9)."""


import pytest

from repro.ansatz import (blocked_ratio_formula, cnot_to_rz_ratio,
                          pqec_crossover_qubits, regime_preference)
from repro.architecture import ProposedLayout
from repro.core import EFTDevice, InjectionStatistics, injection_error_rate
from repro.qec import (get_factory, sequence_length_for_precision,
                       synthesis_overhead, t_count_for_precision)

from conftest import print_table


def test_sec41_packing_efficiency(benchmark):
    def compute():
        return {k: ProposedLayout(k=k).packing_efficiency() for k in (1, 4, 10, 40, 100)}

    values = benchmark(compute)
    rows = [[k, f"{pe:.3f}", f"{ProposedLayout.packing_efficiency_formula(k):.3f}"]
            for k, pe in values.items()]
    print_table("Sec. 4.1: packing efficiency PE = 4(k+1)/(6(k+2)) -> ~0.67",
                ["k", "measured", "formula"], rows)
    assert values[100] == pytest.approx(2 / 3, abs=0.01)
    assert all(pe <= 2 / 3 + 1e-9 for pe in values.values())


def test_sec44_cnot_rz_ratio_rule(benchmark):
    def compute():
        return {family: [cnot_to_rz_ratio(family, n) for n in (8, 12, 16, 24, 48)]
                for family in ("linear", "fully_connected", "blocked_all_to_all")}

    ratios = benchmark(compute)
    rows = [[family] + [f"{value:.3f}" for value in values]
            for family, values in ratios.items()]
    print_table("Sec. 4.4: CNOT-to-runtime-Rz ratio (pQEC wins above 0.76)",
                ["family", "N=8", "N=12", "N=16", "N=24", "N=48"], rows)
    assert all(value == pytest.approx(0.25) for value in ratios["linear"])
    assert blocked_ratio_formula(13) == pytest.approx(0.76, abs=0.01)
    assert pqec_crossover_qubits("blocked_all_to_all") in (13, 14)
    assert not regime_preference("blocked_all_to_all", 8).prefers_pqec
    assert regime_preference("blocked_all_to_all", 16).prefers_pqec
    assert regime_preference("fully_connected", 20).prefers_pqec


def test_sec25_clifford_t_overheads(benchmark):
    def compute():
        # A 20-qubit depth-1 FCHE VQE: 40 rotations, ~230 gates, depth ~25.
        overhead = synthesis_overhead(num_rotations=40, original_gate_count=230,
                                      original_depth=25, precision=1e-6)
        factory = get_factory("15-to-1_7,3,3")
        device = EFTDevice(10_000)
        return overhead, factory, device

    overhead, factory, device = benchmark(compute)
    rows = [
        ["T count per rotation (1e-6)", t_count_for_precision(1e-6), "~60-100"],
        ["sequence length per rotation", sequence_length_for_precision(1e-6), "hundreds"],
        ["gate-count multiplier", f"{overhead.gate_count_multiplier:.1f}x", "~20x"],
        ["depth multiplier", f"{overhead.depth_multiplier:.1f}x", "~7x"],
        ["(15-to-1)7,3,3 qubits", factory.physical_qubits, 810],
        ["(15-to-1)7,3,3 cycles/T", f"{factory.cycles_per_tstate:.0f}", 22],
        ["(15-to-1)7,3,3 T error @1e-3", f"{factory.output_error(1e-3):.1e}", "5.4e-4"],
        ["fraction of 10k device", f"{factory.physical_qubits / 10_000:.1%}", ">8%"],
        ["(15-to-1)17,7,7 fraction", f"{get_factory('15-to-1_17,7,7').physical_qubits / 10_000:.1%}", "~46%"],
    ]
    print_table("Sec. 2.5: Clifford+T / distillation overheads (measured vs paper)",
                ["quantity", "measured", "paper"], rows)
    assert overhead.gate_count_multiplier > 10
    assert overhead.depth_multiplier > 3
    assert factory.physical_qubits / 10_000 > 0.08


def test_sec9_patch_shuffling_proof(benchmark):
    def compute():
        return InjectionStatistics(physical_error_rate=1e-3, distance=11).summary()

    summary = benchmark(compute)
    rows = [[key, f"{value:.6g}"] for key, value in summary.items()]
    print_table("Sec. 9: injection statistics at p=1e-3, d=11 "
                "(paper: N_trials=1.959, P=0.9391, alpha=0.003811)",
                ["quantity", "value"], rows)
    assert summary["high_probability_attempts"] == pytest.approx(1.959, abs=0.01)
    assert summary["high_probability_mass"] == pytest.approx(0.9391, abs=0.002)
    assert summary["alpha_threshold"] == pytest.approx(0.003811, abs=2e-5)
    assert summary["injected_state_error"] == pytest.approx(
        injection_error_rate(1e-3))
