"""Ablation: decoder choice for EFT-era surface-code memory (paper Sec. 7).

The paper argues that approximate decoders (Union-Find, clique predecoding,
lookup tables) are attractive in the EFT era because error-rate requirements
are looser than for full FTQC.  This bench quantifies the trade: logical
error rate of four decoders on the same phenomenological memory experiments,
plus the predecoder's offload fraction.
"""


from repro.qec import (CliquePredecoder, LookupDecoder, MWPMDecoder,
                       UnionFindDecoder, decoder_comparison)
from repro.qec.decoders.graph import rotated_surface_code_graph
from repro.qec.surface_memory import SurfaceCodeMemory

from conftest import full_mode, print_table

SHOTS = 400 if full_mode() else 150


def _factories():
    return {
        "mwpm": MWPMDecoder,
        "union_find": UnionFindDecoder,
        "lookup_w2": lambda graph: LookupDecoder(graph, max_error_weight=2),
        "clique+mwpm": CliquePredecoder,
    }


def test_ablation_decoder_accuracy(benchmark):
    """All decoders correct the bulk of errors; MWPM sets the floor and the
    cheap decoders stay within a small factor of it below threshold."""

    def compute():
        surface = decoder_comparison(3, 0.02, _factories(), shots=SHOTS,
                                     code="rotated_surface", seed=19)
        repetition = decoder_comparison(5, 0.03, _factories(), shots=SHOTS,
                                        code="repetition", seed=29)
        return surface, repetition

    surface, repetition = benchmark.pedantic(compute, rounds=1, iterations=1)

    def ci(outcome):
        low, high = outcome.wilson_interval()
        return f"[{low:.3f}, {high:.3f}]"

    rows = [[name, f"{surface[name].logical_error_rate:.4f}",
             ci(surface[name]),
             f"{repetition[name].logical_error_rate:.4f}",
             ci(repetition[name])]
            for name in _factories()]
    print_table("Ablation: decoder comparison (rotated surface d=3 p=0.02; "
                "repetition d=5 p=0.03)",
                ["decoder", "surface LER", "surface 95% CI",
                 "repetition LER", "repetition 95% CI"], rows)
    mwpm_rate = surface["mwpm"].logical_error_rate
    for name, outcome in surface.items():
        assert outcome.logical_error_rate <= max(3.0 * mwpm_rate, 0.12), \
            f"{name} is far off the MWPM floor"
    # The repetition code at p=0.03 is deep below threshold for everyone.
    for outcome in repetition.values():
        assert outcome.logical_error_rate <= 0.1


def test_ablation_clique_predecoder_offload(benchmark):
    """The clique predecoder should resolve most defects locally at low p."""

    def compute():
        graph = rotated_surface_code_graph(3, 3, 5e-3)
        predecoder = CliquePredecoder(graph)
        memory = SurfaceCodeMemory(graph, lambda g: predecoder, seed=31)
        outcome = memory.run(SHOTS)
        return predecoder.offload_fraction, outcome.logical_error_rate

    offload, error_rate = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table("Ablation: clique predecoder offload at p=5e-3 (d=3)",
                ["offload fraction", "logical error rate"],
                [[f"{offload:.2%}", f"{error_rate:.4f}"]])
    assert offload >= 0.3
    assert error_rate <= 0.1
