"""PR-5 acceptance gate: batched QEC Monte-Carlo sampling throughput.

Three checks on the d=5 rotated-surface-code decoder-ablation workload, all
recorded to ``BENCH_pr5.json``:

* **Batched ≥ 3x** — the vectorized sampling kernel + ``decode_batch``
  (unique-syndrome dedup) pipeline must be ≥ 3x faster than the per-shot
  reference (identical ``SeedSequence`` blocks and error samples, per-shot
  decoding) summed over the four ablation decoders, with **bitwise-identical
  failure counts** per decoder.  Timings compare the single-core paths so
  the gate measures batching, not core count.
* **Worker-count determinism** — a harder workload with plentiful failures
  must produce identical failure counts for inline, thread and process
  execution at 1/2/4 workers.
* **Warm-cache sweep** — re-running a seeded ``logical_error_rate_sweep``
  against a fresh executor sharing the persistent cache directory must
  decode **zero** syndromes (counter-proven via ``sampling_stats``).
"""

import json
import os
import time

from repro.execution import Executor
from repro.qec import (CliquePredecoder, LookupDecoder, MWPMDecoder,
                       UnionFindDecoder, logical_error_rate_sweep)
from repro.qec.decoders.graph import rotated_surface_code_graph
from repro.qec.sampling import reset_sampling_stats, sampling_stats
from repro.qec.surface_memory import SurfaceCodeMemory

from conftest import full_mode, print_table

DISTANCE = 5
ROUNDS = 5
#: The paper's EFT-era physical error rate — the regime where most shots
#: share the empty or a single-defect syndrome and dedup pays the most.
PHYSICAL_ERROR_RATE = 1e-3
SHOTS = 24000 if full_mode() else 16000
SEED = 20250728
BENCH_JSON = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                          "BENCH_pr5.json")

_RECORD = {}


def _factories():
    return {
        "mwpm": MWPMDecoder,
        "union_find": UnionFindDecoder,
        "lookup_w2": lambda graph: LookupDecoder(graph, max_error_weight=2),
        "clique+mwpm": CliquePredecoder,
    }


def test_qec_batched_throughput(benchmark):
    """Batched pipeline ≥ 3x over the per-shot reference, same failures."""
    graph = rotated_surface_code_graph(DISTANCE, ROUNDS, PHYSICAL_ERROR_RATE)

    def compare():
        rows = {}
        for name, factory in _factories().items():
            batched_memory = SurfaceCodeMemory(graph, factory, seed=SEED)
            start = time.perf_counter()
            batched = batched_memory.run(SHOTS, use_cache=False,
                                         parallel="none")
            batched_seconds = time.perf_counter() - start
            reference_memory = SurfaceCodeMemory(graph, factory, seed=SEED)
            start = time.perf_counter()
            reference = reference_memory.run_reference(SHOTS)
            reference_seconds = time.perf_counter() - start
            rows[name] = (batched, batched_seconds, reference,
                          reference_seconds)
        return rows

    rows = benchmark.pedantic(compare, rounds=1, iterations=1)
    batched_total = sum(entry[1] for entry in rows.values())
    reference_total = sum(entry[3] for entry in rows.values())
    speedup = reference_total / batched_total
    table = []
    for name, (batched, b_sec, reference, r_sec) in rows.items():
        low, high = batched.wilson_interval()
        table.append([name, batched.failures, reference.failures,
                      f"{b_sec:.2f}", f"{r_sec:.2f}", f"{r_sec / b_sec:.1f}x",
                      f"[{low:.2e}, {high:.2e}]"])
    print_table(
        f"batched vs per-shot QEC sampling (d={DISTANCE}, rounds={ROUNDS}, "
        f"p={PHYSICAL_ERROR_RATE}, {SHOTS} shots, total speedup "
        f"{speedup:.1f}x)",
        ["decoder", "batched failures", "reference failures", "batched s",
         "reference s", "speedup", "LER 95% CI"], table)

    for name, (batched, _, reference, _) in rows.items():
        assert batched.failures == reference.failures, \
            f"{name}: batched and per-shot reference disagree"
        assert batched.average_defects == reference.average_defects
    assert speedup >= 3.0, f"batched speedup {speedup:.2f}x below the 3x gate"

    _RECORD["throughput"] = {
        "distance": DISTANCE, "rounds": ROUNDS,
        "physical_error_rate": PHYSICAL_ERROR_RATE, "shots": SHOTS,
        "seed": SEED,
        "seconds_batched": {name: entry[1] for name, entry in rows.items()},
        "seconds_reference": {name: entry[3] for name, entry in rows.items()},
        "failures": {name: entry[0].failures for name, entry in rows.items()},
        "identical_failure_counts": True,
        "total_speedup": speedup,
    }


def test_qec_worker_count_determinism():
    """Failure counts are bitwise identical across shard modes/workers."""
    graph = rotated_surface_code_graph(3, 3, 0.02)

    def failures(parallel, workers):
        memory = SurfaceCodeMemory(graph, MWPMDecoder, seed=SEED)
        outcome = memory.run(2600, executor=Executor(use_cache=False),
                             parallel=parallel, max_workers=workers)
        return outcome.failures

    counts = {
        "inline": failures("none", 1),
        "process_1": failures("process", 1),
        "process_2": failures("process", 2),
        "process_4": failures("process", 4),
        "thread_2": failures("thread", 2),
    }
    print_table("QEC worker-count determinism (d=3, p=0.02, 2600 shots)",
                ["configuration", "failures"],
                [[name, count] for name, count in counts.items()])
    assert counts["inline"] > 0, "workload should produce real failures"
    assert len(set(counts.values())) == 1, f"failure counts differ: {counts}"
    _RECORD["worker_determinism"] = {
        "failures": counts, "bitwise_identical": True}


def test_qec_warm_cache_sweep_decodes_nothing(tmp_path):
    """A warm re-run of a seeded sweep performs zero decoder calls."""
    grid = dict(distances=[3, 5], physical_error_rates=[1e-3, 3e-3],
                shots=1500, seed=SEED)
    cache_dir = tmp_path / "pr5-cache"

    reset_sampling_stats()
    start = time.perf_counter()
    cold = logical_error_rate_sweep(
        executor=Executor(cache_dir=cache_dir), **grid)
    cold_seconds = time.perf_counter() - start
    cold_stats = sampling_stats()

    reset_sampling_stats()
    start = time.perf_counter()
    warm = logical_error_rate_sweep(
        executor=Executor(cache_dir=cache_dir), **grid)
    warm_seconds = time.perf_counter() - start
    warm_stats = sampling_stats()

    print_table(
        "warm-cache logical_error_rate_sweep (2 distances x 2 rates, "
        "1500 shots/cell)",
        ["pass", "seconds", "syndromes decoded", "shots sampled",
         "cached experiments"],
        [["cold", f"{cold_seconds:.2f}", cold_stats.syndromes_decoded,
          cold_stats.shots_sampled, cold_stats.cached_experiments],
         ["warm", f"{warm_seconds:.2f}", warm_stats.syndromes_decoded,
          warm_stats.shots_sampled, warm_stats.cached_experiments]])

    assert warm == cold
    assert warm_stats.syndromes_decoded == 0, "warm sweep decoded syndromes"
    assert warm_stats.shots_sampled == 0
    assert warm_stats.cached_experiments == len(cold)

    _RECORD["warm_cache_sweep"] = {
        "grid": {"distances": grid["distances"],
                 "physical_error_rates": grid["physical_error_rates"],
                 "shots": grid["shots"], "seed": grid["seed"]},
        "seconds": {"cold": cold_seconds, "warm": warm_seconds},
        "warm_syndromes_decoded": warm_stats.syndromes_decoded,
        "warm_shots_sampled": warm_stats.shots_sampled,
        "warm_cached_experiments": warm_stats.cached_experiments,
    }

    record = {"pr": 5,
              "benchmark": "batched QEC Monte-Carlo engine"}
    record.update(_RECORD)
    if os.environ.get("REPRO_RECORD_BENCH") or not os.path.exists(BENCH_JSON):
        with open(BENCH_JSON, "w") as handle:
            json.dump(record, handle, indent=2, sort_keys=True)
            handle.write("\n")
