"""Figure 11 — blocked_all_to_all fidelity in the NISQ vs EFT (pQEC) regimes.

Paper: at 8 qubits the NISQ fidelity decays more slowly with depth, so NISQ
wins at large depth; at 12 and 16 qubits pQEC wins consistently — matching
the Sec. 4.4 CNOT:Rz-ratio rule (theoretical crossover ≈ 13 qubits, observed
≈ 12).
"""


from repro.ansatz import BlockedAllToAllAnsatz, regime_preference
from repro.core import CircuitProfile, NISQRegime, PQECRegime, nisq_fidelity, \
    pqec_fidelity

from conftest import print_table

QUBITS = (8, 12, 16)
DEPTHS = (1, 5, 10, 15, 20, 25)


def compute_figure11():
    curves = {}
    for num_qubits in QUBITS:
        nisq_curve, pqec_curve = [], []
        for depth in DEPTHS:
            profile = CircuitProfile.from_ansatz(
                BlockedAllToAllAnsatz(num_qubits, depth))
            nisq_curve.append(nisq_fidelity(profile, NISQRegime()).fidelity)
            pqec_curve.append(pqec_fidelity(profile, PQECRegime()).fidelity)
        curves[num_qubits] = (nisq_curve, pqec_curve)
    return curves


def test_fig11_nisq_vs_eft_depth(benchmark):
    curves = benchmark(compute_figure11)
    rows = []
    for num_qubits, (nisq_curve, pqec_curve) in curves.items():
        for depth, nisq, pqec in zip(DEPTHS, nisq_curve, pqec_curve):
            rows.append([num_qubits, depth, f"{nisq:.3f}", f"{pqec:.3f}",
                         "pQEC" if pqec > nisq else "NISQ"])
    print_table("Fig. 11: blocked_all_to_all fidelity vs depth "
                "(paper: NISQ wins at 8 qubits / large depth, pQEC wins at 12+)",
                ["qubits", "depth", "F(NISQ)", "F(pQEC)", "winner"], rows)
    # 8 qubits: NISQ overtakes pQEC at large depth.
    nisq_8, pqec_8 = curves[8]
    assert nisq_8[-1] > pqec_8[-1]
    # 16 qubits: pQEC wins at every depth (the paper's consistent benefit).
    nisq_16, pqec_16 = curves[16]
    assert all(p > n for p, n in zip(pqec_16, nisq_16))
    # The Sec. 4.4 rule predicts the same crossover.
    assert not regime_preference("blocked_all_to_all", 8).prefers_pqec
    assert regime_preference("blocked_all_to_all", 16).prefers_pqec
