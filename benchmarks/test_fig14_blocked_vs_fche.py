"""Figure 14 — blocked_all_to_all vs FCHE under pQEC.

Paper: γ(blocked/FCHE) under pQEC for Ising and Heisenberg models, alongside
the noiseless ("expressibility") energy ratio of the two ansatze.  Blocked is
comparable or better for most Ising instances (avg 1.35x) and weaker on
Heisenberg J=1 (avg 0.49x) where its structure misses the needed
interactions; the noiseless ratio hovers around 1.  Blocked always executes
in roughly half the time (Table 2).
"""


from repro.ansatz import BlockedAllToAllAnsatz, FullyConnectedAnsatz
from repro.architecture import make_layout, schedule_on_layout
from repro.core import PQECRegime
from repro.operators import heisenberg_hamiltonian, ising_hamiltonian
from repro.vqe import CliffordVQE, GeneticOptimizer, best_noiseless_clifford_energy

from conftest import full_mode, print_table

QUBIT_SWEEP = (16, 24) if not full_mode() else (16, 24, 32, 48)
COUPLINGS = (0.25, 1.00)
# The noiseless searches set the expressibility baseline of both ansatze; an
# under-converged search exaggerates the γ spread, so this bench uses a larger
# GA budget than the other Clifford-proxy benches.
GA_KWARGS = dict(population_size=20, generations=14) if not full_mode() \
    else dict(population_size=28, generations=20)


#: Regularization added to both energy gaps: Clifford-state energies are
#: quantized, so a converged run can hit the reference exactly and make the
#: raw γ ratio ill-conditioned.
GAP_EPSILON = 1e-3


def noiseless_search(hamiltonian, ansatz, seed):
    return best_noiseless_clifford_energy(
        hamiltonian, ansatz, GeneticOptimizer(seed=seed, **GA_KWARGS), seed=seed)


def rescore_under_noise(hamiltonian, ansatz, indices, noise_model, seed):
    vqe = CliffordVQE(hamiltonian, ansatz, noise_model,
                      GeneticOptimizer(seed=seed, **GA_KWARGS), seed=seed)
    return vqe.evaluate_indices(indices)


def compute_figure14():
    rows = []
    gammas = {"ising": [], "heisenberg": []}
    noise = PQECRegime().noise_model()
    for family, builder in (("ising", ising_hamiltonian),
                            ("heisenberg", heisenberg_hamiltonian)):
        for num_qubits in QUBIT_SWEEP:
            for coupling in COUPLINGS:
                hamiltonian = builder(num_qubits, coupling)
                blocked = BlockedAllToAllAnsatz(num_qubits, 1)
                fche = FullyConnectedAnsatz(num_qubits, 1)
                seed = 37 + num_qubits + int(coupling * 10)
                # Noiseless (expressibility) optima of both ansatze; the shared
                # reference E0 is the better of the two, which keeps both noisy
                # gaps non-negative under the OPR rescoring below.
                fche_ideal = noiseless_search(hamiltonian, fche, seed)
                blocked_ideal = noiseless_search(hamiltonian, blocked, seed)
                reference = min(fche_ideal.best_energy,
                                blocked_ideal.best_energy)
                blocked_noisy = rescore_under_noise(
                    hamiltonian, blocked, blocked_ideal.parameter_indices,
                    noise, seed)
                fche_noisy = rescore_under_noise(
                    hamiltonian, fche, fche_ideal.parameter_indices, noise, seed)
                gamma = ((fche_noisy - reference + GAP_EPSILON)
                         / (blocked_noisy - reference + GAP_EPSILON))
                gammas[family].append(gamma)
                ideal_ratio = (blocked_ideal.best_energy
                               / fche_ideal.best_energy
                               if fche_ideal.best_energy else 1.0)
                layout = make_layout("proposed", num_qubits)
                time_ratio = (schedule_on_layout(blocked, layout).cycles
                              / schedule_on_layout(fche, layout).cycles)
                rows.append([family, num_qubits, coupling,
                             f"{gamma:.2f}x", f"{ideal_ratio:.2f}",
                             f"{time_ratio:.2f}"])
    return rows, gammas


def test_fig14_blocked_vs_fche(benchmark):
    rows, gammas = benchmark.pedantic(compute_figure14, rounds=1, iterations=1)
    print_table("Fig. 14: gamma(blocked/FCHE) under pQEC "
                "(paper: Ising avg 1.35x, Heisenberg avg 0.49x, ideal ratio ~1, "
                "execution time always < 0.6x)",
                ["family", "qubits", "J", "gamma", "ideal-energy ratio",
                 "time ratio"], rows)
    # Shape: blocked is competitive on Ising (can win), may lose where its
    # expressibility falls short (as in the paper's Heisenberg J=1 case), and
    # always executes faster.
    assert max(gammas["ising"]) >= 0.9
    assert all(gamma > 0.0 for family in gammas for gamma in gammas[family])
    assert all(float(row[5]) < 0.7 for row in rows)
