"""PR-7 acceptance gate: bit-packed mod-2 kernels and streaming sampling.

Two checks, recorded to ``BENCH_pr7.json``:

* **Packed ≥ 2x** — on the d=9 EFT-regime workload (16384 shots), the
  bit-packed syndrome-extraction + dedup kernel
  (:class:`~repro.qec.bitops.Mod2GatherPlan` gather matmul + packed-word
  dedup) must be ≥ 2x faster than the legacy dense float32 GEMM + byte-row
  ``np.unique`` it replaces, **and** full ``run_memory_sampling`` runs
  under the dense, packed and streaming paths must produce bitwise-identical
  failure and defect counts (same Bernoulli draw stream by construction).
* **d=15 streaming fits** — an 8-round d=15 surface-code run (32768 shots,
  union-find) in streaming mode must stay under the documented
  :data:`STREAM_BUDGET_BYTES` tracemalloc peak.  The dense batch path
  cannot hold this workload inside the budget even analytically: the
  ``(shots, n_edges)`` error matrix alone is ~91 MiB and the float32
  syndrome intermediate another ~126 MiB, both far beyond the 24 MiB
  budget the streaming loop is held to.

Timings compare single-core paths; the gate measures the kernel, not
core count.
"""

import json
import os
import time
import tracemalloc

import numpy as np

from repro.execution import Executor
from repro.qec.bitops import popcount_impl
from repro.qec.decoders import MWPMDecoder, UnionFindDecoder
from repro.qec.decoders.base import _dedup_packed
from repro.qec.decoders.graph import rotated_surface_code_graph
from repro.qec.sampling import (packed_syndromes_and_flips,
                                run_memory_sampling, sample_errors,
                                sampling_arrays, syndromes_and_flips)

from conftest import full_mode, print_table

DISTANCE = 9
ROUNDS = 9
#: EFT-regime physical error rate: most shots share a handful of syndromes.
PHYSICAL_ERROR_RATE = 2e-4
SHOTS = 16384
KERNEL_REPEATS = 5 if full_mode() else 3
SEED = 20250808

STREAM_DISTANCE = 15
STREAM_ROUNDS = 8
STREAM_ERROR_RATE = 1e-4
STREAM_SHOTS = 32768
#: Documented tracemalloc peak budget for the d=15 streaming loop.
STREAM_BUDGET_BYTES = 24 * 2**20

BENCH_JSON = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                          "BENCH_pr7.json")

_RECORD = {}


def _dense_kernel(arrays, errors):
    """The legacy path: float32 GEMM syndromes + byte-row unique dedup."""
    syndromes, flips = syndromes_and_flips(arrays, errors)
    unique, first, inverse = np.unique(syndromes, axis=0,
                                       return_index=True,
                                       return_inverse=True)
    return unique.shape[0], int(flips.sum())


def _packed_kernel(arrays, errors):
    """The PR-7 path: gather-plan packed syndromes + packed-word dedup."""
    words, flips = packed_syndromes_and_flips(arrays, errors)
    unique, first, inverse = _dedup_packed(words)
    return unique.shape[0], int(flips.sum())


def _best_of(repeats, fn, *args):
    best, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn(*args)
        best = min(best, time.perf_counter() - start)
    return best, result


def test_packed_kernel_speedup(benchmark):
    """Packed extraction+dedup ≥ 2x dense, identical end-to-end counts."""
    graph = rotated_surface_code_graph(DISTANCE, ROUNDS, PHYSICAL_ERROR_RATE)
    arrays = sampling_arrays(graph)
    errors = sample_errors(arrays, SHOTS, np.random.default_rng(SEED))

    def compare():
        dense_seconds, dense_out = _best_of(KERNEL_REPEATS, _dense_kernel,
                                            arrays, errors)
        packed_seconds, packed_out = _best_of(KERNEL_REPEATS, _packed_kernel,
                                              arrays, errors)
        return dense_seconds, dense_out, packed_seconds, packed_out

    dense_seconds, dense_out, packed_seconds, packed_out = \
        benchmark.pedantic(compare, rounds=1, iterations=1)
    speedup = dense_seconds / packed_seconds
    assert packed_out == dense_out, "kernel outputs disagree"

    # End-to-end: all three execution paths, bitwise-identical counts.
    counts = {}
    for mode, (kernel, streaming) in {"dense": ("dense", False),
                                      "packed": ("packed", False),
                                      "streaming": ("packed", True)}.items():
        run = run_memory_sampling(graph, MWPMDecoder(graph), SHOTS,
                                  seed=SEED, executor=Executor(use_cache=False),
                                  parallel="none", kernel=kernel,
                                  streaming=streaming)
        counts[mode] = (run.failures, run.total_defects)

    print_table(
        f"bit-packed syndrome kernel (d={DISTANCE}, rounds={ROUNDS}, "
        f"p={PHYSICAL_ERROR_RATE}, {SHOTS} shots, popcount="
        f"{popcount_impl()})",
        ["path", "kernel s", "speedup", "failures", "defects"],
        [["dense f32 GEMM", f"{dense_seconds:.3f}", "1.0x",
          counts["dense"][0], counts["dense"][1]],
         ["packed gather", f"{packed_seconds:.3f}", f"{speedup:.1f}x",
          counts["packed"][0], counts["packed"][1]],
         ["packed streaming", "-", "-",
          counts["streaming"][0], counts["streaming"][1]]])

    assert len(set(counts.values())) == 1, f"paths disagree: {counts}"
    assert speedup >= 2.0, \
        f"packed kernel speedup {speedup:.2f}x below the 2x gate"

    _RECORD["packed_kernel"] = {
        "distance": DISTANCE, "rounds": ROUNDS,
        "physical_error_rate": PHYSICAL_ERROR_RATE, "shots": SHOTS,
        "seed": SEED,
        "seconds_dense": dense_seconds,
        "seconds_packed": packed_seconds,
        "speedup": speedup,
        "popcount_impl": popcount_impl(),
        "failures": counts["packed"][0],
        "total_defects": counts["packed"][1],
        "identical_counts_across_paths": True,
    }


def test_streaming_d15_fits_memory_budget():
    """d=15 streaming run under the documented 24 MiB tracemalloc budget."""
    graph = rotated_surface_code_graph(STREAM_DISTANCE, STREAM_ROUNDS,
                                       STREAM_ERROR_RATE)
    arrays = sampling_arrays(graph)  # incidence + gather plan, pre-trace
    decoder = UnionFindDecoder(graph)

    dense_errors_bytes = STREAM_SHOTS * arrays.num_edges          # uint8
    dense_syndromes_bytes = STREAM_SHOTS * arrays.num_detectors * 4  # f32
    assert dense_errors_bytes + dense_syndromes_bytes > STREAM_BUDGET_BYTES, \
        "dense workload no longer exceeds the budget; retire this gate"

    tracemalloc.start()
    start = time.perf_counter()
    run = run_memory_sampling(graph, decoder, STREAM_SHOTS, seed=SEED,
                              executor=Executor(use_cache=False),
                              parallel="none", streaming=True)
    seconds = time.perf_counter() - start
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    print_table(
        f"d={STREAM_DISTANCE} streaming memory (rounds={STREAM_ROUNDS}, "
        f"p={STREAM_ERROR_RATE}, {STREAM_SHOTS} shots, union-find)",
        ["quantity", "value"],
        [["edges / detectors", f"{arrays.num_edges} / {arrays.num_detectors}"],
         ["dense error matrix", f"{dense_errors_bytes / 2**20:.1f} MiB"],
         ["dense f32 syndromes", f"{dense_syndromes_bytes / 2**20:.1f} MiB"],
         ["streaming peak", f"{peak / 2**20:.1f} MiB"],
         ["budget", f"{STREAM_BUDGET_BYTES / 2**20:.0f} MiB"],
         ["failures / defects", f"{run.failures} / {run.total_defects}"],
         ["seconds", f"{seconds:.1f}"]])

    assert peak < STREAM_BUDGET_BYTES, \
        f"streaming peak {peak / 2**20:.1f} MiB over the 24 MiB budget"

    _RECORD["streaming_d15"] = {
        "distance": STREAM_DISTANCE, "rounds": STREAM_ROUNDS,
        "physical_error_rate": STREAM_ERROR_RATE, "shots": STREAM_SHOTS,
        "seed": SEED,
        "num_edges": arrays.num_edges,
        "num_detectors": arrays.num_detectors,
        "tracemalloc_peak_bytes": peak,
        "budget_bytes": STREAM_BUDGET_BYTES,
        "dense_errors_bytes": dense_errors_bytes,
        "dense_syndromes_bytes": dense_syndromes_bytes,
        "failures": run.failures,
        "total_defects": run.total_defects,
        "seconds": seconds,
    }

    record = {"pr": 7,
              "benchmark": "bit-packed mod-2 kernels + streaming sampling"}
    record.update(_RECORD)
    if os.environ.get("REPRO_RECORD_BENCH") or not os.path.exists(BENCH_JSON):
        with open(BENCH_JSON, "w") as handle:
            json.dump(record, handle, indent=2, sort_keys=True)
            handle.write("\n")
