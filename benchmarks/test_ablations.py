"""Ablation benchmarks for the design choices called out in DESIGN.md §5.
* E[g] (expected injections per logical rotation) sensitivity of the Fig. 11
  crossover;
* the analytic surface-code scaling model versus the Monte-Carlo
  repetition-code memory experiment;
* factory choice sensitivity for qec-conventional (complementing Fig. 4);
* optimizer choice on a fixed density-matrix benchmark.
"""



from repro.ansatz import BlockedAllToAllAnsatz, FullyConnectedAnsatz
from repro.core import (CircuitProfile, NISQRegime, PQECRegime, nisq_fidelity,
                        pqec_fidelity)
from repro.mitigation import cafqa_initialization
from repro.operators import ising_hamiltonian
from repro.qec import (RepetitionCodeMemory, logical_error_rate,
                       surface_code_memory_experiment)
from repro.vqe import (VQE, BackendEnergyEvaluator, CobylaOptimizer,
                       NelderMeadOptimizer, SPSAOptimizer)

from conftest import full_mode, print_table


def test_ablation_expected_injections(benchmark):
    """The pQEC-vs-NISQ break-even shifts with E[g] (Sec. 4.4 sensitivity)."""

    def compute():
        results = {}
        for expected_g in (1.0, 1.5, 2.0, 3.0):
            regime = PQECRegime(consumption_success_probability=1.0 / expected_g)
            winners = []
            for num_qubits in (8, 12, 16, 20):
                profile = CircuitProfile.from_ansatz(
                    BlockedAllToAllAnsatz(num_qubits, 20))
                pqec = pqec_fidelity(profile, regime).fidelity
                nisq = nisq_fidelity(profile, NISQRegime()).fidelity
                winners.append("pQEC" if pqec > nisq else "NISQ")
            results[expected_g] = winners
        return results

    results = benchmark(compute)
    rows = [[g] + winners for g, winners in results.items()]
    print_table("Ablation: winner vs E[g] at depth 20 (crossover moves right as "
                "E[g] grows)", ["E[g]", "N=8", "N=12", "N=16", "N=20"], rows)
    # With fewer injections per rotation pQEC wins earlier.
    assert results[1.0].count("pQEC") >= results[3.0].count("pQEC")


def test_ablation_surface_code_model_vs_monte_carlo(benchmark):
    """The analytic exponential-suppression model matches the Monte-Carlo
    memory experiments' qualitative behaviour below threshold.

    Each column is evaluated below *its own* code's threshold: the repetition
    code tolerates percent-level noise, the rotated surface code is probed at
    p = 0.02, and the analytic surface-code scaling model at the paper's
    EFT operating point p = 1e-3.
    """

    shots = 400 if full_mode() else 150
    surface_shots = 250 if full_mode() else 120

    def compute():
        repetition = {}
        surface = {}
        for distance in (3, 5, 7):
            experiment = RepetitionCodeMemory(distance, physical_error_rate=0.03,
                                              seed=17)
            repetition[distance] = experiment.run(shots)
        for distance in (3, 5):
            surface[distance] = surface_code_memory_experiment(
                distance, 0.02, rounds=distance, shots=surface_shots, seed=23)
        return ({d: r.logical_error_rate for d, r in repetition.items()},
                surface,
                {d: r.wilson_interval() for d, r in repetition.items()})

    repetition, surface_outcomes, repetition_ci = benchmark(compute)
    surface = {d: outcome.logical_error_rate
               for d, outcome in surface_outcomes.items()}
    rows = [[d, f"{repetition[d]:.4f}",
             "[{:.3f}, {:.3f}]".format(*repetition_ci[d]),
             f"{surface.get(d, float('nan')):.4f}" if d in surface else "-",
             ("[{:.3f}, {:.3f}]".format(*surface_outcomes[d].wilson_interval())
              if d in surface_outcomes else "-"),
             f"{logical_error_rate(d, 1e-3):.2e}"]
            for d in sorted(repetition)]
    print_table("Ablation: Monte-Carlo memory experiments vs analytic model "
                "(all suppress errors as distance grows below threshold)",
                ["distance", "repetition MC (p=0.03)", "repetition 95% CI",
                 "rotated surface MC (p=0.02)", "surface 95% CI",
                 "analytic model (p=1e-3)"],
                rows)
    assert repetition[7] <= repetition[3] + 0.02
    assert surface[5] <= surface[3] + 0.03
    assert logical_error_rate(7, 1e-3) < logical_error_rate(3, 1e-3)


def test_ablation_optimizers(benchmark):
    """COBYLA / Nelder–Mead / SPSA on the same noisy 4-qubit VQE."""

    hamiltonian = ising_hamiltonian(4, 1.0)
    reference = hamiltonian.ground_state_energy()
    ansatz = FullyConnectedAnsatz(4, 1)
    noise = PQECRegime().noise_model()
    # All optimizers start from the same CAFQA Clifford bootstrap so the
    # comparison measures refinement ability, not initialization luck.
    bootstrap = cafqa_initialization(hamiltonian, ansatz, seed=3)

    def run(optimizer):
        vqe = VQE(hamiltonian, ansatz,
                  BackendEnergyEvaluator.density_matrix(hamiltonian, noise), optimizer,
                  reference_energy=reference)
        return vqe.run(initial_parameters=bootstrap.angles, seed=3)

    def compute():
        return {
            "cobyla": run(CobylaOptimizer(max_iterations=80)),
            "nelder_mead": run(NelderMeadOptimizer(max_iterations=100)),
            "spsa": run(SPSAOptimizer(max_iterations=120, seed=2)),
        }

    results = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = [[name, f"{res.best_energy:.4f}", f"{res.energy_gap:.4f}",
             res.num_evaluations]
            for name, res in results.items()]
    print_table(f"Ablation: optimizer comparison (reference E0 = {reference:.4f})",
                ["optimizer", "best energy", "gap to E0", "evaluations"], rows)
    # Every optimizer family must close a meaningful fraction of the gap; the
    # gradient-free stochastic SPSA is the loosest of the three.
    assert results["cobyla"].energy_gap < abs(reference) * 0.6
    assert results["nelder_mead"].energy_gap < abs(reference) * 0.6
    assert results["spsa"].energy_gap < abs(reference) * 0.85
