"""PR-4 acceptance gate: process-sharded speedup + warm-disk-cache re-runs.

Two workloads, both recorded to ``BENCH_pr4.json``:

* **Parallel trajectory ensemble** — a 16-qubit, depth-4 Clifford circuit
  under NISQ-style Pauli noise, evaluated as a seeded Monte-Carlo stabilizer
  ensemble (200 trajectories).  Per-trajectory ``SeedSequence.spawn``
  seeding makes the result **bitwise identical** for ``max_workers`` in
  {1, 2, 4}; on a machine with ≥ 4 usable cores the 4-worker process-sharded
  run must be ≥ 2x faster than the single-worker run (the speedup assertion
  is skipped — but still measured and recorded — on smaller boxes, where no
  sharding layer could manufacture cores).
* **Warm disk cache** — the same seeded ensemble re-run against a fresh
  executor sharing the persistent cache directory: zero simulator
  invocations, proven by the executor's invocation counters and the disk
  cache's hit counters.

A second test runs one trimmed **figure workload** (the Fig. 12 Clifford-
scale γ comparison at 16 qubits) cold vs warm through the default executor:
the warm pass re-derives every GA generation from the disk cache without a
single circuit evolution.
"""

import json
import os
import time


from repro.circuits.circuit import QuantumCircuit
from repro.execution import Executor, StabilizerBackend
from repro.operators import heisenberg_hamiltonian
from repro.simulators.noise import NoiseModel, depolarizing_channel

from conftest import full_mode, print_table

NUM_QUBITS = 16
DEPTH = 4
TRAJECTORIES = 400 if full_mode() else 200
SEED = 20250704
BENCH_JSON = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                          "BENCH_pr4.json")


def usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def trajectory_workload():
    hamiltonian = heisenberg_hamiltonian(NUM_QUBITS, 1.0)
    noise = (NoiseModel("nisq-like")
             .add_gate_error(depolarizing_channel(0.01, 1), ["h", "s"])
             .add_gate_error(depolarizing_channel(0.02, 2), ["cx"])
             .add_readout_error(0.01))
    circuit = QuantumCircuit(NUM_QUBITS)
    for qubit in range(NUM_QUBITS):
        circuit.h(qubit)
    for _ in range(DEPTH):
        for qubit in range(NUM_QUBITS - 1):
            circuit.cx(qubit, qubit + 1)
        for qubit in range(NUM_QUBITS):
            circuit.s(qubit)
    return circuit, hamiltonian, noise


def run_ensemble(parallel, max_workers, cache_dir=None):
    """One seeded ensemble evaluation on a fresh executor; returns
    (energy, elapsed seconds, executor)."""
    circuit, hamiltonian, noise = trajectory_workload()
    executor = Executor(cache_dir=cache_dir) if cache_dir \
        else Executor(use_cache=False)
    start = time.perf_counter()
    [energy] = executor.evaluate_observable(
        circuit, hamiltonian, noise_model=noise,
        backend=StabilizerBackend(seed=SEED), trajectories=TRAJECTORIES,
        parallel=parallel, max_workers=max_workers)
    return energy, time.perf_counter() - start, executor


def run_comparison():
    # Warm the persistent pool so fork cost is not billed to the 4-worker
    # timing (the pool is process-wide and amortized in real workloads).
    run_ensemble("process", 4)
    serial_energy, serial_time, _ = run_ensemble("none", 1)
    two_energy, _, _ = run_ensemble("process", 2)
    quad_energy, quad_time, quad_executor = run_ensemble("process", 4)
    return (serial_energy, serial_time, two_energy, quad_energy, quad_time,
            quad_executor.stats)


def test_parallel_trajectory_speedup(benchmark, tmp_path):
    (serial_energy, serial_time, two_energy, quad_energy, quad_time,
     quad_stats) = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    speedup = serial_time / quad_time
    cpus = usable_cpus()
    rows = [
        ("max_workers=1 (inline)", TRAJECTORIES, f"{serial_time:.2f}",
         f"{TRAJECTORIES / serial_time:.1f}"),
        ("max_workers=4 (process)", TRAJECTORIES, f"{quad_time:.2f}",
         f"{TRAJECTORIES / quad_time:.1f}"),
    ]
    print_table(
        f"process-sharded Monte-Carlo ensemble ({NUM_QUBITS}-qubit depth-"
        f"{DEPTH} Clifford, {TRAJECTORIES} trajectories, speedup "
        f"{speedup:.2f}x on {cpus} cpus)",
        ["configuration", "trajectories", "seconds", "traj/sec"], rows)

    # Determinism is unconditional: per-trajectory seed spawning makes the
    # ensemble bitwise identical no matter how it is sharded.
    assert serial_energy == two_energy == quad_energy
    assert quad_stats.process_shards >= 2

    # The ≥2x gate needs real cores; CI's ubuntu runners have 4.  On
    # smaller boxes the measurement is still recorded below.
    if cpus >= 4:
        assert speedup >= 2.0

    # Warm-disk-cache rerun: zero evolutions, proven by counters.
    cache_dir = tmp_path / "pr4-cache"
    cold_energy, _, cold_executor = run_ensemble("process", 4,
                                                 cache_dir=cache_dir)
    assert cold_executor.stats.simulator_invocations == 1
    warm_energy, _, warm_executor = run_ensemble("process", 4,
                                                 cache_dir=cache_dir)
    assert warm_energy == cold_energy == serial_energy
    assert warm_executor.stats.simulator_invocations == 0
    assert warm_executor.stats.term_cache_hits > 0
    assert warm_executor.disk_cache_stats.hits > 0

    record = {
        "pr": 4,
        "benchmark": "process-sharded Monte-Carlo ensemble + warm disk cache",
        "workload": {
            "num_qubits": NUM_QUBITS,
            "circuit_depth": DEPTH,
            "trajectories": TRAJECTORIES,
            "hamiltonian_terms":
                heisenberg_hamiltonian(NUM_QUBITS, 1.0).num_terms,
            "seed": SEED,
        },
        "cpus": cpus,
        "seconds": {"max_workers_1": serial_time, "max_workers_4": quad_time},
        "speedup_4_workers": speedup,
        "bitwise_identical_across_workers": True,
        "warm_cache": {
            "cold_invocations": cold_executor.stats.simulator_invocations,
            "warm_invocations": warm_executor.stats.simulator_invocations,
            "warm_term_cache_hits": warm_executor.stats.term_cache_hits,
            "warm_disk_hits": warm_executor.disk_cache_stats.hits,
        },
    }
    if os.environ.get("REPRO_RECORD_BENCH") or not os.path.exists(BENCH_JSON):
        with open(BENCH_JSON, "w") as handle:
            json.dump(record, handle, indent=2, sort_keys=True)
            handle.write("\n")


def test_figure_workload_cold_vs_warm(tmp_path, monkeypatch):
    """One trimmed Fig.-12 instance twice: the warm pass is all cache hits.

    The workload (γ(pQEC/NISQ) for a 16-qubit Ising model, GA-optimized
    Clifford VQE) runs through the *default* executor, exactly like the
    figure suites — so this also proves ``REPRO_CACHE_DIR`` is honoured
    end-to-end without any test-side plumbing.
    """
    from repro.ansatz import FullyConnectedAnsatz
    from repro.core import NISQRegime, PQECRegime
    from repro.execution import default_executor, reset_default_executor
    from repro.operators import ising_hamiltonian
    from repro.vqe import GeneticOptimizer, compare_regimes_clifford

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "figure-cache"))

    def one_instance():
        reset_default_executor()  # fresh memory cache, same disk dir
        hamiltonian = ising_hamiltonian(16, 1.0)
        ansatz = FullyConnectedAnsatz(16, 1)
        outcome = compare_regimes_clifford(
            hamiltonian, ansatz, PQECRegime(), NISQRegime(),
            optimizer_factory=lambda: GeneticOptimizer(
                seed=123, population_size=10, generations=4),
            benchmark_name="pr4_cold_warm", seed=123,
            reoptimize_under_noise=False)
        stats = default_executor().stats
        return outcome["comparison"], stats

    start = time.perf_counter()
    cold, cold_stats = one_instance()
    cold_time = time.perf_counter() - start
    assert cold_stats.simulator_invocations > 0

    start = time.perf_counter()
    warm, warm_stats = one_instance()
    warm_time = time.perf_counter() - start
    reset_default_executor()  # do not leak the cache dir to other tests

    print_table(
        "fig-12 instance, cold vs warm DiskExpectationCache",
        ["pass", "seconds", "sim invocations", "term cache hits"],
        [("cold", f"{cold_time:.2f}", cold_stats.simulator_invocations,
          cold_stats.term_cache_hits),
         ("warm", f"{warm_time:.2f}", warm_stats.simulator_invocations,
          warm_stats.term_cache_hits)])
    # The warm pass replays the identical GA trajectory purely from disk.
    assert warm.gamma == cold.gamma
    assert warm.energy_a == cold.energy_a
    assert warm.energy_b == cold.energy_b
    assert warm_stats.simulator_invocations == 0
    assert warm_stats.term_cache_hits > 0
