"""Figure 4 — relative fidelity of pQEC over qec-conventional.

Paper: 12–24 qubit depth-1 FCHE circuits on a 10,000-qubit device; four
(15-to-1) factory configurations; pQEC matches or beats every configuration,
the advantage grows with qubit count, the (11,5,5) "sweet spot" is the
closest competitor (1–2.5x), and the paper-wide average improvement is 9.27x.
"""


from repro.ansatz import FullyConnectedAnsatz
from repro.core import (CircuitProfile, EFTDevice, PQECRegime,
                        QECConventionalRegime, pqec_fidelity,
                        qec_conventional_fidelity)
from repro.qec import PAPER_FIG4_FACTORIES, get_factory

from conftest import print_table

QUBIT_SWEEP = (12, 16, 20, 24)
DEVICE = EFTDevice(10_000)


def compute_figure4():
    rows = []
    ratios = []
    for num_qubits in QUBIT_SWEEP:
        profile = CircuitProfile.from_ansatz(FullyConnectedAnsatz(num_qubits, 1))
        pqec = pqec_fidelity(profile, PQECRegime(), DEVICE).fidelity
        row = [num_qubits, f"{pqec:.4f}"]
        for name in PAPER_FIG4_FACTORIES:
            regime = QECConventionalRegime(factory=get_factory(name))
            breakdown = qec_conventional_fidelity(profile, regime, DEVICE)
            if breakdown.feasible and breakdown.fidelity > 0:
                ratio = pqec / breakdown.fidelity
                ratios.append(ratio)
                row.append(f"{ratio:.2f}x")
            else:
                row.append("infeasible")
        rows.append(row)
    return rows, ratios


def test_fig04_pqec_vs_conventional(benchmark):
    rows, ratios = benchmark(compute_figure4)
    header = ["qubits", "F(pQEC)"] + [get_factory(n).label for n in PAPER_FIG4_FACTORIES]
    print_table("Fig. 4: F(pQEC)/F(qec-conventional), 10k-qubit device "
                "(paper: >=1 everywhere, avg 9.27x, sweet spot 1-2.5x)",
                header, rows)
    # Shape checks: pQEC never loses, and the advantage over the weakest
    # factory grows monotonically with program size.
    assert all(r >= 0.999 for r in ratios)
    weakest = [float(row[2].rstrip("x")) for row in rows]
    assert all(a < b for a, b in zip(weakest, weakest[1:]))
