"""Micro-benchmark: execution-layer throughput for a batched VQE sweep.

Measures tasks/second through ``execute()`` for a 12-qubit fully-connected
hardware-efficient VQE sweep on the statevector backend, in three
configurations:

* **uncached** — every task is a distinct parameter vector (pure simulator
  throughput plus executor overhead);
* **dedup** — each parameter vector is submitted 4x in one batch (measures
  in-batch duplicate collapsing, the optimizer-re-evaluation pattern);
* **cached** — the identical sweep re-submitted (measures LRU hit serving).

A second comparison pits the **grouped** observable engine
(``evaluate_observable()``: one circuit evolution serving every Hamiltonian
term) against the legacy **per-term** submission pattern (one single-term
``ExecutionTask`` per Pauli term) on the full 23-term 12-qubit Ising
Hamiltonian, reporting term-tasks/second for both; grouped must be ≥ 3x
faster and agree with per-term energies to 1e-10.

A third comparison exercises the circuit-compile layer
(:mod:`repro.simulators.program`): single-circuit **compiled vs
interpreted** execution, and the **batched parameter sweep**
(``evaluate_sweep()``: compile the template once, bind per point, execute
all points as one stacked NumPy pass) against the per-circuit interpreted
path on a 12-qubit, 30-step VQE sweep.  The batched sweep must be ≥ 3x
faster, agree to 1e-10, and score program-cache hits on a repeat sweep.
The measured rates are written to ``BENCH_pr3.json`` so the performance
trajectory is recorded per PR.

Future PRs touching the executor hot path should keep the dedup/cached
configurations well above the uncached baseline and preserve the grouped
and batched-sweep speedups.  Set ``REPRO_FULL=1`` for a larger sweep.
"""

import json
import os
import time

import numpy as np

from repro.ansatz import FullyConnectedAnsatz
from repro.execution import ExecutionTask, Executor
from repro.operators import ising_hamiltonian
from repro.simulators.kernels import statevector_term_expectations
from repro.simulators.program import run_interpreted
from repro.simulators.statevector import StatevectorSimulator

from conftest import full_mode, print_table

NUM_QUBITS = 12
SWEEP_POINTS = 24 if full_mode() else 8
DUPLICATES = 4
GROUPED_POINTS = 8 if full_mode() else 4
#: The acceptance workload for the compile layer: a 30-step VQE sweep.
COMPILED_SWEEP_STEPS = 30
BENCH_JSON = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                          "BENCH_pr3.json")


def build_tasks():
    hamiltonian = ising_hamiltonian(NUM_QUBITS, coupling=1.0)
    template = FullyConnectedAnsatz(NUM_QUBITS, depth=1).build()
    num_params = len(template.ordered_parameters())
    tasks = []
    for step in range(SWEEP_POINTS):
        theta = [0.05 * step] * num_params
        tasks.append(ExecutionTask(template.bind_parameters(theta),
                                   observable=hamiltonian))
    return tasks


def run_configurations():
    tasks = build_tasks()
    rows = []

    executor = Executor()
    start = time.perf_counter()
    executor.run(tasks, backend="statevector")
    uncached = time.perf_counter() - start
    rows.append(("uncached", len(tasks),
                 executor.stats.simulator_invocations,
                 f"{len(tasks) / uncached:.1f}"))

    executor = Executor()
    duplicated = [task for task in tasks for _ in range(DUPLICATES)]
    start = time.perf_counter()
    executor.run(duplicated, backend="statevector")
    dedup = time.perf_counter() - start
    rows.append(("dedup x4", len(duplicated),
                 executor.stats.simulator_invocations,
                 f"{len(duplicated) / dedup:.1f}"))

    start = time.perf_counter()
    executor.run(duplicated, backend="statevector")
    cached = time.perf_counter() - start
    rows.append(("cached", len(duplicated),
                 executor.stats.simulator_invocations,
                 f"{len(duplicated) / cached:.1f}"))

    return rows, uncached, dedup, cached


def run_grouped_comparison():
    """Grouped evaluate_observable() vs the legacy per-term task pattern."""
    hamiltonian = ising_hamiltonian(NUM_QUBITS, coupling=1.0)
    num_terms = hamiltonian.num_terms
    assert num_terms >= 20  # the acceptance workload: a many-term Hamiltonian
    tasks = build_tasks()[:GROUPED_POINTS]
    circuits = [task.circuit for task in tasks]
    coefficients = np.array([float(np.real(c))
                             for _, c in hamiltonian.terms()])
    term_tasks = GROUPED_POINTS * num_terms
    rows = []

    # Legacy path: one single-term ExecutionTask per Pauli term; every task
    # re-evolves its circuit.  Single-threaded for a like-for-like timing.
    executor = Executor()
    per_term_tasks = [subtask for task in tasks
                      for subtask in task.split_terms()]
    start = time.perf_counter()
    results = executor.run(per_term_tasks, backend="statevector",
                           max_workers=1)
    per_term_time = time.perf_counter() - start
    per_term_energies = [
        float(np.dot(coefficients,
                     [r.value for r in results[i * num_terms:
                                               (i + 1) * num_terms]]))
        for i in range(GROUPED_POINTS)]
    rows.append(("per-term", term_tasks,
                 executor.stats.simulator_invocations,
                 f"{term_tasks / per_term_time:.1f}"))

    # Grouped path: one evolution per circuit, all terms from the final state.
    executor = Executor()
    start = time.perf_counter()
    grouped_energies = executor.evaluate_observable(
        circuits, hamiltonian, backend="statevector", max_workers=1)
    grouped_time = time.perf_counter() - start
    rows.append(("grouped", term_tasks,
                 executor.stats.simulator_invocations,
                 f"{term_tasks / grouped_time:.1f}"))

    invocations = executor.stats.simulator_invocations
    worst_gap = max(abs(a - b) for a, b
                    in zip(grouped_energies, per_term_energies))
    return rows, per_term_time, grouped_time, invocations, worst_gap


def run_compiled_sweep_comparison():
    """Compiled/batched execution vs the gate-by-gate interpreted path."""
    hamiltonian = ising_hamiltonian(NUM_QUBITS, coupling=1.0)
    template = FullyConnectedAnsatz(NUM_QUBITS, depth=1).build()
    num_params = len(template.ordered_parameters())
    rng = np.random.default_rng(42)
    sweep = rng.standard_normal((COMPILED_SWEEP_STEPS, num_params))
    coefficients = np.array([float(np.real(c)) for _, c in hamiltonian.terms()])
    circuits = [template.bind_parameters(list(point)) for point in sweep]
    rows = []

    # Interpreted per-circuit path: per instruction, re-resolve the gate
    # matrix, re-derive tensor axes, one generic tensordot; energies read
    # with the same per-term kernel so only the evolution differs.  Both
    # gate-relevant timings below are best-of-2 to absorb CI timer noise.
    interpreted_time = float("inf")
    for _ in range(2):
        start = time.perf_counter()
        interpreted = []
        for circuit in circuits:
            state = run_interpreted(circuit)
            values = statevector_term_expectations(state,
                                                   observable=hamiltonian)
            interpreted.append(float(np.dot(coefficients, values)))
        interpreted_time = min(interpreted_time,
                               time.perf_counter() - start)
    rows.append(("interpreted per-circuit", COMPILED_SWEEP_STEPS,
                 f"{COMPILED_SWEEP_STEPS / interpreted_time:.1f}"))

    # Compiled per-circuit path (fresh programs; the cache is cold because
    # every bound circuit has a distinct fingerprint).
    simulator = StatevectorSimulator()
    start = time.perf_counter()
    compiled = []
    for circuit in circuits:
        values = statevector_term_expectations(simulator.run(circuit).data,
                                               observable=hamiltonian)
        compiled.append(float(np.dot(coefficients, values)))
    compiled_time = time.perf_counter() - start
    rows.append(("compiled per-circuit", COMPILED_SWEEP_STEPS,
                 f"{COMPILED_SWEEP_STEPS / compiled_time:.1f}"))

    # Batched sweep: compile the template once, bind per point, execute the
    # whole sweep as one stacked pass with one batched readout kernel.  Each
    # rep uses a fresh executor (fresh value cache); the program cache warms
    # on the first rep, which is the compile layer's steady state.
    batched_time = float("inf")
    for _ in range(2):
        executor = Executor()
        start = time.perf_counter()
        batched = executor.evaluate_sweep(template, sweep, hamiltonian,
                                          backend="statevector")
        batched_time = min(batched_time, time.perf_counter() - start)
    rows.append(("batched sweep", COMPILED_SWEEP_STEPS,
                 f"{COMPILED_SWEEP_STEPS / batched_time:.1f}"))

    # Repeat sweep: the template program and every term value are cached.
    start = time.perf_counter()
    repeat = executor.evaluate_sweep(template, sweep, hamiltonian,
                                     backend="statevector")
    repeat_time = time.perf_counter() - start
    rows.append(("repeat sweep (cached)", COMPILED_SWEEP_STEPS,
                 f"{COMPILED_SWEEP_STEPS / repeat_time:.1f}"))

    worst_gap = max(max(abs(a - b) for a, b in zip(interpreted, batched)),
                    max(abs(a - b) for a, b in zip(interpreted, compiled)),
                    max(abs(a - b) for a, b in zip(batched, repeat)))
    return (rows, interpreted_time, compiled_time, batched_time, repeat_time,
            worst_gap, executor.stats)


def test_compiled_batched_sweep(benchmark):
    (rows, interpreted_time, compiled_time, batched_time, repeat_time,
     worst_gap, stats) = benchmark.pedantic(
        run_compiled_sweep_comparison, rounds=1, iterations=1)
    speedup = interpreted_time / batched_time
    print_table(
        f"compiled programs vs interpreter ({NUM_QUBITS}-qubit Ising VQE "
        f"sweep, {COMPILED_SWEEP_STEPS} steps, batched speedup "
        f"{speedup:.1f}x)",
        ["configuration", "tasks", "tasks/sec"], rows)
    # The compile-layer acceptance gate: the batched sweep beats the
    # per-circuit interpreted path ≥ 3x at 1e-10 agreement, and the repeat
    # sweep is served by the program + term caches.
    assert worst_gap < 1e-10
    assert speedup >= 3.0
    assert stats.program_cache_hits > 0
    assert stats.simulator_invocations == COMPILED_SWEEP_STEPS
    assert stats.term_cache_hits > 0

    record = {
        "pr": 3,
        "benchmark": "compiled circuit programs + batched parameter sweep",
        "workload": {
            "num_qubits": NUM_QUBITS,
            "sweep_steps": COMPILED_SWEEP_STEPS,
            "hamiltonian_terms": ising_hamiltonian(NUM_QUBITS, 1.0).num_terms,
            "ansatz": "FullyConnectedAnsatz(depth=1)",
        },
        "tasks_per_sec": {
            "interpreted_per_circuit": COMPILED_SWEEP_STEPS / interpreted_time,
            "compiled_per_circuit": COMPILED_SWEEP_STEPS / compiled_time,
            "batched_sweep": COMPILED_SWEEP_STEPS / batched_time,
            "repeat_sweep_cached": COMPILED_SWEEP_STEPS / repeat_time,
        },
        "batched_vs_interpreted_speedup": speedup,
        "max_energy_gap": worst_gap,
        "program_cache_hits": stats.program_cache_hits,
    }
    # The committed BENCH_pr3.json is the PR's perf record; casual local
    # runs must not keep dirtying the tree with machine-specific timings.
    # CI (and anyone refreshing the record) opts in via REPRO_RECORD_BENCH.
    if os.environ.get("REPRO_RECORD_BENCH") or not os.path.exists(BENCH_JSON):
        with open(BENCH_JSON, "w") as handle:
            json.dump(record, handle, indent=2, sort_keys=True)
            handle.write("\n")


def test_execution_throughput(benchmark):
    rows, uncached, dedup, cached = benchmark.pedantic(
        run_configurations, rounds=1, iterations=1)
    print_table(
        f"execution-layer throughput ({NUM_QUBITS}-qubit VQE sweep, "
        f"{SWEEP_POINTS} parameter points)",
        ["configuration", "tasks", "sim invocations", "tasks/sec"], rows)
    # Dedup must not run more simulations than there are unique tasks, and
    # the cached pass must not run any.
    assert int(rows[1][2]) == SWEEP_POINTS
    assert int(rows[2][2]) == SWEEP_POINTS  # unchanged: second pass all-cache
    # Serving 4x-duplicated and fully-cached sweeps must beat the uncached
    # per-task cost (generous 1.5x bound to stay robust on loaded CI boxes).
    per_task_uncached = uncached / SWEEP_POINTS
    per_task_dedup = dedup / (SWEEP_POINTS * DUPLICATES)
    per_task_cached = cached / (SWEEP_POINTS * DUPLICATES)
    assert per_task_dedup < per_task_uncached / 1.5
    assert per_task_cached < per_task_uncached / 1.5


def test_grouped_observable_throughput(benchmark):
    (rows, per_term_time, grouped_time,
     invocations, worst_gap) = benchmark.pedantic(
        run_grouped_comparison, rounds=1, iterations=1)
    speedup = per_term_time / grouped_time
    print_table(
        f"grouped vs per-term observable evaluation ({NUM_QUBITS}-qubit "
        f"Ising, {GROUPED_POINTS} circuits, speedup {speedup:.1f}x)",
        ["configuration", "term tasks", "sim invocations", "term tasks/sec"],
        rows)
    # One evolution per unique circuit, a multi-x speedup, and identical
    # energies: the grouped engine's acceptance criteria.
    assert invocations == GROUPED_POINTS
    assert worst_gap < 1e-10
    assert speedup >= 3.0
