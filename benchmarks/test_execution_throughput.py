"""Micro-benchmark: execution-layer throughput for a batched VQE sweep.

Measures tasks/second through ``execute()`` for a 12-qubit fully-connected
hardware-efficient VQE sweep on the statevector backend, in three
configurations:

* **uncached** — every task is a distinct parameter vector (pure simulator
  throughput plus executor overhead);
* **dedup** — each parameter vector is submitted 4x in one batch (measures
  in-batch duplicate collapsing, the optimizer-re-evaluation pattern);
* **cached** — the identical sweep re-submitted (measures LRU hit serving).

A second comparison pits the **grouped** observable engine
(``evaluate_observable()``: one circuit evolution serving every Hamiltonian
term) against the legacy **per-term** submission pattern (one single-term
``ExecutionTask`` per Pauli term) on the full 23-term 12-qubit Ising
Hamiltonian, reporting term-tasks/second for both; grouped must be ≥ 3x
faster and agree with per-term energies to 1e-10.

Future PRs touching the executor hot path should keep the dedup/cached
configurations well above the uncached baseline and preserve the grouped
speedup.  Set ``REPRO_FULL=1`` for a larger sweep.
"""

import time

import numpy as np

from repro.ansatz import FullyConnectedAnsatz
from repro.execution import ExecutionTask, Executor
from repro.operators import ising_hamiltonian

from conftest import full_mode, print_table

NUM_QUBITS = 12
SWEEP_POINTS = 24 if full_mode() else 8
DUPLICATES = 4
GROUPED_POINTS = 8 if full_mode() else 4


def build_tasks():
    hamiltonian = ising_hamiltonian(NUM_QUBITS, coupling=1.0)
    template = FullyConnectedAnsatz(NUM_QUBITS, depth=1).build()
    num_params = len(template.ordered_parameters())
    tasks = []
    for step in range(SWEEP_POINTS):
        theta = [0.05 * step] * num_params
        tasks.append(ExecutionTask(template.bind_parameters(theta),
                                   observable=hamiltonian))
    return tasks


def run_configurations():
    tasks = build_tasks()
    rows = []

    executor = Executor()
    start = time.perf_counter()
    executor.run(tasks, backend="statevector")
    uncached = time.perf_counter() - start
    rows.append(("uncached", len(tasks),
                 executor.stats.simulator_invocations,
                 f"{len(tasks) / uncached:.1f}"))

    executor = Executor()
    duplicated = [task for task in tasks for _ in range(DUPLICATES)]
    start = time.perf_counter()
    executor.run(duplicated, backend="statevector")
    dedup = time.perf_counter() - start
    rows.append(("dedup x4", len(duplicated),
                 executor.stats.simulator_invocations,
                 f"{len(duplicated) / dedup:.1f}"))

    start = time.perf_counter()
    executor.run(duplicated, backend="statevector")
    cached = time.perf_counter() - start
    rows.append(("cached", len(duplicated),
                 executor.stats.simulator_invocations,
                 f"{len(duplicated) / cached:.1f}"))

    return rows, uncached, dedup, cached


def run_grouped_comparison():
    """Grouped evaluate_observable() vs the legacy per-term task pattern."""
    hamiltonian = ising_hamiltonian(NUM_QUBITS, coupling=1.0)
    num_terms = hamiltonian.num_terms
    assert num_terms >= 20  # the acceptance workload: a many-term Hamiltonian
    tasks = build_tasks()[:GROUPED_POINTS]
    circuits = [task.circuit for task in tasks]
    coefficients = np.array([float(np.real(c))
                             for _, c in hamiltonian.terms()])
    term_tasks = GROUPED_POINTS * num_terms
    rows = []

    # Legacy path: one single-term ExecutionTask per Pauli term; every task
    # re-evolves its circuit.  Single-threaded for a like-for-like timing.
    executor = Executor()
    per_term_tasks = [subtask for task in tasks
                      for subtask in task.split_terms()]
    start = time.perf_counter()
    results = executor.run(per_term_tasks, backend="statevector",
                           max_workers=1)
    per_term_time = time.perf_counter() - start
    per_term_energies = [
        float(np.dot(coefficients,
                     [r.value for r in results[i * num_terms:
                                               (i + 1) * num_terms]]))
        for i in range(GROUPED_POINTS)]
    rows.append(("per-term", term_tasks,
                 executor.stats.simulator_invocations,
                 f"{term_tasks / per_term_time:.1f}"))

    # Grouped path: one evolution per circuit, all terms from the final state.
    executor = Executor()
    start = time.perf_counter()
    grouped_energies = executor.evaluate_observable(
        circuits, hamiltonian, backend="statevector", max_workers=1)
    grouped_time = time.perf_counter() - start
    rows.append(("grouped", term_tasks,
                 executor.stats.simulator_invocations,
                 f"{term_tasks / grouped_time:.1f}"))

    invocations = executor.stats.simulator_invocations
    worst_gap = max(abs(a - b) for a, b
                    in zip(grouped_energies, per_term_energies))
    return rows, per_term_time, grouped_time, invocations, worst_gap


def test_execution_throughput(benchmark):
    rows, uncached, dedup, cached = benchmark.pedantic(
        run_configurations, rounds=1, iterations=1)
    print_table(
        f"execution-layer throughput ({NUM_QUBITS}-qubit VQE sweep, "
        f"{SWEEP_POINTS} parameter points)",
        ["configuration", "tasks", "sim invocations", "tasks/sec"], rows)
    # Dedup must not run more simulations than there are unique tasks, and
    # the cached pass must not run any.
    assert int(rows[1][2]) == SWEEP_POINTS
    assert int(rows[2][2]) == SWEEP_POINTS  # unchanged: second pass all-cache
    # Serving 4x-duplicated and fully-cached sweeps must beat the uncached
    # per-task cost (generous 1.5x bound to stay robust on loaded CI boxes).
    per_task_uncached = uncached / SWEEP_POINTS
    per_task_dedup = dedup / (SWEEP_POINTS * DUPLICATES)
    per_task_cached = cached / (SWEEP_POINTS * DUPLICATES)
    assert per_task_dedup < per_task_uncached / 1.5
    assert per_task_cached < per_task_uncached / 1.5


def test_grouped_observable_throughput(benchmark):
    (rows, per_term_time, grouped_time,
     invocations, worst_gap) = benchmark.pedantic(
        run_grouped_comparison, rounds=1, iterations=1)
    speedup = per_term_time / grouped_time
    print_table(
        f"grouped vs per-term observable evaluation ({NUM_QUBITS}-qubit "
        f"Ising, {GROUPED_POINTS} circuits, speedup {speedup:.1f}x)",
        ["configuration", "term tasks", "sim invocations", "term tasks/sec"],
        rows)
    # One evolution per unique circuit, a multi-x speedup, and identical
    # energies: the grouped engine's acceptance criteria.
    assert invocations == GROUPED_POINTS
    assert worst_gap < 1e-10
    assert speedup >= 3.0
