"""Micro-benchmark: execution-layer throughput for a batched VQE sweep.

Measures tasks/second through ``execute()`` for a 12-qubit fully-connected
hardware-efficient VQE sweep on the statevector backend, in three
configurations:

* **uncached** — every task is a distinct parameter vector (pure simulator
  throughput plus executor overhead);
* **dedup** — each parameter vector is submitted 4x in one batch (measures
  in-batch duplicate collapsing, the optimizer-re-evaluation pattern);
* **cached** — the identical sweep re-submitted (measures LRU hit serving).

Future PRs touching the executor hot path should keep the dedup/cached
configurations well above the uncached baseline.  Set ``REPRO_FULL=1`` for a
larger sweep.
"""

import time

from repro.ansatz import FullyConnectedAnsatz
from repro.execution import ExecutionTask, Executor
from repro.operators import ising_hamiltonian

from conftest import full_mode, print_table

NUM_QUBITS = 12
SWEEP_POINTS = 24 if full_mode() else 8
DUPLICATES = 4


def build_tasks():
    hamiltonian = ising_hamiltonian(NUM_QUBITS, coupling=1.0)
    template = FullyConnectedAnsatz(NUM_QUBITS, depth=1).build()
    num_params = len(template.ordered_parameters())
    tasks = []
    for step in range(SWEEP_POINTS):
        theta = [0.05 * step] * num_params
        tasks.append(ExecutionTask(template.bind_parameters(theta),
                                   observable=hamiltonian))
    return tasks


def run_configurations():
    tasks = build_tasks()
    rows = []

    executor = Executor()
    start = time.perf_counter()
    executor.run(tasks, backend="statevector")
    uncached = time.perf_counter() - start
    rows.append(("uncached", len(tasks),
                 executor.stats.simulator_invocations,
                 f"{len(tasks) / uncached:.1f}"))

    executor = Executor()
    duplicated = [task for task in tasks for _ in range(DUPLICATES)]
    start = time.perf_counter()
    executor.run(duplicated, backend="statevector")
    dedup = time.perf_counter() - start
    rows.append(("dedup x4", len(duplicated),
                 executor.stats.simulator_invocations,
                 f"{len(duplicated) / dedup:.1f}"))

    start = time.perf_counter()
    executor.run(duplicated, backend="statevector")
    cached = time.perf_counter() - start
    rows.append(("cached", len(duplicated),
                 executor.stats.simulator_invocations,
                 f"{len(duplicated) / cached:.1f}"))

    return rows, uncached, dedup, cached


def test_execution_throughput(benchmark):
    rows, uncached, dedup, cached = benchmark.pedantic(
        run_configurations, rounds=1, iterations=1)
    print_table(
        f"execution-layer throughput ({NUM_QUBITS}-qubit VQE sweep, "
        f"{SWEEP_POINTS} parameter points)",
        ["configuration", "tasks", "sim invocations", "tasks/sec"], rows)
    # Dedup must not run more simulations than there are unique tasks, and
    # the cached pass must not run any.
    assert int(rows[1][2]) == SWEEP_POINTS
    assert int(rows[2][2]) == SWEEP_POINTS  # unchanged: second pass all-cache
    # Serving 4x-duplicated and fully-cached sweeps must beat the uncached
    # per-task cost (generous 1.5x bound to stay robust on loaded CI boxes).
    per_task_uncached = uncached / SWEEP_POINTS
    per_task_dedup = dedup / (SWEEP_POINTS * DUPLICATES)
    per_task_cached = cached / (SWEEP_POINTS * DUPLICATES)
    assert per_task_dedup < per_task_uncached / 1.5
    assert per_task_cached < per_task_uncached / 1.5
