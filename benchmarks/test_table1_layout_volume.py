"""Table 1 — spacetime volume of VQAs on standard layouts vs the proposed one.

Paper values (average ratio V(layout)/V(proposed) over 8–164 qubit ansatz
instances):

    layout        linear  fully_connected  blocked_all_to_all
    Compact        1.04        1.02              1.81
    Intermediate   1.19        1.15              1.93
    Fast           2.70        2.60              4.06
    Grid           5.30        5.08              7.92

The reproduction checks the shape: every ratio ≥ 1 (the proposed layout
minimizes spacetime volume), Grid is the most expensive, and the ordering
Compact ≤ Intermediate < Fast < Grid holds per ansatz family.
"""


from repro.ansatz import (BlockedAllToAllAnsatz, FullyConnectedAnsatz,
                          LinearAnsatz)
from repro.architecture import layout_volume_ratios

from conftest import full_mode, print_table

SIZES = list(range(8, 168, 4)) if full_mode() else list(range(8, 168, 24))
LAYOUTS = ("compact", "intermediate", "fast", "grid")
PAPER = {
    "linear": {"compact": 1.04, "intermediate": 1.19, "fast": 2.70, "grid": 5.30},
    "fully_connected": {"compact": 1.02, "intermediate": 1.15, "fast": 2.60,
                        "grid": 5.08},
    "blocked_all_to_all": {"compact": 1.81, "intermediate": 1.93, "fast": 4.06,
                           "grid": 7.92},
}
FAMILIES = {
    "linear": LinearAnsatz,
    "fully_connected": FullyConnectedAnsatz,
    "blocked_all_to_all": BlockedAllToAllAnsatz,
}


def compute_table1():
    results = {}
    for family, factory in FAMILIES.items():
        results[family] = layout_volume_ratios(factory, SIZES, LAYOUTS)
    return results


def test_table1_layout_volume(benchmark):
    results = benchmark(compute_table1)
    rows = []
    for layout in LAYOUTS:
        row = [layout.capitalize()]
        for family in FAMILIES:
            measured = results[family][layout]
            row.append(f"{measured:.2f} (paper {PAPER[family][layout]:.2f})")
        rows.append(row)
    print_table("Table 1: spacetime volume relative to the proposed layout",
                ["Layout"] + list(FAMILIES), rows)
    for family, ratios in results.items():
        assert all(value >= 0.99 for value in ratios.values()), (family, ratios)
        assert ratios["grid"] == max(ratios.values())
        assert ratios["compact"] <= ratios["intermediate"] + 0.05
        assert ratios["fast"] < ratios["grid"]
