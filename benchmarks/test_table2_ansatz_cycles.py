"""Fig. 9 / Table 2 — lattice-surgery latency of blocked_all_to_all vs FCHE.

Paper (cycles on the proposed layout):

    qubits                20    40    60
    blocked_all_to_all    71   121   171
    FCHE                 131   271   411

The reproduction's calibrated cost model (DESIGN.md §6) preserves the shape:
both latencies grow linearly in N, blocked_all_to_all costs roughly half of
FCHE, and the per-cluster latencies follow Fig. 9 (4 fast / 8 slow cycles).
"""

import pytest

from repro.ansatz import BlockedAllToAllAnsatz, FullyConnectedAnsatz
from repro.architecture import ProposedLayout, make_layout, schedule_on_layout

from conftest import print_table

PAPER = {20: (71, 131), 40: (121, 271), 60: (171, 411)}


def compute_table2():
    results = {}
    for num_qubits in PAPER:
        layout = make_layout("proposed", num_qubits)
        blocked = schedule_on_layout(BlockedAllToAllAnsatz(num_qubits), layout,
                                     include_measurement=False)
        fche = schedule_on_layout(FullyConnectedAnsatz(num_qubits), layout,
                                  include_measurement=False)
        results[num_qubits] = (blocked.cycles, fche.cycles)
    return results


def test_table2_ansatz_cycles(benchmark):
    results = benchmark(compute_table2)
    rows = []
    for num_qubits, (blocked, fche) in results.items():
        paper_blocked, paper_fche = PAPER[num_qubits]
        rows.append([num_qubits,
                     f"{blocked:.0f} (paper {paper_blocked})",
                     f"{fche:.0f} (paper {paper_fche})",
                     f"{blocked / fche:.2f} (paper {paper_blocked / paper_fche:.2f})"])
    print_table("Table 2: cycles on the proposed layout",
                ["qubits", "blocked_all_to_all", "FCHE", "blocked/FCHE"], rows)
    cycles = list(results.values())
    # blocked is always substantially faster (paper: 0.42-0.54x of FCHE).
    for blocked, fche in cycles:
        assert 0.25 <= blocked / fche <= 0.7
    # Linear growth in N for both ansatz families.
    blocked_increments = [cycles[1][0] - cycles[0][0], cycles[2][0] - cycles[1][0]]
    assert blocked_increments[0] == pytest.approx(blocked_increments[1], rel=0.05)
    # Fig. 9: the slow-cluster cost on the proposed layout is twice the fast one.
    layout = ProposedLayout(k=4)
    assert layout.cluster_cycles(1, (12, 13)) == 2 * layout.cluster_cycles(1, (0, 2))
