"""PR-10 acceptance gate: rare-event logical-error-rate estimation.

Three checks on the low-``p`` tail workload, all recorded to
``BENCH_pr10.json``:

* **≥ 50x decoded-shot reduction** — on the d=5 rotated surface code at
  ``p = 1e-4``, the weight-stratified estimator must reach its confidence
  interval with at least 50x fewer *decoded shots* (counter-proven via
  ``batch_decode_stats`` deltas) than a direct Monte-Carlo estimator would
  need for the same Wilson CI width.  The direct requirement is solved
  from the repo's own ``wilson_interval`` by bisection — at this operating
  point it sits in the hundreds of millions of shots, far beyond what any
  suite could decode directly, which is exactly the point of the PR.
* **Agreement with a high-shot direct reference** — at a moderate ``p``
  where direct sampling still sees failures, both rare-event estimators
  (tilted importance sampling and weight-stratified) must agree with a
  high-shot direct reference within its CI.
* **Fan-out determinism** — the d=5 low-``p`` results must be bitwise
  identical across ``max_workers`` 1/2/4 and across the local fork pool
  vs. a ``FilesystemBroker`` spool.
"""

import json
import os
import time

from repro.execution import ExecutionPolicy, Executor
from repro.qec import (run_memory_sampling, run_rare_event_sampling)
from repro.qec.decoders import MWPMDecoder
from repro.qec.decoders.base import batch_decode_stats
from repro.qec.decoders.graph import (repetition_code_graph,
                                      rotated_surface_code_graph)
from repro.qec.sampling import wilson_interval

from conftest import full_mode, print_table

DISTANCE = 5
ROUNDS = 5
#: Deep in the low-p tail: a direct estimate at this operating point needs
#: ~1e8 shots before its CI tightens to anything useful.
PHYSICAL_ERROR_RATE = 1e-4
SHOTS = 8192 if full_mode() else 4096
SEED = 20250808
BENCH_JSON = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                          "BENCH_pr10.json")

_RECORD = {}


def _graph():
    return rotated_surface_code_graph(DISTANCE, ROUNDS, PHYSICAL_ERROR_RATE)


def _direct_shots_for_width(rate: float, width: float) -> int:
    """The smallest direct-sampling shot count whose Wilson CI at the
    given failure rate is no wider than ``width`` (bisection against the
    repo's own ``wilson_interval``)."""

    def width_at(shots: int) -> float:
        low, high = wilson_interval(rate * shots, shots)
        return high - low

    low, high = 1, 1
    while width_at(high) > width:
        high *= 2
        if high > 2 ** 60:  # pragma: no cover - absurd widths only
            raise AssertionError("no finite shot count reaches the width")
    while low < high:
        mid = (low + high) // 2
        if width_at(mid) > width:
            low = mid + 1
        else:
            high = mid
    return low


def test_rare_event_shot_reduction(benchmark):
    """Stratified sampling beats direct by ≥ 50x decoded shots per CI."""
    graph = _graph()

    def run():
        before = batch_decode_stats().shots_decoded
        start = time.perf_counter()
        result = run_rare_event_sampling(
            graph, MWPMDecoder(graph), SHOTS, method="stratified",
            seed=SEED, executor=Executor(use_cache=False))
        seconds = time.perf_counter() - start
        decoded = batch_decode_stats().shots_decoded - before
        return result, decoded, seconds

    result, decoded, seconds = benchmark.pedantic(run, rounds=1,
                                                  iterations=1)
    assert decoded == SHOTS, "stratified estimator decoded off-budget"
    low, high = result.wilson_interval()
    width = high - low
    assert 0.0 < result.estimate < 1.0 and width > 0.0
    direct_needed = _direct_shots_for_width(result.estimate, width)
    reduction = direct_needed / decoded

    print_table(
        f"rare-event vs direct decoded-shot cost (d={DISTANCE}, "
        f"rounds={ROUNDS}, p={PHYSICAL_ERROR_RATE})",
        ["quantity", "value"],
        [["stratified decoded shots", decoded],
         ["logical error rate", f"{result.estimate:.3e}"],
         ["95% CI", f"[{low:.3e}, {high:.3e}]"],
         ["effective sample size", f"{result.ess:.3e}"],
         ["direct shots for same CI width", direct_needed],
         ["decoded-shot reduction", f"{reduction:.0f}x"],
         ["strata", [s.weight for s in result.strata]],
         ["seconds", f"{seconds:.2f}"]])

    assert reduction >= 50.0, (
        f"decoded-shot reduction {reduction:.1f}x below the 50x gate")

    _RECORD["shot_reduction"] = {
        "distance": DISTANCE, "rounds": ROUNDS,
        "physical_error_rate": PHYSICAL_ERROR_RATE,
        "shots": SHOTS, "seed": SEED,
        "decoded_shots": decoded,
        "logical_error_rate": result.estimate,
        "wilson_interval": [low, high],
        "effective_sample_size": result.ess,
        "direct_shots_for_same_ci_width": direct_needed,
        "shot_reduction": reduction,
        "tail_probability": result.tail_probability,
        "seconds": seconds,
    }


def test_rare_event_agrees_with_direct_reference():
    """Both estimators agree with a high-shot direct reference."""
    graph = repetition_code_graph(5, 3, 0.04)
    reference_shots = 120_000 if full_mode() else 60_000
    direct = run_memory_sampling(graph, MWPMDecoder(graph), reference_shots,
                                 seed=SEED, executor=Executor(
                                     use_cache=False))
    reference_rate = direct.failures / direct.shots
    ref_low, ref_high = wilson_interval(direct.failures, direct.shots,
                                        z=3.3)

    rows, record = [], {}
    for method in ("importance", "stratified"):
        result = run_rare_event_sampling(
            graph, MWPMDecoder(graph), SHOTS, method=method, seed=SEED + 1,
            executor=Executor(use_cache=False))
        low, high = result.wilson_interval(z=3.3)
        agrees = (low <= reference_rate <= high
                  and ref_low <= result.estimate <= ref_high)
        rows.append([method, f"{result.estimate:.4e}",
                     f"[{low:.3e}, {high:.3e}]", f"{result.ess:.0f}",
                     "yes" if agrees else "NO"])
        record[method] = {"estimate": result.estimate,
                          "interval": [low, high], "ess": result.ess,
                          "agrees": agrees}
        assert agrees, (f"{method} estimate {result.estimate:.4e} "
                        f"disagrees with direct "
                        f"{reference_rate:.4e} [{ref_low:.4e}, "
                        f"{ref_high:.4e}]")

    print_table(
        f"rare-event vs {reference_shots}-shot direct reference "
        f"(d=5 repetition, p=0.04, direct rate {reference_rate:.4e})",
        ["method", "estimate", "99.9% CI", "ESS", "agrees"], rows)
    _RECORD["direct_agreement"] = {
        "reference_shots": reference_shots,
        "reference_rate": reference_rate,
        "reference_interval": [ref_low, ref_high],
        "estimators": record,
    }


def test_rare_event_bitwise_across_workers_and_brokers(tmp_path):
    """d=5 low-p results are bitwise identical for any fan-out."""
    graph = _graph()
    shots = SHOTS // 2

    def run(method, policy):
        result = run_rare_event_sampling(
            graph, MWPMDecoder(graph), shots, method=method, seed=SEED,
            executor=Executor(use_cache=False), policy=policy)
        return (result.estimate, result.variance, result.ess,
                result.raw_failures, result.total_defects, result.strata)

    configurations = {
        "workers_1": ExecutionPolicy(parallel="process", max_workers=1),
        "workers_2": ExecutionPolicy(parallel="process", max_workers=2),
        "workers_4": ExecutionPolicy(parallel="process", max_workers=4),
        "spool_broker": ExecutionPolicy(
            parallel="process", max_workers=2,
            broker=str(tmp_path / "pr10-spool")),
    }
    record, rows = {}, []
    for method in ("importance", "stratified"):
        fingerprints = {name: run(method, policy)
                        for name, policy in configurations.items()}
        distinct = len(set(fingerprints.values()))
        rows.extend([method, name, f"{bits[0]:.6e}", bits[3]]
                    for name, bits in fingerprints.items())
        assert distinct == 1, (
            f"{method}: fan-out changed the bits: {fingerprints}")
        record[method] = {
            "configurations": sorted(configurations),
            "estimate": fingerprints["workers_1"][0],
            "bitwise_identical": True,
        }

    print_table(
        f"fan-out determinism (d={DISTANCE}, p={PHYSICAL_ERROR_RATE}, "
        f"{shots} shots)",
        ["method", "configuration", "estimate", "raw failures"], rows)
    _RECORD["fanout_determinism"] = record

    bench = {"pr": 10,
             "benchmark": "rare-event QEC estimation (low-p tail)",
             "shot_reduction": _RECORD["shot_reduction"]["shot_reduction"]}
    bench.update(_RECORD)
    if os.environ.get("REPRO_RECORD_BENCH") or not os.path.exists(
            BENCH_JSON):
        with open(BENCH_JSON, "w") as handle:
            json.dump(bench, handle, indent=2, sort_keys=True)
            handle.write("\n")
