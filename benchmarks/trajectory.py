"""Merge every per-PR ``BENCH_*.json`` into one ``BENCH_trajectory.json``.

Each PR's benchmark suite records its headline numbers in a
``BENCH_pr<N>.json`` next to this file (and CI uploads whatever matches the
``BENCH_*.json`` glob).  The per-PR files are the raw record; this module
folds them into a single chronological artifact so the performance
trajectory of the repo — tasks/sec, speedup factors, shot-reduction
factors — can be read (or plotted) from one file instead of N.

Run it directly::

    python benchmarks/trajectory.py          # writes BENCH_trajectory.json
    python benchmarks/trajectory.py --print  # also prints the summary table

or let the CI step do it after the benchmark suites have emitted their
files.  Merging is deterministic: files are keyed by their ``pr`` field
(falling back to the number in the filename), sorted ascending, and the
output carries each file's full payload verbatim under ``entries`` plus a
compact ``headline`` map per PR for quick scanning.
"""

from __future__ import annotations

import argparse
import json
import os
import re
from typing import Dict, List, Optional

#: The merged artifact (excluded from its own input glob).
TRAJECTORY_JSON = os.path.join(os.path.dirname(__file__),
                               "BENCH_trajectory.json")

#: Keys promoted into the per-PR ``headline`` map when present, in
#: preference order — one line per PR for the scanning table.
_HEADLINE_KEYS = (
    "speedup", "batched_vs_interpreted_speedup", "batched_vs_loop_speedup",
    "shot_reduction", "tasks_per_sec", "shots_per_sec", "jobs_per_sec",
)


def _pr_of(path: str, payload: Dict) -> Optional[int]:
    if isinstance(payload.get("pr"), int):
        return payload["pr"]
    match = re.search(r"pr(\d+)", os.path.basename(path))
    return int(match.group(1)) if match else None


def collect_bench_files(directory: Optional[str] = None) -> List[str]:
    """Every ``BENCH_*.json`` in ``directory`` except the trajectory itself,
    sorted by name for a stable merge order."""
    directory = directory or os.path.dirname(os.path.abspath(__file__))
    names = sorted(name for name in os.listdir(directory)
                   if name.startswith("BENCH_") and name.endswith(".json")
                   and name != os.path.basename(TRAJECTORY_JSON))
    return [os.path.join(directory, name) for name in names]


def build_trajectory(paths: List[str]) -> Dict:
    """The merged trajectory document for the given bench files."""
    entries = []
    for path in paths:
        with open(path) as handle:
            payload = json.load(handle)
        headline = {}
        for key in _HEADLINE_KEYS:
            if key in payload:
                headline[key] = payload[key]
        entries.append({
            "file": os.path.basename(path),
            "pr": _pr_of(path, payload),
            "benchmark": payload.get("benchmark"),
            "headline": headline,
            "data": payload,
        })
    entries.sort(key=lambda entry: (entry["pr"] is None, entry["pr"],
                                    entry["file"]))
    return {
        "artifact": "performance trajectory",
        "source_files": [entry["file"] for entry in entries],
        "entries": entries,
    }


def write_trajectory(directory: Optional[str] = None,
                     output: Optional[str] = None) -> Dict:
    """Merge and write ``BENCH_trajectory.json``; returns the document."""
    paths = collect_bench_files(directory)
    document = build_trajectory(paths)
    output = output or (os.path.join(directory, "BENCH_trajectory.json")
                        if directory else TRAJECTORY_JSON)
    with open(output, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return document


def format_table(document: Dict) -> str:
    """A one-line-per-PR summary of the merged trajectory."""
    lines = [f"{'PR':>4}  {'file':<24}  benchmark"]
    for entry in document["entries"]:
        pr = entry["pr"] if entry["pr"] is not None else "?"
        lines.append(f"{pr!s:>4}  {entry['file']:<24}  "
                     f"{entry['benchmark'] or '-'}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dir", default=None,
                        help="directory holding BENCH_*.json "
                             "(default: this file's directory)")
    parser.add_argument("--print", dest="show", action="store_true",
                        help="print the summary table after merging")
    options = parser.parse_args(argv)
    document = write_trajectory(options.dir)
    print(f"merged {len(document['entries'])} bench files -> "
          f"BENCH_trajectory.json")
    if options.show:
        print(format_table(document))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
