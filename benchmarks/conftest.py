"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper and prints the
paper-reported values next to the measured ones.  Set ``REPRO_FULL=1`` to run
the full-size sweeps (the defaults are trimmed so the whole harness completes
in a few minutes on a laptop); EXPERIMENTS.md records a full run.
"""

import os

import pytest


def full_mode() -> bool:
    """Whether the full paper-scale sweeps were requested."""
    return os.environ.get("REPRO_FULL", "0") not in ("0", "", "false", "False")


def print_table(title, header, rows):
    """Render a small ASCII table to stdout (captured with ``pytest -s``)."""
    print()
    print(f"== {title} ==")
    widths = [max(len(str(header[i])), *(len(str(row[i])) for row in rows))
              for i in range(len(header))]
    line = "  ".join(str(h).ljust(w) for h, w in zip(header, widths))
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(cell).ljust(w) for cell, w in zip(row, widths)))
    print()


@pytest.fixture
def table_printer():
    return print_table
