"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper and prints the
paper-reported values next to the measured ones.  Set ``REPRO_FULL=1`` to run
the full-size sweeps (the defaults are trimmed so the whole harness completes
in a few minutes on a laptop); EXPERIMENTS.md records a full run.

Set ``REPRO_RECORD_FIGURES=1`` (the scheduled CI ``figures`` job does) to
write ``FIGURES_RUN.json`` — one outcome/duration record per figure, table
and ablation test — which the workflow uploads as the paper-reproduction
regression artifact.
"""

import json
import os
import time

import pytest

FIGURES_JSON = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                            "FIGURES_RUN.json")

_figure_records = []


def pytest_runtest_logreport(report):
    if os.environ.get("REPRO_RECORD_FIGURES") and report.when == "call":
        _figure_records.append({
            "test": report.nodeid,
            "outcome": report.outcome,
            "duration_seconds": round(report.duration, 3),
        })


def pytest_sessionfinish(session, exitstatus):
    if os.environ.get("REPRO_RECORD_FIGURES") and _figure_records:
        record = {
            "recorded_at_unix": int(time.time()),
            "full_mode": full_mode(),
            "exit_status": int(exitstatus),
            "tests": sorted(_figure_records, key=lambda r: r["test"]),
        }
        with open(FIGURES_JSON, "w") as handle:
            json.dump(record, handle, indent=2, sort_keys=True)
            handle.write("\n")


def full_mode() -> bool:
    """Whether the full paper-scale sweeps were requested."""
    return os.environ.get("REPRO_FULL", "0") not in ("0", "", "false", "False")


def print_table(title, header, rows):
    """Render a small ASCII table to stdout (captured with ``pytest -s``)."""
    print()
    print(f"== {title} ==")
    widths = [max(len(str(header[i])), *(len(str(row[i])) for row in rows))
              for i in range(len(header))]
    line = "  ".join(str(h).ljust(w) for h, w in zip(header, widths))
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(cell).ljust(w) for cell, w in zip(row, widths)))
    print()


@pytest.fixture
def table_printer():
    return print_table
