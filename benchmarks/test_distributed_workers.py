"""PR-9 acceptance gate: elastic spool workers — throughput and recovery.

Three checks on the filesystem shard broker, recorded to ``BENCH_pr9.json``:

* **Spool sweep throughput** — the same statevector parameter sweep
  dispatched through a spool served by 1, 2 and 4 ``repro-worker``
  subprocesses; every configuration must match the pooled run bitwise
  (identical point-block payloads) and the inline run to 1e-12, and the
  per-configuration shards/sec are the committed perf record.
* **Kill recovery wall-clock** — SIGKILL one of two workers mid-shard via
  the deterministic fault injector; the run must finish with the exact
  clean-run values and the recovery (lease expiry → requeue → surviving
  worker) wall-clock is recorded next to the clean run's.
* **Warm resume wall-clock** — a killed sweep simulated by flushing half
  its point blocks through the checkpoint cache; the resumed run must
  recompute only the other half (counter-proven) and its wall-clock is
  recorded next to the cold run's.
"""

import json
import os
import subprocess
import sys
import time

import numpy as np

from repro.ansatz import FullyConnectedAnsatz
from repro.execution import (ExecutionPolicy, Executor, FilesystemBroker,
                             inject_faults)
from repro.execution.broker import SpoolLayout
from repro.execution.sharding import (ShardPlanner, ShardRetryPolicy,
                                      run_sharded)
from repro.operators import ising_hamiltonian

from conftest import full_mode

QUBITS = 10 if full_mode() else 8
POINTS = 48 if full_mode() else 24
SEED = 20250808
WORKER_COUNTS = (1, 2, 4)
BENCH_JSON = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                          "BENCH_pr9.json")
_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")

_RECORD = {}


def _sweep_fixture():
    template = FullyConnectedAnsatz(QUBITS, depth=1).build()
    rng = np.random.default_rng(SEED)
    points = rng.standard_normal(
        (POINTS, len(template.ordered_parameters()))).tolist()
    return template, points, ising_hamiltonian(QUBITS)


def _spawn_workers(spool, count, *extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    return [subprocess.Popen(
        [sys.executable, "-m", "repro.worker", "--spool", os.fspath(spool),
         "--poll-interval", "0.01", *extra],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        for _ in range(count)]


def _wait_for_census(spool, count, timeout=60.0):
    layout = SpoolLayout(spool)
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            names = [name for name in os.listdir(layout.workers)
                     if name.endswith(".json")]
        except FileNotFoundError:
            names = []
        if len(names) >= count:
            return
        time.sleep(0.05)
    raise AssertionError(f"{count} worker(s) never censused")


def _stop_workers(spool, procs):
    try:
        with open(SpoolLayout(spool).stop_file, "w",
                  encoding="utf-8") as handle:
            handle.write("stop")
    except OSError:
        pass
    for proc in procs:
        try:
            proc.wait(timeout=15)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()


def test_spool_sweep_throughput(tmp_path, table_printer):
    template, points, observable = _sweep_fixture()
    start = time.perf_counter()
    inline = Executor(use_cache=False).evaluate_sweep(
        template, points, observable, backend="statevector",
        parallel="none")
    inline_seconds = time.perf_counter() - start
    pooled = Executor(use_cache=False).evaluate_sweep(
        template, points, observable, backend="statevector",
        parallel="process", max_workers=2)

    rows = []
    for count in WORKER_COUNTS:
        spool = tmp_path / f"spool-{count}"
        procs = _spawn_workers(spool, count, "--idle-exit", "60")
        try:
            _wait_for_census(spool, count)
            executor = Executor(use_cache=False)
            start = time.perf_counter()
            # max_workers stays fixed: it shapes the *plan*; the actual
            # concurrency is the number of attached repro-workers.
            values = executor.evaluate_sweep(
                template, points, observable, backend="statevector",
                policy=ExecutionPolicy(parallel="process", max_workers=2,
                                       broker=str(spool)))
            seconds = time.perf_counter() - start
        finally:
            _stop_workers(spool, procs)
        # Worker-count independence is exact: identical block payloads.
        assert np.array_equal(values, pooled)
        assert np.allclose(values, inline, atol=1e-12)
        shards = executor.stats.process_shards
        assert shards > 0 and seconds > 0
        rows.append((count, shards, round(seconds, 3),
                     round(shards / seconds, 1)))
        _RECORD[f"spool_sweep_{count}_workers"] = {
            "workers": count, "qubits": QUBITS, "points": POINTS,
            "shards": shards, "seconds": seconds,
            "shards_per_second": shards / seconds,
        }
    _RECORD["spool_sweep_inline"] = {"qubits": QUBITS, "points": POINTS,
                                     "seconds": inline_seconds}
    table_printer(
        f"spool sweep throughput ({QUBITS} qubits, {POINTS} points)",
        ("workers", "shards", "seconds", "shards/sec"), rows)


def test_kill_recovery_wall_clock(tmp_path):
    payloads = [(3, exponent) for exponent in range(8)]
    expected = [pow(3, exponent) for exponent in range(8)]
    plan = ShardPlanner(max_workers=2).plan(len(payloads),
                                            hints=("process",),
                                            parallel="process")
    retry = ShardRetryPolicy(max_retries=3, backoff_base=0.0)

    def timed_run(spool, chaos):
        procs = _spawn_workers(spool, 2, "--lease-seconds", "0.5",
                               "--idle-exit", "60")
        reports = []
        try:
            _wait_for_census(spool, 2)
            broker = FilesystemBroker(spool, lease_seconds=0.5,
                                      poll_interval=0.01, steal=False)
            start = time.perf_counter()
            if chaos:
                with inject_faults("shard.kill=1/1"):
                    results = run_sharded(plan, pow, payloads, policy=retry,
                                          broker=broker,
                                          on_fault=reports.append)
            else:
                results = run_sharded(plan, pow, payloads, policy=retry,
                                      broker=broker,
                                      on_fault=reports.append)
            seconds = time.perf_counter() - start
        finally:
            _stop_workers(spool, procs)
        return results, seconds, reports

    clean, clean_seconds, clean_reports = \
        timed_run(tmp_path / "spool-clean", chaos=False)
    recovered, recovered_seconds, reports = \
        timed_run(tmp_path / "spool-chaos", chaos=True)
    assert clean == expected and recovered == expected
    assert clean_reports == []
    assert len(reports) == 1 and reports[0].lease_expiries >= 1
    _RECORD["kill_recovery"] = {
        "shards": len(payloads), "lease_seconds": 0.5,
        "clean_seconds": clean_seconds,
        "recovered_seconds": recovered_seconds,
        "lease_expiries": reports[0].lease_expiries,
    }


def test_warm_resume_wall_clock(tmp_path):
    template, points, observable = _sweep_fixture()
    half = len(points) // 2

    def policy_for(spool):
        return ExecutionPolicy(parallel="process", max_workers=2,
                               broker=str(spool))

    # Cold: the whole sweep, nothing checkpointed (parent steal path —
    # wall-clocks here compare cache states, not worker elasticity).
    cold = Executor(cache_dir=str(tmp_path / "cache-cold"))
    start = time.perf_counter()
    cold_values = cold.evaluate_sweep(
        template, points, observable, backend="statevector",
        policy=policy_for(tmp_path / "spool-cold"))
    cold_seconds = time.perf_counter() - start

    # "Killed" run: half the point blocks landed and were flushed through
    # the checkpoint cache before the run died.
    cache_dir = str(tmp_path / "cache-resume")
    Executor(cache_dir=cache_dir).evaluate_sweep(
        template, points[:half], observable, backend="statevector",
        policy=policy_for(tmp_path / "spool-resume"))

    resumed = Executor(cache_dir=cache_dir)
    start = time.perf_counter()
    resumed_values = resumed.evaluate_sweep(
        template, points, observable, backend="statevector",
        policy=policy_for(tmp_path / "spool-resume"))
    resumed_seconds = time.perf_counter() - start

    # The resumed run blocks its 12 uncached points differently than the
    # cold run blocks all 24, so equality is 1e-12, not bitwise.
    assert np.allclose(resumed_values, cold_values, atol=1e-12)
    # Zero recomputation of the flushed half.
    assert resumed.stats.backend_invocations.get("statevector", 0) \
        == len(points) - half
    _RECORD["warm_resume"] = {
        "qubits": QUBITS, "points": len(points),
        "checkpointed_points": half,
        "cold_seconds": cold_seconds,
        "resumed_seconds": resumed_seconds,
        "resumed_invocations": len(points) - half,
    }

    record = {"pr": 9,
              "benchmark": "filesystem shard broker + elastic workers"}
    record.update(_RECORD)
    # The committed BENCH_pr9.json is the PR's perf record; casual local
    # runs only fill it in when it is missing.
    if os.environ.get("REPRO_RECORD_BENCH") or not os.path.exists(BENCH_JSON):
        with open(BENCH_JSON, "w") as handle:
            json.dump(record, handle, indent=2, sort_keys=True)
            handle.write("\n")
