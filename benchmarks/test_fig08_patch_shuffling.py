"""Figure 8 — spacetime volume of patch shuffling vs the naive strategy.

Paper: for 20–76 qubit circuits, patch shuffling (2 magic-state patches,
re-injected while the other is consumed) achieves the lowest spacetime volume
and zero stalls, while the naive strategy's volume grows with the number of
pre-injected backup states b = 1…4.
"""


from repro.core import compare_strategies, naive_rotation_estimate, \
    shuffling_rotation_estimate

from conftest import print_table

QUBIT_SWEEP = tuple(range(20, 80, 4))
BACKUPS = (1, 2, 3, 4)


def compute_figure8():
    return compare_strategies(QUBIT_SWEEP, BACKUPS)


def test_fig08_patch_shuffling(benchmark):
    points = benchmark(compute_figure8)
    rows = []
    for point in points:
        row = [point.num_qubits, f"{point.shuffling_volume:.3e}"]
        row += [f"{point.naive_volumes[b]:.3e}" for b in BACKUPS]
        rows.append(row)
    print_table("Fig. 8: rotation-subsystem spacetime volume "
                "(physical-qubit cycles; paper ~1e5-2.5e6 over this sweep)",
                ["qubits", "shuffling"] + [f"naive b={b}" for b in BACKUPS], rows)
    # Shape: shuffling is always cheapest; naive grows with b; volumes grow
    # linearly with circuit width.
    for point in points:
        assert point.shuffling_volume < min(point.naive_volumes.values())
        naive = [point.naive_volumes[b] for b in BACKUPS]
        assert all(a < b for a, b in zip(naive, naive[1:]))
    assert points[-1].shuffling_volume > points[0].shuffling_volume
    # Stalls: shuffling has (essentially) none, naive(1) stalls the most.
    assert shuffling_rotation_estimate().expected_stall_cycles < \
        naive_rotation_estimate(1).expected_stall_cycles
