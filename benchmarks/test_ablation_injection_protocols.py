"""Ablation: extra post-selection / pre-distillation for Rz injection.

The paper's Sec. 2.6 defers the cost/benefit analysis of improving injected
Rz(θ) states ("post-selecting over multiple rounds or pre-distillation …
worthy of exploration in future work").  This bench performs that exploration:
per-state error, acceptance latency and the resulting circuit fidelity of a
24-qubit FCHE workload for each protocol variant.
"""


from repro.ansatz import FullyConnectedAnsatz
from repro.core import (CircuitProfile, PQECRegime, estimate_fidelity)
from repro.core.injection_protocols import (InjectionProtocol,
                                            ProtocolPQECRegime,
                                            compare_protocols)

from conftest import full_mode, print_table

NUM_QUBITS = 32 if full_mode() else 24


def _protocols():
    return [
        InjectionProtocol(),                                    # paper baseline
        InjectionProtocol(post_selection_rounds=3),
        InjectionProtocol(post_selection_rounds=4),
        InjectionProtocol(use_pre_distillation=True),
    ]


def test_ablation_injection_protocols(benchmark):
    """Careful injection buys rotation fidelity with injection latency; the
    baseline two-round protocol is the only one guaranteed to stay inside the
    patch-shuffling window (2d cycles) at the EFT operating point."""

    ansatz = FullyConnectedAnsatz(NUM_QUBITS, 1)
    profile = CircuitProfile.from_ansatz(ansatz)

    def compute():
        rows = []
        fidelities = []
        tradeoffs = compare_protocols(ansatz.rotation_count(), _protocols())
        for tradeoff in tradeoffs:
            protocol = tradeoff.protocol
            regime = ProtocolPQECRegime(protocol)
            fidelity = estimate_fidelity(profile, regime).fidelity
            fidelities.append(fidelity)
            rows.append([tradeoff.label,
                         f"{protocol.injected_state_error:.2e}",
                         f"{protocol.acceptance_probability:.3f}",
                         f"{protocol.cycles_per_accepted_state:.1f}",
                         "yes" if protocol.supports_stall_free_shuffling else "no",
                         f"{fidelity:.4f}"])
        return rows, fidelities

    rows, fidelities = benchmark.pedantic(compute, rounds=1, iterations=1)
    baseline_fidelity = estimate_fidelity(profile, PQECRegime()).fidelity
    print_table(f"Ablation: injection protocol variants on a {NUM_QUBITS}-qubit "
                f"FCHE workload (baseline pQEC fidelity {baseline_fidelity:.4f})",
                ["protocol", "state error", "acceptance", "cycles/state",
                 "fits 2d window", "circuit fidelity"], rows)
    # Error-reduction variants must not reduce the estimated circuit fidelity.
    assert all(fidelity >= baseline_fidelity - 1e-9 for fidelity in fidelities)
    # Pre-distillation gives the largest fidelity gain of the swept variants.
    assert fidelities[-1] == max(fidelities)
    # The paper's baseline is the only variant certain to avoid stalls.
    baseline = _protocols()[0]
    assert baseline.supports_stall_free_shuffling
