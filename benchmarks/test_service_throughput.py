"""PR-6 acceptance gate: job-server overhead and warm-path latency.

Three checks on the ``repro.service`` stack, recorded to
``BENCH_pr6.json``:

* **Socket round-trip overhead** — submitting N distinct sweep jobs over
  the unix socket (submit + wait + fetch each) must stay within a generous
  per-job overhead budget versus running the identical workloads directly
  on an in-process ``Executor``, and the values must match bitwise.
* **Warm-path latency** — resubmitting an identical job sequentially is
  served by the shared expectation cache (counter-proven per job row) and
  must be faster than the cold run.
* **Cross-client dedup** — concurrent identical submissions from several
  clients collapse to one engine execution (counter-proven via
  ``sampling_stats``).
"""

import json
import os
import tempfile
import threading
import time

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.parameters import Parameter
from repro.execution import Executor
from repro.operators.pauli import PauliSum
from repro.qec.sampling import reset_sampling_stats, sampling_stats
from repro.service import (ServiceClient, ServiceConfig, start_in_thread,
                           qec_memory_payload, sweep_payload)

from conftest import full_mode

JOBS = 24 if full_mode() else 12
POINTS = 8
SEED = 20250808
#: Per-job overhead budget for the socket path (wire + registry + queue).
OVERHEAD_BUDGET_SECONDS = 0.25
BENCH_JSON = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                          "BENCH_pr6.json")

_RECORD = {}


def _sweep_workloads():
    theta = Parameter("theta")
    template = QuantumCircuit(3)
    template.h(0)
    template.rz(theta, 0)
    template.cx(0, 1)
    template.cx(1, 2)
    observable = PauliSum.from_label_dict({"ZZI": 1.0, "IZZ": 1.0,
                                           "XII": 0.5})
    # Distinct point grids per job: no dedup, no cache sharing between jobs.
    workloads = []
    for job in range(JOBS):
        points = [[0.01 * job + 0.1 * k] for k in range(POINTS)]
        workloads.append((template, points, observable))
    return workloads


def _service(**overrides):
    tmp = tempfile.mkdtemp(dir="/tmp", prefix="rbench")
    defaults = dict(socket_path=os.path.join(tmp, "s.sock"),
                    db_path=os.path.join(tmp, "registry.db"), workers=2)
    defaults.update(overrides)
    return start_in_thread(ServiceConfig(**defaults))


def test_socket_round_trip_overhead(table_printer):
    """N sweep jobs over the socket vs the same workloads in-process."""
    workloads = _sweep_workloads()

    with Executor(use_cache=False) as executor:
        start = time.perf_counter()
        direct = [executor.evaluate_sweep(template, points, observable)
                  for template, points, observable in workloads]
        direct_seconds = time.perf_counter() - start

    handle = _service()
    try:
        with ServiceClient(handle.socket_path) as client:
            start = time.perf_counter()
            job_ids = [client.submit(
                "sweep", sweep_payload(template, points, observable)).job_id
                for template, points, observable in workloads]
            served = [client.fetch(job_id)["energies"]
                      for job_id in job_ids]
            service_seconds = time.perf_counter() - start
    finally:
        handle.stop()

    for via_service, via_executor in zip(served, direct):
        assert via_service == list(via_executor)  # bitwise, not approx

    per_job_overhead = (service_seconds - direct_seconds) / len(workloads)
    table_printer(
        "service vs in-process (sweep jobs)",
        ("path", "jobs", "seconds", "jobs/sec"),
        [("in-process", len(workloads), f"{direct_seconds:.3f}",
          f"{len(workloads) / direct_seconds:.1f}"),
         ("unix socket", len(workloads), f"{service_seconds:.3f}",
          f"{len(workloads) / service_seconds:.1f}")])
    _RECORD["socket_round_trip"] = {
        "jobs": len(workloads),
        "points_per_job": POINTS,
        "seconds": {"in_process": direct_seconds,
                    "service": service_seconds},
        "per_job_overhead_seconds": per_job_overhead,
        "budget_seconds": OVERHEAD_BUDGET_SECONDS,
    }
    assert per_job_overhead < OVERHEAD_BUDGET_SECONDS, (
        f"per-job service overhead {per_job_overhead:.3f}s exceeds the "
        f"{OVERHEAD_BUDGET_SECONDS}s budget")


def test_warm_cache_job_latency(table_printer):
    """An identical sequential resubmission rides the shared cache."""
    template, points, observable = _sweep_workloads()[0]
    payload = sweep_payload(template, points, observable)
    handle = _service()
    try:
        with ServiceClient(handle.socket_path) as client:
            start = time.perf_counter()
            cold_id = client.submit("sweep", payload).job_id
            cold = client.fetch(cold_id)
            cold_seconds = time.perf_counter() - start

            start = time.perf_counter()
            warm_id = client.submit("sweep", payload).job_id
            warm = client.fetch(warm_id)
            warm_seconds = time.perf_counter() - start

            assert warm == cold  # same bits off the shared cache
            cold_row = client.status(cold_id)
            warm_row = client.status(warm_id)
    finally:
        handle.stop()

    assert cold_row["cache_misses"] > 0
    assert warm_row["cache_hits"] > 0
    assert warm_row["cache_misses"] < cold_row["cache_misses"]
    table_printer(
        "warm-cache job latency",
        ("run", "seconds", "cache hits", "cache misses"),
        [("cold", f"{cold_seconds:.4f}", cold_row["cache_hits"],
          cold_row["cache_misses"]),
         ("warm", f"{warm_seconds:.4f}", warm_row["cache_hits"],
          warm_row["cache_misses"])])
    _RECORD["warm_cache_job"] = {
        "seconds": {"cold": cold_seconds, "warm": warm_seconds},
        "cold_row": {"hits": cold_row["cache_hits"],
                     "misses": cold_row["cache_misses"]},
        "warm_row": {"hits": warm_row["cache_hits"],
                     "misses": warm_row["cache_misses"]},
    }


def test_cross_client_dedup_scales(table_printer):
    """Concurrent identical seeded jobs from many clients run ONCE."""
    clients = 6 if full_mode() else 4
    shots = 16384
    payload = qec_memory_payload(distance=3, rounds=2, error_rate=0.02,
                                 shots=shots, seed=SEED, chunk_blocks=4)
    handle = _service(workers=2)
    results = [None] * clients
    try:
        reset_sampling_stats()
        barrier = threading.Barrier(clients)

        def submit_and_fetch(index):
            with ServiceClient(handle.socket_path) as client:
                barrier.wait()
                job_id = client.submit("qec_memory", payload).job_id
                results[index] = client.fetch(job_id)

        threads = [threading.Thread(target=submit_and_fetch, args=(i,))
                   for i in range(clients)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        stats = sampling_stats()
    finally:
        handle.stop()

    assert all(result is not None for result in results)
    assert all(result == results[0] for result in results)
    # One execution's worth of sampling served every client.  (The very
    # first submission may race ahead and finish before a straggler
    # submits, costing at most one extra cached-or-fresh run; typically
    # the counter shows exactly one.)
    assert stats.shots_sampled <= 2 * shots
    table_printer(
        "cross-client dedup",
        ("clients", "experiments run", "shots sampled", "shots requested"),
        [(clients, stats.experiments, stats.shots_sampled,
          clients * shots)])
    _RECORD["cross_client_dedup"] = {
        "clients": clients,
        "shots_per_request": shots,
        "experiments_run": stats.experiments,
        "shots_sampled": stats.shots_sampled,
    }

    record = {"pr": 6,
              "benchmark": "multi-tenant execution job server"}
    record.update(_RECORD)
    if os.environ.get("REPRO_RECORD_BENCH") or not os.path.exists(BENCH_JSON):
        with open(BENCH_JSON, "w") as handle_file:
            json.dump(record, handle_file, indent=2, sort_keys=True)
            handle_file.write("\n")
