"""Figure 5 — win percentage of pQEC over qec-conventional across device sizes.

Paper: heatmap over devices of 10k–60k physical qubits and programs of up to
~100 logical qubits (d = 11).  qec-conventional wins for small programs on
large devices (room for many high-quality factories); pQEC wins at the
frontier of device capability; white squares mark programs that do not fit.
"""


from repro.ansatz import FullyConnectedAnsatz, LinearAnsatz
from repro.core import (CircuitProfile, EFTDevice, PQECRegime,
                        QECConventionalRegime, device_size_sweep,
                        estimate_fidelity, win_fraction)
from repro.qec import PAPER_FIG4_FACTORIES, get_factory

from conftest import full_mode, print_table

PROGRAM_SIZES = (12, 20, 32, 40, 60, 80) if full_mode() else (12, 20, 32, 40)
DEVICE_SIZES = tuple(device_size_sweep()) if full_mode() else (10_000, 30_000, 60_000)


def _benchmark_profiles(num_qubits):
    """A small benchmark set per cell: two ansatz families × two depths."""
    profiles = []
    for depth in (1, 2):
        profiles.append(CircuitProfile.from_ansatz(
            FullyConnectedAnsatz(num_qubits, depth)))
        profiles.append(CircuitProfile.from_ansatz(
            LinearAnsatz(num_qubits, depth)))
    return profiles


def compute_win_matrix():
    matrix = {}
    for device_qubits in DEVICE_SIZES:
        device = EFTDevice(device_qubits)
        for num_qubits in PROGRAM_SIZES:
            if not device.fits_program(num_qubits):
                matrix[(device_qubits, num_qubits)] = None  # white square
                continue
            pqec_scores, conv_scores = [], []
            for profile in _benchmark_profiles(num_qubits):
                pqec_scores.append(
                    estimate_fidelity(profile, PQECRegime(), device).fidelity)
                best = 0.0
                for name in PAPER_FIG4_FACTORIES:
                    regime = QECConventionalRegime(factory=get_factory(name))
                    best = max(best,
                               estimate_fidelity(profile, regime, device).fidelity)
                conv_scores.append(best)
            matrix[(device_qubits, num_qubits)] = 100.0 * win_fraction(
                pqec_scores, conv_scores)
    return matrix


def test_fig05_win_percentage(benchmark):
    matrix = benchmark(compute_win_matrix)
    header = ["program \\ device"] + [f"{d // 1000}k" for d in DEVICE_SIZES]
    rows = []
    for num_qubits in PROGRAM_SIZES:
        row = [num_qubits]
        for device_qubits in DEVICE_SIZES:
            value = matrix[(device_qubits, num_qubits)]
            row.append("white" if value is None else f"{value:.0f}%")
        rows.append(row)
    print_table("Fig. 5: pQEC win % vs best-fitting factory "
                "(paper: conventional wins small programs on big devices; "
                "pQEC wins at the device frontier)", header, rows)
    smallest, largest = PROGRAM_SIZES[0], PROGRAM_SIZES[-1]
    small_device, big_device = DEVICE_SIZES[0], DEVICE_SIZES[-1]
    # Growing the device never helps pQEC for the smallest program...
    assert matrix[(big_device, smallest)] <= matrix[(small_device, smallest)]
    # ...and for each device the win % is non-decreasing in program size
    # (ignoring white squares).
    for device_qubits in DEVICE_SIZES:
        values = [matrix[(device_qubits, n)] for n in PROGRAM_SIZES
                  if matrix[(device_qubits, n)] is not None]
        assert all(a <= b + 1e-9 for a, b in zip(values, values[1:]))
