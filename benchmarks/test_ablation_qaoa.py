"""Ablation: the Sec. 4.4 design rule applied to QAOA (beyond-VQE workloads).

The paper's CNOT-to-Rz ratio rule predicts which workloads benefit from pQEC.
QAOA's ratio is set by the problem graph's edge density, so sweeping graph
families at fixed size exercises the rule on a workload the paper only
mentions in passing: sparse rings stay rotation-dominated, dense graphs become
CNOT-dominated and favour pQEC, mirroring the paper's linear-vs-FCHE contrast.
"""


from repro.algorithms import QAOA, QAOAAnsatz
from repro.core import CircuitProfile, NISQRegime, PQECRegime, estimate_fidelity
from repro.operators.graphs import (complete_graph, maxcut_cost_hamiltonian,
                                    random_regular_graph, ring_graph)
from repro.vqe import CobylaOptimizer

from conftest import full_mode, print_table

NUM_NODES = 12 if full_mode() else 8
DEPTH = 2


def _families():
    return {
        "ring": ring_graph(NUM_NODES),
        "regular3": random_regular_graph(NUM_NODES, 3, seed=13),
        "complete": complete_graph(NUM_NODES),
    }


def test_ablation_qaoa_ratio_rule(benchmark):
    """Fidelity advantage of pQEC over NISQ grows with the graph's density."""

    def compute():
        rows = []
        advantages = []
        for name, graph in _families().items():
            ansatz = QAOAAnsatz(maxcut_cost_hamiltonian(graph), DEPTH)
            profile = CircuitProfile(
                num_qubits=ansatz.num_qubits,
                cnot_count=ansatz.cnot_count(),
                rotation_count=ansatz.rotation_count(),
                single_qubit_clifford_count=ansatz.num_qubits,
                measurement_count=ansatz.num_qubits,
                execution_cycles=float(4 * len(ansatz.zz_terms) * DEPTH + 8 * DEPTH))
            pqec = estimate_fidelity(profile, PQECRegime()).fidelity
            nisq = estimate_fidelity(profile, NISQRegime()).fidelity
            ratio = ansatz.cnot_count() / max(1, 2 * ansatz.rotation_count())
            advantages.append(pqec / max(nisq, 1e-12))
            rows.append([name, ansatz.cnot_count(), ansatz.rotation_count(),
                         f"{ratio:.2f}", f"{pqec:.4f}", f"{nisq:.4f}",
                         f"{pqec / max(nisq, 1e-12):.2f}x"])
        return rows, advantages

    rows, advantages = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table("Ablation: Sec. 4.4 ratio rule on QAOA graph families "
                f"({NUM_NODES} nodes, depth {DEPTH})",
                ["graph", "CNOTs", "Rz", "CNOT:runtime-Rz", "F(pQEC)",
                 "F(NISQ)", "advantage"], rows)
    # Density ordering ring < regular3 < complete must be reflected in the
    # pQEC advantage ordering.
    assert advantages[0] <= advantages[1] <= advantages[2]


def test_ablation_qaoa_end_to_end_quality(benchmark):
    """Noiseless QAOA on a ring reaches a near-optimal cut — the workload the
    regime comparison above is priced for is actually solvable."""

    def compute():
        graph = ring_graph(NUM_NODES)
        qaoa = QAOA(graph, depth=DEPTH,
                    optimizer=CobylaOptimizer(max_iterations=150))
        return qaoa.run(seed=3)

    result = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table("Ablation: QAOA solution quality (noiseless reference)",
                ["best cut", "optimal cut", "approximation ratio"],
                [[f"{result.best_cut:.0f}", f"{result.optimal_cut:.0f}",
                  f"{result.approximation_ratio:.2%}"]])
    assert result.approximation_ratio >= 0.6
