"""Figure 13 — γ(pQEC/NISQ) from noisy density-matrix simulation.

Paper: 8- and 12-qubit Ising, Heisenberg, H2O, H6 and LiH Hamiltonians,
depth-1 FCHE, COBYLA/ImFil optimizers, exact ground-state reference; pQEC
consistently beats NISQ (Ising avg 3.45x, Heisenberg avg 3.0x, H2O avg 19.5x,
H6 avg 2.7x, LiH avg 1.6x).

The default run uses 8-qubit instances (including reduced-term synthetic
molecules) so the exact density-matrix flow stays laptop-fast; REPRO_FULL=1
runs the 12-qubit physics models as well.
"""


from repro.ansatz import FullyConnectedAnsatz
from repro.core import NISQRegime, PQECRegime, summarize_gammas
from repro.operators import (heisenberg_hamiltonian, ising_hamiltonian,
                             molecular_hamiltonian)
from repro.vqe import CobylaOptimizer, compare_regimes_opr

from conftest import full_mode, print_table

NUM_QUBITS = 8
MAX_ITERATIONS = 400 if full_mode() else 200


def benchmark_hamiltonians():
    instances = {
        "ising_J1": ising_hamiltonian(NUM_QUBITS, 1.0),
        "heisenberg_J0.5": heisenberg_hamiltonian(NUM_QUBITS, 0.5),
        "H2O_l1": molecular_hamiltonian("H2O", 1.0, num_qubits=NUM_QUBITS,
                                        num_terms=60),
        "LiH_l1": molecular_hamiltonian("LiH", 1.0, num_qubits=NUM_QUBITS,
                                        num_terms=50),
    }
    if full_mode():
        instances["ising12_J1"] = ising_hamiltonian(12, 1.0)
        instances["heisenberg12_J1"] = heisenberg_hamiltonian(12, 1.0)
    return instances


def compute_figure13():
    rows = []
    comparisons = []
    for name, hamiltonian in benchmark_hamiltonians().items():
        ansatz = FullyConnectedAnsatz(hamiltonian.num_qubits, 1)
        reference = hamiltonian.ground_state_energy()
        # Optimal Parameter Resilience flow (Sec. 2.1): optimize noiselessly
        # starting from the CAFQA bootstrap, then evaluate the optimum under
        # both regimes' noise models.  This is the converged-parameters
        # comparison Fig. 13 reports, without the prohibitive cost of running
        # a full optimization inside the noisy density-matrix simulation.
        outcome = compare_regimes_opr(
            hamiltonian, ansatz, PQECRegime(), NISQRegime(), reference,
            optimizer=CobylaOptimizer(max_iterations=MAX_ITERATIONS),
            benchmark_name=name, seed=11)
        comparison = outcome["comparison"]
        comparisons.append(comparison)
        rows.append([name, hamiltonian.num_qubits, f"{reference:.4f}",
                     f"{comparison.energy_a:.4f}", f"{comparison.energy_b:.4f}",
                     f"{comparison.gamma:.2f}x"])
    return rows, comparisons


def test_fig13_density_matrix(benchmark):
    rows, comparisons = benchmark.pedantic(compute_figure13, rounds=1, iterations=1)
    print_table("Fig. 13: gamma(pQEC/NISQ), noisy density-matrix VQE "
                "(paper: >=1 on every benchmark, 1.6x-39x)",
                ["benchmark", "qubits", "E0", "E(pQEC)", "E(NISQ)", "gamma"], rows)
    summary = summarize_gammas(comparisons)
    print(f"mean gamma = {summary['mean']:.2f}, max = {summary['max']:.2f}")
    assert summary["min"] >= 0.95  # pQEC never loses meaningfully
    assert summary["mean"] > 1.1
