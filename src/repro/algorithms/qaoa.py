"""The Quantum Approximate Optimization Algorithm (QAOA).

QAOA alternates a *cost* unitary ``exp(−iγ H_C)`` (built from the diagonal
MaxCut Hamiltonian) with a transverse-field *mixer* ``exp(−iβ Σ X_i)``.  Its
gate profile — two CNOTs plus one Rz per cost term, one Rx per qubit for the
mixer — makes it a natural subject for the paper's Rz-to-CNOT-ratio design
rule (Sec. 4.4): dense graphs give CNOT-heavy circuits that favour pQEC,
sparse rings do not.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from ..ansatz.base import Ansatz, MacroOp
from ..circuits.circuit import QuantumCircuit
from ..circuits.parameters import ParameterVector
from ..operators.graphs import cut_value, exact_maxcut, maxcut_cost_hamiltonian
from ..operators.pauli import PauliSum
from ..simulators.noise import NoiseModel
from ..simulators.statevector import StatevectorSimulator
from ..vqe.energy import BackendEnergyEvaluator, EnergyEvaluator
from ..vqe.optimizers import CobylaOptimizer, OptimizationResult, Optimizer


def _split_diagonal_hamiltonian(hamiltonian: PauliSum
                                ) -> Tuple[List[Tuple[int, int, float]],
                                           List[Tuple[int, float]], float]:
    """Split a diagonal Hamiltonian into ZZ terms, Z terms and the constant."""
    zz_terms: List[Tuple[int, int, float]] = []
    z_terms: List[Tuple[int, float]] = []
    constant = 0.0
    for pauli, coeff in hamiltonian.terms():
        coefficient = float(coeff.real)
        support = pauli.support()
        labels = [pauli.pauli_on(q) for q in support]
        if any(label not in ("Z",) for label in labels):
            raise ValueError("QAOA cost Hamiltonians must be diagonal "
                             f"(Z/ZZ terms only); found {pauli.label}")
        if len(support) == 0:
            constant += coefficient
        elif len(support) == 1:
            z_terms.append((support[0], coefficient))
        elif len(support) == 2:
            zz_terms.append((support[0], support[1], coefficient))
        else:
            raise ValueError("QAOA cost Hamiltonians with >2-body terms are "
                             "not supported")
    return zz_terms, z_terms, constant


class QAOAAnsatz(Ansatz):
    """The depth-``p`` QAOA circuit for a diagonal cost Hamiltonian.

    Parameters are ordered ``(γ_1, β_1, …, γ_p, β_p)``.  The macro schedule
    exposes each two-qubit cost term as a CNOT cluster and each mixer layer as
    a rotation layer, so the lattice-surgery scheduler and the Sec. 4.4 ratio
    analysis apply unchanged.
    """

    def __init__(self, cost_hamiltonian: PauliSum, depth: int = 1,
                 name: str = "qaoa"):
        super().__init__(cost_hamiltonian.num_qubits, depth, name)
        self.cost_hamiltonian = cost_hamiltonian
        self._zz_terms, self._z_terms, self._constant = \
            _split_diagonal_hamiltonian(cost_hamiltonian)

    # -- structure -------------------------------------------------------------
    @property
    def zz_terms(self) -> List[Tuple[int, int, float]]:
        return list(self._zz_terms)

    @property
    def z_terms(self) -> List[Tuple[int, float]]:
        return list(self._z_terms)

    def entangling_clusters(self) -> List[Tuple[int, Tuple[int, ...]]]:
        return [(i, (j,)) for i, j, _ in self._zz_terms]

    def num_parameters(self) -> int:
        return 2 * self.depth

    def cnot_count(self) -> int:
        return 2 * len(self._zz_terms) * self.depth

    def rotation_count(self) -> int:
        """Logical rotations per execution: one Rz per cost term + N mixer Rx."""
        per_layer = len(self._zz_terms) + len(self._z_terms) + self.num_qubits
        return per_layer * self.depth

    def macro_schedule(self, include_measurement: bool = True) -> List[MacroOp]:
        schedule: List[MacroOp] = []
        for _ in range(self.depth):
            for control, targets in self.entangling_clusters():
                schedule.append(MacroOp("cnot_cluster", control=control,
                                        targets=targets))
            schedule.append(MacroOp("rotation_layer",
                                    qubits=tuple(range(self.num_qubits))))
        if include_measurement:
            schedule.append(MacroOp("measure_layer",
                                    qubits=tuple(range(self.num_qubits))))
        return schedule

    # -- circuit ---------------------------------------------------------------
    def build(self, parameter_prefix: str = "theta",
              include_measurement: bool = False) -> QuantumCircuit:
        circuit = QuantumCircuit(self.num_qubits, name=self.name)
        parameters = ParameterVector(parameter_prefix, self.num_parameters())
        for qubit in range(self.num_qubits):
            circuit.h(qubit)
        for layer in range(self.depth):
            gamma = parameters[2 * layer]
            beta = parameters[2 * layer + 1]
            for i, j, coefficient in self._zz_terms:
                circuit.cx(i, j)
                circuit.rz(2.0 * coefficient * gamma, j)
                circuit.cx(i, j)
            for qubit, coefficient in self._z_terms:
                circuit.rz(2.0 * coefficient * gamma, qubit)
            for qubit in range(self.num_qubits):
                circuit.rx(2.0 * beta, qubit)
        if include_measurement:
            circuit.measure_all()
        circuit.metadata["ansatz"] = self.name
        circuit.metadata["depth"] = self.depth
        return circuit


@dataclass
class QAOAResult:
    """Outcome of a QAOA optimization run."""

    best_energy: float
    best_parameters: np.ndarray
    best_bitstring: Tuple[int, ...]
    best_cut: float
    optimal_cut: Optional[float]
    num_evaluations: int
    history: List[float] = field(default_factory=list)

    @property
    def approximation_ratio(self) -> Optional[float]:
        if self.optimal_cut in (None, 0):
            return None
        return self.best_cut / self.optimal_cut


class QAOA:
    """End-to-end QAOA for MaxCut on a networkx graph.

    Energy evaluations dispatch through the unified execution API: pass
    ``backend``/``noise_model`` to pick an execution path (``"auto"`` routes
    per circuit), or supply a fully custom ``evaluator`` (which wins over
    ``backend``).  The default evaluators ride the grouped-observable
    engine, so each optimizer query evolves the QAOA circuit once and reads
    every cost-Hamiltonian term (one per graph edge) off the final state.

    Example::

        import networkx as nx
        qaoa = QAOA(nx.cycle_graph(6), depth=1)
        result = qaoa.run(seed=7)
        print(result.best_cut, result.approximation_ratio)
    """

    def __init__(self, graph: nx.Graph, depth: int = 1,
                 evaluator: Optional[EnergyEvaluator] = None,
                 optimizer: Optional[Optimizer] = None,
                 compute_optimal_cut: bool = True,
                 backend: Optional[str] = None,
                 noise_model: Optional[NoiseModel] = None):
        self.graph = graph
        self.hamiltonian = maxcut_cost_hamiltonian(graph)
        self.ansatz = QAOAAnsatz(self.hamiltonian, depth)
        if evaluator is None:
            if backend is not None or noise_model is not None:
                evaluator = BackendEnergyEvaluator(
                    self.hamiltonian, backend=backend or "auto",
                    noise_model=noise_model)
            else:
                evaluator = BackendEnergyEvaluator.exact(self.hamiltonian)
        self.evaluator = evaluator
        self.optimizer = optimizer or CobylaOptimizer()
        self.optimal_cut: Optional[float] = None
        if compute_optimal_cut and graph.number_of_nodes() <= 18:
            self.optimal_cut = exact_maxcut(graph)[0]
        self._template = self.ansatz.build()
        self._sampler = StatevectorSimulator()

    # -- objective ---------------------------------------------------------------
    def energy(self, parameters: Sequence[float]) -> float:
        circuit = self._template.bind_parameters(list(parameters))
        return self.evaluator(circuit)

    def initial_parameters(self, seed: Optional[int] = None) -> np.ndarray:
        """Linear-ramp initialization, the standard QAOA warm start."""
        rng = np.random.default_rng(seed)
        depth = self.ansatz.depth
        gammas = np.linspace(0.1, 0.8, depth)
        betas = np.linspace(0.8, 0.1, depth)
        parameters = np.empty(2 * depth)
        parameters[0::2] = gammas + 0.02 * rng.standard_normal(depth)
        parameters[1::2] = betas + 0.02 * rng.standard_normal(depth)
        return parameters

    def most_probable_bitstring(self, parameters: Sequence[float]
                                ) -> Tuple[int, ...]:
        """The computational basis state with the highest probability."""
        circuit = self._template.bind_parameters(list(parameters))
        state = self._sampler.run(circuit)
        probabilities = state.probabilities()
        index = int(np.argmax(probabilities))
        bits = [(index >> qubit) & 1 for qubit in range(self.ansatz.num_qubits)]
        return tuple(bits)

    # -- execution -----------------------------------------------------------------
    def run(self, initial_parameters: Optional[Sequence[float]] = None,
            seed: Optional[int] = None) -> QAOAResult:
        start = (np.asarray(initial_parameters, dtype=float)
                 if initial_parameters is not None
                 else self.initial_parameters(seed))
        result: OptimizationResult = self.optimizer.minimize(self.energy, start)
        bitstring = self.most_probable_bitstring(result.best_parameters)
        best_cut = cut_value(self.graph, bitstring)
        return QAOAResult(best_energy=result.best_value,
                          best_parameters=result.best_parameters,
                          best_bitstring=bitstring,
                          best_cut=best_cut,
                          optimal_cut=self.optimal_cut,
                          num_evaluations=result.num_evaluations,
                          history=result.history)
