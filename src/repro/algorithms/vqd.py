"""Variational Quantum Deflation (VQD) for excited states.

VQD extends VQE to the ``k`` lowest eigenstates: level ``j`` minimizes

    E_j(θ) = ⟨ψ(θ)|H|ψ(θ)⟩ + Σ_{i<j} β_i · |⟨ψ(θ)|ψ_i⟩|²

where the overlap penalties push the optimizer out of the subspace spanned by
the previously found states.  Excited states are a standard follow-on workload
for the paper's physics Hamiltonians (spectral gaps of the Ising / Heisenberg
chains), and every component — ansatz, optimizer, noise regime — is shared
with the VQE stack.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..ansatz.base import Ansatz
from ..execution.executor import evaluate_sweep
from ..operators.pauli import PauliSum
from ..simulators.statevector import StatevectorSimulator
from ..vqe.optimizers import CobylaOptimizer, Optimizer


@dataclass
class VQDResult:
    """Energies and parameters of the ``k`` lowest variational states."""

    energies: List[float]
    parameters: List[np.ndarray]
    reference_energies: Optional[List[float]]
    num_evaluations: int
    history: List[List[float]] = field(default_factory=list)

    @property
    def num_states(self) -> int:
        return len(self.energies)

    @property
    def gaps(self) -> List[float]:
        """Excitation energies relative to the variational ground state."""
        if not self.energies:
            return []
        return [energy - self.energies[0] for energy in self.energies]

    def errors(self) -> Optional[List[float]]:
        """Per-level absolute error against the reference spectrum."""
        if self.reference_energies is None:
            return None
        return [abs(energy - reference) for energy, reference
                in zip(self.energies, self.reference_energies)]


class VQD:
    """Variational Quantum Deflation over a shared ansatz.

    Finds the ``num_states`` lowest eigenstates by optimizing each level's
    energy plus overlap penalties against the previously converged states
    (see the module docstring for the objective).  Converged levels can be
    re-scored under any noise regime through :meth:`evaluate_levels`, which
    batches one grouped-observable evaluation per level.  Example::

        vqd = VQD(heisenberg_hamiltonian(4), LinearAnsatz(4, depth=2),
                  num_states=3)
        result = vqd.run(seed=7)
        print(result.gaps, result.errors())
    """

    def __init__(self, hamiltonian: PauliSum, ansatz: Ansatz,
                 num_states: int = 2,
                 penalty_weight: Optional[float] = None,
                 optimizer_factory=None,
                 compute_reference: bool = True):
        if num_states < 1:
            raise ValueError("num_states must be at least 1")
        if hamiltonian.num_qubits != ansatz.num_qubits:
            raise ValueError("Hamiltonian and ansatz qubit counts differ")
        self.hamiltonian = hamiltonian
        self.ansatz = ansatz
        self.num_states = int(num_states)
        # A penalty larger than the spectral range guarantees deflation
        # pushes later levels above earlier ones.
        self.penalty_weight = (penalty_weight if penalty_weight is not None
                               else 4.0 * hamiltonian.one_norm())
        self._optimizer_factory = optimizer_factory or (
            lambda: CobylaOptimizer(max_iterations=250))
        self._template = ansatz.build()
        self._simulator = StatevectorSimulator()
        self.reference_energies: Optional[List[float]] = None
        if compute_reference and hamiltonian.num_qubits <= 10:
            matrix = hamiltonian.to_matrix()
            eigenvalues = np.sort(np.linalg.eigvalsh(matrix))
            self.reference_energies = [float(value)
                                       for value in eigenvalues[:num_states]]

    # -- internals ---------------------------------------------------------------
    def _state(self, parameters: Sequence[float]):
        circuit = self._template.bind_parameters(list(parameters))
        return self._simulator.run(circuit)

    def _objective(self, parameters: Sequence[float],
                   lower_states: List) -> float:
        state = self._state(parameters)
        energy = state.expectation(self.hamiltonian)
        penalty = sum(self.penalty_weight * state.fidelity(lower)
                      for lower in lower_states)
        return energy + penalty

    # -- execution -----------------------------------------------------------------
    def run(self, seed: Optional[int] = None,
            initial_scale: float = 0.1) -> VQDResult:
        rng = np.random.default_rng(seed)
        parameters: List[np.ndarray] = []
        histories: List[List[float]] = []
        lower_states: List = []
        total_evaluations = 0
        for level in range(self.num_states):
            optimizer: Optimizer = self._optimizer_factory()
            start = initial_scale * rng.standard_normal(
                self.ansatz.num_parameters())

            def objective(theta, _lower=tuple(lower_states)):
                return self._objective(theta, list(_lower))

            result = optimizer.minimize(objective, start)
            best_state = self._state(result.best_parameters)
            parameters.append(np.asarray(result.best_parameters, dtype=float))
            histories.append(result.history)
            lower_states.append(best_state)
            total_evaluations += result.num_evaluations
        energies = [float(state.expectation(self.hamiltonian))
                    for state in lower_states]
        return VQDResult(energies=energies, parameters=parameters,
                         reference_energies=self.reference_energies,
                         num_evaluations=total_evaluations,
                         history=histories)

    def evaluate_levels(self, result: VQDResult, noise_model=None,
                        backend: str = "auto",
                        parallel: Optional[str] = None,
                        max_workers: Optional[int] = None) -> List[float]:
        """Re-evaluate the converged levels through the unified execution API.

        One batched :func:`repro.execution.evaluate_sweep` call over the
        winning parameter vectors — under a regime's noise model and/or on a
        different backend — which is how the spectral gaps are compared
        across execution regimes without re-running the optimization.  The
        shared ansatz template is compiled once; noiseless statevector
        re-scoring executes all levels as one stacked batch, noisy regimes
        fall back to one grouped-observable batch (one evolution per level).
        ``parallel="process"`` shards big re-scoring batches across worker
        processes with identical results.
        """
        parameter_sets = [list(theta) for theta in result.parameters]
        return evaluate_sweep(self._template, parameter_sets,
                              self.hamiltonian, noise_model=noise_model,
                              backend=backend, parallel=parallel,
                              max_workers=max_workers)
