"""Variational algorithms beyond ground-state VQE.

The paper focuses on VQE but states (Sec. 2.1) that its EFT-VQA analysis
"extends to other VQAs like QAOA and QML".  This package provides those
extensions on top of the same regime / evaluator / optimizer infrastructure,
so the pQEC-versus-NISQ comparison can be reproduced for combinatorial
optimization and classification workloads as well:

* :mod:`repro.algorithms.qaoa` — the Quantum Approximate Optimization
  Algorithm on MaxCut instances (:mod:`repro.operators.graphs`);
* :mod:`repro.algorithms.vqd` — Variational Quantum Deflation for excited
  states (an optional-extension workload sharing the VQE machinery);
* :mod:`repro.algorithms.qml` — a variational quantum classifier with angle
  encoding trained on synthetic datasets.
"""

from .qaoa import QAOA, QAOAAnsatz, QAOAResult
from .qml import (ClassificationDataset, VariationalClassifier,
                  make_blobs_dataset, make_circles_dataset)
from .vqd import VQD, VQDResult

__all__ = [
    "ClassificationDataset",
    "QAOA",
    "QAOAAnsatz",
    "QAOAResult",
    "VQD",
    "VQDResult",
    "VariationalClassifier",
    "make_blobs_dataset",
    "make_circles_dataset",
]
