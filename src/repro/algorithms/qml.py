"""A variational quantum classifier (QML workload).

Quantum machine learning is the third VQA family the paper names as a
beneficiary of EFT execution.  The classifier here is the standard
angle-encoding construction: a feature map loads a classical feature vector
into rotation angles, a hardware-efficient variational block follows, and the
prediction is the sign of ``⟨Z_0⟩``.  Training minimizes a squared-margin
loss with any of the repository's optimizers; evaluation can run on the exact
statevector backend or under a regime's noise model via the density-matrix
evaluator (how the pQEC-versus-NISQ comparison is made for QML).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..circuits.parameters import ParameterVector
from ..execution.executor import evaluate_sweep
from ..operators.pauli import PauliString, PauliSum
from ..simulators.noise import NoiseModel
from ..vqe.optimizers import Optimizer, SPSAOptimizer


@dataclass(frozen=True)
class ClassificationDataset:
    """Feature matrix, ±1 labels and a human-readable name."""

    name: str
    features: np.ndarray
    labels: np.ndarray

    def __post_init__(self):
        if self.features.ndim != 2:
            raise ValueError("features must be a 2-D array")
        if len(self.features) != len(self.labels):
            raise ValueError("features and labels must have the same length")
        if not set(np.unique(self.labels)) <= {-1, 1}:
            raise ValueError("labels must be ±1")

    @property
    def num_samples(self) -> int:
        return len(self.labels)

    @property
    def num_features(self) -> int:
        return self.features.shape[1]

    def split(self, train_fraction: float = 0.7,
              seed: int = 0) -> Tuple["ClassificationDataset", "ClassificationDataset"]:
        """Deterministic shuffled train/test split."""
        if not 0.0 < train_fraction < 1.0:
            raise ValueError("train_fraction must be in (0, 1)")
        rng = np.random.default_rng(seed)
        order = rng.permutation(self.num_samples)
        cut = max(1, int(round(train_fraction * self.num_samples)))
        train_idx, test_idx = order[:cut], order[cut:]
        return (ClassificationDataset(f"{self.name}-train",
                                      self.features[train_idx],
                                      self.labels[train_idx]),
                ClassificationDataset(f"{self.name}-test",
                                      self.features[test_idx],
                                      self.labels[test_idx]))


def make_blobs_dataset(num_samples: int = 40, num_features: int = 2,
                       separation: float = 1.6,
                       seed: int = 7) -> ClassificationDataset:
    """Two Gaussian blobs, linearly separable for ``separation`` ≳ 1.5."""
    if num_samples < 4:
        raise ValueError("need at least 4 samples")
    rng = np.random.default_rng(seed)
    per_class = num_samples // 2
    center = separation * np.ones(num_features) / math.sqrt(num_features)
    positive = rng.normal(loc=center, scale=0.4, size=(per_class, num_features))
    negative = rng.normal(loc=-center, scale=0.4,
                          size=(num_samples - per_class, num_features))
    features = np.vstack([positive, negative])
    labels = np.concatenate([np.ones(per_class),
                             -np.ones(num_samples - per_class)])
    return ClassificationDataset("blobs", features, labels.astype(int))


def make_circles_dataset(num_samples: int = 40, noise: float = 0.05,
                         seed: int = 7) -> ClassificationDataset:
    """Concentric circles — not linearly separable in the raw features."""
    if num_samples < 4:
        raise ValueError("need at least 4 samples")
    rng = np.random.default_rng(seed)
    per_class = num_samples // 2
    angles_inner = rng.uniform(0, 2 * math.pi, per_class)
    angles_outer = rng.uniform(0, 2 * math.pi, num_samples - per_class)
    inner = 0.5 * np.column_stack([np.cos(angles_inner), np.sin(angles_inner)])
    outer = 1.3 * np.column_stack([np.cos(angles_outer), np.sin(angles_outer)])
    features = np.vstack([inner, outer])
    features += noise * rng.standard_normal(features.shape)
    labels = np.concatenate([np.ones(per_class),
                             -np.ones(num_samples - per_class)])
    return ClassificationDataset("circles", features, labels.astype(int))


class VariationalClassifier:
    """Angle-encoding variational classifier with a ⟨Z_0⟩ readout.

    A feature map loads each sample into rotation angles, a
    hardware-efficient variational block follows, and the prediction is the
    sign of ⟨Z_0⟩.  Batch inference and the training loss submit all sample
    circuits through one grouped :func:`repro.execution.evaluate_observable`
    call (noisy inference on the density-matrix backend, noiseless on the
    statevector backend).  Example::

        dataset = make_blobs_dataset(num_samples=24)
        classifier = VariationalClassifier(num_qubits=4, num_layers=2)
        classifier.fit(dataset)
        print(classifier.accuracy(dataset))
    """

    def __init__(self, num_qubits: int, num_layers: int = 2,
                 feature_repetitions: int = 1,
                 noise_model: Optional[NoiseModel] = None,
                 parallel: Optional[str] = None,
                 max_workers: Optional[int] = None):
        if num_qubits < 2:
            raise ValueError("the classifier needs at least two qubits")
        if num_layers < 1:
            raise ValueError("num_layers must be at least 1")
        self.num_qubits = int(num_qubits)
        self.num_layers = int(num_layers)
        self.feature_repetitions = int(feature_repetitions)
        self.noise_model = noise_model
        # Fan-out policy for batch inference/training sweeps (None defers
        # to the executor's ShardPlanner; "process" shards big batches
        # across worker processes with identical scores).
        self.parallel = parallel
        self.max_workers = max_workers
        # Noisy inference runs on the density-matrix backend, noiseless on
        # the statevector backend — both through the unified execute() API.
        self._backend = ("density_matrix" if noise_model is not None
                         else "statevector")
        self._observable = PauliSum(self.num_qubits)
        self._observable.add_term(PauliString.single(self.num_qubits, 0, "Z"), 1.0)
        self.parameters = np.zeros(self.num_parameters())
        self.loss_history: List[float] = []
        # One parametric template covers every sample: feature angles and
        # variational weights are free parameters, so batch inference
        # compiles the circuit once and only rebinds rotation matrices.
        self._feature_params = ParameterVector("x", self.num_qubits)
        self._weight_params = ParameterVector("w", self.num_parameters())
        self._template = self._build_template()
        self._template_order = self._template.ordered_parameters()

    # -- circuit construction -----------------------------------------------------
    def num_parameters(self) -> int:
        """Two rotation angles per qubit per variational layer."""
        return 2 * self.num_qubits * self.num_layers

    def feature_map(self, features: Sequence[float]) -> QuantumCircuit:
        """Angle encoding: Ry(x_i) per qubit + a CNOT ring, repeated."""
        circuit = QuantumCircuit(self.num_qubits, name="feature_map")
        padded = list(features) + [0.0] * (self.num_qubits - len(list(features)))
        for _ in range(self.feature_repetitions):
            for qubit in range(self.num_qubits):
                circuit.ry(float(padded[qubit % len(padded)]), qubit)
            for qubit in range(self.num_qubits):
                circuit.cx(qubit, (qubit + 1) % self.num_qubits)
        return circuit

    def variational_block(self, parameters: Sequence[float]) -> QuantumCircuit:
        """Hardware-efficient Ry·Rz layers with a linear CNOT ladder."""
        expected = self.num_parameters()
        parameters = np.asarray(parameters, dtype=float)
        if parameters.size != expected:
            raise ValueError(f"expected {expected} parameters, got {parameters.size}")
        circuit = QuantumCircuit(self.num_qubits, name="variational_block")
        index = 0
        for _ in range(self.num_layers):
            for qubit in range(self.num_qubits):
                circuit.ry(float(parameters[index]), qubit)
                index += 1
                circuit.rz(float(parameters[index]), qubit)
                index += 1
            for qubit in range(self.num_qubits - 1):
                circuit.cx(qubit, qubit + 1)
        return circuit

    def model_circuit(self, features: Sequence[float],
                      parameters: Optional[Sequence[float]] = None) -> QuantumCircuit:
        parameters = self.parameters if parameters is None else parameters
        circuit = self.feature_map(features)
        return circuit.compose(self.variational_block(parameters))

    def _build_template(self) -> QuantumCircuit:
        """The symbolic model circuit: feature map + variational block."""
        circuit = QuantumCircuit(self.num_qubits, name="classifier_model")
        for _ in range(self.feature_repetitions):
            for qubit in range(self.num_qubits):
                circuit.ry(self._feature_params[qubit], qubit)
            for qubit in range(self.num_qubits):
                circuit.cx(qubit, (qubit + 1) % self.num_qubits)
        index = 0
        for _ in range(self.num_layers):
            for qubit in range(self.num_qubits):
                circuit.ry(self._weight_params[index], qubit)
                index += 1
                circuit.rz(self._weight_params[index], qubit)
                index += 1
            for qubit in range(self.num_qubits - 1):
                circuit.cx(qubit, qubit + 1)
        return circuit

    def _sweep_point(self, features: Sequence[float],
                     parameters: np.ndarray) -> List[float]:
        """One sample's parameter vector for the model template."""
        features = [float(value) for value in features]
        bindings = {}
        for qubit in range(self.num_qubits):
            # Mirrors feature_map's padding: missing features encode as 0.
            bindings[self._feature_params[qubit]] = (
                features[qubit] if qubit < len(features) else 0.0)
        for index, parameter in enumerate(self._weight_params):
            bindings[parameter] = float(parameters[index])
        return [bindings[parameter] for parameter in self._template_order]

    # -- inference ---------------------------------------------------------------
    def decision_function(self, features: Sequence[float],
                          parameters: Optional[Sequence[float]] = None) -> float:
        """⟨Z_0⟩ ∈ [−1, 1]; its sign is the predicted class."""
        return float(self.decision_scores([features], parameters)[0])

    def decision_scores(self, features_batch: Sequence[Sequence[float]],
                        parameters: Optional[Sequence[float]] = None
                        ) -> np.ndarray:
        """⟨Z_0⟩ for a whole batch, as one batched parameter sweep.

        Every sample is a parameter vector (feature angles + shared weights)
        over the one compiled model template, so the whole batch goes through
        :func:`repro.execution.evaluate_sweep`: noiseless inference executes
        as a single stacked statevector pass, noisy inference falls back to
        one grouped density-matrix batch; duplicates within the batch
        collapse, and repeated samples across optimizer iterations hit the
        per-(circuit, term) cache.
        """
        parameters = (self.parameters if parameters is None
                      else np.asarray(parameters, dtype=float))
        if parameters.size != self.num_parameters():
            raise ValueError(f"expected {self.num_parameters()} parameters, "
                             f"got {parameters.size}")
        points = [self._sweep_point(sample, parameters)
                  for sample in features_batch]
        return np.asarray(evaluate_sweep(self._template, points,
                                         self._observable,
                                         noise_model=self.noise_model,
                                         backend=self._backend,
                                         parallel=self.parallel,
                                         max_workers=self.max_workers))

    def predict(self, features_batch: Sequence[Sequence[float]],
                parameters: Optional[Sequence[float]] = None) -> np.ndarray:
        scores = self.decision_scores(features_batch, parameters)
        return np.where(scores >= 0.0, 1, -1)

    def accuracy(self, dataset: ClassificationDataset,
                 parameters: Optional[Sequence[float]] = None) -> float:
        predictions = self.predict(dataset.features, parameters)
        return float(np.mean(predictions == dataset.labels))

    # -- training ----------------------------------------------------------------
    def loss(self, parameters: Sequence[float],
             dataset: ClassificationDataset) -> float:
        """Mean squared margin loss ``mean((⟨Z_0⟩ − y)²)``."""
        scores = self.decision_scores(dataset.features, parameters)
        return float(np.mean((scores - dataset.labels.astype(float)) ** 2))

    def fit(self, dataset: ClassificationDataset,
            optimizer: Optional[Optimizer] = None,
            seed: Optional[int] = 0,
            initial_parameters: Optional[Sequence[float]] = None) -> float:
        """Train in place; returns the final training loss."""
        optimizer = optimizer or SPSAOptimizer(max_iterations=60, seed=seed)
        rng = np.random.default_rng(seed)
        start = (np.asarray(initial_parameters, dtype=float)
                 if initial_parameters is not None
                 else 0.1 * rng.standard_normal(self.num_parameters()))
        result = optimizer.minimize(lambda theta: self.loss(theta, dataset), start)
        self.parameters = np.asarray(result.best_parameters, dtype=float)
        self.loss_history = result.history
        return float(result.best_value)
