"""Symbolic parameters for variational circuits.

Variational quantum algorithms (VQAs) are built from circuits whose rotation
angles are tunable.  This module provides a small affine-expression system:
``Parameter`` objects are free symbols, and ``ParameterExpression`` objects
represent ``sum_i c_i * p_i + offset``.  This is all that VQA ansatze need
(negation, doubling and shifting of angles, e.g. the compensatory ``Rz(2θ)``
rotation used by magic-state injection), while staying far simpler than a
general symbolic algebra system.
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, Iterable, Mapping, Union

Number = Union[int, float]

_parameter_counter = itertools.count()


class ParameterExpression:
    """An affine combination of :class:`Parameter` objects plus a constant.

    Instances are immutable.  Arithmetic operations (+, -, *, /, unary -)
    return new expressions.  An expression with no free parameters can be
    converted to ``float``.
    """

    __slots__ = ("_terms", "_offset")

    def __init__(self, terms: Mapping["Parameter", float] | None = None,
                 offset: float = 0.0):
        cleaned: Dict[Parameter, float] = {}
        if terms:
            for param, coeff in terms.items():
                coeff = float(coeff)
                if coeff != 0.0:
                    cleaned[param] = coeff
        self._terms = cleaned
        self._offset = float(offset)

    # -- introspection -----------------------------------------------------
    @property
    def parameters(self) -> frozenset["Parameter"]:
        """The set of free parameters appearing in this expression."""
        return frozenset(self._terms)

    @property
    def is_bound(self) -> bool:
        """True when the expression contains no free parameters."""
        return not self._terms

    @property
    def offset(self) -> float:
        return self._offset

    def coefficient(self, parameter: "Parameter") -> float:
        """Coefficient of ``parameter`` in this expression (0.0 if absent)."""
        return self._terms.get(parameter, 0.0)

    # -- evaluation --------------------------------------------------------
    def bind(self, values: Mapping["Parameter", Number]) -> "ParameterExpression":
        """Substitute values for (a subset of) the free parameters."""
        terms: Dict[Parameter, float] = {}
        offset = self._offset
        for param, coeff in self._terms.items():
            if param in values:
                offset += coeff * float(values[param])
            else:
                terms[param] = coeff
        return ParameterExpression(terms, offset)

    def evaluate(self, values: Mapping["Parameter", Number]) -> float:
        """Fully evaluate the expression; every free parameter must be bound."""
        bound = self.bind(values)
        if not bound.is_bound:
            missing = ", ".join(sorted(p.name for p in bound.parameters))
            raise ValueError(f"unbound parameters remain: {missing}")
        return bound._offset

    def __float__(self) -> float:
        if not self.is_bound:
            missing = ", ".join(sorted(p.name for p in self.parameters))
            raise TypeError(
                f"cannot convert parameterized expression to float; "
                f"unbound parameters: {missing}")
        return self._offset

    # -- arithmetic --------------------------------------------------------
    def _as_expression(self, other) -> "ParameterExpression | None":
        if isinstance(other, ParameterExpression):
            return other
        if isinstance(other, (int, float)):
            return ParameterExpression({}, float(other))
        return None

    def __add__(self, other):
        other_expr = self._as_expression(other)
        if other_expr is None:
            return NotImplemented
        terms = dict(self._terms)
        for param, coeff in other_expr._terms.items():
            terms[param] = terms.get(param, 0.0) + coeff
        return ParameterExpression(terms, self._offset + other_expr._offset)

    def __radd__(self, other):
        return self.__add__(other)

    def __neg__(self):
        return ParameterExpression(
            {p: -c for p, c in self._terms.items()}, -self._offset)

    def __sub__(self, other):
        other_expr = self._as_expression(other)
        if other_expr is None:
            return NotImplemented
        return self + (-other_expr)

    def __rsub__(self, other):
        other_expr = self._as_expression(other)
        if other_expr is None:
            return NotImplemented
        return other_expr + (-self)

    def __mul__(self, other):
        if not isinstance(other, (int, float)):
            return NotImplemented
        scale = float(other)
        return ParameterExpression(
            {p: c * scale for p, c in self._terms.items()}, self._offset * scale)

    def __rmul__(self, other):
        return self.__mul__(other)

    def __truediv__(self, other):
        if not isinstance(other, (int, float)):
            return NotImplemented
        if other == 0:
            raise ZeroDivisionError("division of parameter expression by zero")
        return self * (1.0 / float(other))

    # -- comparison / hashing ----------------------------------------------
    def __eq__(self, other):
        if isinstance(other, (int, float)):
            return self.is_bound and math.isclose(self._offset, float(other))
        if isinstance(other, ParameterExpression):
            return (self._terms == other._terms
                    and math.isclose(self._offset, other._offset))
        return NotImplemented

    def __hash__(self):
        return hash((frozenset(self._terms.items()), round(self._offset, 12)))

    def __repr__(self):
        if self.is_bound:
            return f"ParameterExpression({self._offset:g})"
        parts = []
        for param, coeff in sorted(self._terms.items(), key=lambda kv: kv[0].name):
            if coeff == 1.0:
                parts.append(param.name)
            else:
                parts.append(f"{coeff:g}*{param.name}")
        body = " + ".join(parts)
        if self._offset:
            body += f" + {self._offset:g}"
        return body


class Parameter(ParameterExpression):
    """A named free symbol used as a circuit rotation angle.

    Parameters support arithmetic (``0.5 * theta + 1``) producing
    :class:`ParameterExpression` trees that are evaluated when the circuit is
    bound; identity (not the display name) distinguishes two parameters, so
    templates can be composed safely.  Example::

        theta = Parameter("θ")
        circuit.rz(2 * theta, 0)
        bound = circuit.bind_parameters({theta: 0.25})
    """

    __slots__ = ("_name", "_uuid")

    def __init__(self, name: str):
        self._name = str(name)
        self._uuid = next(_parameter_counter)
        super().__init__({self: 1.0}, 0.0)

    @property
    def name(self) -> str:
        return self._name

    def __eq__(self, other):
        if isinstance(other, Parameter):
            return self._uuid == other._uuid
        return super().__eq__(other)

    def __hash__(self):
        return hash(("Parameter", self._uuid))

    def __reduce__(self):
        # Default (slot-based) pickling would reconstruct the
        # self-referential ``_terms`` dict ``{self: 1.0}`` by hashing a
        # half-initialized instance whose ``_uuid`` slot is still unset.
        # Rebuild through the helper instead, which restores identity first
        # — parameters must pickle cleanly because parametric templates
        # travel to shard worker processes (``parallel="process"``).
        return (_restore_parameter, (self._name, self._uuid))

    def __repr__(self):
        return f"Parameter({self._name})"


def _restore_parameter(name: str, uuid: int) -> "Parameter":
    """Unpickle target for :class:`Parameter` (identity before ``_terms``)."""
    parameter = Parameter.__new__(Parameter)
    parameter._name = str(name)
    parameter._uuid = uuid
    ParameterExpression.__init__(parameter, {parameter: 1.0}, 0.0)
    return parameter


class ParameterVector:
    """An ordered collection of named parameters, e.g. ``theta[0] ... theta[n-1]``."""

    def __init__(self, name: str, length: int):
        if length < 0:
            raise ValueError("ParameterVector length must be non-negative")
        self._name = name
        self._params = [Parameter(f"{name}[{i}]") for i in range(length)]

    @property
    def name(self) -> str:
        return self._name

    @property
    def params(self) -> list[Parameter]:
        return list(self._params)

    def __len__(self) -> int:
        return len(self._params)

    def __getitem__(self, index):
        return self._params[index]

    def __iter__(self):
        return iter(self._params)

    def __repr__(self):
        return f"ParameterVector({self._name}, length={len(self._params)})"


def bind_value(value, bindings: Mapping[Parameter, Number]) -> float | ParameterExpression:
    """Bind ``value`` (number or expression) against ``bindings``.

    Returns a plain ``float`` when fully bound, otherwise the partially-bound
    expression.
    """
    if isinstance(value, ParameterExpression):
        bound = value.bind(bindings)
        return float(bound) if bound.is_bound else bound
    return float(value)


def free_parameters(values: Iterable) -> frozenset[Parameter]:
    """Collect the free parameters across an iterable of gate parameters."""
    found: set[Parameter] = set()
    for value in values:
        if isinstance(value, ParameterExpression):
            found.update(value.parameters)
    return frozenset(found)
