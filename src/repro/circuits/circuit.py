"""Quantum circuit intermediate representation.

A :class:`QuantumCircuit` is an ordered list of :class:`Instruction` objects
over ``num_qubits`` qubits and an equal number of classical bits (one per
qubit, used by terminal measurements).  The IR intentionally mirrors the small
subset of Qiskit's circuit model that the paper's evaluation needs: gate
appends, parameter binding, composition, inversion, depth and gate-count
queries, and iteration for the simulators and the lattice-surgery scheduler.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass
from typing import (Callable, Dict, Iterator, List, Mapping, Optional,
                    Sequence, Tuple)

from .gates import Gate
from .parameters import Parameter, ParameterExpression, free_parameters


@dataclass(frozen=True)
class Instruction:
    """A gate bound to specific qubit (and optionally classical bit) indices."""

    gate: Gate
    qubits: Tuple[int, ...]
    clbits: Tuple[int, ...] = ()

    def __post_init__(self):
        object.__setattr__(self, "qubits", tuple(int(q) for q in self.qubits))
        object.__setattr__(self, "clbits", tuple(int(c) for c in self.clbits))
        if self.gate.name != "barrier" and len(self.qubits) != self.gate.num_qubits:
            raise ValueError(
                f"gate {self.gate.name!r} acts on {self.gate.num_qubits} qubits, "
                f"got {len(self.qubits)} indices")
        if len(set(self.qubits)) != len(self.qubits):
            raise ValueError("instruction qubits must be distinct")

    @property
    def name(self) -> str:
        return self.gate.name

    @property
    def params(self) -> tuple:
        return self.gate.params

    def bind(self, bindings: Mapping) -> "Instruction":
        return Instruction(self.gate.bind(bindings), self.qubits, self.clbits)

    def __repr__(self):
        qubits = ", ".join(str(q) for q in self.qubits)
        return f"{self.gate!r} q[{qubits}]"


class QuantumCircuit:
    """A mutable, ordered quantum circuit over ``num_qubits`` qubits."""

    def __init__(self, num_qubits: int, name: str = "circuit"):
        if num_qubits < 1:
            raise ValueError("a circuit needs at least one qubit")
        self._num_qubits = int(num_qubits)
        self._instructions: List[Instruction] = []
        self.name = name
        self.metadata: Dict[str, object] = {}

    # -- basic properties ----------------------------------------------------
    @property
    def num_qubits(self) -> int:
        return self._num_qubits

    @property
    def num_clbits(self) -> int:
        return self._num_qubits

    @property
    def instructions(self) -> List[Instruction]:
        """The instruction list (a live reference; mutate with care)."""
        return self._instructions

    def __len__(self) -> int:
        return len(self._instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self._instructions)

    def __getitem__(self, index):
        return self._instructions[index]

    # -- appending -------------------------------------------------------------
    def _check_qubits(self, qubits: Sequence[int]) -> None:
        for qubit in qubits:
            if not 0 <= qubit < self._num_qubits:
                raise IndexError(
                    f"qubit index {qubit} out of range for {self._num_qubits}-qubit "
                    f"circuit")

    def append(self, gate: Gate, qubits: Sequence[int],
               clbits: Sequence[int] = ()) -> "QuantumCircuit":
        """Append ``gate`` acting on ``qubits``; returns ``self`` for chaining."""
        self._check_qubits(qubits)
        self._instructions.append(Instruction(gate, tuple(qubits), tuple(clbits)))
        return self

    def append_instruction(self, instruction: Instruction) -> "QuantumCircuit":
        self._check_qubits(instruction.qubits)
        self._instructions.append(instruction)
        return self

    # Named gate helpers ---------------------------------------------------
    def i(self, qubit: int): return self.append(Gate("id"), (qubit,))

    def x(self, qubit: int): return self.append(Gate("x"), (qubit,))

    def y(self, qubit: int): return self.append(Gate("y"), (qubit,))

    def z(self, qubit: int): return self.append(Gate("z"), (qubit,))

    def h(self, qubit: int): return self.append(Gate("h"), (qubit,))

    def s(self, qubit: int): return self.append(Gate("s"), (qubit,))

    def sdg(self, qubit: int): return self.append(Gate("sdg"), (qubit,))

    def sx(self, qubit: int): return self.append(Gate("sx"), (qubit,))

    def t(self, qubit: int): return self.append(Gate("t"), (qubit,))

    def tdg(self, qubit: int): return self.append(Gate("tdg"), (qubit,))

    def rx(self, theta, qubit: int):
        return self.append(Gate("rx", (theta,)), (qubit,))

    def ry(self, theta, qubit: int):
        return self.append(Gate("ry", (theta,)), (qubit,))

    def rz(self, theta, qubit: int):
        return self.append(Gate("rz", (theta,)), (qubit,))

    def u3(self, theta, phi, lam, qubit: int):
        return self.append(Gate("u3", (theta, phi, lam)), (qubit,))

    def cx(self, control: int, target: int):
        return self.append(Gate("cx"), (control, target))

    def cnot(self, control: int, target: int):
        return self.cx(control, target)

    def cz(self, qubit_a: int, qubit_b: int):
        return self.append(Gate("cz"), (qubit_a, qubit_b))

    def swap(self, qubit_a: int, qubit_b: int):
        return self.append(Gate("swap"), (qubit_a, qubit_b))

    def rzz(self, theta, qubit_a: int, qubit_b: int):
        return self.append(Gate("rzz", (theta,)), (qubit_a, qubit_b))

    def measure(self, qubit: int, clbit: Optional[int] = None):
        clbit = qubit if clbit is None else clbit
        return self.append(Gate("measure"), (qubit,), (clbit,))

    def measure_all(self):
        for qubit in range(self._num_qubits):
            self.measure(qubit)
        return self

    def reset(self, qubit: int):
        return self.append(Gate("reset"), (qubit,))

    def barrier(self, *qubits: int):
        targets = tuple(qubits) if qubits else tuple(range(self._num_qubits))
        self._instructions.append(Instruction(Gate("barrier"), targets))
        return self

    # -- structural queries ----------------------------------------------------
    def count_ops(self) -> Dict[str, int]:
        """Histogram of gate names, excluding barriers."""
        counts: Dict[str, int] = {}
        for instruction in self._instructions:
            if instruction.name == "barrier":
                continue
            counts[instruction.name] = counts.get(instruction.name, 0) + 1
        return counts

    def size(self) -> int:
        """Total number of (non-barrier) instructions."""
        return sum(1 for inst in self._instructions if inst.name != "barrier")

    def num_two_qubit_gates(self) -> int:
        return sum(1 for inst in self._instructions
                   if inst.gate.is_unitary and len(inst.qubits) == 2)

    def num_nonclifford_gates(self) -> int:
        """Count of gates outside the Clifford group at their bound angles."""
        count = 0
        for inst in self._instructions:
            if not inst.gate.is_unitary:
                continue
            if inst.gate.is_parameterized:
                count += 1
            elif not inst.gate.is_clifford:
                count += 1
        return count

    def depth(self, *, count: Optional[Callable[[Instruction], bool]] = None) -> int:
        """Circuit depth: longest chain of instructions sharing qubits.

        ``count`` optionally restricts which instructions contribute a unit of
        depth (others still create scheduling dependencies but contribute 0).
        """
        levels = [0] * self._num_qubits
        for inst in self._instructions:
            if inst.name == "barrier":
                if inst.qubits:
                    top = max(levels[q] for q in inst.qubits)
                    for qubit in inst.qubits:
                        levels[qubit] = top
                continue
            weight = 1
            if count is not None and not count(inst):
                weight = 0
            top = max(levels[q] for q in inst.qubits)
            for qubit in inst.qubits:
                levels[qubit] = top + weight
        return max(levels) if levels else 0

    def two_qubit_depth(self) -> int:
        return self.depth(count=lambda inst: len(inst.qubits) == 2)

    @property
    def parameters(self) -> frozenset[Parameter]:
        """All free parameters appearing in the circuit, in no particular order."""
        found: set[Parameter] = set()
        for inst in self._instructions:
            found.update(free_parameters(inst.params))
        return frozenset(found)

    def ordered_parameters(self) -> List[Parameter]:
        """Free parameters in first-appearance order (stable for optimizers)."""
        seen: List[Parameter] = []
        seen_set: set[Parameter] = set()
        for inst in self._instructions:
            for param in free_parameters(inst.params):
                pass  # free_parameters returns a frozenset; keep appearance order below
            for value in inst.params:
                if isinstance(value, ParameterExpression):
                    for param in sorted(value.parameters, key=lambda p: p.name):
                        if param not in seen_set:
                            seen.append(param)
                            seen_set.add(param)
        return seen

    @property
    def num_parameters(self) -> int:
        return len(self.parameters)

    def is_clifford(self) -> bool:
        """True when every unitary gate in the circuit is Clifford."""
        return self.num_nonclifford_gates() == 0

    def has_measurements(self) -> bool:
        return any(inst.name == "measure" for inst in self._instructions)

    def fingerprint(self) -> str:
        """Stable structural hash of the circuit (hex digest).

        Two circuits share a fingerprint exactly when they have the same qubit
        count and the same ordered instruction stream — gate names, qubit and
        classical-bit indices, and parameter values (bound floats are hashed
        bit-exactly; free symbolic parameters by their name *and appearance
        pattern*: each distinct parameter is numbered in first-appearance
        order, and expressions hash those indices with the names,
        coefficients and offset, so a circuit reusing one parameter twice
        never collides with one using two same-named parameters).  Circuit
        name and ``metadata`` do **not**
        contribute, so rebuilding the same circuit yields the same
        fingerprint across processes.  This is the cache/deduplication key
        used by :mod:`repro.execution` and the compiled-program cache in
        :mod:`repro.simulators.program`.
        """
        hasher = hashlib.blake2b(digest_size=16)
        hasher.update(struct.pack("<I", self._num_qubits))
        appearance: Dict[Parameter, int] = {}
        for inst in self._instructions:
            hasher.update(inst.name.encode("utf-8"))
            hasher.update(struct.pack(f"<{len(inst.qubits)}i", *inst.qubits)
                          if inst.qubits else b"")
            hasher.update(b"|")
            hasher.update(struct.pack(f"<{len(inst.clbits)}i", *inst.clbits)
                          if inst.clbits else b"")
            for param in inst.params:
                if isinstance(param, ParameterExpression) and not param.is_bound:
                    hasher.update(b"P")
                    # Within one expression, parameters enumerate in sorted
                    # name order — mirroring ordered_parameters(), so the
                    # appearance numbering matches positional binding.
                    for free in sorted(param.parameters,
                                       key=lambda p: p.name):
                        index = appearance.setdefault(free, len(appearance))
                        hasher.update(free.name.encode("utf-8"))
                        hasher.update(struct.pack(
                            "<id", index, param.coefficient(free)))
                    hasher.update(b"+" + struct.pack("<d", param.offset))
                else:
                    # Bound expressions hash like plain floats so a
                    # template-bound circuit matches its directly-built twin.
                    hasher.update(b"F" + struct.pack("<d", float(param)))
            hasher.update(b";")
        return hasher.hexdigest()

    # -- transformation ---------------------------------------------------------
    def copy(self, name: Optional[str] = None) -> "QuantumCircuit":
        new = QuantumCircuit(self._num_qubits, name or self.name)
        new._instructions = list(self._instructions)
        new.metadata = dict(self.metadata)
        return new

    def bind_parameters(self, bindings) -> "QuantumCircuit":
        """Return a copy with parameters substituted.

        ``bindings`` may be a mapping ``{Parameter: value}`` or a sequence of
        values matched against :meth:`ordered_parameters`.
        """
        if not isinstance(bindings, Mapping):
            ordered = self.ordered_parameters()
            values = list(bindings)
            if len(values) != len(ordered):
                raise ValueError(
                    f"expected {len(ordered)} parameter values, got {len(values)}")
            bindings = dict(zip(ordered, values))
        new = QuantumCircuit(self._num_qubits, self.name)
        new.metadata = dict(self.metadata)
        for inst in self._instructions:
            if inst.gate.is_parameterized:
                new.append_instruction(inst.bind(bindings))
            else:
                new.append_instruction(inst)
        return new

    def compose(self, other: "QuantumCircuit",
                qubits: Optional[Sequence[int]] = None) -> "QuantumCircuit":
        """Return a new circuit equal to ``self`` followed by ``other``.

        ``qubits`` maps the other circuit's qubit ``i`` onto
        ``qubits[i]`` of this circuit (identity mapping by default).
        """
        if qubits is None:
            if other.num_qubits > self._num_qubits:
                raise ValueError("composed circuit does not fit")
            qubits = list(range(other.num_qubits))
        else:
            qubits = list(qubits)
            if len(qubits) != other.num_qubits:
                raise ValueError("qubit mapping length mismatch")
        new = self.copy()
        for inst in other:
            mapped = tuple(qubits[q] for q in inst.qubits)
            new.append_instruction(Instruction(inst.gate, mapped, inst.clbits))
        return new

    def inverse(self) -> "QuantumCircuit":
        """The inverse circuit (measurements and resets are not invertible)."""
        new = QuantumCircuit(self._num_qubits, f"{self.name}_dg")
        for inst in reversed(self._instructions):
            if inst.name == "barrier":
                new.barrier(*inst.qubits)
                continue
            if not inst.gate.is_unitary:
                raise ValueError(f"cannot invert non-unitary gate {inst.name!r}")
            new.append(inst.gate.inverse(), inst.qubits)
        return new

    def without_measurements(self) -> "QuantumCircuit":
        new = QuantumCircuit(self._num_qubits, self.name)
        new.metadata = dict(self.metadata)
        for inst in self._instructions:
            if inst.name not in ("measure", "reset", "barrier"):
                new.append_instruction(inst)
        return new

    # -- layering (used by the scheduler and noise models) -------------------
    def layers(self) -> List[List[Instruction]]:
        """Greedy as-soon-as-possible layering of the circuit.

        Two instructions share a layer when their qubit sets are disjoint.
        Barriers force a new layer.
        """
        layers: List[List[Instruction]] = []
        occupied: List[set] = []
        frontier = [0] * self._num_qubits
        for inst in self._instructions:
            if inst.name == "barrier":
                level = max((frontier[q] for q in inst.qubits), default=0)
                for qubit in inst.qubits:
                    frontier[qubit] = level
                continue
            level = max(frontier[q] for q in inst.qubits)
            while len(layers) <= level:
                layers.append([])
                occupied.append(set())
            # Find the first layer at or after `level` with no qubit overlap.
            while occupied[level] & set(inst.qubits):
                level += 1
                if len(layers) <= level:
                    layers.append([])
                    occupied.append(set())
            layers[level].append(inst)
            occupied[level].update(inst.qubits)
            for qubit in inst.qubits:
                frontier[qubit] = level + 1
        return [layer for layer in layers if layer]

    # -- comparison / presentation ---------------------------------------------
    def __eq__(self, other):
        if not isinstance(other, QuantumCircuit):
            return NotImplemented
        return (self._num_qubits == other._num_qubits
                and self._instructions == other._instructions)

    def __repr__(self):
        counts = self.count_ops()
        summary = ", ".join(f"{name}:{count}" for name, count in sorted(counts.items()))
        return (f"QuantumCircuit(name={self.name!r}, qubits={self._num_qubits}, "
                f"ops=[{summary}])")

    def draw(self) -> str:
        """A plain-text listing of the circuit (one instruction per line)."""
        lines = [f"QuantumCircuit {self.name!r} on {self._num_qubits} qubits:"]
        for index, inst in enumerate(self._instructions):
            lines.append(f"  {index:4d}: {inst!r}")
        return "\n".join(lines)
