"""Quantum circuit intermediate representation and rewriting passes."""

from .circuit import Instruction, QuantumCircuit
from .gates import (CLIFFORD_GATE_NAMES, Gate, PAULI_MATRICES, gate_arity,
                    gate_fidelity, is_clifford_angle, rx_matrix, ry_matrix,
                    rz_matrix, rzz_matrix, u3_matrix)
from .parameters import Parameter, ParameterExpression, ParameterVector
from .transpile import (GateCensus, bind_and_canonicalize,
                        decompose_to_clifford_rz, gate_census, merge_rz_runs,
                        remove_barriers, snap_to_clifford)

__all__ = [
    "CLIFFORD_GATE_NAMES",
    "Gate",
    "GateCensus",
    "Instruction",
    "PAULI_MATRICES",
    "Parameter",
    "ParameterExpression",
    "ParameterVector",
    "QuantumCircuit",
    "bind_and_canonicalize",
    "decompose_to_clifford_rz",
    "gate_arity",
    "gate_census",
    "gate_fidelity",
    "is_clifford_angle",
    "merge_rz_runs",
    "remove_barriers",
    "rx_matrix",
    "ry_matrix",
    "rz_matrix",
    "rzz_matrix",
    "snap_to_clifford",
    "u3_matrix",
]
