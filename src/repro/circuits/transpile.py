"""Circuit rewriting passes.

The pQEC execution model of the paper keeps non-Clifford content in the form
of native ``Rz(θ)`` rotations (Clifford + Rz gate set), whereas the
``qec-conventional`` baseline synthesizes every rotation into Clifford+T.
These passes provide the plumbing both regimes need:

* ``decompose_to_clifford_rz`` — rewrite RX/RY/RZZ/U3 so that the only
  non-Clifford gates left are Z rotations (plus T/Tdg which are Rz(π/4)).
* ``merge_rz_runs`` — fuse adjacent Z rotations on the same qubit.
* ``snap_to_clifford`` — round every rotation to the nearest multiple of π/2
  and re-express it with Clifford gates.  This is the "Clifford state proxy"
  the paper uses for 16–100 qubit evaluations (Sec. 5.2.2).
* ``gate_census`` — CNOT / Rz / Clifford accounting used by the analytical
  fidelity model and the ansatz-design rule of Sec. 4.4.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from .circuit import QuantumCircuit
from .gates import Gate, is_clifford_angle
from .parameters import ParameterExpression

TWO_PI = 2.0 * math.pi


def _normalize_angle(theta: float) -> float:
    """Map an angle into (-π, π]."""
    theta = math.fmod(theta, TWO_PI)
    if theta > math.pi:
        theta -= TWO_PI
    elif theta <= -math.pi:
        theta += TWO_PI
    return theta


def decompose_to_clifford_rz(circuit: QuantumCircuit) -> QuantumCircuit:
    """Rewrite the circuit over the Clifford + Rz(θ) gate set.

    RX, RY, RZZ and U3 gates are expanded using the standard identities

    * ``Rx(θ) = H · Rz(θ) · H``
    * ``Ry(θ) = Sdg · H · Rz(θ) · H · S``  (written in circuit order)
    * ``Rzz(θ) = CX · (Rz(θ) on target) · CX``
    * ``U3(θ, φ, λ) = Rz(φ) · Rx(θ) · Rz(λ)`` up to global phase (then Rx is
      expanded as above).

    Symbolic parameters are preserved.
    """
    out = QuantumCircuit(circuit.num_qubits, f"{circuit.name}_clifford_rz")
    out.metadata = dict(circuit.metadata)
    for inst in circuit:
        name = inst.name
        if name == "rx":
            (qubit,) = inst.qubits
            theta = inst.params[0]
            out.h(qubit)
            out.rz(theta, qubit)
            out.h(qubit)
        elif name == "ry":
            (qubit,) = inst.qubits
            theta = inst.params[0]
            out.sdg(qubit)
            out.h(qubit)
            out.rz(theta, qubit)
            out.h(qubit)
            out.s(qubit)
        elif name == "rzz":
            control, target = inst.qubits
            theta = inst.params[0]
            out.cx(control, target)
            out.rz(theta, target)
            out.cx(control, target)
        elif name == "u3":
            (qubit,) = inst.qubits
            theta, phi, lam = inst.params
            out.rz(lam, qubit)
            out.h(qubit)
            out.rz(theta, qubit)
            out.h(qubit)
            out.rz(phi, qubit)
        else:
            out.append_instruction(inst)
    return out


def merge_rz_runs(circuit: QuantumCircuit, drop_identity: bool = True,
                  atol: float = 1e-12) -> QuantumCircuit:
    """Fuse consecutive Rz gates acting on the same qubit.

    Only runs that are adjacent in the per-qubit gate stream are merged (any
    intervening gate on that qubit breaks the run).  Symbolic angles are
    summed symbolically.
    """
    out = QuantumCircuit(circuit.num_qubits, circuit.name)
    out.metadata = dict(circuit.metadata)
    pending: Dict[int, object] = {}

    def flush(qubit: int) -> None:
        if qubit not in pending:
            return
        angle = pending.pop(qubit)
        if isinstance(angle, ParameterExpression):
            out.rz(angle, qubit)
            return
        angle = _normalize_angle(float(angle))
        if drop_identity and abs(angle) <= atol:
            return
        out.rz(angle, qubit)

    for inst in circuit:
        if inst.name == "rz":
            (qubit,) = inst.qubits
            theta = inst.params[0]
            if qubit in pending:
                pending[qubit] = pending[qubit] + theta
            else:
                pending[qubit] = theta
            continue
        for qubit in inst.qubits:
            flush(qubit)
        out.append_instruction(inst)
    for qubit in sorted(pending):
        flush(qubit)
    return out


_CLIFFORD_RZ_SEQUENCES = {
    0: (),
    1: ("s",),
    2: ("z",),
    3: ("sdg",),
}


def _clifford_rz_gates(theta: float) -> tuple[str, ...]:
    """Clifford gate sequence equivalent (up to phase) to Rz(k·π/2)."""
    quarter_turns = int(round(theta / (math.pi / 2.0))) % 4
    return _CLIFFORD_RZ_SEQUENCES[quarter_turns]


def snap_to_clifford(circuit: QuantumCircuit) -> QuantumCircuit:
    """Round every rotation angle to the nearest multiple of π/2.

    The result contains only Clifford gates and can be evaluated exactly with
    the stabilizer simulator.  This implements the Clifford-state proxy used
    for large-qubit evaluation in the paper (Sec. 5.2.2); the discrete VQE of
    :mod:`repro.vqe.clifford_vqe` optimizes directly over these snapped
    angles.
    """
    out = QuantumCircuit(circuit.num_qubits, f"{circuit.name}_clifford")
    out.metadata = dict(circuit.metadata)
    working = decompose_to_clifford_rz(circuit)
    for inst in working:
        if inst.name == "rz":
            (qubit,) = inst.qubits
            theta = float(inst.params[0])
            for gate_name in _clifford_rz_gates(theta):
                out.append(Gate(gate_name), (qubit,))
        elif inst.name in ("t",):
            raise ValueError("cannot snap a T gate to Clifford")
        else:
            out.append_instruction(inst)
    return out


@dataclass(frozen=True)
class GateCensus:
    """Gate accounting of a circuit in the Clifford + Rz basis.

    Attributes mirror the quantities the paper's Sec. 4.4 ansatz-design rule
    reasons about.
    """

    num_qubits: int
    cnot: int
    rz: int
    nonclifford_rz: int
    single_qubit_clifford: int
    measure: int
    depth: int
    two_qubit_depth: int

    @property
    def cnot_to_rz_ratio(self) -> float:
        """CNOT-to-(non-Clifford Rz) ratio; ``inf`` when there are no rotations."""
        if self.nonclifford_rz == 0:
            return math.inf
        return self.cnot / self.nonclifford_rz


def gate_census(circuit: QuantumCircuit) -> GateCensus:
    """Count CNOT / Rz / Clifford / measurement content of a circuit.

    The circuit is first rewritten into the Clifford + Rz basis so that
    RX/RY/RZZ rotations are attributed correctly.
    """
    working = merge_rz_runs(decompose_to_clifford_rz(circuit))
    cnot = 0
    rz = 0
    nonclifford_rz = 0
    single_clifford = 0
    measure = 0
    for inst in working:
        name = inst.name
        if name in ("cx", "cnot", "cz", "swap"):
            cnot += 1
        elif name == "rz":
            rz += 1
            theta = inst.params[0]
            if isinstance(theta, ParameterExpression) or not is_clifford_angle(float(theta)):
                nonclifford_rz += 1
        elif name in ("t", "tdg"):
            rz += 1
            nonclifford_rz += 1
        elif name == "measure":
            measure += 1
        elif name in ("reset", "barrier"):
            continue
        else:
            single_clifford += 1
    return GateCensus(
        num_qubits=working.num_qubits,
        cnot=cnot,
        rz=rz,
        nonclifford_rz=nonclifford_rz,
        single_qubit_clifford=single_clifford,
        measure=measure,
        depth=working.depth(),
        two_qubit_depth=working.two_qubit_depth(),
    )


def remove_barriers(circuit: QuantumCircuit) -> QuantumCircuit:
    """Return a copy of ``circuit`` with every barrier removed."""
    out = QuantumCircuit(circuit.num_qubits, circuit.name)
    out.metadata = dict(circuit.metadata)
    for inst in circuit:
        if inst.name != "barrier":
            out.append_instruction(inst)
    return out


def bind_and_canonicalize(circuit: QuantumCircuit, parameter_values,
                          clifford_only: bool = False) -> QuantumCircuit:
    """Bind parameters and rewrite into the Clifford + Rz basis.

    This is the common preparation step used by every execution regime: the
    ansatz with bound angles is reduced to the gate alphabet the EFT device
    actually executes.  With ``clifford_only=True`` the rotations are snapped
    to multiples of π/2 (stabilizer-proxy evaluation).
    """
    bound = circuit.bind_parameters(parameter_values)
    canonical = merge_rz_runs(decompose_to_clifford_rz(bound))
    if clifford_only:
        canonical = snap_to_clifford(canonical)
    return canonical
