"""Gate definitions and unitary matrices.

The gate set follows the paper's needs:

* Clifford gates: I, X, Y, Z, H, S, Sdg, SX, CX, CZ, SWAP — error-corrected in
  the pQEC regime.
* Non-Clifford gates: T, Tdg and the continuous rotations RX, RY, RZ, RZZ —
  the rotations are the gates implemented by magic-state injection in pQEC, or
  Gridsynth-decomposed into Clifford+T in ``qec-conventional``.
* ``measure`` and ``reset`` pseudo-gates consumed by the simulators.

Each gate knows its matrix, arity, whether it is Clifford (for a given angle,
in the case of rotations), and its inverse.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Mapping

import numpy as np

from .parameters import ParameterExpression

# --------------------------------------------------------------------------
# Static matrices
# --------------------------------------------------------------------------

_SQRT2_INV = 1.0 / math.sqrt(2.0)

I2 = np.eye(2, dtype=complex)
X_MATRIX = np.array([[0, 1], [1, 0]], dtype=complex)
Y_MATRIX = np.array([[0, -1j], [1j, 0]], dtype=complex)
Z_MATRIX = np.array([[1, 0], [0, -1]], dtype=complex)
H_MATRIX = np.array([[1, 1], [1, -1]], dtype=complex) * _SQRT2_INV
S_MATRIX = np.array([[1, 0], [0, 1j]], dtype=complex)
SDG_MATRIX = np.array([[1, 0], [0, -1j]], dtype=complex)
T_MATRIX = np.array([[1, 0], [0, np.exp(1j * math.pi / 4)]], dtype=complex)
TDG_MATRIX = np.array([[1, 0], [0, np.exp(-1j * math.pi / 4)]], dtype=complex)
SX_MATRIX = 0.5 * np.array([[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]], dtype=complex)

# Multi-qubit matrices follow the little-endian convention used throughout the
# simulators: for a gate applied to ``qubits = (q0, q1, ...)``, q0 is the
# *least-significant* bit of the matrix index.  For CX, qubits[0] is the
# control and qubits[1] the target, hence the control is index bit 0.
CX_MATRIX = np.array(
    [[1, 0, 0, 0],
     [0, 0, 0, 1],
     [0, 0, 1, 0],
     [0, 1, 0, 0]], dtype=complex)
CZ_MATRIX = np.diag([1, 1, 1, -1]).astype(complex)
SWAP_MATRIX = np.array(
    [[1, 0, 0, 0],
     [0, 0, 1, 0],
     [0, 1, 0, 0],
     [0, 0, 0, 1]], dtype=complex)

PAULI_MATRICES = {"I": I2, "X": X_MATRIX, "Y": Y_MATRIX, "Z": Z_MATRIX}


def rx_matrix(theta: float) -> np.ndarray:
    """Unitary of a rotation about the X axis by ``theta``."""
    half = theta / 2.0
    return np.array(
        [[math.cos(half), -1j * math.sin(half)],
         [-1j * math.sin(half), math.cos(half)]], dtype=complex)


def ry_matrix(theta: float) -> np.ndarray:
    """Unitary of a rotation about the Y axis by ``theta``."""
    half = theta / 2.0
    return np.array(
        [[math.cos(half), -math.sin(half)],
         [math.sin(half), math.cos(half)]], dtype=complex)


def rz_matrix(theta: float) -> np.ndarray:
    """Unitary of a rotation about the Z axis by ``theta``."""
    half = theta / 2.0
    return np.array(
        [[np.exp(-1j * half), 0],
         [0, np.exp(1j * half)]], dtype=complex)


def rzz_matrix(theta: float) -> np.ndarray:
    """Unitary of exp(-i θ/2 Z⊗Z)."""
    half = theta / 2.0
    phase = np.exp(-1j * half)
    conj = np.exp(1j * half)
    return np.diag([phase, conj, conj, phase]).astype(complex)


def u3_matrix(theta: float, phi: float, lam: float) -> np.ndarray:
    """General single-qubit unitary U3(θ, φ, λ)."""
    cos = math.cos(theta / 2.0)
    sin = math.sin(theta / 2.0)
    return np.array(
        [[cos, -np.exp(1j * lam) * sin],
         [np.exp(1j * phi) * sin, np.exp(1j * (phi + lam)) * cos]],
        dtype=complex)


# --------------------------------------------------------------------------
# Gate metadata
# --------------------------------------------------------------------------

#: Gates that are Clifford for every parameter value (or have no parameter).
CLIFFORD_GATE_NAMES = frozenset(
    {"i", "id", "x", "y", "z", "h", "s", "sdg", "sx", "sxdg", "cx", "cnot",
     "cz", "swap"})

#: Single-qubit gate names.
ONE_QUBIT_GATE_NAMES = frozenset(
    {"i", "id", "x", "y", "z", "h", "s", "sdg", "sx", "sxdg", "t", "tdg",
     "rx", "ry", "rz", "u3"})

#: Two-qubit gate names.
TWO_QUBIT_GATE_NAMES = frozenset({"cx", "cnot", "cz", "swap", "rzz"})

#: Non-unitary pseudo operations.
NON_UNITARY_NAMES = frozenset({"measure", "reset", "barrier"})

#: Parametric gate names and their parameter counts.
PARAMETRIC_GATES = {"rx": 1, "ry": 1, "rz": 1, "rzz": 1, "u3": 3}

#: Gates whose unitary is diagonal in the computational basis.  The circuit
#: compiler (:mod:`repro.simulators.program`) applies these as elementwise
#: phase vectors instead of tensor contractions.
DIAGONAL_GATE_NAMES = frozenset(
    {"i", "id", "z", "s", "sdg", "t", "tdg", "rz", "cz", "rzz"})


def _frozen(matrix: np.ndarray) -> np.ndarray:
    """A read-only copy, safe to hand out from a cache without re-copying."""
    out = np.array(matrix, dtype=complex)
    out.setflags(write=False)
    return out


_STATIC_MATRICES = {name: _frozen(matrix) for name, matrix in {
    "i": I2, "id": I2,
    "x": X_MATRIX, "y": Y_MATRIX, "z": Z_MATRIX,
    "h": H_MATRIX, "s": S_MATRIX, "sdg": SDG_MATRIX,
    "sx": SX_MATRIX, "sxdg": SX_MATRIX.conj().T,
    "t": T_MATRIX, "tdg": TDG_MATRIX,
    "cx": CX_MATRIX, "cnot": CX_MATRIX,
    "cz": CZ_MATRIX, "swap": SWAP_MATRIX,
}.items()}

_PARAMETRIC_MATRIX_BUILDERS = {
    "rx": lambda params: rx_matrix(params[0]),
    "ry": lambda params: ry_matrix(params[0]),
    "rz": lambda params: rz_matrix(params[0]),
    "rzz": lambda params: rzz_matrix(params[0]),
    "u3": lambda params: u3_matrix(*params),
}


@lru_cache(maxsize=4096)
def parametric_matrix(name: str, params: tuple) -> np.ndarray:
    """Memoized read-only unitary of a parametric gate at bound angles.

    Optimizer loops re-evaluate the same angles constantly (repeated COBYLA
    queries, SPSA ± pairs at shared base points, Clifford angles k·π/2), so
    rebuilding trig matrices per call is measurable on the simulation hot
    path.  The returned array is shared and read-only — copy before mutating.
    """
    builder = _PARAMETRIC_MATRIX_BUILDERS.get(name)
    if builder is None:
        raise ValueError(f"no matrix builder for gate {name!r}")
    matrix = builder(params)
    matrix.setflags(write=False)
    return matrix

_INVERSE_NAMES = {
    "i": "i", "id": "id", "x": "x", "y": "y", "z": "z", "h": "h",
    "s": "sdg", "sdg": "s", "t": "tdg", "tdg": "t",
    "sx": "sxdg", "sxdg": "sx",
    "cx": "cx", "cnot": "cnot", "cz": "cz", "swap": "swap",
}

#: Angle granularity at which a rotation becomes Clifford: multiples of π/2.
CLIFFORD_ANGLE_ATOL = 1e-9


def gate_arity(name: str) -> int:
    """Number of qubits a gate named ``name`` acts on."""
    lowered = name.lower()
    if lowered in ONE_QUBIT_GATE_NAMES or lowered in {"measure", "reset"}:
        return 1
    if lowered in TWO_QUBIT_GATE_NAMES:
        return 2
    if lowered == "barrier":
        return 0
    raise ValueError(f"unknown gate name: {name!r}")


def is_clifford_angle(theta: float, atol: float = CLIFFORD_ANGLE_ATOL) -> bool:
    """True when a rotation by ``theta`` about a Pauli axis is a Clifford gate.

    Rotations by integer multiples of π/2 map Paulis to Paulis and therefore
    lie in the Clifford group.  This predicate drives the Clifford-restricted
    ("stabilizer proxy") evaluation used for 16+ qubit experiments.
    """
    ratio = theta / (math.pi / 2.0)
    return abs(ratio - round(ratio)) <= atol


@dataclass(frozen=True)
class Gate:
    """An abstract gate: a name plus parameter values (possibly symbolic).

    A :class:`Gate` does not carry qubit indices; an
    :class:`~repro.circuits.circuit.Instruction` binds a gate to qubits.
    """

    name: str
    params: tuple = ()

    def __post_init__(self):
        lowered = self.name.lower()
        object.__setattr__(self, "name", lowered)
        expected = PARAMETRIC_GATES.get(lowered, 0)
        if lowered in NON_UNITARY_NAMES:
            expected = len(self.params)
        if len(self.params) != expected:
            raise ValueError(
                f"gate {lowered!r} expects {expected} parameter(s), "
                f"got {len(self.params)}")
        object.__setattr__(self, "params", tuple(self.params))

    # -- classification ----------------------------------------------------
    @property
    def num_qubits(self) -> int:
        return gate_arity(self.name)

    @property
    def is_parametric(self) -> bool:
        return self.name in PARAMETRIC_GATES

    @property
    def is_parameterized(self) -> bool:
        """True if any parameter is still a free symbolic expression."""
        return any(isinstance(p, ParameterExpression) and not p.is_bound
                   for p in self.params)

    @property
    def is_unitary(self) -> bool:
        return self.name not in NON_UNITARY_NAMES

    @property
    def is_clifford(self) -> bool:
        """True when the gate (at its bound parameter values) is Clifford."""
        if self.name in CLIFFORD_GATE_NAMES:
            return True
        if self.name in {"t", "tdg"}:
            return False
        if self.name in {"rx", "ry", "rz", "rzz"}:
            if self.is_parameterized:
                return False
            return is_clifford_angle(float(self.params[0]))
        return False

    @property
    def is_rotation(self) -> bool:
        return self.name in {"rx", "ry", "rz", "rzz", "u3"}

    # -- numerics ------------------------------------------------------------
    def bound_params(self) -> tuple[float, ...]:
        """Parameter values as floats; raises if any parameter is unbound."""
        values = []
        for param in self.params:
            if isinstance(param, ParameterExpression):
                values.append(float(param))
            else:
                values.append(float(param))
        return tuple(values)

    def matrix(self) -> np.ndarray:
        """The gate unitary as a dense numpy array.

        Returned arrays are cached and **read-only**: static gates share one
        frozen array per gate name, parametric gates are memoized per bound
        parameter tuple.  Callers that need to mutate must copy first.
        """
        if not self.is_unitary:
            raise ValueError(f"gate {self.name!r} has no unitary matrix")
        if self.name in _STATIC_MATRICES:
            return _STATIC_MATRICES[self.name]
        return parametric_matrix(self.name, self.bound_params())

    def inverse(self) -> "Gate":
        """The inverse gate."""
        if self.name in _INVERSE_NAMES:
            return Gate(_INVERSE_NAMES[self.name], ())
        if self.name in {"rx", "ry", "rz", "rzz"}:
            return Gate(self.name, (-self.params[0] if not isinstance(
                self.params[0], ParameterExpression) else -self.params[0],))
        if self.name == "u3":
            theta, phi, lam = self.params
            return Gate("u3", (-theta, -lam, -phi))
        raise ValueError(f"cannot invert gate {self.name!r}")

    def bind(self, bindings: Mapping) -> "Gate":
        """Bind symbolic parameters, returning a new gate."""
        from .parameters import bind_value
        new_params = tuple(bind_value(p, bindings) for p in self.params)
        return Gate(self.name, new_params)

    def __repr__(self):
        if self.params:
            rendered = ", ".join(
                repr(p) if isinstance(p, ParameterExpression) else f"{p:g}"
                for p in self.params)
            return f"{self.name}({rendered})"
        return self.name


def controlled_on_matrix(target_matrix: np.ndarray) -> np.ndarray:
    """Two-qubit controlled-U matrix (control = qubits[0] = index bit 0).

    Follows the same little-endian convention as :data:`CX_MATRIX`: the
    control qubit is the least-significant index bit, so the U block sits on
    the odd-index rows/columns.
    """
    if target_matrix.shape != (2, 2):
        raise ValueError("controlled_on_matrix expects a 2x2 unitary")
    out = np.eye(4, dtype=complex)
    out[np.ix_([1, 3], [1, 3])] = target_matrix
    return out


def gate_fidelity(actual: np.ndarray, target: np.ndarray) -> float:
    """Average gate fidelity between two unitaries of the same dimension."""
    if actual.shape != target.shape:
        raise ValueError("unitaries must have identical shape")
    dim = actual.shape[0]
    overlap = abs(np.trace(target.conj().T @ actual)) ** 2
    return float((overlap / dim + 1.0) / (dim + 1.0))
