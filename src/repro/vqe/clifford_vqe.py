"""Clifford-restricted (stabilizer-proxy) VQE for large qubit counts.

For 16–100 qubit benchmarks the paper constrains every rotation angle to a
multiple of π/2, turning the ansatz into a Clifford circuit that a stabilizer
method evaluates exactly (Sec. 5.2.2); the discrete parameter space is
searched with a genetic algorithm, and the lowest *noiseless* Clifford energy
serves as the reference E0 of the γ metric.

:class:`CliffordVQE` implements that flow on top of the exact
Pauli-propagation evaluator, and :func:`compare_regimes_clifford` produces
the per-benchmark γ values behind Figs. 12 and 14.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..ansatz.base import Ansatz
from ..operators.pauli import PauliSum
from ..simulators.noise import NoiseModel
from .energy import BackendEnergyEvaluator
from .optimizers import GeneticOptimizer, OptimizationResult
from .runner import VQEResult

#: The discrete angle alphabet: k·π/2 for k = 0, 1, 2, 3.
CLIFFORD_ANGLES = tuple(k * math.pi / 2.0 for k in range(4))


def indices_to_angles(indices: Sequence[int]) -> np.ndarray:
    """Map chromosome indices {0..3} to rotation angles {0, π/2, π, 3π/2}."""
    return np.array([CLIFFORD_ANGLES[int(i) % 4] for i in indices])


@dataclass
class CliffordVQEResult(VQEResult):
    """VQE result carrying the discrete parameter indices as well."""

    parameter_indices: Optional[np.ndarray] = None


class _ChromosomeObjective:
    """GA objective over chromosomes, exposing the batched-sweep protocol."""

    __slots__ = ("_vqe",)

    def __init__(self, vqe: "CliffordVQE"):
        self._vqe = vqe

    def __call__(self, indices) -> float:
        return self._vqe.energy_from_indices(indices)

    def evaluate_batch(self, population) -> List[float]:
        return self._vqe.energy_from_population(population)


class CliffordVQE:
    """Discrete VQE over Clifford rotation angles with a genetic optimizer."""

    def __init__(self, hamiltonian: PauliSum, ansatz: Ansatz,
                 noise_model: Optional[NoiseModel] = None,
                 optimizer: Optional[GeneticOptimizer] = None,
                 benchmark_name: str = "benchmark",
                 regime_name: str = "custom",
                 seed: Optional[int] = None):
        if hamiltonian.num_qubits != ansatz.num_qubits:
            raise ValueError("Hamiltonian and ansatz qubit counts differ")
        self.hamiltonian = hamiltonian
        self.ansatz = ansatz
        self.noise_model = noise_model
        self.optimizer = optimizer or GeneticOptimizer(seed=seed)
        self.benchmark_name = benchmark_name
        self.regime_name = regime_name
        self._template = ansatz.build()
        self._evaluator = BackendEnergyEvaluator.clifford(hamiltonian,
                                                          noise_model)

    # -- objective --------------------------------------------------------------
    def energy_from_indices(self, indices: Sequence[int]) -> float:
        circuit = self._template.bind_parameters(list(indices_to_angles(indices)))
        return self._evaluator(circuit)

    def energy_from_population(self, population: Sequence[Sequence[int]]
                               ) -> List[float]:
        """Energies of a whole chromosome population in one batched call.

        The genetic optimizer's generation-level fast path: every chromosome
        maps to its angle vector and the batch rides the evaluator's
        ``evaluate_sweep`` — one grouped execution batch in which repeated
        elites and duplicate chromosomes collapse onto cached results.
        """
        angle_sets = [list(indices_to_angles(individual))
                      for individual in population]
        return [float(value) for value
                in self._evaluator.evaluate_sweep(self._template, angle_sets)]

    # -- execution ---------------------------------------------------------------
    def run(self) -> CliffordVQEResult:
        objective = _ChromosomeObjective(self)
        result: OptimizationResult = self.optimizer.minimize(
            objective, self.ansatz.num_parameters())
        indices = result.best_parameters.astype(int)
        return CliffordVQEResult(
            benchmark=self.benchmark_name,
            regime=self.regime_name,
            best_energy=result.best_value,
            best_parameters=indices_to_angles(indices),
            reference_energy=None,
            num_evaluations=result.num_evaluations,
            history=result.history,
            parameter_indices=indices,
        )

    def evaluate_indices(self, indices: Sequence[int]) -> float:
        """Evaluate a fixed chromosome (used to re-score parameters under noise)."""
        return self.energy_from_indices(indices)


def best_noiseless_clifford_energy(hamiltonian: PauliSum, ansatz: Ansatz,
                                   optimizer: Optional[GeneticOptimizer] = None,
                                   seed: Optional[int] = None
                                   ) -> CliffordVQEResult:
    """The reference energy E0 used for 16+ qubit benchmarks (Sec. 5.3)."""
    vqe = CliffordVQE(hamiltonian, ansatz, noise_model=None,
                      optimizer=optimizer,
                      benchmark_name="reference", regime_name="noiseless",
                      seed=seed)
    return vqe.run()


def compare_regimes_clifford(hamiltonian: PauliSum, ansatz: Ansatz,
                             regime_a, regime_b,
                             optimizer_factory=None,
                             benchmark_name: str = "benchmark",
                             seed: Optional[int] = None,
                             reference_result: Optional[CliffordVQEResult] = None,
                             reoptimize_under_noise: bool = True
                             ) -> Dict[str, object]:
    """Clifford-proxy γ comparison of two simulable regimes (Figs. 12 / 14).

    The reference energy E0 is the best noiseless Clifford energy.  With
    ``reoptimize_under_noise=True`` each regime additionally runs its own
    noisy optimization and keeps the better of that result and the rescored
    noiseless optimum; with ``False`` the noiseless optimum is simply rescored
    under each regime's noise (the Optimal Parameter Resilience evaluation,
    which guarantees both energy gaps are non-negative and is ~3x cheaper).
    """
    from ..core.metrics import RegimeComparison

    def make_optimizer():
        if optimizer_factory is not None:
            return optimizer_factory()
        return GeneticOptimizer(seed=seed)

    if reference_result is None:
        reference_result = best_noiseless_clifford_energy(
            hamiltonian, ansatz, make_optimizer(), seed=seed)
    reference_energy = reference_result.best_energy

    results = {}
    for label, regime in (("a", regime_a), ("b", regime_b)):
        vqe = CliffordVQE(hamiltonian, ansatz, regime.noise_model(),
                          make_optimizer(), benchmark_name=benchmark_name,
                          regime_name=regime.name, seed=seed)
        rescored = vqe.evaluate_indices(reference_result.parameter_indices)
        if reoptimize_under_noise:
            noisy = vqe.run()
        else:
            noisy = CliffordVQEResult(
                benchmark=benchmark_name, regime=regime.name,
                best_energy=rescored,
                best_parameters=indices_to_angles(
                    reference_result.parameter_indices),
                reference_energy=reference_energy,
                num_evaluations=1, history=[rescored],
                parameter_indices=reference_result.parameter_indices)
        # Score the noiseless optimum under this regime's noise and keep the
        # better of the two (Optimal Parameter Resilience).
        if rescored < noisy.best_energy:
            noisy.best_energy = rescored
            noisy.parameter_indices = reference_result.parameter_indices
            noisy.best_parameters = indices_to_angles(
                reference_result.parameter_indices)
        noisy.reference_energy = reference_energy
        results[label] = noisy

    comparison = RegimeComparison(
        benchmark=benchmark_name,
        reference_energy=reference_energy,
        energy_a=results["a"].best_energy,
        energy_b=results["b"].best_energy,
        regime_a=regime_a.name,
        regime_b=regime_b.name,
    )
    return {"result_a": results["a"], "result_b": results["b"],
            "comparison": comparison, "reference": reference_result}
