"""End-to-end VQE execution under an execution regime.

:class:`VQE` ties together a Hamiltonian, an ansatz, an energy evaluator
(which encodes the regime's noise) and a classical optimizer, and reports the
best energy found.  :func:`compare_regimes` runs the same benchmark under two
regimes and reports the paper's γ metric (Eq. 3) — the building block of
Figs. 12–14.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..ansatz.base import Ansatz
from ..operators.pauli import PauliSum
from ..simulators.noise import NoiseModel
from .energy import BackendEnergyEvaluator, EnergyEvaluator
from .optimizers import CobylaOptimizer, OptimizationResult, Optimizer


@dataclass
class VQEResult:
    """Outcome of one VQE run."""

    benchmark: str
    regime: str
    best_energy: float
    best_parameters: np.ndarray
    reference_energy: Optional[float]
    num_evaluations: int
    history: List[float] = field(default_factory=list)

    @property
    def energy_gap(self) -> Optional[float]:
        if self.reference_energy is None:
            return None
        return self.best_energy - self.reference_energy

    def __repr__(self):
        gap = f", gap={self.energy_gap:.4f}" if self.reference_energy is not None else ""
        return (f"VQEResult({self.benchmark}/{self.regime}: "
                f"E={self.best_energy:.5f}{gap}, evals={self.num_evaluations})")


class _BatchedEnergyObjective:
    """The VQE objective, exposing the batched-sweep protocol.

    Callable like the plain per-point objective; batch-aware optimizers
    (SPSA ± pairs, genetic populations) detect ``evaluate_batch`` and route
    grouped queries through :meth:`VQE.energy_sweep`, which simulates the
    whole set in one compiled batch.
    """

    __slots__ = ("_vqe",)

    def __init__(self, vqe: "VQE"):
        self._vqe = vqe

    def __call__(self, parameters) -> float:
        return self._vqe.energy(parameters)

    def evaluate_batch(self, parameter_sets) -> List[float]:
        return self._vqe.energy_sweep(parameter_sets)


class VQE:
    """Variational quantum eigensolver over a continuous parameter space."""

    def __init__(self, hamiltonian: PauliSum, ansatz: Ansatz,
                 evaluator: EnergyEvaluator,
                 optimizer: Optional[Optimizer] = None,
                 reference_energy: Optional[float] = None,
                 benchmark_name: str = "benchmark",
                 regime_name: str = "custom"):
        if hamiltonian.num_qubits != ansatz.num_qubits:
            raise ValueError("Hamiltonian and ansatz qubit counts differ")
        self.hamiltonian = hamiltonian
        self.ansatz = ansatz
        self.evaluator = evaluator
        self.optimizer = optimizer or CobylaOptimizer()
        self.reference_energy = reference_energy
        self.benchmark_name = benchmark_name
        self.regime_name = regime_name
        self._template = ansatz.build()

    # -- objective ---------------------------------------------------------------
    def energy(self, parameters: Sequence[float]) -> float:
        """⟨H⟩ for one parameter vector (one circuit execution)."""
        circuit = self._template.bind_parameters(list(parameters))
        return self.evaluator(circuit)

    def energy_sweep(self, parameter_sets: Sequence[Sequence[float]]
                     ) -> List[float]:
        """⟨H⟩ at many parameter vectors, batched through the evaluator.

        Evaluators exposing ``evaluate_sweep`` (every
        :class:`~repro.vqe.energy.BackendEnergyEvaluator`) compile the ansatz
        template once and simulate the whole sweep in one batched pass;
        other evaluators fall back to one :meth:`energy` call per point.
        """
        sweep = getattr(self.evaluator, "evaluate_sweep", None)
        if sweep is not None:
            return [float(value)
                    for value in sweep(self._template, parameter_sets)]
        return [self.energy(parameters) for parameters in parameter_sets]

    def initial_parameters(self, seed: Optional[int] = None,
                           scale: float = 0.1) -> np.ndarray:
        """Small random angles around zero (the standard VQA initialization)."""
        rng = np.random.default_rng(seed)
        return scale * rng.standard_normal(self.ansatz.num_parameters())

    # -- execution -----------------------------------------------------------------
    def run(self, initial_parameters: Optional[Sequence[float]] = None,
            num_restarts: int = 1, seed: Optional[int] = None) -> VQEResult:
        """Run the optimization (optionally with random restarts, keeping the best)."""
        if num_restarts < 1:
            raise ValueError("need at least one restart")
        best: Optional[OptimizationResult] = None
        for restart in range(num_restarts):
            if initial_parameters is not None and restart == 0:
                start = np.asarray(initial_parameters, dtype=float)
            else:
                restart_seed = None if seed is None else seed + restart
                start = self.initial_parameters(restart_seed)
            result = self.optimizer.minimize(_BatchedEnergyObjective(self),
                                             start)
            if best is None or result.best_value < best.best_value:
                best = result
        return VQEResult(
            benchmark=self.benchmark_name,
            regime=self.regime_name,
            best_energy=best.best_value,
            best_parameters=best.best_parameters,
            reference_energy=self.reference_energy,
            num_evaluations=best.num_evaluations,
            history=best.history,
        )


def run_vqe_under_noise(hamiltonian: PauliSum, ansatz: Ansatz,
                        noise_model: Optional[NoiseModel],
                        optimizer: Optional[Optimizer] = None,
                        reference_energy: Optional[float] = None,
                        benchmark_name: str = "benchmark",
                        regime_name: str = "custom",
                        num_restarts: int = 1,
                        seed: Optional[int] = None) -> VQEResult:
    """Convenience wrapper: density-matrix VQE under a given noise model."""
    if noise_model is None:
        evaluator: EnergyEvaluator = BackendEnergyEvaluator.exact(hamiltonian)
    else:
        evaluator = BackendEnergyEvaluator.density_matrix(hamiltonian,
                                                          noise_model)
    vqe = VQE(hamiltonian, ansatz, evaluator, optimizer,
              reference_energy=reference_energy,
              benchmark_name=benchmark_name, regime_name=regime_name)
    return vqe.run(num_restarts=num_restarts, seed=seed)


def compare_regimes(hamiltonian: PauliSum, ansatz: Ansatz,
                    regime_a, regime_b,
                    reference_energy: float,
                    optimizer_factory=None,
                    benchmark_name: str = "benchmark",
                    num_restarts: int = 1,
                    seed: Optional[int] = None) -> Dict[str, object]:
    """Run the same VQE benchmark under two simulable regimes and compute γ.

    ``regime_a`` / ``regime_b`` are :class:`~repro.core.regimes.ExecutionRegime`
    instances with circuit-level noise models (NISQ, pQEC).  Returns a dict
    with both :class:`VQEResult` objects and the
    :class:`~repro.core.metrics.RegimeComparison`.
    """
    from ..core.metrics import RegimeComparison

    results = {}
    for label, regime in (("a", regime_a), ("b", regime_b)):
        optimizer = optimizer_factory() if optimizer_factory else CobylaOptimizer()
        results[label] = run_vqe_under_noise(
            hamiltonian, ansatz, regime.noise_model(), optimizer,
            reference_energy=reference_energy,
            benchmark_name=benchmark_name, regime_name=regime.name,
            num_restarts=num_restarts, seed=seed)
    comparison = RegimeComparison(
        benchmark=benchmark_name,
        reference_energy=reference_energy,
        energy_a=results["a"].best_energy,
        energy_b=results["b"].best_energy,
        regime_a=regime_a.name,
        regime_b=regime_b.name,
    )
    return {"result_a": results["a"], "result_b": results["b"],
            "comparison": comparison}


def compare_regimes_opr(hamiltonian: PauliSum, ansatz: Ansatz,
                        regime_a, regime_b,
                        reference_energy: float,
                        optimizer: Optional[Optimizer] = None,
                        benchmark_name: str = "benchmark",
                        use_cafqa_initialization: bool = True,
                        refine_iterations: int = 0,
                        seed: Optional[int] = None) -> Dict[str, object]:
    """γ comparison via Optimal Parameter Resilience (OPR) evaluation.

    Instead of running a full optimization inside each noisy regime (the flow
    of :func:`compare_regimes`, which needs a large shot/evaluation budget to
    converge), this variant exploits the OPR property the paper leans on
    (Sec. 2.1): parameters optimized noiselessly are (near-)optimal under
    noise as well.  The flow is

    1. optimize noiselessly (optionally starting from the CAFQA Clifford
       bootstrap),
    2. evaluate the resulting parameters under both regimes' noise models
       (optionally with a short per-regime refinement of
       ``refine_iterations`` COBYLA steps), and
    3. report γ against ``reference_energy``.
    """
    from ..core.metrics import RegimeComparison
    from ..mitigation.cafqa import cafqa_initialization
    from .optimizers import GeneticOptimizer

    noiseless = VQE(hamiltonian, ansatz, BackendEnergyEvaluator.exact(hamiltonian),
                    optimizer or CobylaOptimizer(max_iterations=300),
                    reference_energy=reference_energy,
                    benchmark_name=benchmark_name, regime_name="noiseless")
    initial = None
    if use_cafqa_initialization:
        bootstrap = cafqa_initialization(
            hamiltonian, ansatz,
            optimizer=GeneticOptimizer(population_size=14, generations=8,
                                       seed=seed),
            seed=seed)
        initial = bootstrap.angles
    noiseless_result = noiseless.run(initial_parameters=initial, seed=seed)
    best_parameters = noiseless_result.best_parameters

    results: Dict[str, VQEResult] = {}
    for label, regime in (("a", regime_a), ("b", regime_b)):
        evaluator = BackendEnergyEvaluator.density_matrix(
            hamiltonian, regime.noise_model())
        vqe = VQE(hamiltonian, ansatz, evaluator,
                  CobylaOptimizer(max_iterations=max(refine_iterations, 1)),
                  reference_energy=reference_energy,
                  benchmark_name=benchmark_name, regime_name=regime.name)
        energy_at_optimum = vqe.energy(best_parameters)
        parameters = np.asarray(best_parameters, dtype=float)
        history = [energy_at_optimum]
        evaluations = 1
        if refine_iterations > 0:
            refined = vqe.run(initial_parameters=best_parameters)
            evaluations += refined.num_evaluations
            history = refined.history
            if refined.best_energy < energy_at_optimum:
                energy_at_optimum = refined.best_energy
                parameters = refined.best_parameters
        results[label] = VQEResult(
            benchmark=benchmark_name, regime=regime.name,
            best_energy=energy_at_optimum, best_parameters=parameters,
            reference_energy=reference_energy,
            num_evaluations=evaluations, history=history)

    comparison = RegimeComparison(
        benchmark=benchmark_name,
        reference_energy=reference_energy,
        energy_a=results["a"].best_energy,
        energy_b=results["b"].best_energy,
        regime_a=regime_a.name,
        regime_b=regime_b.name,
    )
    return {"result_a": results["a"], "result_b": results["b"],
            "comparison": comparison, "noiseless": noiseless_result}
