"""Variational quantum eigensolver engine."""

from .clifford_vqe import (CLIFFORD_ANGLES, CliffordVQE, CliffordVQEResult,
                           best_noiseless_clifford_energy,
                           compare_regimes_clifford, indices_to_angles)
from .energy import BackendEnergyEvaluator, EnergyEvaluator
from .optimizers import (CobylaOptimizer, GeneticOptimizer, NelderMeadOptimizer,
                         OptimizationResult, Optimizer, SPSAOptimizer)
from .runner import (VQE, VQEResult, compare_regimes, compare_regimes_opr,
                     run_vqe_under_noise)

__all__ = [
    "BackendEnergyEvaluator",
    "CLIFFORD_ANGLES",
    "CliffordVQE",
    "CliffordVQEResult",
    "CobylaOptimizer",
    "EnergyEvaluator",
    "GeneticOptimizer",
    "NelderMeadOptimizer",
    "OptimizationResult",
    "Optimizer",
    "SPSAOptimizer",
    "VQE",
    "VQEResult",
    "best_noiseless_clifford_energy",
    "compare_regimes",
    "compare_regimes_clifford",
    "compare_regimes_opr",
    "indices_to_angles",
    "run_vqe_under_noise",
]
