"""Energy (expectation value) evaluators backing the VQE loop.

Three backends mirror the paper's evaluation infrastructure (Sec. 5.2):

* :class:`ExactEnergyEvaluator` — noiseless statevector expectation, used for
  reference energies and expressibility studies;
* :class:`DensityMatrixEnergyEvaluator` — exact noisy expectation under a
  Kraus noise model (the 8–12 qubit flow);
* :class:`CliffordEnergyEvaluator` — exact noisy expectation of Clifford
  (stabilizer-proxy) circuits under Pauli noise via Pauli propagation (the
  16–100 qubit flow); optionally cross-checkable against Monte-Carlo
  stabilizer trajectories.

All evaluators share the ``evaluate(circuit) -> float`` interface and count
their invocations, which the optimizers report.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..circuits.transpile import decompose_to_clifford_rz, merge_rz_runs
from ..operators.pauli import PauliSum
from ..simulators.density_matrix import DensityMatrixSimulator
from ..simulators.noise import NoiseModel
from ..simulators.pauli_propagation import expectation_value
from ..simulators.stabilizer import StabilizerSimulator
from ..simulators.statevector import StatevectorSimulator


class EnergyEvaluator:
    """Base class: evaluates ⟨H⟩ of the state prepared by a circuit."""

    def __init__(self, hamiltonian: PauliSum):
        self.hamiltonian = hamiltonian
        self.num_evaluations = 0

    def evaluate(self, circuit: QuantumCircuit) -> float:
        raise NotImplementedError

    def __call__(self, circuit: QuantumCircuit) -> float:
        self.num_evaluations += 1
        return self.evaluate(circuit)


class ExactEnergyEvaluator(EnergyEvaluator):
    """Noiseless statevector expectation."""

    def __init__(self, hamiltonian: PauliSum):
        super().__init__(hamiltonian)
        self._simulator = StatevectorSimulator()

    def evaluate(self, circuit: QuantumCircuit) -> float:
        return self._simulator.expectation(circuit, self.hamiltonian)


class DensityMatrixEnergyEvaluator(EnergyEvaluator):
    """Noisy expectation via exact density-matrix simulation."""

    def __init__(self, hamiltonian: PauliSum,
                 noise_model: Optional[NoiseModel] = None,
                 canonicalize: bool = True):
        super().__init__(hamiltonian)
        self.noise_model = noise_model
        self.canonicalize = canonicalize
        self._simulator = DensityMatrixSimulator(noise_model)

    def evaluate(self, circuit: QuantumCircuit) -> float:
        if self.canonicalize:
            circuit = merge_rz_runs(decompose_to_clifford_rz(circuit))
        return self._simulator.expectation(circuit, self.hamiltonian)


class CliffordEnergyEvaluator(EnergyEvaluator):
    """Noisy expectation of Clifford circuits via exact Pauli propagation.

    The circuit must have all rotation angles at multiples of π/2 (the
    stabilizer-proxy restriction of Sec. 5.2.2).  Pauli noise is exact; other
    channels in the noise model are Pauli-twirled.
    """

    def __init__(self, hamiltonian: PauliSum,
                 noise_model: Optional[NoiseModel] = None,
                 canonicalize: bool = True,
                 include_idle: bool = True):
        super().__init__(hamiltonian)
        self.noise_model = noise_model
        self.canonicalize = canonicalize
        self.include_idle = include_idle

    def evaluate(self, circuit: QuantumCircuit) -> float:
        if self.canonicalize:
            circuit = merge_rz_runs(decompose_to_clifford_rz(circuit))
        return expectation_value(circuit, self.hamiltonian, self.noise_model,
                                 include_idle=self.include_idle)


class MonteCarloStabilizerEvaluator(EnergyEvaluator):
    """Monte-Carlo stabilizer-trajectory estimate (cross-validation backend)."""

    def __init__(self, hamiltonian: PauliSum,
                 noise_model: Optional[NoiseModel] = None,
                 trajectories: int = 200, seed: Optional[int] = None):
        super().__init__(hamiltonian)
        self.noise_model = noise_model
        self.trajectories = trajectories
        self._simulator = StabilizerSimulator(noise_model, seed=seed)

    def evaluate(self, circuit: QuantumCircuit) -> float:
        circuit = merge_rz_runs(decompose_to_clifford_rz(circuit))
        return self._simulator.expectation(circuit, self.hamiltonian,
                                           trajectories=self.trajectories)
