"""Energy (expectation value) evaluators backing the VQE loop.

Since the execution-API redesign every evaluator dispatches through the
unified execution layer, which adds fingerprint-keyed LRU caching, in-batch
deduplication and regime-aware routing on top of the paper's four execution
paths (Sec. 5.2).  Evaluations ride the grouped-observable engine
(:meth:`repro.execution.Executor.evaluate_observable`): one circuit
evolution serves every Pauli term of the Hamiltonian, with per-(circuit,
term) caching.  :class:`BackendEnergyEvaluator` is the one evaluator; its
classmethod presets pin the paper's historical regimes:

* :meth:`BackendEnergyEvaluator.exact` — noiseless statevector expectation,
  used for reference energies and expressibility studies;
* :meth:`BackendEnergyEvaluator.density_matrix` — exact noisy expectation
  under a Kraus noise model (the 8–12 qubit flow);
* :meth:`BackendEnergyEvaluator.clifford` — exact noisy expectation of
  Clifford (stabilizer-proxy) circuits under Pauli noise via Pauli
  propagation (the 16–100 qubit flow);
* :meth:`BackendEnergyEvaluator.monte_carlo_stabilizer` — Monte-Carlo
  stabilizer trajectories (cross-validation backend);
* pass ``backend="auto"`` to the constructor to route per circuit, or any
  registry name.

The historical classes (:class:`ExactEnergyEvaluator`,
:class:`DensityMatrixEnergyEvaluator`, :class:`CliffordEnergyEvaluator`,
:class:`MonteCarloStabilizerEvaluator`) remain as deprecated shims over
those presets — they emit :class:`DeprecationWarning` and carry migration
tables in their docstrings.

All evaluators share the ``evaluate(circuit) -> float`` interface and count
their invocations, which the optimizers report.
"""

from __future__ import annotations

from typing import Optional, Union


from ..circuits.circuit import QuantumCircuit
from ..circuits.transpile import decompose_to_clifford_rz, merge_rz_runs
from ..execution.backend import Backend
from ..execution.executor import Executor, default_executor
from ..execution.task import ExecutionTask
from ..operators.pauli import PauliSum
from ..simulators.noise import NoiseModel


class EnergyEvaluator:
    """Base class: evaluates ⟨H⟩ of the state prepared by a circuit."""

    def __init__(self, hamiltonian: PauliSum):
        self.hamiltonian = hamiltonian
        self.num_evaluations = 0

    def evaluate(self, circuit: QuantumCircuit) -> float:
        raise NotImplementedError

    def __call__(self, circuit: QuantumCircuit) -> float:
        self.num_evaluations += 1
        return self.evaluate(circuit)


class BackendEnergyEvaluator(EnergyEvaluator):
    """Evaluates ⟨H⟩ through the unified execution API.

    ``backend`` is a registry name (``"statevector"``, ``"density_matrix"``,
    ``"stabilizer"``, ``"pauli_propagation"``), ``"auto"`` for regime-aware
    routing, or a :class:`~repro.execution.backend.Backend` instance.
    ``canonicalize`` rewrites the circuit over Clifford+Rz before execution
    (the gate set the regimes' noise models are calibrated against).

    By default (``grouped=True``) each evaluation takes the
    grouped-observable fast path: the circuit is evolved **once** and every
    Pauli term of the Hamiltonian is read off the final state, with
    per-(circuit, term) caching so overlapping Hamiltonians and repeated
    optimizer queries skip the evolution entirely.  ``grouped=False`` falls
    back to submitting one whole-observable :class:`ExecutionTask` through
    :func:`repro.execution.execute`.  Example::

        evaluator = BackendEnergyEvaluator(hamiltonian, backend="auto")
        energy = evaluator(ansatz.build().bind_parameters(theta))
    """

    def __init__(self, hamiltonian: PauliSum,
                 backend: Union[str, Backend] = "auto",
                 noise_model: Optional[NoiseModel] = None,
                 canonicalize: bool = False,
                 include_idle: bool = True,
                 trajectories: Optional[int] = None,
                 executor: Optional[Executor] = None,
                 use_cache: bool = True,
                 grouped: bool = True,
                 parallel: Optional[str] = None,
                 max_workers: Optional[int] = None,
                 policy=None):
        super().__init__(hamiltonian)
        self.backend = backend
        self.noise_model = noise_model
        self.canonicalize = canonicalize
        self.include_idle = include_idle
        self.trajectories = trajectories
        self.use_cache = use_cache
        self.grouped = grouped
        # Fan-out policy forwarded to every executor call: ``policy`` is an
        # ExecutionPolicy (mode, workers, broker, retry in one value); the
        # legacy ``parallel`` / ``max_workers`` keywords still work and win
        # over its fields.  None everywhere defers to the executor's own
        # defaults.
        self.parallel = parallel
        self.max_workers = max_workers
        self.policy = policy
        self._executor = executor

    def _prepare_circuit(self, circuit: QuantumCircuit) -> QuantumCircuit:
        if self.canonicalize:
            circuit = merge_rz_runs(decompose_to_clifford_rz(circuit))
        return circuit

    def _make_task(self, circuit: QuantumCircuit) -> ExecutionTask:
        return ExecutionTask(circuit=self._prepare_circuit(circuit),
                             observable=self.hamiltonian,
                             noise_model=self.noise_model,
                             trajectories=self.trajectories,
                             include_idle=self.include_idle)

    def evaluate(self, circuit: QuantumCircuit) -> float:
        executor = self._executor or default_executor()
        if self.grouped:
            return executor.evaluate_observable(
                self._prepare_circuit(circuit), self.hamiltonian,
                noise_model=self.noise_model, backend=self.backend,
                trajectories=self.trajectories,
                include_idle=self.include_idle,
                use_cache=self.use_cache, parallel=self.parallel,
                max_workers=self.max_workers, policy=self.policy)[0]
        result = executor.run(self._make_task(circuit), backend=self.backend,
                              use_cache=self.use_cache,
                              parallel=self.parallel,
                              max_workers=self.max_workers,
                              policy=self.policy)[0]
        return float(result.value)

    def evaluate_sweep(self, template: QuantumCircuit,
                       parameter_sets) -> list:
        """⟨H⟩ at every point of a parameter sweep over one ansatz template.

        The batched optimizer entry point: instead of one :meth:`evaluate`
        call per parameter vector, the whole sweep goes through
        :meth:`repro.execution.Executor.evaluate_sweep` — the template is
        compiled once, each point only rebinds the parametric gate matrices,
        and noiseless statevector sweeps execute as a single stacked NumPy
        pass.  SPSA ± pairs, parameter-shift pairs, genetic populations and
        classifier batches all ride this.  Counts ``len(parameter_sets)``
        evaluations; returns energies aligned with the input.  Example::

            energies = evaluator.evaluate_sweep(ansatz.build(), sweep_points)
        """
        parameter_sets = [list(values) for values in parameter_sets]
        self.num_evaluations += len(parameter_sets)
        executor = self._executor or default_executor()
        if self.canonicalize:
            # The Clifford+Rz rewrite runs on bound circuits; the grouped
            # engine still serves the whole batch in one call.
            circuits = [self._prepare_circuit(template.bind_parameters(values))
                        for values in parameter_sets]
            return executor.evaluate_observable(
                circuits, self.hamiltonian, noise_model=self.noise_model,
                backend=self.backend, trajectories=self.trajectories,
                include_idle=self.include_idle, use_cache=self.use_cache,
                parallel=self.parallel, max_workers=self.max_workers,
                policy=self.policy)
        return executor.evaluate_sweep(
            template, parameter_sets, self.hamiltonian,
            noise_model=self.noise_model, backend=self.backend,
            trajectories=self.trajectories, include_idle=self.include_idle,
            use_cache=self.use_cache, parallel=self.parallel,
            max_workers=self.max_workers, policy=self.policy)

    # -- regime presets ------------------------------------------------------
    # Single source of truth for the historical evaluator configurations;
    # the legacy classes below are pure shims over these kwargs.
    @staticmethod
    def _exact_config(hamiltonian: PauliSum) -> dict:
        return dict(hamiltonian=hamiltonian, backend="statevector")

    @staticmethod
    def _density_matrix_config(hamiltonian: PauliSum,
                               noise_model: Optional[NoiseModel] = None,
                               canonicalize: bool = True) -> dict:
        return dict(hamiltonian=hamiltonian, backend="density_matrix",
                    noise_model=noise_model, canonicalize=canonicalize)

    @staticmethod
    def _clifford_config(hamiltonian: PauliSum,
                         noise_model: Optional[NoiseModel] = None,
                         canonicalize: bool = True,
                         include_idle: bool = True) -> dict:
        return dict(hamiltonian=hamiltonian, backend="pauli_propagation",
                    noise_model=noise_model, canonicalize=canonicalize,
                    include_idle=include_idle)

    @staticmethod
    def _stabilizer_config(hamiltonian: PauliSum,
                           noise_model: Optional[NoiseModel] = None,
                           trajectories: int = 200,
                           seed: Optional[int] = None) -> dict:
        from ..execution.adapters import StabilizerBackend
        # A seeded ensemble is a deterministic function of the task (per-
        # trajectory SeedSequence spawning), so its values are cacheable —
        # including into the persistent disk cache, which is what lets a
        # warm re-run of a Monte-Carlo workload do zero evolutions.
        # Unseeded ensembles stay uncached (fresh randomness every call).
        return dict(hamiltonian=hamiltonian,
                    backend=StabilizerBackend(seed=seed),
                    noise_model=noise_model, canonicalize=True,
                    trajectories=trajectories, use_cache=seed is not None)

    @classmethod
    def exact(cls, hamiltonian: PauliSum) -> "BackendEnergyEvaluator":
        """Noiseless statevector preset (what ``ExactEnergyEvaluator`` pins)."""
        return cls(**cls._exact_config(hamiltonian))

    @classmethod
    def density_matrix(cls, hamiltonian: PauliSum,
                       noise_model: Optional[NoiseModel] = None,
                       canonicalize: bool = True) -> "BackendEnergyEvaluator":
        """Exact-noisy density-matrix preset (the 8–12 qubit flow)."""
        return cls(**cls._density_matrix_config(hamiltonian, noise_model,
                                                canonicalize))

    @classmethod
    def clifford(cls, hamiltonian: PauliSum,
                 noise_model: Optional[NoiseModel] = None,
                 canonicalize: bool = True,
                 include_idle: bool = True) -> "BackendEnergyEvaluator":
        """Pauli-propagation preset (the 16–100 qubit stabilizer proxy)."""
        return cls(**cls._clifford_config(hamiltonian, noise_model,
                                          canonicalize, include_idle))

    @classmethod
    def monte_carlo_stabilizer(cls, hamiltonian: PauliSum,
                               noise_model: Optional[NoiseModel] = None,
                               trajectories: int = 200,
                               seed: Optional[int] = None
                               ) -> "BackendEnergyEvaluator":
        """Seeded Monte-Carlo stabilizer preset (cross-validation backend)."""
        return cls(**cls._stabilizer_config(hamiltonian, noise_model,
                                            trajectories, seed))
