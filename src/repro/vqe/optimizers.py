"""Classical optimizers for the VQE outer loop.

The paper uses COBYLA and ImFil for the continuous (density-matrix) flow and
a genetic algorithm over the discrete Clifford parameter space for the
16–100 qubit flow (Sec. 5.2).  This module provides:

* :class:`CobylaOptimizer` and :class:`NelderMeadOptimizer` — thin wrappers
  over ``scipy.optimize.minimize``;
* :class:`SPSAOptimizer` — simultaneous perturbation stochastic approximation
  implemented from scratch (a standard derivative-free VQA optimizer, used
  here in the ImFil role);
* :class:`GeneticOptimizer` — integer-chromosome GA with tournament
  selection, uniform crossover, mutation and elitism, used by the
  Clifford-restricted VQE.

All continuous optimizers return an :class:`OptimizationResult`; the GA's
result carries integer parameters (indices into {0, π/2, π, 3π/2}).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np
from scipy import optimize as scipy_optimize

ObjectiveFn = Callable[[np.ndarray], float]


@dataclass
class OptimizationResult:
    """Outcome of a classical optimization run."""

    best_parameters: np.ndarray
    best_value: float
    num_evaluations: int
    history: List[float] = field(default_factory=list)
    converged: bool = True

    def __repr__(self):
        return (f"OptimizationResult(value={self.best_value:.6f}, "
                f"evals={self.num_evaluations}, params={len(self.best_parameters)})")


class Optimizer:
    """Base class: minimizes an objective over real parameters."""

    def minimize(self, objective: ObjectiveFn, initial_parameters: Sequence[float]
                 ) -> OptimizationResult:
        raise NotImplementedError


class _TrackingObjective:
    """Wraps an objective to record evaluations and the running best.

    Objectives may expose an optional ``evaluate_batch(parameter_sets) ->
    values`` method (the batched-sweep protocol — see
    :meth:`repro.vqe.energy.BackendEnergyEvaluator.evaluate_sweep`); batch-
    aware optimizers route grouped queries through :meth:`batch` so the whole
    set is simulated in one compiled pass instead of one call per point.
    """

    def __init__(self, objective: ObjectiveFn):
        self._objective = objective
        self.history: List[float] = []
        self.best_value = math.inf
        self.best_parameters: Optional[np.ndarray] = None

    def __call__(self, parameters: np.ndarray) -> float:
        value = float(self._objective(np.asarray(parameters, dtype=float)))
        self._record(parameters, value)
        return value

    def _record(self, parameters, value: float) -> None:
        self.history.append(value)
        if value < self.best_value:
            self.best_value = value
            self.best_parameters = np.asarray(parameters, dtype=float).copy()

    def batch(self, parameter_sets: Sequence[np.ndarray]) -> List[float]:
        """Evaluate several parameter vectors, batched when supported."""
        parameter_sets = [np.asarray(p, dtype=float) for p in parameter_sets]
        batch_fn = getattr(self._objective, "evaluate_batch", None)
        if batch_fn is None:
            return [self(parameters) for parameters in parameter_sets]
        values = [float(value) for value in batch_fn(parameter_sets)]
        for parameters, value in zip(parameter_sets, values):
            self._record(parameters, value)
        return values

    @property
    def num_evaluations(self) -> int:
        return len(self.history)


class CobylaOptimizer(Optimizer):
    """COBYLA (the paper's primary continuous optimizer).

    Gradient-free trust-region optimization via
    ``scipy.optimize.minimize(method="COBYLA")``, used for every continuous
    VQE/QAOA run in the evaluation.  ``rhobeg`` sets the initial step;
    convergence is declared at ``tolerance``.  Example::

        result = CobylaOptimizer(max_iterations=200).minimize(
            lambda theta: evaluator(ansatz.build().bind_parameters(theta)),
            initial_parameters)
    """

    def __init__(self, max_iterations: int = 150, rhobeg: float = 0.5,
                 tolerance: float = 1e-4):
        self.max_iterations = max_iterations
        self.rhobeg = rhobeg
        self.tolerance = tolerance

    def minimize(self, objective: ObjectiveFn,
                 initial_parameters: Sequence[float]) -> OptimizationResult:
        tracker = _TrackingObjective(objective)
        result = scipy_optimize.minimize(
            tracker, np.asarray(initial_parameters, dtype=float),
            method="COBYLA",
            options={"maxiter": self.max_iterations, "rhobeg": self.rhobeg,
                     "tol": self.tolerance})
        return OptimizationResult(
            best_parameters=tracker.best_parameters,
            best_value=tracker.best_value,
            num_evaluations=tracker.num_evaluations,
            history=tracker.history,
            converged=bool(result.success) or tracker.best_value < math.inf,
        )


class NelderMeadOptimizer(Optimizer):
    """Nelder–Mead simplex optimizer."""

    def __init__(self, max_iterations: int = 200, tolerance: float = 1e-5):
        self.max_iterations = max_iterations
        self.tolerance = tolerance

    def minimize(self, objective: ObjectiveFn,
                 initial_parameters: Sequence[float]) -> OptimizationResult:
        tracker = _TrackingObjective(objective)
        result = scipy_optimize.minimize(
            tracker, np.asarray(initial_parameters, dtype=float),
            method="Nelder-Mead",
            options={"maxiter": self.max_iterations, "fatol": self.tolerance,
                     "xatol": self.tolerance})
        return OptimizationResult(
            best_parameters=tracker.best_parameters,
            best_value=tracker.best_value,
            num_evaluations=tracker.num_evaluations,
            history=tracker.history,
            converged=bool(result.success) or tracker.best_value < math.inf,
        )


class SPSAOptimizer(Optimizer):
    """Simultaneous Perturbation Stochastic Approximation.

    Standard SPSA gain sequences ``a_k = a / (k + 1 + A)^α`` and
    ``c_k = c / (k + 1)^γ`` with the usual α = 0.602, γ = 0.101 defaults.
    Two objective evaluations per iteration regardless of dimension, which is
    what makes it attractive for noisy VQA landscapes.  When the objective
    exposes ``evaluate_batch`` (the batched-sweep protocol), each
    iteration's ± pair is simulated together in one compiled batch.
    """

    def __init__(self, max_iterations: int = 120, a: float = 0.2, c: float = 0.15,
                 alpha: float = 0.602, gamma: float = 0.101,
                 stability_offset: Optional[float] = None,
                 seed: Optional[int] = None):
        self.max_iterations = max_iterations
        self.a = a
        self.c = c
        self.alpha = alpha
        self.gamma = gamma
        self.stability_offset = stability_offset
        self._rng = np.random.default_rng(seed)

    def minimize(self, objective: ObjectiveFn,
                 initial_parameters: Sequence[float]) -> OptimizationResult:
        tracker = _TrackingObjective(objective)
        parameters = np.asarray(initial_parameters, dtype=float).copy()
        offset = self.stability_offset
        if offset is None:
            offset = 0.1 * self.max_iterations
        tracker(parameters)
        for iteration in range(self.max_iterations):
            a_k = self.a / ((iteration + 1 + offset) ** self.alpha)
            c_k = self.c / ((iteration + 1) ** self.gamma)
            delta = self._rng.choice([-1.0, 1.0], size=parameters.shape)
            value_plus, value_minus = tracker.batch(
                [parameters + c_k * delta, parameters - c_k * delta])
            gradient = (value_plus - value_minus) / (2.0 * c_k) * delta
            parameters = parameters - a_k * gradient
        tracker(parameters)
        return OptimizationResult(
            best_parameters=tracker.best_parameters,
            best_value=tracker.best_value,
            num_evaluations=tracker.num_evaluations,
            history=tracker.history,
        )


IntegerObjectiveFn = Callable[[np.ndarray], float]


class GeneticOptimizer:
    """Integer-chromosome genetic algorithm for the discrete Clifford search.

    Chromosomes are vectors over ``{0, …, num_values − 1}`` (for Clifford VQE
    the values index rotation angles k·π/2).  Tournament selection, uniform
    crossover, per-gene mutation and elitism; minimizes the objective.  When
    the objective exposes ``evaluate_batch`` (the batched-sweep protocol),
    each generation's whole population is evaluated in one batch — repeated
    elites and duplicate chromosomes collapse onto cached results.
    """

    def __init__(self, population_size: int = 24, generations: int = 20,
                 num_values: int = 4, mutation_rate: float = 0.08,
                 crossover_rate: float = 0.7, elite_count: int = 2,
                 tournament_size: int = 3, seed: Optional[int] = None):
        if population_size < 4:
            raise ValueError("population must have at least 4 individuals")
        if elite_count >= population_size:
            raise ValueError("elite_count must be smaller than the population")
        self.population_size = population_size
        self.generations = generations
        self.num_values = num_values
        self.mutation_rate = mutation_rate
        self.crossover_rate = crossover_rate
        self.elite_count = elite_count
        self.tournament_size = tournament_size
        self._rng = np.random.default_rng(seed)

    # -- GA machinery -----------------------------------------------------------
    def _tournament(self, fitness: np.ndarray) -> int:
        contenders = self._rng.choice(len(fitness), size=self.tournament_size,
                                      replace=False)
        return int(contenders[np.argmin(fitness[contenders])])

    def _crossover(self, parent_a: np.ndarray, parent_b: np.ndarray) -> np.ndarray:
        if self._rng.random() > self.crossover_rate:
            return parent_a.copy()
        mask = self._rng.random(parent_a.shape) < 0.5
        child = np.where(mask, parent_a, parent_b)
        return child.copy()

    def _mutate(self, chromosome: np.ndarray) -> np.ndarray:
        mask = self._rng.random(chromosome.shape) < self.mutation_rate
        random_genes = self._rng.integers(0, self.num_values, size=chromosome.shape)
        return np.where(mask, random_genes, chromosome)

    def _evaluate_population(self, objective: IntegerObjectiveFn,
                             population: np.ndarray) -> np.ndarray:
        batch_fn = getattr(objective, "evaluate_batch", None)
        if batch_fn is not None:
            return np.array([float(value)
                             for value in batch_fn(list(population))])
        return np.array([float(objective(individual))
                         for individual in population])

    # -- public API ----------------------------------------------------------------
    def minimize(self, objective: IntegerObjectiveFn, num_parameters: int,
                 initial_population: Optional[np.ndarray] = None
                 ) -> OptimizationResult:
        if initial_population is None:
            population = self._rng.integers(
                0, self.num_values, size=(self.population_size, num_parameters))
            # Seed one all-zero chromosome: the identity-angle ansatz is often
            # a strong starting point (CAFQA-style initialization).
            population[0] = 0
        else:
            population = np.asarray(initial_population, dtype=int).copy()
            if population.shape != (self.population_size, num_parameters):
                raise ValueError("initial population has the wrong shape")
        history: List[float] = []
        num_evaluations = 0
        fitness = self._evaluate_population(objective, population)
        num_evaluations += len(population)
        for _ in range(self.generations):
            order = np.argsort(fitness)
            history.append(float(fitness[order[0]]))
            next_population = [population[i].copy() for i in order[:self.elite_count]]
            while len(next_population) < self.population_size:
                parent_a = population[self._tournament(fitness)]
                parent_b = population[self._tournament(fitness)]
                child = self._mutate(self._crossover(parent_a, parent_b))
                next_population.append(child)
            population = np.stack(next_population)
            fitness = self._evaluate_population(objective, population)
            num_evaluations += len(population)
        best_index = int(np.argmin(fitness))
        history.append(float(fitness[best_index]))
        return OptimizationResult(
            best_parameters=population[best_index].astype(float),
            best_value=float(fitness[best_index]),
            num_evaluations=num_evaluations,
            history=history,
        )
