"""Closed-form gate-count formulas and the Sec. 4.4 ansatz-design rule.

The paper derives when an ansatz family benefits from pQEC over NISQ by
comparing the growth rates of its dominant error sources: CNOT errors in the
NISQ regime versus injected-Rz errors in the pQEC regime.  With the paper's
error rates (CNOT 1e-3 in NISQ, injected Rz 0.76e-3 in pQEC) the rule is

    pQEC wins   ⇔   #CNOT  >  (p_Rz / p_CNOT) · #Rz_runtime  ≈  0.76 · #Rz,

where ``#Rz_runtime = 2·N·p·E[g]`` counts the rotations actually executed
(E[g] = 2 expected injections per logical rotation).  This module provides
the per-family count formulas and the break-even solver, which the Fig. 11
benchmark validates against simulation (crossover ≈ 12–13 qubits for
``blocked_all_to_all``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

#: Ratio of injected-Rz error rate to NISQ CNOT error rate at p_phys = 1e-3
#: (the Lao–Criger injection error 23/30·p over the CNOT error p).
DEFAULT_BREAK_EVEN_RATIO = 23.0 / 30.0

#: Expected number of injected magic states per logical Rz rotation
#: (geometric repeat-until-success with success probability 1/2).
DEFAULT_EXPECTED_INJECTIONS = 2.0


def linear_cnot_count(num_qubits: int, depth: int) -> int:
    """CNOTs of the linear (ring) hardware-efficient ansatz: N·p."""
    return num_qubits * depth


def fche_cnot_count(num_qubits: int, depth: int) -> int:
    """CNOTs of the fully-connected hardware-efficient ansatz: N(N−1)/2·p."""
    return num_qubits * (num_qubits - 1) // 2 * depth


def blocked_cnot_count(num_qubits: int, depth: int) -> int:
    """CNOTs of blocked_all_to_all: (N²/2 − 5N + 20)·p (paper Sec. 4.4)."""
    n = num_qubits
    return int((n * n / 2 - 5 * n + 20) * depth)


def rotation_count(num_qubits: int, depth: int) -> int:
    """Logical rotations of the hardware-efficient families: 2·N·p."""
    return 2 * num_qubits * depth


def runtime_rz_count(num_qubits: int, depth: int,
                     expected_injections: float = DEFAULT_EXPECTED_INJECTIONS) -> float:
    """Runtime Rz count including repeat-until-success re-injections."""
    return rotation_count(num_qubits, depth) * expected_injections


# Exact (float-valued) count formulas used for ratio analysis; the integer
# functions above truncate, which matters only at sizes the ansatz cannot be
# instantiated at (odd N), where the design-rule analysis still evaluates them.
_CNOT_FORMULAS: Dict[str, Callable[[int, int], float]] = {
    "linear": lambda n, p: float(n * p),
    "fully_connected": lambda n, p: n * (n - 1) / 2.0 * p,
    "blocked_all_to_all": lambda n, p: (n * n / 2.0 - 5.0 * n + 20.0) * p,
}


def cnot_to_rz_ratio(family: str, num_qubits: int, depth: int = 1,
                     expected_injections: float = DEFAULT_EXPECTED_INJECTIONS) -> float:
    """CNOT-to-runtime-Rz ratio of an ansatz family."""
    if family not in _CNOT_FORMULAS:
        supported = ", ".join(sorted(_CNOT_FORMULAS))
        raise ValueError(f"unknown ansatz family {family!r}; supported: {supported}")
    cnots = _CNOT_FORMULAS[family](num_qubits, depth)
    rz = runtime_rz_count(num_qubits, depth, expected_injections)
    return cnots / rz


def blocked_ratio_formula(num_qubits: int) -> float:
    """The paper's closed form for blocked_all_to_all: N/8 − 5/4 + 5/N."""
    n = num_qubits
    return n / 8.0 - 5.0 / 4.0 + 5.0 / n


@dataclass(frozen=True)
class RegimePreference:
    """Outcome of the Sec. 4.4 design rule for one ansatz instance."""

    family: str
    num_qubits: int
    ratio: float
    break_even: float

    @property
    def prefers_pqec(self) -> bool:
        return self.ratio > self.break_even


def regime_preference(family: str, num_qubits: int, depth: int = 1,
                      break_even: float = DEFAULT_BREAK_EVEN_RATIO,
                      expected_injections: float = DEFAULT_EXPECTED_INJECTIONS
                      ) -> RegimePreference:
    """Does this ansatz instance prefer pQEC over NISQ at large depth?"""
    ratio = cnot_to_rz_ratio(family, num_qubits, depth, expected_injections)
    return RegimePreference(family=family, num_qubits=num_qubits,
                            ratio=ratio, break_even=break_even)


def pqec_crossover_qubits(family: str,
                          break_even: float = DEFAULT_BREAK_EVEN_RATIO,
                          expected_injections: float = DEFAULT_EXPECTED_INJECTIONS,
                          max_qubits: int = 4096) -> Optional[int]:
    """Smallest qubit count above which the family prefers pQEC (None if never).

    For ``blocked_all_to_all`` the paper's analysis gives N ≥ 13; because the
    ansatz is only defined on N = 4k+4 the first realizable instance is
    N = 16, with the empirical crossover observed around 12 qubits (Fig. 11).
    The closed-form count formula is evaluated at every N (including sizes the
    ansatz cannot be instantiated at) so the analytic crossover is reported
    faithfully.
    """
    for num_qubits in range(4, max_qubits + 1):
        ratio = cnot_to_rz_ratio(family, num_qubits, 1, expected_injections)
        if ratio > break_even:
            return num_qubits
    return None
