"""UCCSD-style chemistry ansatz (compact unitary coupled-cluster circuits).

The paper notes (Sec. 4.4) that UCCSD ansatze share the FCHE's O(N) CNOT:Rz
ratio and are therefore naturally better suited to pQEC than to NISQ.  This
module provides a compact UCCSD-family ansatz built from exponentials of
Pauli strings:

* generalized single excitations ``exp(-i θ/2 (X_p Y_q − Y_p X_q))`` between
  orbital pairs, and
* paired double excitations between adjacent orbital pairs (a k-UpCCGSD-like
  restriction that keeps the circuit depth manageable on 12-qubit problems).

Each excitation is compiled in the standard way: single-qubit basis changes,
a CNOT ladder onto the last qubit, an Rz rotation, and the ladder undone —
so the entangling content is CNOT ladders and the non-Clifford content is a
single Rz per Pauli-string exponential, exactly the structure the pQEC
execution model targets.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..circuits.circuit import QuantumCircuit
from ..circuits.parameters import ParameterVector
from .base import Ansatz, MacroOp


def _pauli_exponential(circuit: QuantumCircuit, pauli_axes: Sequence[str],
                       qubits: Sequence[int], angle) -> None:
    """Append exp(-i angle/2 · P) for a Pauli string P given by axes/qubits."""
    if len(pauli_axes) != len(qubits):
        raise ValueError("axes and qubits must have equal length")
    active = [(axis.upper(), qubit) for axis, qubit in zip(pauli_axes, qubits)
              if axis.upper() != "I"]
    if not active:
        return
    # Basis change into the Z basis.
    for axis, qubit in active:
        if axis == "X":
            circuit.h(qubit)
        elif axis == "Y":
            circuit.sdg(qubit)
            circuit.h(qubit)
    # CNOT ladder onto the last active qubit.
    chain = [qubit for _, qubit in active]
    for first, second in zip(chain[:-1], chain[1:]):
        circuit.cx(first, second)
    circuit.rz(angle, chain[-1])
    for first, second in reversed(list(zip(chain[:-1], chain[1:]))):
        circuit.cx(first, second)
    # Undo the basis change.
    for axis, qubit in reversed(active):
        if axis == "X":
            circuit.h(qubit)
        elif axis == "Y":
            circuit.h(qubit)
            circuit.s(qubit)


class UCCSDAnsatz(Ansatz):
    """Compact UCCSD-family ansatz over ``num_qubits`` spin orbitals."""

    def __init__(self, num_qubits: int, depth: int = 1,
                 include_doubles: bool = True):
        super().__init__(num_qubits, depth, name="uccsd")
        self.include_doubles = bool(include_doubles)

    # -- excitation catalogue -----------------------------------------------------
    def single_excitations(self) -> List[Tuple[int, int]]:
        """Generalized singles between neighbouring orbital pairs (p, p+1)."""
        return [(p, p + 1) for p in range(self.num_qubits - 1)]

    def double_excitations(self) -> List[Tuple[int, int, int, int]]:
        """Paired doubles between adjacent orbital pairs (p, p+1, p+2, p+3)."""
        if not self.include_doubles:
            return []
        return [(p, p + 1, p + 2, p + 3)
                for p in range(0, self.num_qubits - 3, 2)]

    def num_parameters(self) -> int:
        per_layer = len(self.single_excitations()) + len(self.double_excitations())
        return per_layer * self.depth

    # -- macro schedule (for the lattice-surgery scheduler) -------------------------
    def entangling_clusters(self) -> List[Tuple[int, Tuple[int, ...]]]:
        clusters: List[Tuple[int, Tuple[int, ...]]] = []
        for p, q in self.single_excitations():
            clusters.append((p, (q,)))
            clusters.append((p, (q,)))  # ladder down and back up
        for p, q, r, s in self.double_excitations():
            for control, target in ((p, q), (q, r), (r, s)):
                clusters.append((control, (target,)))
            for control, target in ((r, s), (q, r), (p, q)):
                clusters.append((control, (target,)))
        return clusters

    def macro_schedule(self, include_measurement: bool = True) -> List[MacroOp]:
        schedule: List[MacroOp] = []
        for _ in range(self.depth):
            for p, q in self.single_excitations():
                schedule.append(MacroOp("rotation_layer", qubits=(p, q)))
                schedule.append(MacroOp("cnot_cluster", control=p, targets=(q,)))
                schedule.append(MacroOp("rotation_layer", qubits=(q,)))
                schedule.append(MacroOp("cnot_cluster", control=p, targets=(q,)))
            for p, q, r, s in self.double_excitations():
                schedule.append(MacroOp("rotation_layer", qubits=(p, q, r, s)))
                for control, target in ((p, q), (q, r), (r, s)):
                    schedule.append(MacroOp("cnot_cluster", control=control,
                                            targets=(target,)))
                schedule.append(MacroOp("rotation_layer", qubits=(s,)))
                for control, target in ((r, s), (q, r), (p, q)):
                    schedule.append(MacroOp("cnot_cluster", control=control,
                                            targets=(target,)))
        if include_measurement:
            schedule.append(MacroOp("measure_layer",
                                    qubits=tuple(range(self.num_qubits))))
        return schedule

    # -- circuit ------------------------------------------------------------------
    def build(self, parameter_prefix: str = "theta",
              include_measurement: bool = False) -> QuantumCircuit:
        circuit = QuantumCircuit(self.num_qubits, name=self.name)
        parameters = ParameterVector(parameter_prefix, self.num_parameters())
        index = 0
        for _ in range(self.depth):
            for p, q in self.single_excitations():
                angle = parameters[index]
                index += 1
                # exp(-iθ/2 (X_p Y_q − Y_p X_q)) split into two commuting-ish
                # Pauli rotations with opposite signs (Trotter order 1).
                _pauli_exponential(circuit, "XY", (p, q), angle)
                _pauli_exponential(circuit, "YX", (p, q), -angle)
            for p, q, r, s in self.double_excitations():
                angle = parameters[index]
                index += 1
                _pauli_exponential(circuit, "XXXY", (p, q, r, s), angle)
                _pauli_exponential(circuit, "YXXX", (p, q, r, s), -angle)
        if include_measurement:
            circuit.measure_all()
        circuit.metadata["ansatz"] = self.name
        circuit.metadata["depth"] = self.depth
        return circuit

    def cnot_count(self) -> int:
        singles = len(self.single_excitations()) * 2 * 2   # two rotations, ladder up+down
        doubles = len(self.double_excitations()) * 2 * 6
        return (singles + doubles) * self.depth

    def rotation_count(self) -> int:
        singles = len(self.single_excitations()) * 2
        doubles = len(self.double_excitations()) * 2
        return (singles + doubles) * self.depth
