"""The layout-aware ``blocked_all_to_all`` ansatz (paper Sec. 4.3, Fig. 10).

The ansatz is parameterized by ``k`` (the layout parameter of Fig. 3) and acts
on ``N = 4k + 4`` qubits:

* qubits ``0 … 2k−1`` form block A, qubits ``2k … 4k−1`` form block B — these
  are the qubits sitting in the four fast rows of the proposed layout;
* qubits ``4k … 4k+3`` are the four extra column qubits of the layout;
* inside each block every ordered pair is entangled with a fast 4-cycle
  single-control multi-target CNOT cluster;
* the two blocks (and the extra column qubits) are connected by a fixed
  number (8) of slower "linking" CNOTs.

With E[g] = 2 injected states per logical Rz, the resulting CNOT:Rz ratio is
``N/8 − 5/4 + 5/N`` which exceeds the 0.76 pQEC-vs-NISQ break-even for
N ≥ 13 — the Sec. 4.4 design rule the Fig. 11 benchmark validates.
"""

from __future__ import annotations

from typing import List, Tuple

from .base import Ansatz

#: Number of linking CNOTs between blocks (fixed by the ansatz definition).
NUM_LINKING_CNOTS = 8


def k_for_qubits(num_qubits: int) -> int:
    """The layout parameter k such that N = 4k + 4."""
    if num_qubits < 8 or (num_qubits - 4) % 4 != 0:
        raise ValueError(
            f"blocked_all_to_all requires N = 4k + 4 with k ≥ 1; got N={num_qubits}")
    return (num_qubits - 4) // 4


class BlockedAllToAllAnsatz(Ansatz):
    """The paper's EFT-tailored ``blocked_all_to_all`` ansatz.

    Qubits are partitioned into blocks of ``k = k_for_qubits(n)``; each block
    gets all-to-all CNOT entanglement while rotations are shared per block,
    trading the fully-connected ansatz's Rz count for CNOT-dominated depth —
    the gate profile the paper's partial-QEC regime rewards (Sec. 4.4,
    Fig. 14).  Example::

        ansatz = BlockedAllToAllAnsatz(12, depth=2)
        print(ansatz.cnot_count(), ansatz.rotation_count())
    """

    def __init__(self, num_qubits: int, depth: int = 1):
        self.k = k_for_qubits(num_qubits)
        super().__init__(num_qubits, depth, name="blocked_all_to_all")

    # -- structure -------------------------------------------------------------
    @property
    def block_a(self) -> Tuple[int, ...]:
        return tuple(range(0, 2 * self.k))

    @property
    def block_b(self) -> Tuple[int, ...]:
        return tuple(range(2 * self.k, 4 * self.k))

    @property
    def extra_qubits(self) -> Tuple[int, ...]:
        return tuple(range(4 * self.k, 4 * self.k + 4))

    def linking_pairs(self) -> List[Tuple[int, int]]:
        """The 8 fixed linking CNOTs joining the blocks and extra qubits."""
        k = self.k
        block_a = self.block_a
        block_b = self.block_b
        extra = self.extra_qubits
        pairs = [
            (block_a[0], block_b[0]),            # top of A to top of B
            (block_a[-1], block_b[-1]),          # bottom of A to bottom of B
            (block_a[k - 1], block_b[k - 1]),    # row boundary links
            (block_a[k], block_b[k]),
            (block_a[0], extra[0]),              # extra column hookups
            (block_a[-1], extra[1]),
            (block_b[0], extra[2]),
            (block_b[-1], extra[3]),
        ]
        # Deduplicate while preserving order (k = 1 makes some pairs collide).
        seen = set()
        unique: List[Tuple[int, int]] = []
        for pair in pairs:
            if pair not in seen and pair[0] != pair[1]:
                seen.add(pair)
                unique.append(pair)
        while len(unique) < NUM_LINKING_CNOTS:
            # Pad with additional cross-block links for very small k so the
            # count formula (N²/2 − 5N + 20 CNOTs per layer) holds exactly.
            for a in self.block_a:
                for b in self.block_b:
                    if (a, b) not in seen:
                        seen.add((a, b))
                        unique.append((a, b))
                        break
                if len(unique) >= NUM_LINKING_CNOTS:
                    break
            else:
                break
        return unique[:NUM_LINKING_CNOTS]

    def entangling_clusters(self) -> List[Tuple[int, Tuple[int, ...]]]:
        """All-to-all clusters inside each block, then the linking CNOTs."""
        clusters: List[Tuple[int, Tuple[int, ...]]] = []
        for block in (self.block_a, self.block_b):
            for control in block:
                targets = tuple(q for q in block if q != control)
                if targets:
                    clusters.append((control, targets))
        for control, target in self.linking_pairs():
            clusters.append((control, (target,)))
        return clusters

    # -- paper count formulas -----------------------------------------------------
    def expected_cnot_count_formula(self) -> int:
        """Closed-form CNOT count per the paper: (N²/2 − 5N + 20)·p."""
        n = self.num_qubits
        return int((n * n / 2 - 5 * n + 20) * self.depth)

    def expected_rz_count_formula(self, expected_injections: float = 1.0) -> float:
        """Closed-form logical-Rz count per the paper: 2·N·p·E[g]."""
        return 2 * self.num_qubits * self.depth * expected_injections
