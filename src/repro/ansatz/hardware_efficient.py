"""Hardware-efficient ansatz families (Kandala et al. style).

Two members used throughout the paper's evaluation:

* :class:`LinearAnsatz` — nearest-neighbour entangling ring (the common NISQ
  "linear" hardware-efficient ansatz; Sec. 4.4 shows it is a poor fit for the
  pQEC regime because its CNOT:Rz ratio is only ≈0.25);
* :class:`FullyConnectedAnsatz` (FCHE) — every pair of qubits entangled each
  layer; this is the depth-1 ansatz used in Figs. 4, 12 and 13.
"""

from __future__ import annotations

from typing import List, Tuple

from .base import Ansatz


class LinearAnsatz(Ansatz):
    """Linear (ring) hardware-efficient ansatz.

    Each layer applies RX·RZ rotations to every qubit followed by a ring of
    CNOTs ``(0→1, 1→2, …, N−1→0)``, giving N CNOTs and 2N rotations per layer
    — the counts used in the Sec. 4.4 ratio analysis.
    """

    def __init__(self, num_qubits: int, depth: int = 1, periodic: bool = True):
        super().__init__(num_qubits, depth, name="linear")
        self.periodic = bool(periodic)

    def entangling_clusters(self) -> List[Tuple[int, Tuple[int, ...]]]:
        clusters = [(qubit, (qubit + 1,)) for qubit in range(self.num_qubits - 1)]
        if self.periodic and self.num_qubits > 2:
            clusters.append((self.num_qubits - 1, (0,)))
        return clusters


class FullyConnectedAnsatz(Ansatz):
    """Fully-connected hardware-efficient ansatz (FCHE).

    Each layer entangles every pair of qubits.  The entanglers are organised
    as single-control multi-target clusters (control q → targets q+1 … N−1),
    which is how the lattice-surgery scheduler executes them: all CNOTs
    sharing a control cost the same as one CNOT (Fig. 9).
    """

    def __init__(self, num_qubits: int, depth: int = 1):
        super().__init__(num_qubits, depth, name="fully_connected")

    def entangling_clusters(self) -> List[Tuple[int, Tuple[int, ...]]]:
        clusters: List[Tuple[int, Tuple[int, ...]]] = []
        for control in range(self.num_qubits - 1):
            targets = tuple(range(control + 1, self.num_qubits))
            clusters.append((control, targets))
        return clusters


#: Alias matching the paper's abbreviation.
FCHEAnsatz = FullyConnectedAnsatz
