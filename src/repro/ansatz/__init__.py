"""Variational ansatz families and gate-count design rules."""

from .base import Ansatz, MacroOp
from .blocked import NUM_LINKING_CNOTS, BlockedAllToAllAnsatz, k_for_qubits
from .counts import (DEFAULT_BREAK_EVEN_RATIO, DEFAULT_EXPECTED_INJECTIONS,
                     RegimePreference, blocked_cnot_count,
                     blocked_ratio_formula, cnot_to_rz_ratio, fche_cnot_count,
                     linear_cnot_count, pqec_crossover_qubits,
                     regime_preference, rotation_count, runtime_rz_count)
from .hardware_efficient import (FCHEAnsatz, FullyConnectedAnsatz,
                                 LinearAnsatz)
from .uccsd import UCCSDAnsatz

ANSATZ_FAMILIES = {
    "linear": LinearAnsatz,
    "fully_connected": FullyConnectedAnsatz,
    "blocked_all_to_all": BlockedAllToAllAnsatz,
    "uccsd": UCCSDAnsatz,
}


def make_ansatz(family: str, num_qubits: int, depth: int = 1) -> Ansatz:
    """Construct an ansatz by family name.

    ``family`` is one of the registered families in ``ANSATZ_FAMILIES``
    (``"linear"``, ``"fully_connected"``, ``"blocked_all_to_all"``,
    ``"fche"``, ``"uccsd"`` — the set the paper's Table 2 compares); unknown
    names raise ``ValueError`` listing the supported ones.  Example::

        ansatz = make_ansatz("blocked_all_to_all", num_qubits=12, depth=2)
    """
    if family not in ANSATZ_FAMILIES:
        supported = ", ".join(sorted(ANSATZ_FAMILIES))
        raise ValueError(f"unknown ansatz family {family!r}; supported: {supported}")
    return ANSATZ_FAMILIES[family](num_qubits, depth)


__all__ = [
    "ANSATZ_FAMILIES",
    "Ansatz",
    "BlockedAllToAllAnsatz",
    "DEFAULT_BREAK_EVEN_RATIO",
    "DEFAULT_EXPECTED_INJECTIONS",
    "FCHEAnsatz",
    "FullyConnectedAnsatz",
    "LinearAnsatz",
    "MacroOp",
    "NUM_LINKING_CNOTS",
    "RegimePreference",
    "UCCSDAnsatz",
    "blocked_cnot_count",
    "blocked_ratio_formula",
    "cnot_to_rz_ratio",
    "fche_cnot_count",
    "k_for_qubits",
    "linear_cnot_count",
    "make_ansatz",
    "pqec_crossover_qubits",
    "regime_preference",
    "rotation_count",
    "runtime_rz_count",
]
