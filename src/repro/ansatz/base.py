"""Ansatz abstractions.

An :class:`Ansatz` builds a parameterized :class:`QuantumCircuit` and also
exposes a *macro-operation schedule* (rotation layers and single-control
multi-target CNOT clusters).  The macro schedule is what the lattice-surgery
scheduler consumes: the paper's latency analysis (Fig. 9 / Table 2) counts
multi-target CNOT clusters — which cost the same as a single CNOT — rather
than individual CNOTs.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..circuits.circuit import QuantumCircuit
from ..circuits.parameters import ParameterVector


@dataclass(frozen=True)
class MacroOp:
    """A macro-operation in an ansatz schedule.

    ``kind`` is one of

    * ``"rotation_layer"`` — single-qubit RX·RZ rotations applied to
      ``qubits`` (each rotation realized by magic-state injection in pQEC);
    * ``"cnot_cluster"`` — a single-control multi-target CNOT with control
      ``control`` and targets ``targets`` (one lattice-surgery operation);
    * ``"measure_layer"`` — terminal measurement of ``qubits``.
    """

    kind: str
    qubits: Tuple[int, ...] = ()
    control: Optional[int] = None
    targets: Tuple[int, ...] = ()

    def __post_init__(self):
        if self.kind not in ("rotation_layer", "cnot_cluster", "measure_layer"):
            raise ValueError(f"unknown macro-op kind {self.kind!r}")
        if self.kind == "cnot_cluster":
            if self.control is None or not self.targets:
                raise ValueError("cnot_cluster needs a control and ≥1 target")
            if self.control in self.targets:
                raise ValueError("control cannot also be a target")

    @property
    def num_cnots(self) -> int:
        return len(self.targets) if self.kind == "cnot_cluster" else 0

    @property
    def num_rotations(self) -> int:
        # Each qubit in a rotation layer receives an RX and an RZ rotation.
        return 2 * len(self.qubits) if self.kind == "rotation_layer" else 0

    def involved_qubits(self) -> Tuple[int, ...]:
        if self.kind == "cnot_cluster":
            return (self.control, *self.targets)
        return self.qubits


class Ansatz(abc.ABC):
    """Base class for variational ansatz families.

    An ansatz is a parameterized circuit template plus the structural
    metadata the paper's analysis needs: gate counts
    (:meth:`cnot_count` / :meth:`rotation_count` feed the Sec. 4.4
    Rz-to-CNOT design rule), the macro schedule consumed by the
    lattice-surgery scheduler, and :meth:`build`, which returns a
    :class:`~repro.circuits.circuit.QuantumCircuit` with free parameters to
    bind.  Example::

        ansatz = FullyConnectedAnsatz(8, depth=1)
        circuit = ansatz.build().bind_parameters([0.1] * ansatz.num_parameters())
    """

    def __init__(self, num_qubits: int, depth: int = 1, name: str = "ansatz"):
        if num_qubits < 2:
            raise ValueError("an ansatz needs at least two qubits")
        if depth < 1:
            raise ValueError("depth must be at least 1")
        self.num_qubits = int(num_qubits)
        self.depth = int(depth)
        self.name = name

    # -- interface -----------------------------------------------------------
    @abc.abstractmethod
    def entangling_clusters(self) -> List[Tuple[int, Tuple[int, ...]]]:
        """The (control, targets) CNOT clusters of ONE ansatz layer, in order."""

    def rotation_qubits(self) -> Tuple[int, ...]:
        """Qubits that receive RX·RZ rotations in each rotation layer."""
        return tuple(range(self.num_qubits))

    # -- derived structure ------------------------------------------------------
    def macro_schedule(self, include_measurement: bool = True) -> List[MacroOp]:
        """Macro-operation schedule across all ``depth`` layers."""
        schedule: List[MacroOp] = []
        rotation = MacroOp("rotation_layer", qubits=self.rotation_qubits())
        clusters = self.entangling_clusters()
        for _ in range(self.depth):
            schedule.append(rotation)
            for control, targets in clusters:
                schedule.append(MacroOp("cnot_cluster", control=control,
                                        targets=tuple(targets)))
        if include_measurement:
            schedule.append(MacroOp("measure_layer",
                                    qubits=tuple(range(self.num_qubits))))
        return schedule

    def num_parameters(self) -> int:
        """Number of free rotation angles.

        Each of the ``depth`` layers applies an RX and an RZ rotation to every
        rotation qubit, so the count is ``2·N·p`` — the convention used by the
        paper's Sec. 4.4 gate-count formulas.
        """
        per_layer = 2 * len(self.rotation_qubits())
        return per_layer * self.depth

    def cnot_count(self) -> int:
        """Total CNOT count across all layers."""
        per_layer = sum(len(targets) for _, targets in self.entangling_clusters())
        return per_layer * self.depth

    def rotation_count(self) -> int:
        """Total logical rotation count (RX + RZ) across all layers."""
        return self.num_parameters()

    def cnot_to_rz_ratio(self, expected_injections_per_rz: float = 1.0) -> float:
        """CNOT count divided by runtime Rz count (Sec. 4.4 design metric)."""
        rz = self.rotation_count() * expected_injections_per_rz
        if rz == 0:
            return float("inf")
        return self.cnot_count() / rz

    # -- circuit construction ------------------------------------------------------
    def build(self, parameter_prefix: str = "theta",
              include_measurement: bool = False) -> QuantumCircuit:
        """Build the parameterized circuit."""
        circuit = QuantumCircuit(self.num_qubits, name=self.name)
        parameters = ParameterVector(parameter_prefix, self.num_parameters())
        index = 0
        rotation_qubits = self.rotation_qubits()
        clusters = self.entangling_clusters()

        def rotation_layer():
            nonlocal index
            for qubit in rotation_qubits:
                circuit.rx(parameters[index], qubit)
                index += 1
                circuit.rz(parameters[index], qubit)
                index += 1

        for _ in range(self.depth):
            rotation_layer()
            for control, targets in clusters:
                for target in targets:
                    circuit.cx(control, target)
        if include_measurement:
            circuit.measure_all()
        circuit.metadata["ansatz"] = self.name
        circuit.metadata["depth"] = self.depth
        return circuit

    def bound_circuit(self, parameter_values: Sequence[float],
                      include_measurement: bool = False) -> QuantumCircuit:
        """Build the circuit with concrete rotation angles."""
        return self.build(include_measurement=include_measurement).bind_parameters(
            list(parameter_values))

    def __repr__(self):
        return (f"{type(self).__name__}(qubits={self.num_qubits}, depth={self.depth}, "
                f"params={self.num_parameters()}, cnots={self.cnot_count()})")
