"""Persistent on-disk expectation cache (the L2 under the in-memory LRU).

The in-memory :class:`~repro.execution.cache.ExpectationCache` dies with the
process; this module adds a content-addressed store under a directory so a
repeated paper-figure reproduction — or a fleet of worker processes sharing a
volume — serves previously computed expectation values from disk instead of
re-evolving circuits.

Layout and guarantees:

* **Content addressing** — a cache key (the same nested tuple the in-memory
  cache uses: circuit fingerprint, term/observable identity, noise-model
  *content* fingerprint, backend token, options) is canonically serialized
  and hashed; the entry lives at ``<dir>/<hh>/<digest>`` where ``hh`` is the
  first hex byte of the digest (keeps directories small).  Keys are stable
  across processes and runs because every component is itself content-derived
  (see :func:`repro.execution.task.noise_token`).
* **Plain binary entries** — an entry file is a magic tag, the canonical
  key encoding (verified on read, so a digest collision degrades to a miss,
  never a wrong value) and one packed double.  Deliberately **not** pickle:
  a cache directory shared between workers/users must never be a code
  path — reading an entry can execute nothing.
* **Atomic writes** — entries are written to a temporary file in the same
  directory and ``os.replace``\\ d into place, so readers never observe a
  torn entry and concurrent writers of the same key settle on one winner.
* **Corrupt-entry recovery** — an unreadable or mismatched entry (truncated
  file, hash collision, foreign bytes) counts as a miss, is **quarantined**
  (renamed to a ``.corrupt-`` dot-file, invisible to later reads and reaped
  by the next eviction scan) and bumps the ``corrupt`` counter; the cache
  never raises on bad disk state, and the quarantined bytes stay around
  briefly for post-mortems instead of being destroyed mid-run.
* **Size-bounded LRU eviction** — entry files are touched on read; when the
  store grows past ``max_bytes``, the oldest-``mtime`` entries are removed
  until it fits again.  Eviction scans are amortized (every
  ``_EVICTION_CHECK_INTERVAL`` writes), so the bound is approximate by
  design.

``REPRO_CACHE_DIR`` opts a process in globally: when it is set,
:class:`~repro.execution.executor.Executor` instances built without an
explicit cache compose this store with their in-memory cache as an L2 (see
:class:`TieredExpectationCache`).
"""

from __future__ import annotations

import hashlib
import os
import struct
import tempfile
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from .cache import CacheStats, ExpectationCache
from .faults import consult as _consult_faults

#: Environment variable naming the directory of the process-wide L2 cache.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Default size bound: plenty for every figure/table suite in the repo.
DEFAULT_MAX_BYTES = 256 * 1024 * 1024

#: How many writes may elapse between eviction scans (amortizes the
#: directory walk; the size bound is approximate between scans).
_EVICTION_CHECK_INTERVAL = 256

_ENTRY_SUFFIX = ".expv"


def _encode_key(key: Any, out: bytearray) -> None:
    """Canonical, collision-free binary encoding of a cache-key tree.

    Supports exactly the types task/term/sweep keys are built from: tuples,
    ``str``, ``bytes``, ``bool``, ``int``, ``float`` and ``None`` — plus
    their NumPy scalar equivalents (``np.int64`` trajectory counts from an
    ``np.arange`` sweep config, ``np.float32`` parameter values), which
    encode exactly like the matching Python scalar so the key means the
    same thing however it was built.  Every atom is length- and type-tagged
    so distinct trees never share an encoding.
    """
    if isinstance(key, np.generic):  # numpy scalars → Python scalars
        key = key.item()
    if key is None:
        out += b"N"
    elif key is True:
        out += b"T"
    elif key is False:
        out += b"F"
    elif isinstance(key, tuple):
        out += b"(" + struct.pack("<I", len(key))
        for item in key:
            _encode_key(item, out)
    elif isinstance(key, bytes):
        out += b"b" + struct.pack("<I", len(key)) + key
    elif isinstance(key, str):
        raw = key.encode("utf-8")
        out += b"s" + struct.pack("<I", len(raw)) + raw
    elif isinstance(key, int):
        raw = str(key).encode("ascii")
        out += b"i" + struct.pack("<I", len(raw)) + raw
    elif isinstance(key, float):
        out += b"f" + struct.pack("<d", key)
    else:
        raise TypeError(
            f"cache keys may only contain tuples, str, bytes, bool, int, "
            f"float and None; got {type(key).__name__}")


def encode_key(key: Tuple) -> bytes:
    """The canonical binary encoding of ``key`` (see :func:`_encode_key`)."""
    buffer = bytearray()
    _encode_key(key, buffer)
    return bytes(buffer)


def key_digest(key: Tuple) -> str:
    """Hex digest addressing ``key`` on disk (stable across processes)."""
    return hashlib.blake2b(encode_key(key), digest_size=16).hexdigest()


#: Entry-file layout: magic, u32 length of the encoded key, the encoded key
#: bytes, one little-endian double.  No pickle — reading an entry from a
#: shared volume must never be able to execute code.
_ENTRY_MAGIC = b"EXPV1\x00"


@dataclass
class DiskCacheStats:
    """Running counters for one :class:`DiskExpectationCache`."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    write_errors: int = 0
    evictions: int = 0
    corrupt: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def __repr__(self):
        return (f"DiskCacheStats(hits={self.hits}, misses={self.misses}, "
                f"hit_rate={self.hit_rate:.1%}, writes={self.writes}, "
                f"write_errors={self.write_errors}, "
                f"evictions={self.evictions}, corrupt={self.corrupt})")


class DiskExpectationCache:
    """Content-addressed, size-bounded store of expectation values on disk.

    Mirrors the in-memory cache's ``get``/``put``/``get_many``/``put_many``
    surface so :class:`TieredExpectationCache` can compose the two.  Example::

        cache = DiskExpectationCache("/tmp/repro-cache")
        cache.put(key, 0.25)
        assert cache.get(key) == 0.25        # also true in a later process
    """

    def __init__(self, directory: Union[str, Path],
                 max_bytes: int = DEFAULT_MAX_BYTES):
        if max_bytes < 1:
            raise ValueError("cache max_bytes must be positive")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.max_bytes = int(max_bytes)
        self._lock = threading.Lock()
        self._stats = DiskCacheStats()
        self._writes_since_check = 0

    # -- addressing ----------------------------------------------------------
    def _path_for(self, key: Tuple) -> Path:
        digest = key_digest(key)
        return self.directory / digest[:2] / (digest + _ENTRY_SUFFIX)

    # -- lookup --------------------------------------------------------------
    def get(self, key: Tuple) -> Optional[float]:
        """The stored value for ``key``, or None; refreshes the LRU clock."""
        try:
            path = self._path_for(key)
        except TypeError:  # key content the canonical encoder doesn't cover
            with self._lock:
                self._stats.misses += 1
            return None
        try:
            with open(path, "rb") as handle:
                payload = handle.read()
        except OSError:
            # Missing entry or a *transient* read failure (EMFILE, NFS
            # hiccup): a plain miss.  Never delete on open() errors — the
            # entry on disk may be perfectly valid.
            with self._lock:
                self._stats.misses += 1
            return None
        value = self._decode_entry(payload, key)
        if value is None:
            # Truncated, foreign, or digest-collision content.
            self._discard_corrupt(path)
            return None
        try:
            os.utime(path)  # LRU clock for eviction
        except OSError:
            pass
        with self._lock:
            self._stats.hits += 1
        return value

    @staticmethod
    def _decode_entry(payload: bytes, key: Tuple) -> Optional[float]:
        """The value held by an entry file, or None when it is not a valid
        entry for ``key`` (wrong magic, wrong length, mismatched key)."""
        header = len(_ENTRY_MAGIC) + 4
        if len(payload) < header + 8 \
                or payload[:len(_ENTRY_MAGIC)] != _ENTRY_MAGIC:
            return None
        (key_length,) = struct.unpack_from("<I", payload, len(_ENTRY_MAGIC))
        if len(payload) != header + key_length + 8:
            return None
        if payload[header:header + key_length] != encode_key(key):
            return None
        (value,) = struct.unpack_from("<d", payload, header + key_length)
        return value

    def get_many(self, keys: Sequence[Tuple]) -> List[Optional[float]]:
        """Stored values for ``keys`` (None per miss)."""
        return [self.get(key) for key in keys]

    def _discard_corrupt(self, path: Path) -> None:
        """Quarantine a bad entry out of the read path.

        The ``.corrupt-`` rename (same directory, so it is atomic) makes
        the entry invisible to reads — dot-names are skipped by
        :meth:`_entries` and never match a key digest — while preserving
        the bytes for inspection; the stale-file reaper deletes quarantined
        files on a later eviction scan.  Unlinking is the fallback when the
        rename itself fails.
        """
        try:
            path.rename(path.with_name(".corrupt-" + path.name))
        except OSError:
            try:
                path.unlink()
            except OSError:
                pass
        with self._lock:
            self._stats.misses += 1
            self._stats.corrupt += 1

    # -- storage -------------------------------------------------------------
    def put(self, key: Tuple, value: float) -> None:
        """Persist ``value`` under ``key`` atomically.

        Write failures (full or read-only volume) are swallowed and counted
        in ``stats.write_errors`` — a broken cache disk must never crash a
        run whose simulation already succeeded; the value simply is not
        persisted.
        """
        self._write(key, float(value))
        self._maybe_evict()

    def put_many(self, items: Iterable[Tuple[Tuple, float]]) -> None:
        for key, value in items:
            self._write(key, float(value))
        self._maybe_evict()

    def _write(self, key: Tuple, value: float) -> None:
        try:
            path = self._path_for(key)
            path.parent.mkdir(parents=True, exist_ok=True)
            encoded = encode_key(key)
            payload = (_ENTRY_MAGIC + struct.pack("<I", len(encoded))
                       + encoded + struct.pack("<d", value))
            descriptor, temp_name = tempfile.mkstemp(
                dir=path.parent, prefix=".tmp-", suffix=_ENTRY_SUFFIX)
            try:
                with os.fdopen(descriptor, "wb") as handle:
                    handle.write(payload)
                os.replace(temp_name, path)
                directive = _consult_faults("disk-cache")
                if directive is not None and directive.kind == "corrupt":
                    # Chaos harness: truncate the entry just written, as a
                    # crashed writer or torn volume would.  The next read
                    # must detect it, quarantine it and recompute.
                    with open(path, "r+b") as handle:
                        handle.truncate(max(1, len(payload) // 2))
            except OSError:
                try:
                    os.unlink(temp_name)
                except OSError:
                    pass
                raise
        except (OSError, TypeError):
            # TypeError: a custom backend's cache_token produced content the
            # canonical encoder does not cover — the value simply is not
            # persisted (the in-memory tier still serves it).
            with self._lock:
                self._stats.write_errors += 1
            return
        with self._lock:
            self._stats.writes += 1
            self._writes_since_check += 1

    # -- eviction ------------------------------------------------------------

    #: A dot-file (``.tmp-*`` writer orphan, ``.corrupt-*`` quarantined
    #: entry) older than this has no live owner and gets reaped by the
    #: next eviction scan.
    _STALE_TEMP_SECONDS = 600.0

    def _entries(self, reap_stale_temps: bool = False
                 ) -> List[Tuple[float, int, Path]]:
        """(mtime, size, path) for every entry file currently on disk.

        With ``reap_stale_temps`` (eviction scans and :meth:`clear`), also
        deletes stale dot-files — temp files orphaned by writers killed
        between ``mkstemp`` and ``os.replace``, and ``.corrupt-``
        quarantined entries — which are invisible to reads and would
        otherwise accumulate unboundedly on a long-lived volume.
        """
        import time as _time
        now = _time.time()
        found: List[Tuple[float, int, Path]] = []
        for bucket in self.directory.iterdir() if self.directory.exists() \
                else ():
            if not bucket.is_dir():
                continue
            try:
                with os.scandir(bucket) as it:
                    for entry in it:
                        if not entry.name.endswith(_ENTRY_SUFFIX):
                            continue
                        try:
                            stat = entry.stat()
                        except OSError:
                            continue
                        if entry.name.startswith("."):
                            if reap_stale_temps and \
                                    now - stat.st_mtime \
                                    > self._STALE_TEMP_SECONDS:
                                try:
                                    os.unlink(entry.path)
                                except OSError:
                                    pass
                            continue
                        found.append((stat.st_mtime, stat.st_size,
                                      Path(entry.path)))
            except OSError:
                continue
        return found

    def _maybe_evict(self) -> None:
        with self._lock:
            if self._writes_since_check < _EVICTION_CHECK_INTERVAL:
                return
            self._writes_since_check = 0
        self.evict_to_size()

    def evict_to_size(self, max_bytes: Optional[int] = None) -> int:
        """Delete oldest entries until the store fits; returns the count."""
        budget = self.max_bytes if max_bytes is None else int(max_bytes)
        entries = self._entries(reap_stale_temps=True)
        total = sum(size for _, size, _ in entries)
        if total <= budget:
            return 0
        evicted = 0
        for _, size, path in sorted(entries):  # oldest mtime first
            if total <= budget:
                break
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            evicted += 1
        with self._lock:
            self._stats.evictions += evicted
        return evicted

    # -- introspection -------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries())

    def __contains__(self, key: Tuple) -> bool:
        try:
            return self._path_for(key).exists()
        except TypeError:
            return False

    def size_bytes(self) -> int:
        return sum(size for _, size, _ in self._entries())

    def clear(self) -> None:
        for bucket in (b for b in self.directory.iterdir() if b.is_dir()) \
                if self.directory.exists() else ():
            for path in bucket.glob("*" + _ENTRY_SUFFIX):
                try:
                    path.unlink()
                except OSError:
                    pass
            for pattern in (".tmp-*", ".corrupt-*"):
                for path in bucket.glob(pattern):
                    try:
                        path.unlink()
                    except OSError:
                        pass
        with self._lock:
            self._stats = DiskCacheStats()
            self._writes_since_check = 0

    @property
    def stats(self) -> DiskCacheStats:
        with self._lock:
            return DiskCacheStats(hits=self._stats.hits,
                                  misses=self._stats.misses,
                                  writes=self._stats.writes,
                                  write_errors=self._stats.write_errors,
                                  evictions=self._stats.evictions,
                                  corrupt=self._stats.corrupt)

    def __repr__(self):
        return (f"DiskExpectationCache(dir={str(self.directory)!r}, "
                f"max_bytes={self.max_bytes})")


class TieredExpectationCache:
    """L1 in-memory LRU over an L2 on-disk store, one ``get``/``put`` surface.

    Lookups probe memory first; a disk hit is promoted into memory so the
    term's next lookup is a dictionary access.  Writes go to both tiers.
    The executor builds one of these automatically when ``REPRO_CACHE_DIR``
    is set (or when constructed with ``cache_dir=``), so every consumer of
    :func:`repro.execution.execute` transparently gains persistence.
    Example::

        cache = TieredExpectationCache(disk=DiskExpectationCache(path))
        executor = Executor(cache=cache)
    """

    def __init__(self, memory: Optional[ExpectationCache] = None,
                 disk: Optional[DiskExpectationCache] = None,
                 memory_size: int = 4096):
        self.memory = memory or ExpectationCache(max_size=memory_size)
        self.disk = disk

    def get(self, key: Tuple) -> Optional[float]:
        value = self.memory.get(key)
        if value is not None or self.disk is None:
            return value
        value = self.disk.get(key)
        if value is not None:
            self.memory.put(key, value)  # promote to L1
        return value

    def get_many(self, keys: Sequence[Tuple]) -> List[Optional[float]]:
        values = self.memory.get_many(keys)
        if self.disk is None:
            return values
        promoted = []
        for index, (key, value) in enumerate(zip(keys, values)):
            if value is None:
                from_disk = self.disk.get(key)
                if from_disk is not None:
                    values[index] = from_disk
                    promoted.append((key, from_disk))
        if promoted:
            self.memory.put_many(promoted)
        return values

    def put(self, key: Tuple, value: float) -> None:
        self.memory.put(key, value)
        if self.disk is not None:
            self.disk.put(key, value)

    def put_many(self, items: Iterable[Tuple[Tuple, float]]) -> None:
        items = list(items)
        self.memory.put_many(items)
        if self.disk is not None:
            self.disk.put_many(items)

    def __len__(self) -> int:
        return len(self.memory)

    def __contains__(self, key: Tuple) -> bool:
        return key in self.memory or (self.disk is not None
                                      and key in self.disk)

    def clear(self) -> None:
        """Drop the in-memory tier and reset its counters.

        The disk tier is deliberately left intact — it is the persistent
        layer; call ``cache.disk.clear()`` to wipe it explicitly.
        """
        self.memory.clear()

    @property
    def stats(self) -> CacheStats:
        return self.memory.stats

    @property
    def disk_stats(self) -> Optional[DiskCacheStats]:
        return self.disk.stats if self.disk is not None else None

    def __repr__(self):
        return (f"TieredExpectationCache(memory={self.memory.stats!r}, "
                f"disk={self.disk!r})")


def disk_cache_from_env() -> Optional[DiskExpectationCache]:
    """A :class:`DiskExpectationCache` at ``$REPRO_CACHE_DIR``, or None.

    Read at :class:`~repro.execution.executor.Executor` construction time —
    set the variable before building executors (or pass ``cache_dir=``
    explicitly) to opt a process into persistent caching.
    """
    directory = os.environ.get(CACHE_DIR_ENV, "").strip()
    if not directory:
        return None
    max_bytes = os.environ.get("REPRO_CACHE_MAX_BYTES", "").strip()
    if max_bytes:
        return DiskExpectationCache(directory, max_bytes=int(max_bytes))
    return DiskExpectationCache(directory)
