"""LRU cache for deterministic expectation values.

Keys come from :meth:`repro.execution.task.ExecutionTask.cache_key` — the
circuit fingerprint, observable fingerprint, noise-model **content**
fingerprint and backend options.  Every component is content-derived (see
:func:`repro.execution.task.noise_token`), so equal keys mean equal values
no matter which objects — or which process — produced them; this is also
what lets the persistent :mod:`repro.execution.disk_cache` tier reuse the
same keys on disk.

The cache is what makes optimizer-driven workloads cheap: COBYLA and SPSA
re-evaluate repeated parameter vectors, VQD re-evaluates each level's best
circuit, and VarSaw evaluates the same circuit against many observables —
all of which collapse onto prior entries here.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple


@dataclass
class CacheStats:
    """Running counters for one :class:`ExpectationCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    size: int = 0
    max_size: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def __repr__(self):
        return (f"CacheStats(hits={self.hits}, misses={self.misses}, "
                f"hit_rate={self.hit_rate:.1%}, size={self.size}/"
                f"{self.max_size}, evictions={self.evictions})")


class ExpectationCache:
    """Thread-safe LRU mapping of task cache keys to expectation values."""

    def __init__(self, max_size: int = 4096):
        if max_size < 1:
            raise ValueError("cache max_size must be positive")
        self._max_size = int(max_size)
        self._entries: "OrderedDict[Tuple, float]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get(self, key: Tuple) -> Optional[float]:
        """The cached value for ``key``, or None; refreshes LRU order."""
        with self._lock:
            value = self._entries.get(key)
            if value is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return value

    def put(self, key: Tuple, value: float) -> None:
        """Store ``value`` under ``key``; refreshes LRU order, may evict."""
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self._max_size:
                self._entries.popitem(last=False)
                self._evictions += 1

    def get_many(self, keys: Sequence[Tuple]) -> List[Optional[float]]:
        """Cached values for ``keys`` (None per miss), one lock acquisition.

        This is the grouped-observable lookup shape: one key per
        (circuit, Pauli term) pair, so a Hamiltonian that merely overlaps a
        previously evaluated one hits term-by-term.
        """
        values: List[Optional[float]] = []
        with self._lock:
            for key in keys:
                value = self._entries.get(key)
                if value is None:
                    self._misses += 1
                    values.append(None)
                else:
                    self._entries.move_to_end(key)
                    self._hits += 1
                    values.append(value)
        return values

    def put_many(self, items: Iterable[Tuple[Tuple, float]]) -> None:
        """Store many ``(key, value)`` pairs under one lock acquisition."""
        with self._lock:
            for key, value in items:
                self._entries[key] = value
                self._entries.move_to_end(key)
            while len(self._entries) > self._max_size:
                self._entries.popitem(last=False)
                self._evictions += 1

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Tuple) -> bool:
        return key in self._entries

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._hits = self._misses = self._evictions = 0

    @property
    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(hits=self._hits, misses=self._misses,
                              evictions=self._evictions,
                              size=len(self._entries),
                              max_size=self._max_size)
