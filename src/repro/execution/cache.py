"""LRU cache for deterministic expectation values.

Keys come from :meth:`repro.execution.task.ExecutionTask.cache_key` — the
circuit fingerprint, observable fingerprint, noise-model identity and backend
options.  Entries pin the noise model they were keyed on, so the identity
component of a live key can never be recycled by the garbage collector.

The cache is what makes optimizer-driven workloads cheap: COBYLA and SPSA
re-evaluate repeated parameter vectors, VQD re-evaluates each level's best
circuit, and VarSaw evaluates the same circuit against many observables —
all of which collapse onto prior entries here.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Iterable, List, Optional, Sequence, Tuple


@dataclass
class CacheStats:
    """Running counters for one :class:`ExpectationCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    size: int = 0
    max_size: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def __repr__(self):
        return (f"CacheStats(hits={self.hits}, misses={self.misses}, "
                f"hit_rate={self.hit_rate:.1%}, size={self.size}/"
                f"{self.max_size}, evictions={self.evictions})")


class ExpectationCache:
    """Thread-safe LRU mapping of task cache keys to expectation values."""

    def __init__(self, max_size: int = 4096):
        if max_size < 1:
            raise ValueError("cache max_size must be positive")
        self._max_size = int(max_size)
        self._entries: "OrderedDict[Tuple, Tuple[float, Any]]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get(self, key: Tuple) -> Optional[float]:
        """The cached value for ``key``, or None; refreshes LRU order."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return entry[0]

    def put(self, key: Tuple, value: float, pin: Any = None) -> None:
        """Store ``value`` under ``key``; ``pin`` objects (the task's noise
        model) are kept alive for the entry's lifetime."""
        with self._lock:
            self._entries[key] = (value, pin)
            self._entries.move_to_end(key)
            while len(self._entries) > self._max_size:
                self._entries.popitem(last=False)
                self._evictions += 1

    def get_many(self, keys: Sequence[Tuple]) -> List[Optional[float]]:
        """Cached values for ``keys`` (None per miss), one lock acquisition.

        This is the grouped-observable lookup shape: one key per
        (circuit, Pauli term) pair, so a Hamiltonian that merely overlaps a
        previously evaluated one hits term-by-term.
        """
        values: List[Optional[float]] = []
        with self._lock:
            for key in keys:
                entry = self._entries.get(key)
                if entry is None:
                    self._misses += 1
                    values.append(None)
                else:
                    self._entries.move_to_end(key)
                    self._hits += 1
                    values.append(entry[0])
        return values

    def put_many(self, items: Iterable[Tuple[Tuple, float]],
                 pin: Any = None) -> None:
        """Store many ``(key, value)`` pairs under one lock acquisition."""
        with self._lock:
            for key, value in items:
                self._entries[key] = (value, pin)
                self._entries.move_to_end(key)
            while len(self._entries) > self._max_size:
                self._entries.popitem(last=False)
                self._evictions += 1

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Tuple) -> bool:
        return key in self._entries

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._hits = self._misses = self._evictions = 0

    @property
    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(hits=self._hits, misses=self._misses,
                              evictions=self._evictions,
                              size=len(self._entries),
                              max_size=self._max_size)
