"""Backend adapters wrapping the four in-repo simulators.

Each adapter translates :class:`~repro.execution.task.ExecutionTask` fields
onto one simulator's constructor/``expectation``/``sample`` surface.  The
noise model travels with the *task*, not the backend, so one shared adapter
instance serves noiseless and noisy work alike.

Seeding: stochastic adapters accept a base ``seed`` and derive a per-task
seed from ``blake2b(base seed, task fingerprint)``.  The derivation is
order-independent, so results are reproducible no matter how the executor
batches or threads the work.
"""

from __future__ import annotations

import hashlib
from typing import Optional

from ..circuits.transpile import decompose_to_clifford_rz, merge_rz_runs
from ..simulators.density_matrix import DensityMatrixSimulator
from ..simulators.pauli_propagation import PauliPropagationSimulator
from ..simulators.stabilizer import StabilizerSimulator
from ..simulators.statevector import StatevectorSimulator
from .backend import Backend, BackendCapabilities
from .task import ExecutionTask

#: Dense statevector simulation is O(2^n); past this it is pointless to try.
MAX_STATEVECTOR_QUBITS = 24
#: Dense density-matrix simulation is O(4^n); the paper uses it to 12 qubits.
MAX_DENSITY_MATRIX_QUBITS = 14

DEFAULT_TRAJECTORIES = 200

#: Gate names the stabilizer tableau / Pauli propagator consume natively.
#: Anything else (sx, t, rzz, u3, ...) is rewritten over Clifford+Rz first.
_TABLEAU_NATIVE_GATES = frozenset(
    {"i", "id", "x", "y", "z", "h", "s", "sdg", "cx", "cnot", "cz", "swap",
     "rx", "ry", "rz", "barrier", "measure", "reset"})


def _tableau_ready(circuit) -> bool:
    return all(inst.name in _TABLEAU_NATIVE_GATES for inst in circuit)


def _canonicalize_if_needed(circuit):
    """Rewrite over Clifford+Rz only when the engine can't run it as-is.

    Skipping the rewrite for already-native circuits avoids a redundant
    transpile pass on the evaluator hot path (evaluators that canonicalize
    produce native circuits) and preserves per-gate noise attachment for
    callers who deliberately submit raw native circuits.
    """
    if _tableau_ready(circuit):
        return circuit
    return merge_rz_runs(decompose_to_clifford_rz(circuit))


def _derive_seed(base_seed: Optional[int], task: ExecutionTask) -> Optional[int]:
    """Per-task seed mixing the base seed with the circuit fingerprint."""
    if base_seed is None:
        return None
    hasher = hashlib.blake2b(digest_size=8)
    hasher.update(str(base_seed).encode())
    hasher.update(task.circuit.fingerprint().encode())
    if task.is_sampling:
        hasher.update(str(task.shots).encode())
    return int.from_bytes(hasher.digest(), "little") % (2 ** 31)


class StatevectorBackend(Backend):
    """Noiseless dense-statevector execution (exact, any gate set)."""

    def __init__(self, seed: Optional[int] = None):
        super().__init__()
        self._seed = seed

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            name="statevector",
            description="dense noiseless statevector (exact reference)",
            supports_noise=False,
            max_qubits=MAX_STATEVECTOR_QUBITS)

    def is_deterministic_for(self, task: ExecutionTask) -> bool:
        return task.is_expectation  # sampling draws shots

    def _run_task(self, task: ExecutionTask):
        simulator = StatevectorSimulator(seed=_derive_seed(self._seed, task))
        if task.is_expectation:
            return simulator.expectation(task.circuit, task.observable)
        return simulator.sample(task.circuit, task.shots)

    def term_expectations(self, task: ExecutionTask):
        simulator = StatevectorSimulator(seed=_derive_seed(self._seed, task))
        self._count_invocations()
        return simulator.expectation_many(task.circuit, task.observable)


class DensityMatrixBackend(Backend):
    """Exact noisy execution via dense density matrices (small circuits)."""

    def __init__(self, seed: Optional[int] = None):
        super().__init__()
        self._seed = seed

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            name="density_matrix",
            description="dense density matrix with Kraus noise (exact, "
                        "small qubit counts)",
            max_qubits=MAX_DENSITY_MATRIX_QUBITS)

    def is_deterministic_for(self, task: ExecutionTask) -> bool:
        return task.is_expectation

    def _run_task(self, task: ExecutionTask):
        simulator = DensityMatrixSimulator(task.noise_model,
                                           seed=_derive_seed(self._seed, task))
        if task.is_expectation:
            return simulator.expectation(task.circuit, task.observable)
        return simulator.sample(task.circuit, task.shots)

    def term_expectations(self, task: ExecutionTask):
        simulator = DensityMatrixSimulator(task.noise_model,
                                           seed=_derive_seed(self._seed, task))
        self._count_invocations()
        return simulator.expectation_many(task.circuit, task.observable)


class StabilizerBackend(Backend):
    """Clifford-circuit execution on stabilizer tableaus.

    Noiseless expectation values are exact; noisy ones average Monte-Carlo
    Pauli-error trajectories (``task.trajectories``, default 200).  Non-π/2
    rotations are canonicalized away before simulation when possible.
    """

    def __init__(self, seed: Optional[int] = None):
        super().__init__()
        self._seed = seed

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            name="stabilizer",
            description="CHP stabilizer tableau (Clifford only; Monte-Carlo "
                        "noise)",
            clifford_only=True,
            deterministic=False)

    def is_deterministic_for(self, task: ExecutionTask) -> bool:
        # Without noise a Clifford expectation value is exact; with noise it
        # is a Monte-Carlo average, and sampling always draws shots.
        return task.is_expectation and not task.has_noise

    def _run_task(self, task: ExecutionTask):
        simulator = StabilizerSimulator(task.noise_model,
                                        seed=_derive_seed(self._seed, task))
        circuit = _canonicalize_if_needed(task.circuit)
        if task.is_expectation:
            return simulator.expectation(circuit, task.observable,
                                         trajectories=task.trajectories)
        return simulator.sample(circuit, task.shots)

    def term_expectations(self, task: ExecutionTask):
        """Grouped path: one tableau evolution (per trajectory), one QWC
        basis rotation per measurement group — not one run per term."""
        simulator = StabilizerSimulator(task.noise_model,
                                        seed=_derive_seed(self._seed, task))
        circuit = _canonicalize_if_needed(task.circuit)
        self._count_invocations()
        return simulator.expectation_many(circuit, task.observable,
                                          trajectories=task.trajectories)


class PauliPropagationBackend(Backend):
    """Deterministic noisy Clifford expectation values via Pauli propagation.

    Exact for stochastic Pauli noise (other channels are Pauli-twirled), and
    the fastest path for large Clifford workloads; it cannot sample.
    """

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            name="pauli_propagation",
            description="exact noisy Clifford expectation values "
                        "(deterministic, scales to 100+ qubits)",
            supports_sampling=False,
            clifford_only=True)

    def _run_task(self, task: ExecutionTask):
        simulator = PauliPropagationSimulator(task.noise_model,
                                              include_idle=task.include_idle)
        circuit = _canonicalize_if_needed(task.circuit)
        return simulator.expectation(circuit, task.observable)

    def term_expectations(self, task: ExecutionTask):
        simulator = PauliPropagationSimulator(task.noise_model,
                                              include_idle=task.include_idle)
        circuit = _canonicalize_if_needed(task.circuit)
        self._count_invocations()
        return simulator.expectation_many(circuit, task.observable)
