"""Backend adapters wrapping the four in-repo simulators.

Each adapter translates :class:`~repro.execution.task.ExecutionTask` fields
onto one simulator's constructor/``expectation``/``sample`` surface.  The
noise model travels with the *task*, not the backend, so one shared adapter
instance serves noiseless and noisy work alike.

Seeding: stochastic adapters accept a base ``seed`` and derive a per-task
seed from ``blake2b(base seed, task fingerprint)``.  The derivation is
order-independent, so results are reproducible no matter how the executor
batches or threads the work.
"""

from __future__ import annotations

import hashlib
from typing import Optional, Sequence

import numpy as np

from ..circuits.transpile import decompose_to_clifford_rz, merge_rz_runs
from ..simulators.density_matrix import DensityMatrixSimulator
from ..simulators.pauli_propagation import PauliPropagationSimulator
from ..simulators.stabilizer import StabilizerSimulator
from ..simulators.statevector import StatevectorSimulator
from .backend import Backend, BackendCapabilities
from .task import ExecutionTask

#: Dense statevector simulation is O(2^n); past this it is pointless to try.
MAX_STATEVECTOR_QUBITS = 24
#: Dense density-matrix simulation is O(4^n); the paper uses it to 12 qubits.
MAX_DENSITY_MATRIX_QUBITS = 14

DEFAULT_TRAJECTORIES = 200

#: Gate names the stabilizer tableau / Pauli propagator consume natively.
#: Anything else (sx, t, rzz, u3, ...) is rewritten over Clifford+Rz first.
_TABLEAU_NATIVE_GATES = frozenset(
    {"i", "id", "x", "y", "z", "h", "s", "sdg", "cx", "cnot", "cz", "swap",
     "rx", "ry", "rz", "barrier", "measure", "reset"})


def _tableau_ready(circuit) -> bool:
    return all(inst.name in _TABLEAU_NATIVE_GATES for inst in circuit)


def _canonicalize_if_needed(circuit):
    """Rewrite over Clifford+Rz only when the engine can't run it as-is.

    Skipping the rewrite for already-native circuits avoids a redundant
    transpile pass on the evaluator hot path (evaluators that canonicalize
    produce native circuits) and preserves per-gate noise attachment for
    callers who deliberately submit raw native circuits.
    """
    if _tableau_ready(circuit):
        return circuit
    return merge_rz_runs(decompose_to_clifford_rz(circuit))


def _derive_seed(base_seed: Optional[int], task: ExecutionTask) -> Optional[int]:
    """Per-task seed mixing the base seed with the circuit fingerprint."""
    if base_seed is None:
        return None
    hasher = hashlib.blake2b(digest_size=8)
    hasher.update(str(base_seed).encode())
    hasher.update(task.circuit.fingerprint().encode())
    if task.is_sampling:
        hasher.update(str(task.shots).encode())
    return int.from_bytes(hasher.digest(), "little") % (2 ** 31)


class StatevectorBackend(Backend):
    """Noiseless dense-statevector execution (exact, any gate set)."""

    def __init__(self, seed: Optional[int] = None):
        super().__init__()
        self._seed = seed

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            name="statevector",
            description="dense noiseless statevector (exact reference)",
            supports_noise=False,
            max_qubits=MAX_STATEVECTOR_QUBITS,
            parallel_hint="process")

    def is_deterministic_for(self, task: ExecutionTask) -> bool:
        return task.is_expectation  # sampling draws shots

    def _run_task(self, task: ExecutionTask):
        simulator = StatevectorSimulator(seed=_derive_seed(self._seed, task))
        if task.is_expectation:
            return simulator.expectation(task.circuit, task.observable)
        return simulator.sample(task.circuit, task.shots)

    def term_expectations(self, task: ExecutionTask):
        simulator = StatevectorSimulator(seed=_derive_seed(self._seed, task))
        self._count_invocations()
        return simulator.expectation_many(task.circuit, task.observable)


class DensityMatrixBackend(Backend):
    """Exact noisy execution via dense density matrices (small circuits)."""

    def __init__(self, seed: Optional[int] = None):
        super().__init__()
        self._seed = seed

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            name="density_matrix",
            description="dense density matrix with Kraus noise (exact, "
                        "small qubit counts)",
            max_qubits=MAX_DENSITY_MATRIX_QUBITS,
            parallel_hint="process")

    def is_deterministic_for(self, task: ExecutionTask) -> bool:
        return task.is_expectation

    def _run_task(self, task: ExecutionTask):
        simulator = DensityMatrixSimulator(task.noise_model,
                                           seed=_derive_seed(self._seed, task))
        if task.is_expectation:
            return simulator.expectation(task.circuit, task.observable)
        return simulator.sample(task.circuit, task.shots)

    def term_expectations(self, task: ExecutionTask):
        simulator = DensityMatrixSimulator(task.noise_model,
                                           seed=_derive_seed(self._seed, task))
        self._count_invocations()
        return simulator.expectation_many(task.circuit, task.observable)


def run_stabilizer_trajectory_shard(noise_model, circuit, observable,
                                    seeds: Sequence) -> np.ndarray:
    """One shard of a Monte-Carlo trajectory ensemble (process-pool target).

    Module-level so it pickles by reference into worker processes; returns
    the raw ``(len(seeds), num_terms)`` per-trajectory rows of
    :meth:`repro.simulators.stabilizer.StabilizerSimulator.trajectory_term_values`.
    Each trajectory's randomness is a pure function of its seed, so the
    parent can concatenate shard rows in trajectory order and obtain results
    bitwise identical to an unsharded run.
    """
    simulator = StabilizerSimulator(noise_model)
    return simulator.trajectory_term_values(circuit, observable, seeds)


class StabilizerBackend(Backend):
    """Clifford-circuit execution on stabilizer tableaus.

    Noiseless expectation values are exact; noisy ones average Monte-Carlo
    Pauli-error trajectories (``task.trajectories``, default 200).  Non-π/2
    rotations are canonicalized away before simulation when possible.

    Trajectory randomness is seeded **per trajectory**: the task-derived
    base seed spawns one :class:`numpy.random.SeedSequence` child per
    trajectory, so an ensemble's result is independent of how trajectories
    are batched or sharded across worker processes — and, for a backend
    constructed with an explicit ``seed``, is a deterministic function of
    the task, which makes seeded noisy expectations cacheable (the seed is
    folded into :meth:`cache_token`).
    """

    def __init__(self, seed: Optional[int] = None):
        super().__init__()
        self._seed = seed

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            name="stabilizer",
            description="CHP stabilizer tableau (Clifford only; Monte-Carlo "
                        "noise)",
            clifford_only=True,
            deterministic=False,
            parallel_hint="process")

    def is_deterministic_for(self, task: ExecutionTask) -> bool:
        # Without noise a Clifford expectation value is exact.  With noise it
        # is a Monte-Carlo average — stochastic for an unseeded backend, but
        # a pure function of (task, seed, trajectories) for a seeded one
        # thanks to per-trajectory seed spawning.  Sampling always draws
        # fresh shots.
        if not task.is_expectation:
            return False
        return not task.has_noise or self._seed is not None

    def cache_token(self, task: ExecutionTask):
        # Seeded Monte-Carlo values are reproducible but seed-dependent:
        # differently seeded instances must not share cache entries.
        # Noiseless Clifford expectations are exact regardless of seed and
        # share the plain token.
        if task.has_noise and self._seed is not None:
            return (self.name, "seed", int(self._seed))
        return self.name

    # -- trajectory sharding -------------------------------------------------
    #: Module-level callable executing one seed-list shard in a worker
    #: process; the shard planner reads it off the backend, so a custom
    #: backend implementing the trajectory protocol supplies its *own*
    #: runner rather than inheriting stabilizer semantics.
    trajectory_shard_runner = staticmethod(run_stabilizer_trajectory_shard)

    def trajectory_count(self, task: ExecutionTask) -> Optional[int]:
        """How many Monte-Carlo trajectories ``task`` spends, or None when
        the task is deterministic (noiseless) or not an expectation."""
        if not task.is_expectation or not task.has_noise:
            return None
        return int(task.trajectories if task.trajectories is not None
                   else DEFAULT_TRAJECTORIES)

    def trajectory_spec(self, task: ExecutionTask):
        """Everything a worker shard needs: ``(noise_model, canonical
        circuit, observable, per-trajectory seeds)``.

        The seed list is spawned once here from the task-derived base seed;
        sharding partitions it, and :meth:`finalize_trajectory_rows` folds
        the concatenated rows back into per-term values.
        """
        trajectories = self.trajectory_count(task)
        if trajectories is None:
            raise ValueError("trajectory_spec requires a noisy expectation "
                             "task")
        base_seed = _derive_seed(self._seed, task)
        seeds = np.random.SeedSequence(base_seed).spawn(trajectories)
        circuit = _canonicalize_if_needed(task.circuit)
        return task.noise_model, circuit, task.observable, seeds

    @staticmethod
    def finalize_trajectory_rows(task: ExecutionTask,
                                 rows: np.ndarray) -> np.ndarray:
        """Average per-trajectory rows and apply the readout damping
        ``(1 − 2·p_meas)^weight`` per term (identity terms have weight 0 and
        stay exactly 1)."""
        values = rows.mean(axis=0)
        readout_error = task.noise_model.readout_error
        if readout_error > 0:
            damping = 1.0 - 2.0 * readout_error
            weights = np.array([pauli.weight()
                                for pauli, _ in task.observable.terms()])
            values = values * damping ** weights
        return values

    def _run_task(self, task: ExecutionTask):
        if task.is_expectation and task.has_noise:
            # Same per-trajectory seeding as the grouped path, so the plain
            # execute() pipeline and term_expectations agree bitwise.
            values = self.term_expectations_quiet(task)
            coefficients = np.array([float(np.real(coeff)) for _, coeff
                                     in task.observable.terms()])
            return float(np.dot(coefficients, values))
        simulator = StabilizerSimulator(task.noise_model,
                                        seed=_derive_seed(self._seed, task))
        circuit = _canonicalize_if_needed(task.circuit)
        if task.is_expectation:
            return simulator.expectation(circuit, task.observable,
                                         trajectories=task.trajectories)
        return simulator.sample(circuit, task.shots)

    def term_expectations_quiet(self, task: ExecutionTask) -> np.ndarray:
        """:meth:`term_expectations` without the invocation counter bump."""
        if task.is_expectation and task.has_noise:
            noise_model, circuit, observable, seeds = \
                self.trajectory_spec(task)
            rows = run_stabilizer_trajectory_shard(noise_model, circuit,
                                                   observable, seeds)
            return self.finalize_trajectory_rows(task, rows)
        simulator = StabilizerSimulator(task.noise_model,
                                        seed=_derive_seed(self._seed, task))
        circuit = _canonicalize_if_needed(task.circuit)
        return simulator.expectation_many(circuit, task.observable,
                                          trajectories=task.trajectories)

    def term_expectations(self, task: ExecutionTask):
        """Grouped path: one tableau evolution (per trajectory), one QWC
        basis rotation per measurement group — not one run per term."""
        self._count_invocations()
        return self.term_expectations_quiet(task)


class PauliPropagationBackend(Backend):
    """Deterministic noisy Clifford expectation values via Pauli propagation.

    Exact for stochastic Pauli noise (other channels are Pauli-twirled), and
    the fastest path for large Clifford workloads; it cannot sample.
    """

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            name="pauli_propagation",
            description="exact noisy Clifford expectation values "
                        "(deterministic, scales to 100+ qubits)",
            supports_sampling=False,
            clifford_only=True,
            parallel_hint="process")

    def _run_task(self, task: ExecutionTask):
        simulator = PauliPropagationSimulator(task.noise_model,
                                              include_idle=task.include_idle)
        circuit = _canonicalize_if_needed(task.circuit)
        return simulator.expectation(circuit, task.observable)

    def term_expectations(self, task: ExecutionTask):
        simulator = PauliPropagationSimulator(task.noise_model,
                                              include_idle=task.include_idle)
        circuit = _canonicalize_if_needed(task.circuit)
        self._count_invocations()
        return simulator.expectation_many(circuit, task.observable)
