"""One value that says how a batch should run: the ``ExecutionPolicy``.

Historically "how should this run" was threaded through a dozen
signatures as separate ``parallel=`` / ``max_workers=`` keywords, and the
retry budget and worker count each read their own environment variables at
their own call sites.  :class:`ExecutionPolicy` folds all of it — fan-out
mode, worker count, shard broker, retry budget — into one frozen value
accepted everywhere those keywords are today (``execute``,
``evaluate_observable``, ``evaluate_sweep``, ``run_memory_sampling``,
``BackendEnergyEvaluator``, service submit payloads).  The old keywords
keep working through :meth:`ExecutionPolicy.coerce`, and
:meth:`ExecutionPolicy.from_env` is the single reader for the scattered
``REPRO_WORKERS`` / ``REPRO_SHARD_*`` / ``REPRO_BROKER_SPOOL`` knobs.

Resolution order (most specific wins):

1. per-call ``parallel=`` / ``max_workers=`` keywords (legacy coercion),
2. the per-call ``policy=`` argument,
3. the executor's constructor policy,
4. the environment (:meth:`from_env`),
5. built-in defaults (auto mode, usable-CPU workers, local broker).

None of these can change results: the determinism contract makes every
value bitwise independent of fan-out mode, worker count and broker.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Any, Dict, Optional

from .broker import BROKER_SPOOL_ENV
from .errors import ExecutionError
from .sharding import (_PARALLEL_MODES, SHARD_BACKOFF_ENV, SHARD_RETRIES_ENV,
                       SHARD_TIMEOUT_ENV, WORKERS_ENV, ShardRetryPolicy)

__all__ = ["BROKER_SPOOL_ENV", "ExecutionPolicy"]

_RETRY_FIELDS = ("max_retries", "backoff_base", "backoff_cap", "timeout")


@dataclass(frozen=True)
class ExecutionPolicy:
    """How a batch fans out.  Every field defaults to ``None`` = "defer to
    the next layer" (executor default, then environment, then built-ins).

    ``parallel`` is a :class:`~repro.execution.sharding.ShardPlanner` mode
    (``"auto"`` / ``"process"`` / ``"thread"`` / ``"none"``);
    ``max_workers`` the worker count (must be >= 1 — zero/negative is a
    ``ValueError``, not a silent clamp); ``broker`` is ``None``/``"local"``
    for the shared fork pool, a spool path or ``"spool:PATH"`` string for a
    :class:`~repro.execution.broker.FilesystemBroker`, or a broker
    instance; ``retry`` overrides the supervised retry budget.
    """

    parallel: Optional[str] = None
    max_workers: Optional[int] = None
    broker: Optional[Any] = None
    retry: Optional[ShardRetryPolicy] = None

    def __post_init__(self):
        if self.parallel is not None and self.parallel not in _PARALLEL_MODES:
            raise ExecutionError(
                f"parallel must be one of {_PARALLEL_MODES}, "
                f"got {self.parallel!r}")
        if self.max_workers is not None and int(self.max_workers) < 1:
            raise ValueError(
                f"max_workers must be >= 1, got {self.max_workers!r} (leave "
                f"it None to fall back to the {WORKERS_ENV} environment "
                f"override or the usable-CPU count)")
        if self.retry is not None \
                and not isinstance(self.retry, ShardRetryPolicy):
            raise ExecutionError(
                f"retry must be a ShardRetryPolicy, got "
                f"{type(self.retry).__name__}")

    # -- construction ------------------------------------------------------

    @classmethod
    def coerce(cls, policy: Optional["ExecutionPolicy"] = None, *,
               parallel: Optional[str] = None,
               max_workers: Optional[int] = None) -> "ExecutionPolicy":
        """The thin legacy-keyword path: fold per-call ``parallel=`` /
        ``max_workers=`` keywords over an optional policy (keywords win —
        they are the most call-specific statement of intent).  Accepts a
        payload dict (the service wire form) for ``policy``."""
        if isinstance(policy, dict):
            policy = cls.from_payload(policy)
        if policy is None:
            return cls(parallel=parallel, max_workers=max_workers)
        if not isinstance(policy, cls):
            raise ExecutionError(
                f"policy must be an ExecutionPolicy (or payload dict), got "
                f"{type(policy).__name__}")
        if parallel is not None or max_workers is not None:
            policy = replace(
                policy,
                parallel=policy.parallel if parallel is None else parallel,
                max_workers=(policy.max_workers if max_workers is None
                             else max_workers))
        return policy

    @classmethod
    def from_env(cls) -> "ExecutionPolicy":
        """The one environment reader: ``REPRO_WORKERS`` (worker count),
        ``REPRO_BROKER_SPOOL`` (filesystem-broker spool directory) and the
        ``REPRO_SHARD_RETRIES`` / ``REPRO_SHARD_TIMEOUT`` /
        ``REPRO_SHARD_BACKOFF`` retry knobs, folded into one policy."""
        workers_env = os.environ.get(WORKERS_ENV, "").strip()
        max_workers = None
        if workers_env:
            max_workers = int(workers_env)
            if max_workers < 1:
                raise ValueError(
                    f"{WORKERS_ENV} must be >= 1, got {workers_env!r} "
                    f"(unset it to use the usable-CPU count)")
        spool = os.environ.get(BROKER_SPOOL_ENV, "").strip() or None
        retry = None
        if any(os.environ.get(name, "").strip()
               for name in (SHARD_RETRIES_ENV, SHARD_TIMEOUT_ENV,
                            SHARD_BACKOFF_ENV)):
            retry = ShardRetryPolicy.from_env()
        return cls(max_workers=max_workers, broker=spool, retry=retry)

    # -- merging -----------------------------------------------------------

    def merged_over(self, base: Optional["ExecutionPolicy"]
                    ) -> "ExecutionPolicy":
        """This policy with ``base`` filling any ``None`` fields (per-call
        policy over executor default, executor default over environment)."""
        if base is None:
            return self
        return ExecutionPolicy(
            parallel=self.parallel if self.parallel is not None
            else base.parallel,
            max_workers=self.max_workers if self.max_workers is not None
            else base.max_workers,
            broker=self.broker if self.broker is not None else base.broker,
            retry=self.retry if self.retry is not None else base.retry)

    # -- wire form (service submit payloads) -------------------------------

    def to_payload(self) -> Dict[str, Any]:
        """The JSON-able wire form.  Only a string broker spec survives —
        a live broker instance cannot cross the wire."""
        payload: Dict[str, Any] = {}
        if self.parallel is not None:
            payload["parallel"] = self.parallel
        if self.max_workers is not None:
            payload["max_workers"] = int(self.max_workers)
        if isinstance(self.broker, (str, os.PathLike)):
            payload["broker"] = os.fspath(self.broker)
        if self.retry is not None:
            payload["retry"] = {name: getattr(self.retry, name)
                                for name in _RETRY_FIELDS}
        return payload

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "ExecutionPolicy":
        unknown = set(payload) - {"parallel", "max_workers", "broker",
                                  "retry"}
        if unknown:
            raise ExecutionError(
                f"unknown ExecutionPolicy payload keys: {sorted(unknown)}")
        retry = payload.get("retry")
        if retry is not None:
            extra = set(retry) - set(_RETRY_FIELDS)
            if extra:
                raise ExecutionError(
                    f"unknown retry payload keys: {sorted(extra)}")
            retry = ShardRetryPolicy(**retry)
        max_workers = payload.get("max_workers")
        return cls(parallel=payload.get("parallel"),
                   max_workers=None if max_workers is None
                   else int(max_workers),
                   broker=payload.get("broker"), retry=retry)
