"""Typed work units flowing through the execution layer.

An :class:`ExecutionTask` bundles everything a backend needs to produce one
number (an expectation value) or one histogram (measurement counts): the
circuit, the observable or shot count, the noise model and any backend
options.  Tasks are value objects — their :meth:`ExecutionTask.cache_key` is
what the executor deduplicates and caches on.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from ..circuits.circuit import QuantumCircuit
from ..operators.pauli import PauliSum
from ..simulators.noise import NoiseModel
from .errors import ExecutionError


def observable_fingerprint(observable: PauliSum) -> str:
    """Stable content hash of a Pauli-sum observable (hex digest).

    Terms are hashed in sorted symplectic-key order, so two observables built
    term-by-term in different orders still share a fingerprint.
    """
    hasher = hashlib.blake2b(digest_size=16)
    hasher.update(str(observable.num_qubits).encode())
    entries = sorted(((pauli.key(), complex(coeff))
                      for pauli, coeff in observable.terms()),
                     key=lambda entry: entry[0])
    for (x_bytes, z_bytes), coeff in entries:
        hasher.update(x_bytes)
        hasher.update(z_bytes)
        hasher.update(repr(coeff).encode())
    return hasher.hexdigest()


def noise_token(noise_model: Optional[NoiseModel]):
    """Cache-key component identifying a noise model.

    ``None`` (or a model with no noise) normalizes to ``None`` so noiseless
    tasks share cache entries regardless of how "no noise" was spelled.
    Nontrivial models are identified by their **content fingerprint**
    (:meth:`repro.simulators.noise.NoiseModel.fingerprint`): an in-place
    ``add_*`` edit changes the content and invalidates prior entries, two
    independently built but bit-identical models share entries, and —
    because the token is a pure content hash rather than an object identity —
    keys are stable across processes and interpreter runs, which is what the
    persistent :class:`~repro.execution.disk_cache.DiskExpectationCache`
    relies on.
    """
    if noise_model is None or not noise_model.has_noise():
        return None
    return noise_model.fingerprint()


@dataclass(frozen=True)
class ExecutionTask:
    """One unit of simulator work: a circuit plus what to extract from it.

    Exactly one of ``observable`` (expectation-value task) or ``shots``
    (sampling task) must be set.  ``observable`` is a full (possibly
    many-term) :class:`~repro.operators.pauli.PauliSum`: the grouped engine
    evolves the circuit once and reads every term off the final state, and
    :meth:`split_terms` recovers the legacy one-task-per-term pattern when a
    per-term submission is explicitly wanted.  ``backend`` optionally pins
    the task to a named backend, overriding auto-routing.  ``metadata`` is
    caller-owned and never affects scheduling, caching or results.
    Example::

        task = ExecutionTask(circuit, observable=hamiltonian,
                             noise_model=noise)
        [result] = execute([task], backend="auto")
    """

    circuit: QuantumCircuit
    observable: Optional[PauliSum] = None
    shots: Optional[int] = None
    noise_model: Optional[NoiseModel] = None
    backend: Optional[str] = None
    trajectories: Optional[int] = None
    include_idle: bool = True
    metadata: Dict[str, Any] = field(default_factory=dict, compare=False)

    def __post_init__(self):
        if (self.observable is None) == (self.shots is None):
            raise ExecutionError(
                "an ExecutionTask needs exactly one of `observable` "
                "(expectation task) or `shots` (sampling task)")
        # Normalize counts to plain ints (callers often pass numpy scalars
        # from sweep configs) so cache keys are canonical and disk-stable.
        if self.shots is not None:
            object.__setattr__(self, "shots", int(self.shots))
        if self.trajectories is not None:
            object.__setattr__(self, "trajectories", int(self.trajectories))
        if self.shots is not None and self.shots < 1:
            raise ExecutionError("shots must be a positive integer")
        if (self.observable is not None
                and self.observable.num_qubits != self.circuit.num_qubits):
            raise ExecutionError(
                f"observable acts on {self.observable.num_qubits} qubits but "
                f"the circuit has {self.circuit.num_qubits}")

    # -- classification ------------------------------------------------------
    @property
    def is_expectation(self) -> bool:
        return self.observable is not None

    @property
    def is_sampling(self) -> bool:
        return self.shots is not None

    @property
    def has_noise(self) -> bool:
        return (self.noise_model is not None
                and self.noise_model.has_noise())

    @property
    def num_qubits(self) -> int:
        return self.circuit.num_qubits

    @property
    def num_observable_terms(self) -> int:
        """Number of Pauli terms the observable carries (0 for sampling)."""
        return self.observable.num_terms if self.is_expectation else 0

    def is_clifford(self) -> bool:
        return self.circuit.is_clifford()

    def split_terms(self) -> list:
        """One single-term expectation task per Pauli term of the observable.

        This is the legacy per-term submission pattern the grouped engine
        replaces — each subtask re-evolves the circuit — retained for
        correctness cross-checks and benchmarking the grouped speedup.
        Identity terms are included (their expectation is exactly 1), so
        re-assembling ``Σ coeff_i · value_i`` reproduces the full energy.
        """
        if not self.is_expectation:
            raise ExecutionError("only expectation tasks can be split by term")
        subtasks = []
        for pauli, _ in self.observable.terms():
            observable = PauliSum(self.observable.num_qubits, [(pauli, 1.0)])
            subtasks.append(ExecutionTask(
                circuit=self.circuit, observable=observable,
                noise_model=self.noise_model, backend=self.backend,
                trajectories=self.trajectories,
                include_idle=self.include_idle,
                metadata=dict(self.metadata)))
        return subtasks

    # -- identity ------------------------------------------------------------
    def cache_key(self, backend_name) -> Tuple:
        """Hashable identity of this task when run on ``backend_name``.

        Two tasks with equal keys are interchangeable: same circuit
        structure, observable/shots, noise model and backend options, bound
        for the same backend.  ``backend_name`` is normally the backend's
        :meth:`~repro.execution.backend.Backend.cache_token` — the plain
        name, or a tuple folding in result-affecting backend configuration
        (e.g. a Monte-Carlo seed).  Every component is content-derived, so
        keys are stable across processes and feed the persistent disk cache
        unchanged.
        """
        if self.is_expectation:
            payload = ("expval", observable_fingerprint(self.observable))
        else:
            payload = ("sample", int(self.shots))
        return (self.circuit.fingerprint(), payload,
                noise_token(self.noise_model), backend_name,
                self.trajectories, self.include_idle)

    def term_cache_key(self, backend_name,
                      term_key: Tuple[bytes, bytes],
                      circuit_fingerprint: Optional[str] = None) -> Tuple:
        """Cache key for one Pauli term of this task's observable.

        ``term_key`` is :meth:`repro.operators.pauli.PauliString.key` — the
        phase-free symplectic identity of the term.  Per-term entries are what
        let a later Hamiltonian that only *overlaps* this task's observable
        hit the cache term-by-term instead of missing on the whole-observable
        fingerprint.  Callers building keys for many terms of one circuit
        pass the precomputed ``circuit_fingerprint`` so the circuit is hashed
        once, not once per term.
        """
        if circuit_fingerprint is None:
            circuit_fingerprint = self.circuit.fingerprint()
        return (circuit_fingerprint, ("term",) + tuple(term_key),
                noise_token(self.noise_model), backend_name,
                self.trajectories, self.include_idle)

    def __repr__(self):
        kind = "expval" if self.is_expectation else f"sample[{self.shots}]"
        return (f"ExecutionTask({kind}, qubits={self.num_qubits}, "
                f"noisy={self.has_noise}, backend={self.backend!r})")


@dataclass(frozen=True)
class ExecutionResult:
    """Outcome of one :class:`ExecutionTask`.

    ``value`` holds the expectation value (expectation tasks), ``counts`` the
    bitstring histogram (sampling tasks).  ``source`` records how the result
    was produced: ``"backend"`` (a simulator ran), ``"cache"`` (served from
    the cross-call expectation cache) or ``"dedup"`` (shared with an
    identical task in the same batch).
    """

    task: ExecutionTask
    backend_name: str
    value: Optional[float] = None
    counts: Optional[Dict[str, int]] = None
    source: str = "backend"
    elapsed: float = 0.0

    @property
    def cached(self) -> bool:
        """True when no simulator invocation was spent on this result."""
        return self.source in ("cache", "dedup")

    def __repr__(self):
        payload = (f"value={self.value:.6g}" if self.value is not None
                   else f"counts[{len(self.counts or {})}]")
        return (f"ExecutionResult({payload}, backend={self.backend_name!r}, "
                f"source={self.source!r})")
