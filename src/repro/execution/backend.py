"""The backend protocol every execution path implements.

A backend is a batch-oriented wrapper around one simulation engine: it
advertises what it can run through :meth:`Backend.capabilities` and turns a
list of :class:`~repro.execution.task.ExecutionTask` objects into a list of
:class:`~repro.execution.task.ExecutionResult` objects through
:meth:`Backend.run_batch`.  The executor never talks to a simulator directly —
adding a new execution path (a remote service, a GPU engine) means
implementing this interface and registering it.
"""

from __future__ import annotations

import abc
import threading
import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from .errors import BackendCapabilityError
from .task import ExecutionResult, ExecutionTask


@dataclass(frozen=True)
class BackendCapabilities:
    """What a backend can run, used by routing and validation.

    ``max_qubits`` is an advisory ceiling (dense simulators blow up past it);
    ``deterministic`` means equal tasks always produce equal results, which
    is the precondition for caching and deduplication.  ``parallel_hint``
    tells the shard planner how this backend's work scales out:
    ``"process"`` for CPU-bound simulation (the GIL serializes threads, so
    batches shard across worker processes — or run inline below the batch
    threshold), ``"thread"`` for backends that release the GIL or wait on
    I/O (remote services), ``"inline"`` for backends that must never be
    fanned out.  The in-repo simulators are all CPU-bound NumPy/Python and
    hint ``"process"``; the default is ``"thread"`` so custom backends keep
    the historical thread-pool behaviour.
    """

    name: str
    description: str = ""
    supports_noise: bool = True
    supports_expectation: bool = True
    supports_sampling: bool = True
    clifford_only: bool = False
    deterministic: bool = True
    max_qubits: Optional[int] = None
    parallel_hint: str = "thread"


class Backend(abc.ABC):
    """Abstract execution backend with batch submission and task validation."""

    def __init__(self):
        self.invocations = 0
        self._invocation_lock = threading.Lock()

    def _count_invocations(self, count: int = 1) -> None:
        with self._invocation_lock:
            self.invocations += count

    # -- pickling ------------------------------------------------------------
    # Backends travel to worker processes under ``parallel="process"`` — the
    # only unpicklable piece of the base state is the counter lock, which is
    # dropped on the way out and recreated on the way in.  Worker-side
    # invocation counts stay in the worker; the executor attributes
    # invocations in the parent.
    def __getstate__(self):
        state = dict(self.__dict__)
        state.pop("_invocation_lock", None)
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._invocation_lock = threading.Lock()

    @abc.abstractmethod
    def capabilities(self) -> BackendCapabilities:
        """Static description of what this backend supports."""

    @abc.abstractmethod
    def _run_task(self, task: ExecutionTask):
        """Execute one validated task; returns the expectation value (float)
        for expectation tasks or the counts histogram (dict) for sampling
        tasks."""

    @property
    def name(self) -> str:
        return self.capabilities().name

    # -- validation ----------------------------------------------------------
    def unsupported_reason(self, task: ExecutionTask, *,
                           enforce_qubit_limit: bool = True) -> Optional[str]:
        """Why this backend cannot run ``task``, or None when it can.

        ``max_qubits`` is advisory: auto-routing honours it
        (``enforce_qubit_limit=True``), but a caller who names this backend
        explicitly may exceed it and accept the memory/time cost
        (``enforce_qubit_limit=False``) — matching the behaviour of calling
        the underlying simulator directly.
        """
        caps = self.capabilities()
        if task.is_expectation and not caps.supports_expectation:
            return f"backend {caps.name!r} cannot compute expectation values"
        if task.is_sampling and not caps.supports_sampling:
            return f"backend {caps.name!r} cannot sample measurement outcomes"
        if task.has_noise and not caps.supports_noise:
            return f"backend {caps.name!r} is noiseless-only"
        if caps.clifford_only and not task.is_clifford():
            return (f"backend {caps.name!r} only runs Clifford circuits "
                    f"(rotations at multiples of pi/2)")
        if enforce_qubit_limit and caps.max_qubits is not None \
                and task.num_qubits > caps.max_qubits:
            return (f"backend {caps.name!r} is limited to {caps.max_qubits} "
                    f"qubits; task has {task.num_qubits}")
        return None

    def supports(self, task: ExecutionTask) -> bool:
        return self.unsupported_reason(task) is None

    def is_deterministic_for(self, task: ExecutionTask) -> bool:
        """Whether equal copies of ``task`` would yield identical results."""
        return self.capabilities().deterministic

    def cache_token(self, task: ExecutionTask):
        """The backend component of ``task``'s cache key.

        Defaults to the backend name.  Backends whose results depend on
        private configuration beyond the task fields — e.g. a seeded
        Monte-Carlo backend, where the value is reproducible but a function
        of the seed — must fold that configuration in here so differently
        configured instances never share cache entries.  The token must be
        built from stable content (names, numbers), never object identities:
        it is part of the persistent disk-cache key.
        """
        return self.name

    # -- execution -----------------------------------------------------------
    def run_batch(self, tasks: Sequence[ExecutionTask]) -> List[ExecutionResult]:
        """Execute every task, in order; raises on the first unsupported one."""
        results: List[ExecutionResult] = []
        for task in tasks:
            # Calling run_batch is an explicit backend choice, so the
            # advisory qubit ceiling is not enforced here.
            reason = self.unsupported_reason(task, enforce_qubit_limit=False)
            if reason is not None:
                raise BackendCapabilityError(f"{reason} (task: {task!r})")
            start = time.perf_counter()
            payload = self._run_task(task)
            self._count_invocations()
            results.append(ExecutionResult(
                task=task, backend_name=self.name,
                value=float(payload) if task.is_expectation else None,
                counts=payload if task.is_sampling else None,
                source="backend", elapsed=time.perf_counter() - start))
        return results

    # -- grouped observables ---------------------------------------------------
    def term_expectations(self, task: ExecutionTask):
        """Per-term ⟨P_i⟩ of the task's observable, aligned with
        ``task.observable.terms()`` (coefficients are **not** applied).

        This is the grouped-observable entry point: adapters override it to
        evolve the circuit **once** and read every term off the final state
        (vectorized kernels on the dense simulators, one QWC basis rotation
        per group on the tableau, one propagation pass for Pauli
        propagation).  The base implementation is the correctness fallback
        for custom backends — it runs one single-term task per term, which
        is exactly the per-term cost the overrides avoid.
        """
        reason = self.unsupported_reason(task, enforce_qubit_limit=False)
        if reason is not None:
            raise BackendCapabilityError(f"{reason} (task: {task!r})")
        if not task.is_expectation:
            raise BackendCapabilityError(
                "term_expectations requires an expectation task")
        values = [float(self._run_task(subtask))
                  for subtask in task.split_terms()]
        self._count_invocations(len(values))
        return np.asarray(values)

    def __repr__(self):
        return f"{type(self).__name__}(name={self.name!r})"
