"""Regime-aware routing of tasks onto backends.

Mirrors the paper's evaluation methodology (Sec. 5.2): Clifford
("stabilizer-proxy") circuits go to the stabilizer tableau when noiseless and
to exact Pauli propagation when noisy; small noisy non-Clifford circuits go
to the dense density-matrix simulator; everything noiseless and non-Clifford
goes to the statevector reference.  Routing never picks a backend that
rejects the task — when nothing fits, a :class:`RoutingError` explains why.
"""

from __future__ import annotations

from typing import Optional

from .adapters import MAX_DENSITY_MATRIX_QUBITS, MAX_STATEVECTOR_QUBITS
from .errors import RoutingError
from .registry import BackendRegistry, DEFAULT_REGISTRY
from .task import ExecutionTask


def route_task(task: ExecutionTask,
               registry: Optional[BackendRegistry] = None) -> str:
    """Canonical name of the backend an ``"auto"`` dispatch should use.

    A task-level ``task.backend`` override short-circuits the decision (it is
    resolved against the registry but otherwise trusted).
    """
    registry = registry or DEFAULT_REGISTRY
    if task.backend is not None:
        return registry.canonical_name(task.backend)

    clifford = task.is_clifford()
    noisy = task.has_noise

    if task.is_sampling:
        if clifford and (noisy or task.num_qubits > MAX_STATEVECTOR_QUBITS):
            return "stabilizer"
        if not noisy:
            if task.num_qubits > MAX_STATEVECTOR_QUBITS:
                raise RoutingError(
                    f"no backend can sample a noiseless non-Clifford "
                    f"{task.num_qubits}-qubit circuit (statevector tops out "
                    f"at {MAX_STATEVECTOR_QUBITS} qubits)")
            return "statevector"
        if task.num_qubits <= MAX_DENSITY_MATRIX_QUBITS:
            return "density_matrix"
        raise RoutingError(
            f"no backend can sample a noisy non-Clifford "
            f"{task.num_qubits}-qubit circuit (density matrix tops out at "
            f"{MAX_DENSITY_MATRIX_QUBITS} qubits)")

    # Expectation-value tasks.
    if clifford:
        # Noisy Clifford work is exactly what Pauli propagation solves
        # deterministically; noiseless Clifford states are exact on the
        # tableau at any size.
        return "pauli_propagation" if noisy else "stabilizer"
    if not noisy:
        if task.num_qubits > MAX_STATEVECTOR_QUBITS:
            raise RoutingError(
                f"no backend can evaluate a noiseless non-Clifford "
                f"{task.num_qubits}-qubit circuit exactly; restrict the "
                f"circuit to Clifford angles or reduce it below "
                f"{MAX_STATEVECTOR_QUBITS} qubits")
        return "statevector"
    if task.num_qubits <= MAX_DENSITY_MATRIX_QUBITS:
        return "density_matrix"
    raise RoutingError(
        f"no backend can evaluate a noisy non-Clifford {task.num_qubits}-"
        f"qubit circuit: density matrix tops out at "
        f"{MAX_DENSITY_MATRIX_QUBITS} qubits and the Clifford backends "
        f"require rotations at multiples of pi/2")
