"""Name-based lookup of execution backends.

The default registry exposes the four in-repo simulators as
``"statevector"``, ``"density_matrix"``, ``"stabilizer"`` and
``"pauli_propagation"`` (with short aliases).  Shared instances are created
lazily by :meth:`BackendRegistry.get`; :meth:`BackendRegistry.create` builds
a fresh, independently-seeded instance when isolation is needed.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional

from .adapters import (DensityMatrixBackend, PauliPropagationBackend,
                       StabilizerBackend, StatevectorBackend)
from .backend import Backend, BackendCapabilities
from .errors import ExecutionError, UnknownBackendError


class BackendRegistry:
    """Maps backend names (and aliases) to factories and shared instances."""

    def __init__(self):
        self._factories: Dict[str, Callable[..., Backend]] = {}
        self._aliases: Dict[str, str] = {}
        self._instances: Dict[str, Backend] = {}
        self._lock = threading.Lock()

    # -- registration --------------------------------------------------------
    def register(self, name: str, factory: Callable[..., Backend],
                 aliases: tuple = (), overwrite: bool = False) -> None:
        """Register a backend factory under ``name`` (plus optional aliases)."""
        name = name.lower()
        with self._lock:
            if not overwrite and (name in self._factories
                                  or name in self._aliases):
                raise ExecutionError(f"backend {name!r} is already registered")
            self._factories[name] = factory
            self._instances.pop(name, None)
            for alias in aliases:
                self._aliases[alias.lower()] = name

    def canonical_name(self, name: str) -> str:
        """Resolve aliases; raises :class:`UnknownBackendError` if unknown."""
        lowered = name.lower()
        lowered = self._aliases.get(lowered, lowered)
        if lowered not in self._factories:
            raise UnknownBackendError(name, self._factories)
        return lowered

    def __contains__(self, name: str) -> bool:
        lowered = name.lower()
        return lowered in self._factories or lowered in self._aliases

    def names(self) -> List[str]:
        """Canonical backend names, sorted."""
        return sorted(self._factories)

    # -- instantiation -------------------------------------------------------
    def get(self, name: str) -> Backend:
        """The shared instance for ``name`` (created lazily)."""
        canonical = self.canonical_name(name)
        with self._lock:
            instance = self._instances.get(canonical)
            if instance is None:
                instance = self._factories[canonical]()
                self._instances[canonical] = instance
            return instance

    def create(self, name: str, **kwargs) -> Backend:
        """A fresh instance for ``name`` (e.g. with an explicit seed)."""
        return self._factories[self.canonical_name(name)](**kwargs)

    def capabilities(self) -> Dict[str, BackendCapabilities]:
        return {name: self.get(name).capabilities() for name in self.names()}


def _make_default_registry() -> BackendRegistry:
    registry = BackendRegistry()
    registry.register("statevector", StatevectorBackend, aliases=("sv",))
    registry.register("density_matrix", DensityMatrixBackend, aliases=("dm",))
    registry.register("stabilizer", StabilizerBackend, aliases=("chp",))
    registry.register("pauli_propagation", PauliPropagationBackend,
                      aliases=("pauli_prop", "pp"))
    return registry


#: The process-wide registry behind :func:`get_backend` and ``execute``.
DEFAULT_REGISTRY = _make_default_registry()


def get_backend(name: str, registry: Optional[BackendRegistry] = None) -> Backend:
    """Shared backend instance for ``name`` from the (default) registry."""
    return (registry or DEFAULT_REGISTRY).get(name)


def register_backend(name: str, factory: Callable[..., Backend],
                     aliases: tuple = (), overwrite: bool = False) -> None:
    """Register a custom backend factory in the default registry.

    ``factory`` is a zero-argument callable returning a
    :class:`~repro.execution.backend.Backend`; once registered, the name
    (and any aliases) routes through ``execute(tasks, backend=name)`` and
    the grouped-observable engine exactly like the built-in simulators.
    Example::

        register_backend("gpu", lambda: MyGPUBackend(), aliases=("cuda",))
        execute(tasks, backend="gpu")
    """
    DEFAULT_REGISTRY.register(name, factory, aliases=aliases,
                              overwrite=overwrite)


def available_backends() -> List[str]:
    """Canonical names of every backend in the default registry.

    The four built-ins are ``"statevector"``, ``"density_matrix"``,
    ``"stabilizer"`` and ``"pauli_propagation"``; any name returned here is
    valid for ``execute(..., backend=name)``, task-level ``backend=`` pins
    and :func:`get_backend`.  Example::

        assert "statevector" in available_backends()
    """
    return DEFAULT_REGISTRY.names()
