"""Exception hierarchy for the execution layer."""

from __future__ import annotations


class ExecutionError(RuntimeError):
    """Base class for failures in the :mod:`repro.execution` layer."""


class UnknownBackendError(ExecutionError, KeyError):
    """A backend name was requested that the registry does not know."""

    def __init__(self, name: str, available):
        self.backend_name = name
        self.available = tuple(sorted(available))
        super().__init__(
            f"unknown backend {name!r}; available backends: "
            f"{', '.join(self.available) or '(none)'}")

    def __str__(self) -> str:  # KeyError quotes its payload; keep the message
        return self.args[0]


class BackendCapabilityError(ExecutionError):
    """A task was dispatched to a backend that cannot run it."""


class RoutingError(ExecutionError):
    """Auto-routing could not find a backend able to run a task."""


class TransientFault(ExecutionError):
    """A retryable, non-deterministic failure inside a shard or job.

    Raised by the fault-injection harness (:mod:`repro.execution.faults`)
    and available to custom backends/jobs that want a failure class the
    shard supervisor treats as retryable rather than fatal: the supervisor
    retries the affected shard with backoff, while any other exception
    type propagates immediately (a deterministic bug would fail the retry
    identically, so retrying it only wastes the budget).
    """
