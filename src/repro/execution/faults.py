"""Deterministic, seeded fault injection for chaos-testing recovery paths.

The fault-tolerance layer (shard supervisor, job retry/lease machinery,
disk-cache quarantine) is only trustworthy if its recovery paths are
exercised continuously — and the repo's bitwise-deterministic seeding makes
that cheap: a recovered run must equal the unfaulted run *exactly*, so a
chaos test is an equality assertion, not a statistical one.  This module
supplies the controlled failures:

* :class:`FaultInjector` holds :class:`FaultRule` entries and is consulted
  at named **sites** (``"shard"`` — one process-pool shard dispatch,
  ``"job"`` — a service job checkpoint, ``"disk-cache"`` — one disk-cache
  entry write).  Each consultation deterministically decides, from the
  injector seed and the per-rule consultation counter alone, whether a
  fault fires — the same schedule replays exactly across runs, regardless
  of thread interleaving at *other* sites.
* Fired faults become picklable :class:`FaultDirective` values.  The shard
  supervisor consults the injector **in the parent** and ships directives
  inside shard payloads, so injection works with the persistent
  forked worker pool without any cross-process injector state.
* Directive kinds: ``"kill"`` (``SIGKILL`` the executing worker process —
  a hard crash mid-shard), ``"delay"`` (sleep ``seconds`` — drive a shard
  past its wall-clock timeout), ``"raise"`` (raise
  :class:`~repro.execution.errors.TransientFault`), and ``"corrupt"``
  (truncate the just-written disk-cache entry).

Configuration is by constructor (tests) or the ``REPRO_FAULTS``
environment variable (CI chaos passes)::

    REPRO_FAULTS="seed=7,shard.kill=1/1,job.raise=0.5/2"

i.e. comma-separated ``site.kind=rate[/limit][:seconds]`` rules plus an
optional ``seed=N``.  ``rate`` is the per-consultation firing probability
(resolved deterministically from the seed — not from a live RNG), ``limit``
caps total firings of the rule, ``seconds`` sets the delay duration.
"""

from __future__ import annotations

import hashlib
import os
import signal
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .errors import TransientFault

__all__ = [
    "FAULTS_ENV", "FAULT_SITES", "FAULT_KINDS", "FaultRule",
    "FaultDirective", "FaultInjector", "TransientFault", "active_injector",
    "clear_injector", "consult", "execute_directive", "inject_faults",
    "install_injector", "parse_fault_spec",
]

#: Environment variable holding a fault spec (see module docstring).
FAULTS_ENV = "REPRO_FAULTS"

#: Consultation sites the harness knows about.
FAULT_SITES = ("shard", "job", "disk-cache")

#: Supported directive kinds.
FAULT_KINDS = ("kill", "delay", "raise", "corrupt")


@dataclass(frozen=True)
class FaultRule:
    """One injection rule: fire ``kind`` at ``site`` with probability
    ``rate`` per consultation, at most ``limit`` times total."""

    site: str
    kind: str
    rate: float = 1.0
    limit: Optional[int] = None
    seconds: float = 0.05  # sleep duration for "delay" directives

    def __post_init__(self):
        if self.site not in FAULT_SITES:
            raise ValueError(f"unknown fault site {self.site!r} "
                             f"(expected one of {FAULT_SITES})")
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r} "
                             f"(expected one of {FAULT_KINDS})")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")

    @property
    def label(self) -> str:
        return f"{self.site}.{self.kind}"


@dataclass(frozen=True)
class FaultDirective:
    """A fired fault, shipped (picklably) to wherever it executes."""

    kind: str
    seconds: float = 0.0
    note: str = ""


def _fires(seed: int, rule: FaultRule, rule_index: int,
           occurrence: int) -> bool:
    """Deterministic Bernoulli draw for one rule consultation.

    The decision hashes (seed, site, kind, rule position, per-rule
    consultation index) — no shared RNG stream, so concurrent consultations
    of *different* sites can never perturb each other's schedules.
    """
    if rule.rate >= 1.0:
        return True
    if rule.rate <= 0.0:
        return False
    material = (f"{seed}|{rule.site}|{rule.kind}|{rule_index}|{occurrence}"
                .encode("utf-8"))
    digest = hashlib.blake2b(material, digest_size=8).digest()
    fraction = int.from_bytes(digest, "big") / float(1 << 64)
    return fraction < rule.rate


@dataclass
class FaultInjector:
    """A deterministic fault schedule over a set of rules.

    ``directive(site)`` is thread-safe; per-rule consultation and firing
    counters advance under a lock, so the schedule is a pure function of
    the per-site consultation *order* (which the supervisor makes
    deterministic by consulting in shard-index order before dispatch).
    """

    rules: Sequence[FaultRule] = ()
    seed: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)
    _consults: Dict[int, int] = field(default_factory=dict,
                                      repr=False, compare=False)
    _fired: Dict[int, int] = field(default_factory=dict,
                                   repr=False, compare=False)

    def directive(self, site: str) -> Optional[FaultDirective]:
        """Consult the schedule at ``site``; the first rule that fires
        wins (rules are independent — each keeps its own counters)."""
        with self._lock:
            hit: Optional[FaultDirective] = None
            for index, rule in enumerate(self.rules):
                if rule.site != site:
                    continue
                occurrence = self._consults.get(index, 0)
                self._consults[index] = occurrence + 1
                if hit is not None:
                    continue  # still advance later rules' clocks
                fired = self._fired.get(index, 0)
                if rule.limit is not None and fired >= rule.limit:
                    continue
                if _fires(self.seed, rule, index, occurrence):
                    self._fired[index] = fired + 1
                    hit = FaultDirective(
                        kind=rule.kind, seconds=rule.seconds,
                        note=f"{rule.label}#{fired + 1}")
            return hit

    def fired_counts(self) -> Dict[str, int]:
        """Total firings per ``site.kind`` label so far."""
        with self._lock:
            counts: Dict[str, int] = {}
            for index, fired in self._fired.items():
                label = self.rules[index].label
                counts[label] = counts.get(label, 0) + fired
            return counts

    def reset(self) -> None:
        """Rewind all counters — the schedule replays from the start."""
        with self._lock:
            self._consults.clear()
            self._fired.clear()


def parse_fault_spec(spec: str) -> FaultInjector:
    """Build a :class:`FaultInjector` from a ``REPRO_FAULTS``-style spec.

    Format: comma-separated entries, each either ``seed=N`` or
    ``site.kind=rate[/limit][:seconds]``.  Example::

        parse_fault_spec("seed=7,shard.kill=1/1,shard.delay=0.5/2:0.2")
    """
    seed = 0
    rules: List[FaultRule] = []
    for entry in spec.split(","):
        entry = entry.strip()
        if not entry:
            continue
        name, _, value = entry.partition("=")
        name = name.strip()
        value = value.strip()
        if not value:
            raise ValueError(f"malformed fault entry {entry!r} "
                             f"(expected name=value)")
        if name == "seed":
            seed = int(value)
            continue
        site, _, kind = name.partition(".")
        value, _, seconds = value.partition(":")
        rate, _, limit = value.partition("/")
        rules.append(FaultRule(
            site=site, kind=kind, rate=float(rate),
            limit=int(limit) if limit else None,
            seconds=float(seconds) if seconds else 0.05))
    return FaultInjector(rules=tuple(rules), seed=seed)


# ---------------------------------------------------------------------------
# The process-wide active injector
# ---------------------------------------------------------------------------

_active: Optional[FaultInjector] = None
_active_lock = threading.Lock()
#: Injector parsed from the environment, cached per spec string so its
#: firing counters persist across consultations within one process.
_env_cached: Tuple[Optional[str], Optional[FaultInjector]] = (None, None)


def install_injector(injector: Optional[FaultInjector]) -> None:
    """Make ``injector`` the process-wide schedule (None uninstalls)."""
    global _active
    with _active_lock:
        _active = injector


def clear_injector() -> None:
    install_injector(None)


def active_injector() -> Optional[FaultInjector]:
    """The installed injector, else one parsed from ``REPRO_FAULTS``
    (cached per spec value), else None — the no-chaos fast path."""
    global _env_cached
    with _active_lock:
        if _active is not None:
            return _active
        spec = os.environ.get(FAULTS_ENV) or None
        if spec is None:
            return None
        cached_spec, cached = _env_cached
        if cached_spec != spec:
            cached = parse_fault_spec(spec)
            _env_cached = (spec, cached)
        return cached


def consult(site: str) -> Optional[FaultDirective]:
    """One schedule consultation at ``site`` (None when chaos is off)."""
    injector = active_injector()
    return injector.directive(site) if injector is not None else None


@contextmanager
def inject_faults(spec: Union[str, FaultInjector], seed: int = 0):
    """Scoped installation: ``with inject_faults("shard.kill=1/1"): ...``.

    ``spec`` is a spec string (``seed`` applies unless the string carries
    its own ``seed=`` entry) or a ready :class:`FaultInjector`.  Yields the
    injector so tests can assert on :meth:`FaultInjector.fired_counts`.
    """
    if isinstance(spec, FaultInjector):
        injector = spec
    else:
        injector = parse_fault_spec(spec)
        if "seed=" not in spec:
            injector = FaultInjector(rules=injector.rules, seed=seed)
    install_injector(injector)
    try:
        yield injector
    finally:
        clear_injector()


def execute_directive(directive: FaultDirective) -> None:
    """Carry out a directive at its execution point.

    ``"kill"`` SIGKILLs the **current process** — only execute directives
    in a context prepared to die (a pool worker); the shard supervisor
    never forwards directives to its inline-degraded path for exactly this
    reason.  ``"corrupt"`` is a no-op here — it is applied by the disk
    cache to the entry file it just wrote.
    """
    if directive.kind == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
    elif directive.kind == "delay":
        time.sleep(max(0.0, directive.seconds))
    elif directive.kind == "raise":
        raise TransientFault(f"injected fault {directive.note or 'raise'}")
