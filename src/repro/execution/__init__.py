"""Unified execution-backend API.

One stable seam between every consumer of simulation (VQE energy evaluators,
QAOA, VQD, the variational classifier, VarSaw, twirling) and the four
execution paths the paper evaluates with (statevector, density matrix,
stabilizer tableau, Pauli propagation):

* :class:`ExecutionTask` / :class:`ExecutionResult` — typed work units;
* :class:`Backend` + :func:`get_backend` — the batch protocol and the
  registry of adapters wrapping the in-repo simulators;
* :func:`execute` — batched, deduplicated, LRU-cached, regime-aware
  dispatch with thread-pool fan-out.

Quick start::

    from repro.execution import ExecutionTask, execute

    tasks = [ExecutionTask(circuit, observable=hamiltonian)
             for circuit in circuits]
    energies = [result.value for result in execute(tasks, backend="auto")]
"""

from .adapters import (DensityMatrixBackend, MAX_DENSITY_MATRIX_QUBITS,
                       MAX_STATEVECTOR_QUBITS, PauliPropagationBackend,
                       StabilizerBackend, StatevectorBackend)
from .backend import Backend, BackendCapabilities
from .cache import CacheStats, ExpectationCache
from .errors import (BackendCapabilityError, ExecutionError, RoutingError,
                     UnknownBackendError)
from .executor import (ExecutionStats, Executor, default_executor, execute,
                       execute_one, reset_default_executor)
from .registry import (BackendRegistry, DEFAULT_REGISTRY, available_backends,
                       get_backend, register_backend)
from .router import route_task
from .task import (ExecutionResult, ExecutionTask, noise_token,
                   observable_fingerprint)

__all__ = [
    "Backend",
    "BackendCapabilities",
    "BackendCapabilityError",
    "BackendRegistry",
    "CacheStats",
    "DEFAULT_REGISTRY",
    "DensityMatrixBackend",
    "ExecutionError",
    "ExecutionResult",
    "ExecutionStats",
    "ExecutionTask",
    "Executor",
    "ExpectationCache",
    "MAX_DENSITY_MATRIX_QUBITS",
    "MAX_STATEVECTOR_QUBITS",
    "PauliPropagationBackend",
    "RoutingError",
    "StabilizerBackend",
    "StatevectorBackend",
    "UnknownBackendError",
    "available_backends",
    "default_executor",
    "execute",
    "execute_one",
    "get_backend",
    "noise_token",
    "observable_fingerprint",
    "register_backend",
    "reset_default_executor",
    "route_task",
]
