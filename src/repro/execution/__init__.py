"""Unified execution-backend API.

One stable seam between every consumer of simulation (VQE energy evaluators,
QAOA, VQD, the variational classifier, VarSaw, twirling) and the four
execution paths the paper evaluates with (statevector, density matrix,
stabilizer tableau, Pauli propagation):

* :class:`ExecutionTask` / :class:`ExecutionResult` — typed work units;
* :class:`Backend` + :func:`get_backend` — the batch protocol and the
  registry of adapters wrapping the in-repo simulators;
* :func:`execute` — batched, deduplicated, LRU-cached, regime-aware
  dispatch with thread-pool fan-out;
* :func:`evaluate_observable` / :func:`term_expectations` — the
  grouped-observable engine: each unique circuit is evolved **once** and
  every Pauli term of a many-term Hamiltonian is read off the final state
  (vectorized kernels / QWC measurement groups), with per-(circuit, term)
  caching;
* :func:`evaluate_sweep` — the batched parameter-sweep pipeline over the
  circuit-compile layer (:mod:`repro.simulators.program`): the parametric
  template compiles once, each point rebinds only its rotation matrices,
  and noiseless statevector sweeps execute as a single stacked NumPy pass;
* :class:`ExecutionPolicy` — one frozen value for "how should this run"
  (fan-out mode, worker count, shard broker, retry budget), accepted
  everywhere the legacy ``parallel=`` / ``max_workers=`` keywords are;
* :class:`ShardBroker` — the pluggable shard-dispatch seam:
  :class:`LocalProcessBroker` (the default supervised fork pool) and
  :class:`FilesystemBroker` (a spool-directory work queue served by
  elastic ``repro-worker`` processes, possibly on other machines).

Quick start::

    from repro.execution import ExecutionTask, evaluate_observable, execute

    tasks = [ExecutionTask(circuit, observable=hamiltonian)
             for circuit in circuits]
    energies = [result.value for result in execute(tasks, backend="auto")]

    # Same energies, one evolution per circuit regardless of term count:
    energies = evaluate_observable(circuits, hamiltonian, backend="auto")

    # Whole parameter sweeps in one compiled batch:
    from repro.execution import evaluate_sweep
    energies = evaluate_sweep(template, sweep_points, hamiltonian)
"""

from .adapters import (DensityMatrixBackend, MAX_DENSITY_MATRIX_QUBITS,
                       MAX_STATEVECTOR_QUBITS, PauliPropagationBackend,
                       StabilizerBackend, StatevectorBackend)
from .backend import Backend, BackendCapabilities
from .cache import CacheStats, ExpectationCache
from .disk_cache import (CACHE_DIR_ENV, DiskCacheStats, DiskExpectationCache,
                         TieredExpectationCache, disk_cache_from_env)
from .broker import (BROKER_SPOOL_ENV, FilesystemBroker,
                     LocalProcessBroker, ShardBroker, SpoolLayout,
                     make_broker)
from .errors import (BackendCapabilityError, ExecutionError, RoutingError,
                     TransientFault, UnknownBackendError)
from .executor import (ExecutionStats, Executor, default_executor,
                       evaluate_observable, evaluate_sweep, execute,
                       execute_one, reset_default_executor, term_expectations)
from .faults import (FAULTS_ENV, FaultDirective, FaultInjector, FaultRule,
                     clear_injector, inject_faults, install_injector,
                     parse_fault_spec)
from .observables import pauli_from_key, run_grouped
from .policy import ExecutionPolicy
from .registry import (BackendRegistry, DEFAULT_REGISTRY, available_backends,
                       get_backend, register_backend)
from .router import route_task
from .sharding import (FaultReport, ShardOutcome, ShardPlan,
                       ShardPlanner, ShardRetryPolicy, ShardSpec,
                       WORKERS_ENV, resolve_workers, shutdown_process_pool)
from .task import (ExecutionResult, ExecutionTask, noise_token,
                   observable_fingerprint)

__all__ = [
    "BROKER_SPOOL_ENV",
    "Backend",
    "BackendCapabilities",
    "BackendCapabilityError",
    "BackendRegistry",
    "CACHE_DIR_ENV",
    "CacheStats",
    "DEFAULT_REGISTRY",
    "DensityMatrixBackend",
    "DiskCacheStats",
    "DiskExpectationCache",
    "ExecutionError",
    "ExecutionPolicy",
    "ExecutionResult",
    "ExecutionStats",
    "ExecutionTask",
    "Executor",
    "ExpectationCache",
    "FAULTS_ENV",
    "FaultDirective",
    "FaultInjector",
    "FaultReport",
    "FaultRule",
    "FilesystemBroker",
    "LocalProcessBroker",
    "MAX_DENSITY_MATRIX_QUBITS",
    "MAX_STATEVECTOR_QUBITS",
    "PauliPropagationBackend",
    "RoutingError",
    "ShardBroker",
    "ShardOutcome",
    "ShardPlan",
    "ShardPlanner",
    "ShardRetryPolicy",
    "ShardSpec",
    "SpoolLayout",
    "StabilizerBackend",
    "StatevectorBackend",
    "TieredExpectationCache",
    "TransientFault",
    "UnknownBackendError",
    "WORKERS_ENV",
    "available_backends",
    "clear_injector",
    "default_executor",
    "disk_cache_from_env",
    "inject_faults",
    "install_injector",
    "make_broker",
    "parse_fault_spec",
    "evaluate_observable",
    "evaluate_sweep",
    "execute",
    "execute_one",
    "get_backend",
    "noise_token",
    "observable_fingerprint",
    "pauli_from_key",
    "register_backend",
    "reset_default_executor",
    "resolve_workers",
    "route_task",
    "run_grouped",
    "shutdown_process_pool",
    "term_expectations",
]
