"""Shard planning and multi-core fan-out for the execution layer.

Python's GIL caps the historical thread-pooled dispatch for CPU-bound
simulation: dense NumPy contractions and pure-Python tableau trajectories
serialize on the interpreter, so threads add overhead without adding cores.
This module is the multi-core rung of the ROADMAP:

* :class:`ShardPlanner` decides **how** a batch fans out — ``"process"``
  (worker processes, the default for the in-repo CPU-bound backends once a
  batch is big enough to amortize dispatch), ``"thread"`` (the historical
  pool, kept for I/O-ish custom backends that hint it), or ``"none"``
  (inline — small batches where any pool is pure overhead).  The decision
  combines the caller's ``parallel=`` choice, the resolved worker count
  (``max_workers`` argument, ``REPRO_WORKERS`` environment override, CPU
  count) and the backends' :attr:`~repro.execution.backend.BackendCapabilities.parallel_hint`.
* :func:`run_sharded` executes shard payloads under a plan, reusing one
  persistent process pool across calls so fork/spawn cost is paid once per
  process, not once per batch.  Process dispatch is **supervised**: a
  crashed worker (``BrokenProcessPool``) or a shard exceeding its
  wall-clock timeout invalidates the pool, which is respawned, and only
  the failed shards are retried under a capped exponential-backoff budget
  (:class:`ShardRetryPolicy`); when the budget is exhausted the survivors
  run inline.  Per-shard seeding makes retried results bitwise identical,
  and a :class:`FaultReport` describing the recovery is handed to the
  caller's ``on_fault`` callback.
* The module-level ``_*_shard`` functions are the process-pool targets —
  top-level so they pickle by reference; workers receive picklable
  :class:`~repro.execution.task.ExecutionTask` / circuit / observable specs
  and return plain arrays or result lists.

Determinism contract: sharding never changes results.  Deterministic tasks
are pure functions of the task; stochastic stabilizer ensembles seed **per
trajectory** via ``numpy.random.SeedSequence.spawn``, so shard boundaries
cannot move any draw — ``max_workers`` of 1, 2 and 4 produce bitwise
identical values (see ``benchmarks/test_parallel_speedup.py``).
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import threading
import time
from concurrent.futures import (BrokenExecutor, ProcessPoolExecutor,
                                ThreadPoolExecutor)
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from .errors import ExecutionError
from .faults import FaultDirective, consult, execute_directive

#: Environment override for the worker count (argument > env > cpu count).
WORKERS_ENV = "REPRO_WORKERS"

#: Below this many pending work items a thread pool costs more than it saves.
_INLINE_THRESHOLD = 2

#: Upper bound on auto-selected workers (threads or processes).
_MAX_AUTO_WORKERS = 8

#: Minimum CPU-bound batch size before auto mode shards across processes;
#: below it, dense batches run inline (threads never helped them — the GIL
#: serialized the work — and forking costs more than the batch).
_PROCESS_TASK_THRESHOLD = 16

#: Minimum Monte-Carlo trajectory count before an ensemble is worth
#: splitting into per-worker trajectory shards.
_TRAJECTORY_SHARD_THRESHOLD = 32

#: Set in worker processes so nested dispatches always run inline.
_WORKER_ENV = "REPRO_IN_WORKER"

#: Environment overrides for the default shard-retry policy.
SHARD_RETRIES_ENV = "REPRO_SHARD_RETRIES"
SHARD_TIMEOUT_ENV = "REPRO_SHARD_TIMEOUT"
SHARD_BACKOFF_ENV = "REPRO_SHARD_BACKOFF"

_PARALLEL_MODES = ("auto", "process", "thread", "none")


def in_worker_process() -> bool:
    """True inside a shard worker (nested dispatch must stay inline)."""
    return os.environ.get(_WORKER_ENV) == "1"


def usable_cpus() -> int:
    """CPUs this process may actually run on (affinity/cgroup aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def resolve_workers(max_workers: Optional[int] = None) -> int:
    """The worker count: explicit argument, ``REPRO_WORKERS``, or the
    usable-CPU count (affinity-aware — a container pinned to 2 of 8 host
    cores gets 2 workers, not 8 time-slicing ones).

    A non-positive count is a ``ValueError``, never a silent clamp: a
    caller passing ``max_workers=0`` used to be quietly planned as one
    worker, hiding the configuration bug that produced the zero.
    """
    if max_workers is not None:
        workers = int(max_workers)
        if workers < 1:
            raise ValueError(
                f"max_workers must be >= 1, got {max_workers!r} (pass None "
                f"to fall back to the {WORKERS_ENV} environment override or "
                f"the usable-CPU count)")
        return workers
    env = os.environ.get(WORKERS_ENV, "").strip()
    if env:
        workers = int(env)
        if workers < 1:
            raise ValueError(
                f"{WORKERS_ENV} must be >= 1, got {env!r} (unset it to use "
                f"the usable-CPU count)")
        return workers
    return min(_MAX_AUTO_WORKERS, usable_cpus())


def split_evenly(items: Sequence, shards: int) -> List[list]:
    """Partition ``items`` into at most ``shards`` contiguous, order-
    preserving chunks of near-equal size (no empty chunks)."""
    items = list(items)
    shards = max(1, min(int(shards), len(items)))
    chunk_size, remainder = divmod(len(items), shards)
    chunks, start = [], 0
    for index in range(shards):
        size = chunk_size + (1 if index < remainder else 0)
        chunks.append(items[start:start + size])
        start += size
    return chunks


@dataclass(frozen=True)
class ShardPlan:
    """One dispatch decision: the fan-out mode and how many workers."""

    mode: str  # "process" | "thread" | "none"
    workers: int

    @property
    def is_parallel(self) -> bool:
        return self.mode != "none" and self.workers > 1


class ShardPlanner:
    """Plans how execution batches fan out across cores.

    ``parallel`` is the policy: ``"auto"`` (capability-driven — the
    default), ``"process"``, ``"thread"`` or ``"none"``.  One planner is
    owned by each :class:`~repro.execution.executor.Executor`; per-call
    ``parallel=`` / ``max_workers=`` arguments override its defaults.
    Example::

        planner = ShardPlanner(parallel="auto")
        plan = planner.plan(num_items=64, hints=("process",))
        assert plan.mode == "process"
    """

    def __init__(self, parallel: str = "auto",
                 max_workers: Optional[int] = None):
        self.parallel = self._validate(parallel)
        self.max_workers = max_workers

    @staticmethod
    def _validate(parallel: str) -> str:
        if parallel not in _PARALLEL_MODES:
            raise ExecutionError(
                f"parallel must be one of {_PARALLEL_MODES}, got {parallel!r}")
        return parallel

    def plan(self, num_items: int, hints: Sequence[str] = (),
             trajectories: int = 0,
             parallel: Optional[str] = None,
             max_workers: Optional[int] = None) -> ShardPlan:
        """The :class:`ShardPlan` for a batch.

        ``num_items`` counts independent work units (tasks, slots, sweep
        points); ``trajectories`` counts Monte-Carlo trajectories when a
        single stochastic unit is internally shardable; ``hints`` are the
        involved backends' ``parallel_hint`` capabilities.
        """
        mode = self.parallel if parallel is None else self._validate(parallel)
        workers = resolve_workers(self.max_workers if max_workers is None
                                  else max_workers)
        weight = max(int(num_items), int(trajectories))
        if in_worker_process() or workers <= 1 or weight < 2:
            return ShardPlan("none", 1)
        if mode == "none":
            return ShardPlan("none", 1)
        if mode == "auto":
            hints = tuple(hints) or ("thread",)
            if "inline" in hints:
                return ShardPlan("none", 1)
            if all(hint == "process" for hint in hints):
                # CPU-bound backends: threads only add GIL contention, so
                # the choice is processes (big batches) or inline (small).
                if (num_items >= _PROCESS_TASK_THRESHOLD
                        or trajectories >= _TRAJECTORY_SHARD_THRESHOLD):
                    return ShardPlan("process", workers)
                return ShardPlan("none", 1)
            if num_items > _INLINE_THRESHOLD:
                return ShardPlan("thread", workers)
            return ShardPlan("none", 1)
        return ShardPlan(mode, workers)


# ---------------------------------------------------------------------------
# The persistent process pool
# ---------------------------------------------------------------------------

_pool: Optional[ProcessPoolExecutor] = None
_pool_workers = 0
_pool_lock = threading.Lock()


def _mark_worker_process() -> None:
    os.environ[_WORKER_ENV] = "1"


def _pool_context():
    # Fork (where available) inherits the loaded interpreter — milliseconds
    # per worker versus a full re-import under spawn.
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _submit_to_pool(workers: int, fn: Callable,
                    payloads: Sequence[tuple]) -> List:
    """Create/grow the shared pool and submit one batch atomically.

    The pool is persistent across dispatches so fork/spawn cost is paid
    once per process, and it only ever *grows*.  Submission happens under
    the pool lock, so a concurrent caller growing the pool can never
    observe a half-submitted batch or reject a submit; a retired (smaller)
    pool is shut down **without cancelling** its queued futures — work
    already submitted to it runs to completion and its workers exit
    afterwards.

    Note the fork caveat: where the fork start method is used, the first
    pool creation should not race user threads holding locks (the standard
    CPython fork-with-threads hazard).  The executor's own dispatch modes
    are mutually exclusive per call, and pools are created lazily on the
    first process-mode plan.
    """
    global _pool, _pool_workers
    with _pool_lock:
        if _pool is None or _pool_workers < workers:
            if _pool is not None:
                _pool.shutdown(wait=False)
            _pool = ProcessPoolExecutor(
                max_workers=workers, mp_context=_pool_context(),
                initializer=_mark_worker_process)
            _pool_workers = workers
        return [_pool.submit(fn, *payload) for payload in payloads]


def shutdown_process_pool(wait: bool = True) -> None:
    """Tear down the shared pool (graceful lifecycles, tests, exit).

    ``wait=True`` (the default, and what :meth:`Executor.shutdown` uses)
    drains futures already submitted before the workers exit; ``wait=False``
    cancels whatever has not started.  The pool is recreated lazily by the
    next process-mode dispatch, so tearing it down never poisons later work.
    """
    global _pool, _pool_workers
    with _pool_lock:
        if _pool is not None:
            _pool.shutdown(wait=wait, cancel_futures=not wait)
            _pool = None
            _pool_workers = 0


def _invalidate_pool() -> None:
    """Retire the shared pool after a breakage or timeout.

    A ``BrokenProcessPool`` is permanent — every later submit raises — so
    the broken object must never be left in the module global: resetting
    ``_pool``/``_pool_workers`` here is what lets the next dispatch (a
    supervisor retry *or* an unrelated later caller) lazily rebuild a
    healthy pool.  ``wait=False`` + ``cancel_futures`` abandons stuck
    workers; they finish (or die) on their own and exit.
    """
    global _pool, _pool_workers
    with _pool_lock:
        if _pool is not None:
            _pool.shutdown(wait=False, cancel_futures=True)
            _pool = None
            _pool_workers = 0


atexit.register(shutdown_process_pool)


# ---------------------------------------------------------------------------
# The shard supervisor
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ShardRetryPolicy:
    """Retry budget for supervised process dispatch.

    ``max_retries`` extra dispatch rounds after the first (each retries
    only the still-failed shards), with exponential backoff between rounds
    (``backoff_base * 2**(round-1)``, capped at ``backoff_cap``).
    ``timeout`` bounds one dispatch round's wall clock — a shard result
    not collected by then counts as failed and the stuck pool is retired.
    After the budget, failed shards run inline (no pool, no injection).
    """

    max_retries: int = 2
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    timeout: Optional[float] = None

    @classmethod
    def from_env(cls) -> "ShardRetryPolicy":
        """Policy with ``REPRO_SHARD_RETRIES`` / ``REPRO_SHARD_TIMEOUT`` /
        ``REPRO_SHARD_BACKOFF`` environment overrides applied."""
        retries = os.environ.get(SHARD_RETRIES_ENV, "").strip()
        timeout = os.environ.get(SHARD_TIMEOUT_ENV, "").strip()
        backoff = os.environ.get(SHARD_BACKOFF_ENV, "").strip()
        return cls(
            max_retries=int(retries) if retries else cls.max_retries,
            backoff_base=float(backoff) if backoff else cls.backoff_base,
            timeout=float(timeout) if timeout else None)


@dataclass
class FaultReport:
    """What the supervisor did to finish one brokered dispatch.

    ``attempts`` counts dispatch rounds (1 = no retries), ``retried`` the
    shard indices re-dispatched (in round order, repeats possible),
    ``causes`` one human-readable cause per failed shard observation,
    ``backoff`` the inter-round sleeps taken, ``respawns`` how often the
    pool was invalidated, ``lease_expiries`` how many worker leases
    expired and were requeued by the broker (a dead remote worker is just
    another lease expiry), and ``inline_shards`` how many shards fell
    back to inline execution after the budget was exhausted.
    """

    shards: int = 0
    attempts: int = 1
    broker: str = "local"
    retried: List[int] = field(default_factory=list)
    causes: List[str] = field(default_factory=list)
    backoff: List[float] = field(default_factory=list)
    timeouts: int = 0
    respawns: int = 0
    lease_expiries: int = 0
    inline_shards: int = 0
    #: Payload indices that ran inline (callers folding worker-side deltas
    #: must skip these — their side effects already landed in-process).
    inline_indices: List[int] = field(default_factory=list)

    @property
    def faulted(self) -> bool:
        return bool(self.causes or self.respawns or self.lease_expiries
                    or self.inline_shards)

    def as_dict(self) -> dict:
        return {"shards": self.shards, "attempts": self.attempts,
                "broker": self.broker,
                "retried": list(self.retried), "causes": list(self.causes),
                "backoff": list(self.backoff), "timeouts": self.timeouts,
                "respawns": self.respawns,
                "lease_expiries": self.lease_expiries,
                "inline_shards": self.inline_shards,
                "inline_indices": list(self.inline_indices)}


def _shard_entry(directive: Optional[FaultDirective], fn: Callable,
                 payload: tuple):
    """Worker-side shard entry: apply an injected fault, then run.

    The parent consults the fault injector and embeds the (picklable)
    directive per shard, so injection needs no worker-side configuration
    and the schedule is independent of which worker picks the shard up.
    """
    if directive is not None:
        execute_directive(directive)
    return fn(*payload)


@dataclass(frozen=True)
class ShardSpec:
    """One unit of brokered work: the supervisor hands these to
    :meth:`~repro.execution.broker.ShardBroker.submit`.  ``index`` is the
    shard's position in the caller's payload list; ``directive`` is a
    parent-consulted fault-injection directive (worker-executed, so the
    schedule is independent of shard placement)."""

    index: int
    fn: Callable
    payload: tuple
    directive: Optional[FaultDirective] = None


@dataclass
class ShardOutcome:
    """One completed (or failed) shard as reported by a broker's ``poll``.

    ``retryable`` distinguishes transient failures (a dead worker, a
    :class:`~repro.execution.errors.TransientFault`) from deterministic
    errors, which carry the original exception in ``error`` and propagate;
    ``respawned`` marks outcomes whose failure also retired the local
    process pool (so the supervisor counts one respawn per round).
    """

    shard_id: str
    ok: bool
    value: object = None
    cause: str = ""
    retryable: bool = False
    error: Optional[BaseException] = None
    respawned: bool = False


def _run_supervised(broker, fn: Callable, payloads: Sequence[tuple],
                    policy: ShardRetryPolicy, report: FaultReport,
                    on_result: Optional[Callable[[int, object], None]] = None
                    ) -> List:
    """Brokered dispatch with failure detection and shard retry.

    Per-shard seeds mean a retried shard reproduces its result bitwise, so
    retrying is always safe.  The supervisor speaks only the
    :class:`~repro.execution.broker.ShardBroker` protocol: it submits
    :class:`ShardSpec` batches, polls for :class:`ShardOutcome` events,
    acks successes and nacks failures.  Retryable causes are dead workers
    (``BrokenExecutor`` on the local pool, a lease expiring past its
    per-shard budget on a distributed broker), wall-clock timeouts, and
    :class:`~repro.execution.errors.TransientFault`; any other exception
    propagates immediately — a deterministic error would fail every retry
    identically.  Broker-requeued lease expiries are accounted but stay
    outstanding (another worker finishes them).  After
    ``policy.max_retries`` extra rounds the remaining shards run inline
    with their **raw** payloads (never through :func:`_shard_entry` — an
    injected ``kill`` must not execute in the caller's process).
    """
    results: List = [None] * len(payloads)
    pending = list(range(len(payloads)))
    expiries: dict = {}
    retries_used = 0
    while pending:
        specs = [ShardSpec(index=index, fn=fn,
                           payload=tuple(payloads[index]),
                           directive=consult("shard"))
                 for index in pending]
        failed: List[int] = []
        causes: List[str] = []
        round_respawn = False
        try:
            shard_ids = broker.submit(specs)
        except BrokenExecutor as error:
            failed = list(pending)
            causes = [type(error).__name__] * len(pending)
            round_respawn = True
            shard_ids = []
        index_of = {shard_id: spec.index
                    for shard_id, spec in zip(shard_ids, specs)}
        outstanding = dict(index_of)
        deadline = None if policy.timeout is None \
            else time.monotonic() + policy.timeout
        while outstanding:
            remaining = None if deadline is None \
                else deadline - time.monotonic()
            if remaining is not None and remaining <= 0:
                # The round's wall clock is spent: reclaim every
                # still-outstanding shard and retry it next round.
                for shard_id, index in outstanding.items():
                    broker.nack(shard_id, "timeout")
                    failed.append(index)
                    causes.append("timeout")
                    report.timeouts += 1
                round_respawn = True
                outstanding.clear()
                break
            for outcome in broker.poll(remaining):
                index = outstanding.pop(outcome.shard_id, None)
                if index is None:
                    continue
                if outcome.ok:
                    results[index] = outcome.value
                    broker.ack(outcome.shard_id)
                    if on_result is not None:
                        on_result(index, outcome.value)
                elif outcome.retryable:
                    broker.nack(outcome.shard_id, outcome.cause)
                    failed.append(index)
                    causes.append(outcome.cause)
                    if outcome.respawned:
                        round_respawn = True
                else:
                    for shard_id in outstanding:
                        broker.nack(shard_id, "abandoned")
                    raise outcome.error
            for shard_id in broker.heartbeat():
                # The broker already requeued the expired shard; it stays
                # outstanding unless its per-shard expiry budget is spent
                # (a shard that kills every worker must not loop forever).
                # Expiries are attributed via the round's submission map,
                # not ``outstanding`` — the requeued shard often completes
                # (and is acked) within the same poll that reclaimed its
                # lease, and the dead worker must be accounted regardless.
                index = index_of.get(shard_id)
                if index is None:
                    continue
                report.lease_expiries += 1
                report.causes.append("lease-expired")
                if shard_id not in outstanding:
                    continue  # already finished by another worker
                expiries[index] = expiries.get(index, 0) + 1
                if expiries[index] > policy.max_retries:
                    broker.nack(shard_id, "abandoned")
                    del outstanding[shard_id]
                    failed.append(index)
                    causes.append("lease-budget")
        if round_respawn:
            report.respawns += 1
        if not failed:
            break
        # Poll returns completion-ordered events; report in index order so
        # recovery accounting is deterministic.
        order = sorted(range(len(failed)), key=failed.__getitem__)
        pending = [failed[i] for i in order]
        report.causes.extend(causes[i] for i in order)
        if retries_used >= policy.max_retries:
            for index in pending:
                results[index] = fn(*payloads[index])
                if on_result is not None:
                    on_result(index, results[index])
            report.inline_shards = len(pending)
            report.inline_indices = list(pending)
            break
        retries_used += 1
        delay = min(policy.backoff_cap,
                    policy.backoff_base * (2 ** (retries_used - 1)))
        if delay > 0:
            time.sleep(delay)
        report.backoff.append(delay)
        report.retried.extend(pending)
        report.attempts += 1
    return results


def run_sharded(plan: ShardPlan, fn: Callable,
                payloads: Sequence[tuple],
                policy: Optional[ShardRetryPolicy] = None,
                on_fault: Optional[Callable[[FaultReport], None]] = None,
                broker=None,
                on_result: Optional[Callable[[int, object], None]] = None
                ) -> List:
    """Run ``fn(*payload)`` for every payload under ``plan``; results align
    with the payload order.  ``fn`` must be a module-level callable when the
    plan is ``"process"`` (it crosses the pickle boundary).

    Process dispatch runs supervised (see :func:`_run_supervised`) through
    a :class:`~repro.execution.broker.ShardBroker` — the default
    :class:`~repro.execution.broker.LocalProcessBroker` wraps the shared
    fork pool; pass ``broker`` (an instance, exclusive to this dispatch)
    to fan out elsewhere, e.g. a
    :class:`~repro.execution.broker.FilesystemBroker` spool shared with
    ``repro-worker`` processes.  ``policy`` overrides the retry budget
    (default :meth:`ShardRetryPolicy.from_env`), ``on_fault`` receives the
    :class:`FaultReport` — only when something actually faulted, so the
    happy path stays callback-free — and ``on_result(index, value)`` fires
    as each shard's result lands (in completion order under a parallel
    plan), which is what lets callers checkpoint partial progress.
    """
    if not payloads:
        return []
    if not plan.is_parallel or len(payloads) == 1:
        results = []
        for index, payload in enumerate(payloads):
            value = fn(*payload)
            if on_result is not None:
                on_result(index, value)
            results.append(value)
        return results
    if plan.mode == "process":
        if policy is None:
            policy = ShardRetryPolicy.from_env()
        if broker is None:
            from .broker import LocalProcessBroker
            broker = LocalProcessBroker(plan.workers)
        report = FaultReport(shards=len(payloads),
                             broker=getattr(broker, "name", "local"))
        results = _run_supervised(broker, fn, payloads, policy, report,
                                  on_result=on_result)
        if report.faulted and on_fault is not None:
            on_fault(report)
        return results
    with ThreadPoolExecutor(
            max_workers=min(plan.workers, len(payloads))) as pool:
        futures = [pool.submit(fn, *payload) for payload in payloads]
        results = [None] * len(payloads)
        for index, future in enumerate(futures):
            results[index] = future.result()
            if on_result is not None:
                on_result(index, results[index])
        return results


# ---------------------------------------------------------------------------
# Process-pool shard targets (top-level: they pickle by reference)
# ---------------------------------------------------------------------------

def _run_batch_shard(backend, tasks) -> list:
    """Plain ``execute()`` shard: one backend, a slice of its tasks."""
    return backend.run_batch(tasks)


def _term_expectations_shard(backend, tasks) -> list:
    """Grouped-engine shard: per-task term-value arrays for one backend."""
    return [backend.term_expectations_quiet(task)
            if hasattr(backend, "term_expectations_quiet")
            else backend.term_expectations(task)
            for task in tasks]


def _sweep_points_shard(circuit, parameter_sets, observable,
                        amplitude_budget: int) -> np.ndarray:
    """Batched-sweep shard: compile in-process, run a slice of the points.

    Each worker compiles the template once into its own process-wide program
    cache (first shard pays it, later sweeps of the same template hit), then
    executes its points in amplitude-budget-bounded stacked batches exactly
    like the single-process path.
    """
    from ..simulators.kernels import statevector_term_expectations_batch
    from ..simulators.program import compile_circuit, run_batch

    program = compile_circuit(circuit)
    chunk = max(1, amplitude_budget // (1 << circuit.num_qubits))
    rows: List[np.ndarray] = []
    for start in range(0, len(parameter_sets), chunk):
        states = run_batch([program.bind(values) for values
                            in parameter_sets[start:start + chunk]])
        rows.append(statevector_term_expectations_batch(
            states, observable=observable))
    return rows[0] if len(rows) == 1 else np.concatenate(rows, axis=0)


def plan_trajectory_shards(backend, task, plan: ShardPlan
                           ) -> Optional[Tuple[Callable, List[tuple],
                                               Callable]]:
    """Shard one stochastic trajectory-ensemble task, if worth it.

    Returns ``(runner, payloads, finalize)`` — the backend's
    ``trajectory_shard_runner`` (a module-level callable executed in the
    worker processes; the stabilizer backend's is
    :func:`repro.execution.adapters.run_stabilizer_trajectory_shard`, and a
    custom backend implementing the trajectory protocol must supply its
    own), its per-shard payloads, and a closure folding the concatenated
    rows into per-term values — or None when the backend/task pair is not a
    shardable ensemble or the ensemble is too small to split.  Shards
    partition the per-trajectory seed list, so the fold is bitwise
    independent of the shard count.
    """
    spec = getattr(backend, "trajectory_spec", None)
    count = getattr(backend, "trajectory_count", None)
    runner = getattr(backend, "trajectory_shard_runner", None)
    if spec is None or count is None or runner is None \
            or not plan.is_parallel or plan.mode != "process":
        return None
    trajectories = count(task)
    if trajectories is None or trajectories < _TRAJECTORY_SHARD_THRESHOLD:
        return None
    noise_model, circuit, observable, seeds = spec(task)
    payloads = [(noise_model, circuit, observable, seed_chunk)
                for seed_chunk in split_evenly(seeds, plan.workers)]

    def finalize(row_blocks: List[np.ndarray]) -> np.ndarray:
        rows = np.concatenate(row_blocks, axis=0)
        return backend.finalize_trajectory_rows(task, rows)

    return runner, payloads, finalize
