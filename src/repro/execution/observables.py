"""The grouped-observable expectation engine.

This is the single-evolution fast path behind
:meth:`repro.execution.executor.Executor.evaluate_observable` and
:meth:`~repro.execution.executor.Executor.term_expectations`.  Where the plain
``execute()`` pipeline treats an expectation task as one opaque number, this
engine works at *term* granularity:

1. **Slot formation** — tasks are grouped into slots by (backend, circuit
   fingerprint, noise model, backend options).  Every slot corresponds to at
   most one circuit evolution, no matter how many tasks or Hamiltonian terms
   land in it.
2. **Per-term cache lookup** — each slot's union of Pauli terms is probed in
   the expectation cache under per-(circuit, term) keys
   (:meth:`repro.execution.task.ExecutionTask.term_cache_key`), so a
   Hamiltonian that merely *overlaps* a previously evaluated one hits the
   cached terms and only the genuinely new ones are computed.
3. **Single evolution** — the missing terms are bundled into one synthetic
   observable and handed to :meth:`repro.execution.backend.Backend.term_expectations`,
   which evolves the circuit once and reads every term off the final state
   (vectorized bitmask kernels on the dense simulators, one QWC basis
   rotation per commuting group on the stabilizer tableau, one propagation
   pass for Pauli propagation).
4. **Assembly** — per-task term values are gathered back in each task's own
   ``observable.terms()`` order; energies are ``Σ Re(c_i)·⟨P_i⟩``.

Slots that need an evolution fan out under the executor's
:class:`~repro.execution.sharding.ShardPlanner` plan: CPU-bound simulator
slots shard across worker **processes** (a single stochastic Monte-Carlo
slot additionally shards its *trajectory ensemble*, with per-trajectory
seed spawning keeping results bitwise independent of the shard count),
thread-hinting custom backends keep the historical thread pool, and small
batches run inline.
"""

from __future__ import annotations

import dataclasses
from contextlib import contextmanager
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..operators.pauli import PauliString, PauliSum
from ..simulators.program import program_cache_counters
from .backend import Backend
from .errors import BackendCapabilityError, ExecutionError
from .sharding import (plan_trajectory_shards, run_sharded, split_evenly,
                       _term_expectations_shard)
from .task import ExecutionTask, noise_token

TermKey = Tuple[bytes, bytes]


@contextmanager
def track_program_cache(executor):
    """Attribute circuit-compilation activity to an executor's stats.

    The program cache (:mod:`repro.simulators.program`) is process-wide; this
    samples its counters around a dispatch phase and adds the deltas to the
    executor's ``programs_compiled`` / ``program_cache_hits`` stats.
    Concurrent executors may attribute each other's compiles — the counters
    are throughput telemetry, not an exact ledger.
    """
    compiled_before, hits_before = program_cache_counters()
    try:
        yield
    finally:
        compiled_after, hits_after = program_cache_counters()
        with executor._lock:
            executor.stats.programs_compiled += compiled_after - compiled_before
            executor.stats.program_cache_hits += hits_after - hits_before


def pauli_from_key(num_qubits: int, key: TermKey) -> PauliString:
    """Reconstruct the bare Pauli string identified by a symplectic key."""
    x_bits = np.frombuffer(key[0], dtype=np.uint8)
    z_bits = np.frombuffer(key[1], dtype=np.uint8)
    if len(x_bits) != num_qubits:
        raise ExecutionError(
            f"term key covers {len(x_bits)} qubits, expected {num_qubits}")
    return PauliString(x_bits, z_bits)


class _Slot:
    """All tasks that share one circuit evolution on one backend."""

    __slots__ = ("task", "backend", "cacheable", "fingerprint",
                 "cache_token", "task_indices", "term_keys", "values")

    def __init__(self, task: ExecutionTask, backend: Backend,
                 cacheable: bool, fingerprint: Optional[str] = None):
        self.task = task
        self.backend = backend
        self.cacheable = cacheable
        # Hash the circuit once per slot; term keys reuse it.  The cache
        # token is the backend's key component (name, plus e.g. a Monte-
        # Carlo seed for seeded stochastic backends).
        self.fingerprint = fingerprint
        self.cache_token = backend.cache_token(task)
        self.task_indices: List[int] = []
        # Ordered union of the member tasks' term keys.
        self.term_keys: Dict[TermKey, None] = {}
        self.values: Dict[TermKey, float] = {}

    def absorb(self, index: int, task: ExecutionTask) -> None:
        self.task_indices.append(index)
        for pauli, _ in task.observable.terms():
            self.term_keys.setdefault(pauli.key(), None)

    def missing_keys(self) -> List[TermKey]:
        return [key for key in self.term_keys if key not in self.values]

    def synthetic_task(self, keys: Sequence[TermKey]) -> ExecutionTask:
        """The task whose observable carries exactly the missing terms."""
        num_qubits = self.task.observable.num_qubits
        observable = PauliSum(num_qubits,
                              [(pauli_from_key(num_qubits, key), 1.0)
                               for key in keys])
        return dataclasses.replace(self.task, observable=observable)


def run_grouped(executor, tasks: Sequence[ExecutionTask],
                backend: Union[str, Backend] = "auto",
                use_cache: Optional[bool] = None,
                max_workers: Optional[int] = None,
                parallel: Optional[str] = None,
                policy=None) -> List[np.ndarray]:
    """Per-term expectation values for every task, one evolution per slot.

    Returns one float array per input task, aligned with that task's
    ``observable.terms()`` order (coefficients are not applied).  ``executor``
    supplies backend resolution, the expectation cache, the shard planner
    and the stats block.
    """
    tasks = list(tasks)
    for task in tasks:
        if not isinstance(task, ExecutionTask):
            raise ExecutionError(
                f"grouped evaluation expects ExecutionTask objects, got "
                f"{type(task).__name__}")
        if not task.is_expectation:
            raise ExecutionError(
                "grouped evaluation only handles expectation tasks")
    use_cache = executor.use_cache if use_cache is None else use_cache
    with executor._lock:
        executor.stats.tasks_submitted += len(tasks)
        executor.stats.grouped_tasks += len(tasks)
    if not tasks:
        return []

    # 1. Slot formation: one slot per (backend, circuit, noise, options).
    slots: Dict[Tuple, _Slot] = {}
    slot_of_task: List[_Slot] = []
    for index, task in enumerate(tasks):
        resolved, explicit = executor._resolve_backend(task, backend)
        reason = resolved.unsupported_reason(
            task, enforce_qubit_limit=not explicit)
        if reason is not None:
            raise BackendCapabilityError(f"{reason} (task: {task!r})")
        cacheable = resolved.is_deterministic_for(task)
        if cacheable:
            fingerprint = task.circuit.fingerprint()
            key = (id(resolved), fingerprint,
                   noise_token(task.noise_model), task.trajectories,
                   task.include_idle)
        else:
            # Stochastic results must not be shared between tasks.
            fingerprint = None
            key = ("stochastic", index)
        slot = slots.get(key)
        if slot is None:
            slot = slots[key] = _Slot(task, resolved, cacheable, fingerprint)
        slot.absorb(index, task)
        slot_of_task.append(slot)

    # 2. Per-term cache lookup.
    pending: List[Tuple[_Slot, List[TermKey]]] = []
    for slot in slots.values():
        if slot.cacheable and use_cache:
            keys = list(slot.term_keys)
            cached = executor.cache.get_many(
                [slot.task.term_cache_key(slot.cache_token, key,
                                          circuit_fingerprint=slot.fingerprint)
                 for key in keys])
            hits = 0
            for key, value in zip(keys, cached):
                if value is not None:
                    slot.values[key] = value
                    hits += 1
            if hits:
                with executor._lock:
                    executor.stats.term_cache_hits += hits
        missing = slot.missing_keys()
        if missing:
            pending.append((slot, missing))

    # 3. Evolve each slot with missing terms exactly once.
    def record(slot: _Slot, missing: List[TermKey],
               values: np.ndarray) -> None:
        """Store one slot's freshly computed term values (+ cache fill)."""
        for key, value in zip(missing, values):
            slot.values[key] = float(value)
        # Adapters evolve once per call; a backend still on the base-class
        # term_expectations fallback spends one run per term instead.
        uses_fallback = (type(slot.backend).term_expectations
                         is Backend.term_expectations)
        spent = len(missing) if uses_fallback else 1
        with executor._lock:
            counters = executor.stats.backend_invocations
            counters[slot.backend.name] = \
                counters.get(slot.backend.name, 0) + spent
        if slot.cacheable and use_cache:
            executor.cache.put_many(
                [(slot.task.term_cache_key(slot.cache_token, key,
                                           circuit_fingerprint=slot.fingerprint),
                  slot.values[key]) for key in missing])

    def evolve(slot: _Slot, missing: List[TermKey]) -> None:
        record(slot, missing, slot.backend.term_expectations(
            slot.synthetic_task(missing)))

    hints = {slot.backend.capabilities().parallel_hint
             for slot, _ in pending}
    ensemble = max((getattr(slot.backend, "trajectory_count",
                            lambda task: None)(slot.task) or 0
                    for slot, _ in pending), default=0)
    effective = executor._resolve_policy(policy, parallel=parallel,
                                         max_workers=max_workers)
    plan = executor.planner.plan(len(pending), hints=sorted(hints),
                                 trajectories=ensemble,
                                 parallel=effective.parallel,
                                 max_workers=effective.max_workers)
    with track_program_cache(executor):
        if plan.mode == "process":
            _evolve_process_sharded(executor, pending, plan, record,
                                    effective)
        elif plan.mode == "thread":
            run_sharded(plan, evolve, pending)
        else:
            for slot, missing in pending:
                evolve(slot, missing)

    # 4. Assemble per-task value arrays in each task's own term order.
    results: List[np.ndarray] = []
    for task, slot in zip(tasks, slot_of_task):
        results.append(np.array([slot.values[pauli.key()]
                                 for pauli, _ in task.observable.terms()]))
    return results


def _evolve_process_sharded(executor, pending, plan, record,
                            policy=None) -> None:
    """Evolve pending slots across worker processes.

    Two shard shapes compose here:

    * **Trajectory shards** — a stochastic Monte-Carlo slot whose ensemble
      is big enough splits its per-trajectory seed list across the pool
      (:func:`repro.execution.sharding.plan_trajectory_shards`); the
      concatenated rows finalize to values bitwise identical to an inline
      run.  All slots' trajectory payloads go to the pool in **one**
      submission round — no per-slot barrier — and splitting is only used
      at all while there are fewer slots than workers: once slot-level
      parallelism saturates the pool, finer ensemble splitting adds payload
      overhead without adding cores.
    * **Slot shards** — remaining slots are grouped per backend and their
      synthetic tasks fan out as contiguous chunks, one
      ``term_expectations`` call per slot inside the worker.
    """
    trajectory_jobs: Dict[object, List[Tuple[_Slot, List[TermKey], list,
                                             object]]] = {}
    generic: List[Tuple[_Slot, List[TermKey], ExecutionTask]] = []
    shard_count = 0
    for slot, missing in pending:
        synthetic = slot.synthetic_task(missing)
        trajectory = (plan_trajectory_shards(slot.backend, synthetic, plan)
                      if len(pending) < plan.workers else None)
        if trajectory is not None:
            runner, payloads, finalize = trajectory
            trajectory_jobs.setdefault(runner, []).append(
                (slot, missing, payloads, finalize))
        else:
            generic.append((slot, missing, synthetic))

    if policy is None:
        policy = executor._resolve_policy()

    # One submission round per distinct worker runner (normally one).
    for runner, jobs in trajectory_jobs.items():
        flat = [payload for _, _, payloads, _ in jobs
                for payload in payloads]
        blocks = run_sharded(plan, runner, flat,
                             **executor._shard_kwargs(policy, plan))
        shard_count += len(flat)
        offset = 0
        for slot, missing, payloads, finalize in jobs:
            slot_blocks = blocks[offset:offset + len(payloads)]
            offset += len(payloads)
            slot.backend._count_invocations()
            record(slot, missing, finalize(slot_blocks))

    by_backend: Dict[int, List[Tuple[_Slot, List[TermKey], ExecutionTask]]] = {}
    for entry in generic:
        by_backend.setdefault(id(entry[0].backend), []).append(entry)
    payloads = []
    owners: List[List[Tuple[_Slot, List[TermKey], ExecutionTask]]] = []
    for entries in by_backend.values():
        for chunk in split_evenly(entries, plan.workers):
            payloads.append((chunk[0][0].backend,
                             [synthetic for _, _, synthetic in chunk]))
            owners.append(chunk)
    if payloads:
        shard_count += len(payloads)
        for chunk, value_arrays in zip(owners, run_sharded(
                plan, _term_expectations_shard, payloads,
                **executor._shard_kwargs(policy, plan))):
            for (slot, missing, _), values in zip(chunk, value_arrays):
                slot.backend._count_invocations()
                record(slot, missing, values)
    if shard_count:
        with executor._lock:
            executor.stats.process_shards += shard_count
