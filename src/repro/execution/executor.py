"""The batched, cached, regime-aware ``execute()`` entry point.

Pipeline for one :meth:`Executor.run` call:

1. **Resolve** — every task is assigned a backend: its own ``backend`` field,
   the call-level ``backend=`` argument, or regime-aware auto-routing
   (:func:`repro.execution.router.route_task`).
2. **Cache lookup** — deterministic expectation tasks are looked up in the
   expectation cache: the in-memory LRU first, then (when a persistent
   cache directory is configured — ``cache_dir=`` or ``REPRO_CACHE_DIR``)
   the on-disk L2 (:mod:`repro.execution.disk_cache`).
3. **Deduplicate** — remaining identical deterministic tasks collapse to a
   single simulator invocation per distinct key.
4. **Dispatch** — unique tasks are grouped per backend and fanned out under
   a :class:`~repro.execution.sharding.ShardPlanner` plan: worker
   **processes** for CPU-bound simulator batches (``parallel="process"``,
   the auto default once a batch is big enough), the historical thread pool
   for backends that hint it, or inline for small batches.
5. **Assemble** — results come back in input order, each labelled with the
   backend that ran it and whether it was served from cache or dedup.
"""

from __future__ import annotations

import collections
import dataclasses
import threading
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from .backend import Backend
from .broker import make_broker
from .cache import CacheStats, ExpectationCache
from .disk_cache import (DiskCacheStats, DiskExpectationCache,
                         TieredExpectationCache, disk_cache_from_env)
from .errors import BackendCapabilityError, ExecutionError
from .observables import run_grouped, track_program_cache
from .policy import ExecutionPolicy
from .registry import BackendRegistry, DEFAULT_REGISTRY
from .router import route_task
from .sharding import (FaultReport, ShardPlanner, _run_batch_shard,
                       _sweep_points_shard, resolve_workers, run_sharded,
                       split_evenly)
from .task import ExecutionResult, ExecutionTask

#: Upper bound on complex amplitudes one stacked sweep batch may hold
#: (batch size × 2^n).  64M amplitudes ≈ 1 GB per live temporary.
_SWEEP_BATCH_AMPLITUDES = 1 << 26


@dataclass
class ExecutionStats:
    """Aggregate counters for one :class:`Executor` across all calls.

    ``grouped_tasks`` counts tasks served by the grouped-observable engine
    and ``term_cache_hits`` the per-(circuit, term) cache hits it scored;
    ``backend_invocations`` counts circuit evolutions either pipeline spent.
    ``programs_compiled`` / ``program_cache_hits`` track the circuit-compile
    layer (:mod:`repro.simulators.program`): how many circuits were lowered
    to :class:`~repro.simulators.program.CompiledProgram` objects during this
    executor's dispatches and how many lowerings were skipped because the
    fingerprint-keyed program cache already held them.  ``process_shards``
    counts shard payloads submitted to the worker-process pool (worker-side
    program compiles are not visible to the parent's program counters).

    The fault counters aggregate the shard supervisor's
    :class:`~repro.execution.sharding.FaultReport`\\ s: ``shard_retries``
    re-dispatched shards, ``shard_timeouts`` per-shard wall-clock timeouts,
    ``pool_respawns`` worker-pool invalidations (crash or timeout), and
    ``degraded_shards`` shards that fell back to inline execution after
    the retry budget.  All stay 0 on a healthy run.
    """

    tasks_submitted: int = 0
    cache_hits: int = 0
    dedup_hits: int = 0
    grouped_tasks: int = 0
    term_cache_hits: int = 0
    programs_compiled: int = 0
    program_cache_hits: int = 0
    process_shards: int = 0
    shard_retries: int = 0
    shard_timeouts: int = 0
    pool_respawns: int = 0
    degraded_shards: int = 0
    backend_invocations: Dict[str, int] = field(default_factory=dict)

    @property
    def simulator_invocations(self) -> int:
        return sum(self.backend_invocations.values())

    def __repr__(self):
        return (f"ExecutionStats(submitted={self.tasks_submitted}, "
                f"cache_hits={self.cache_hits}, dedup_hits={self.dedup_hits}, "
                f"grouped={self.grouped_tasks}, "
                f"term_cache_hits={self.term_cache_hits}, "
                f"programs={self.programs_compiled}/"
                f"{self.program_cache_hits} compiled/cached, "
                f"process_shards={self.process_shards}, "
                f"faults={self.shard_retries}/{self.shard_timeouts}/"
                f"{self.pool_respawns}/{self.degraded_shards} "
                f"retries/timeouts/respawns/degraded, "
                f"invocations={dict(self.backend_invocations)})")


class Executor:
    """Batches tasks onto backends with caching, dedup and threading.

    One executor owns one expectation cache and one stats block; the
    module-level :func:`execute` uses a shared default instance so all
    layers of the package benefit from each other's cache entries.
    """

    def __init__(self, registry: Optional[BackendRegistry] = None,
                 cache=None,
                 cache_size: int = 4096,
                 max_workers: Optional[int] = None,
                 use_cache: bool = True,
                 parallel: Optional[str] = None,
                 cache_dir=None,
                 policy: Optional[ExecutionPolicy] = None):
        """``policy`` is the executor-default
        :class:`~repro.execution.policy.ExecutionPolicy` — fan-out mode,
        worker count, shard broker and retry budget in one value; the
        legacy ``parallel`` (``"auto"``, ``"process"``, ``"thread"``,
        ``"none"``) and ``max_workers`` keywords coerce into it and win
        over its fields.  Unset fields defer to the environment
        (:meth:`ExecutionPolicy.from_env` — ``REPRO_WORKERS``,
        ``REPRO_BROKER_SPOOL``, ``REPRO_SHARD_*``) at dispatch time, then
        to built-in defaults.

        ``cache_dir`` (or, when no explicit ``cache``/``cache_dir`` is given,
        the ``REPRO_CACHE_DIR`` environment variable — read once, here)
        attaches a persistent on-disk L2
        (:class:`~repro.execution.disk_cache.DiskExpectationCache`) under
        the in-memory LRU, so deterministic expectation values survive the
        process and are shared across runs.
        """
        self.registry = registry or DEFAULT_REGISTRY
        memory = cache if cache is not None \
            else ExpectationCache(max_size=cache_size)
        disk = None
        if cache_dir is not None:
            disk = (cache_dir if isinstance(cache_dir, DiskExpectationCache)
                    else DiskExpectationCache(cache_dir))
        elif cache is None:
            disk = disk_cache_from_env()
        if isinstance(memory, TieredExpectationCache):
            if disk is not None:
                if memory.disk is None:
                    memory.disk = disk
                else:
                    raise ExecutionError(
                        "conflicting persistent caches: the provided "
                        "TieredExpectationCache already has a disk tier and "
                        "cache_dir= names another one")
        elif disk is not None:
            memory = TieredExpectationCache(memory=memory, disk=disk)
        self.cache = memory
        self.policy = ExecutionPolicy.coerce(policy, parallel=parallel,
                                             max_workers=max_workers)
        self.max_workers = self.policy.max_workers
        self.use_cache = use_cache
        self.planner = ShardPlanner(parallel=self.policy.parallel or "auto",
                                    max_workers=self.policy.max_workers)
        self.stats = ExecutionStats()
        self.final_disk_stats: Optional[DiskCacheStats] = None
        #: Recent shard-supervisor FaultReports (bounded; newest last).
        self.fault_reports: Deque = collections.deque(maxlen=32)
        self._lock = threading.Lock()

    # -- resolution ----------------------------------------------------------
    def _resolve_policy(self, policy: Optional[ExecutionPolicy] = None, *,
                        parallel: Optional[str] = None,
                        max_workers: Optional[int] = None
                        ) -> ExecutionPolicy:
        """The effective :class:`ExecutionPolicy` for one call: per-call
        keywords > per-call policy > this executor's policy > environment.
        Fields still ``None`` after the merge mean the built-in defaults
        (auto mode, usable-CPU workers, local broker, env retry budget)."""
        return (ExecutionPolicy.coerce(policy, parallel=parallel,
                                       max_workers=max_workers)
                .merged_over(self.policy)
                .merged_over(ExecutionPolicy.from_env()))

    def _shard_kwargs(self, policy: ExecutionPolicy, plan) -> dict:
        """Keyword arguments for one supervised ``run_sharded`` dispatch.

        Built per call: broker instances hold per-dispatch state (shard-id
        maps, spool bookkeeping) and must never be shared between
        concurrent dispatches.
        """
        return {"policy": policy.retry,
                "broker": make_broker(policy.broker, plan.workers),
                "on_fault": self.note_fault_report}

    def _resolve_backend(self, task: ExecutionTask,
                         backend: Union[str, Backend]
                         ) -> Tuple[Backend, bool]:
        """The backend for ``task`` plus whether it was explicitly chosen.

        Explicit choices (a Backend instance, a task-level name, or a named
        call-level backend) may exceed the advisory qubit ceilings, exactly
        like calling the underlying simulator directly; auto-routing never
        does.
        """
        if isinstance(backend, Backend):
            return backend, True
        if task.backend is not None:
            return self.registry.get(task.backend), True
        if backend == "auto":
            return self.registry.get(route_task(task, self.registry)), False
        return self.registry.get(backend), True

    # -- execution -----------------------------------------------------------
    def run(self, tasks: Union[ExecutionTask, Sequence[ExecutionTask]],
            backend: Union[str, Backend] = "auto",
            max_workers: Optional[int] = None,
            use_cache: Optional[bool] = None,
            parallel: Optional[str] = None,
            policy: Optional[ExecutionPolicy] = None) -> List[ExecutionResult]:
        """Execute ``tasks``; returns results aligned with the input order.

        ``backend`` may be ``"auto"`` (route each task), a registry name, or
        a :class:`Backend` instance (used for every task, bypassing the
        registry).  A single task is accepted and still yields a list.
        ``policy`` (or the legacy ``parallel`` / ``max_workers`` keywords,
        which win over it) overrides the executor's fan-out policy for this
        call; sharding never changes results — see
        :mod:`repro.execution.sharding`.
        """
        if isinstance(tasks, ExecutionTask):
            tasks = [tasks]
        else:
            tasks = list(tasks)
        for task in tasks:
            if not isinstance(task, ExecutionTask):
                raise ExecutionError(
                    f"execute() expects ExecutionTask objects, got "
                    f"{type(task).__name__}")
        use_cache = self.use_cache if use_cache is None else use_cache
        with self._lock:
            self.stats.tasks_submitted += len(tasks)
        if not tasks:
            return []

        backends: List[Backend] = []
        keys: List[Optional[Tuple]] = []
        results: List[Optional[ExecutionResult]] = [None] * len(tasks)
        for task in tasks:
            resolved, explicit = self._resolve_backend(task, backend)
            reason = resolved.unsupported_reason(
                task, enforce_qubit_limit=not explicit)
            if reason is not None:
                raise BackendCapabilityError(f"{reason} (task: {task!r})")
            backends.append(resolved)
            # Only deterministic expectation values are safe to share; the
            # backend's cache token folds in configuration (e.g. a Monte-
            # Carlo seed) that the task fields alone do not carry.
            cacheable = (task.is_expectation
                         and resolved.is_deterministic_for(task))
            keys.append(task.cache_key(resolved.cache_token(task))
                        if cacheable else None)

        # Cache lookup + in-batch dedup bookkeeping.
        pending: Dict[Tuple, List[int]] = {}
        to_run: List[int] = []
        for index, (task, key) in enumerate(zip(tasks, keys)):
            if key is not None and use_cache:
                hit = self.cache.get(key)
                if hit is not None:
                    results[index] = ExecutionResult(
                        task=task, backend_name=backends[index].name,
                        value=hit, source="cache")
                    with self._lock:
                        self.stats.cache_hits += 1
                    continue
            if key is not None:
                owners = pending.setdefault(key, [])
                owners.append(index)
                if len(owners) > 1:
                    continue  # an identical task already leads this key
            to_run.append(index)

        with track_program_cache(self):
            self._dispatch(tasks, backends, to_run, results, max_workers,
                           parallel, policy)

        # Fill cache and duplicate slots from the leaders that actually ran.
        for key, owners in pending.items():
            leader = owners[0]
            leader_result = results[leader]
            if leader_result is None:
                raise ExecutionError("internal error: leader task not run")
            if use_cache:
                self.cache.put(key, leader_result.value)
            for follower in owners[1:]:
                results[follower] = ExecutionResult(
                    task=tasks[follower], backend_name=leader_result.backend_name,
                    value=leader_result.value, source="dedup")
                with self._lock:
                    self.stats.dedup_hits += 1
        return results  # type: ignore[return-value]

    def _dispatch(self, tasks: Sequence[ExecutionTask],
                  backends: Sequence[Backend], to_run: Sequence[int],
                  results: List[Optional[ExecutionResult]],
                  max_workers: Optional[int],
                  parallel: Optional[str] = None,
                  policy: Optional[ExecutionPolicy] = None) -> None:
        """Run the given task indices, grouped per backend, under the shard
        plan (process shards / thread pool / inline)."""
        by_backend: Dict[int, Tuple[Backend, List[int]]] = {}
        for index in to_run:
            entry = by_backend.setdefault(id(backends[index]),
                                          (backends[index], []))
            entry[1].append(index)
        if not by_backend:
            return

        effective = self._resolve_policy(policy, parallel=parallel,
                                         max_workers=max_workers)
        hints = [backend.capabilities().parallel_hint
                 for backend, _ in by_backend.values()]
        plan = self.planner.plan(len(to_run), hints=hints,
                                 parallel=effective.parallel,
                                 max_workers=effective.max_workers)

        if plan.mode == "process":
            # Shard each backend's slice across worker processes.  Results
            # round-trip through pickle, so re-attach the caller's task
            # objects (value-equal copies otherwise).
            payloads: List[Tuple[Backend, List[ExecutionTask]]] = []
            owners: List[List[int]] = []
            for backend, indices in by_backend.values():
                for chunk in split_evenly(indices, plan.workers):
                    payloads.append((backend, [tasks[i] for i in chunk]))
                    owners.append(chunk)
            shard_results = run_sharded(plan, _run_batch_shard, payloads,
                                        **self._shard_kwargs(effective, plan))
            for (backend, _), indices, batch in zip(payloads, owners,
                                                    shard_results):
                for i, result in zip(indices, batch):
                    results[i] = dataclasses.replace(result, task=tasks[i])
                # Workers bump their pickled copies' counters, which are
                # discarded — restore the caller-side Backend.invocations
                # parity with the inline/thread branches here.
                backend._count_invocations(len(indices))
                with self._lock:
                    counters = self.stats.backend_invocations
                    counters[backend.name] = counters.get(backend.name, 0) \
                        + len(indices)
            with self._lock:
                self.stats.process_shards += len(payloads)
            return

        def run_chunk(backend: Backend, indices: List[int]) -> None:
            batch = [tasks[i] for i in indices]
            for i, result in zip(indices, backend.run_batch(batch)):
                results[i] = result
            with self._lock:
                counters = self.stats.backend_invocations
                counters[backend.name] = counters.get(backend.name, 0) \
                    + len(indices)

        if plan.mode != "thread":
            for backend, indices in by_backend.values():
                run_chunk(backend, indices)
            return

        chunks: List[Tuple[Backend, List[int]]] = []
        for backend, indices in by_backend.values():
            chunks.extend((backend, chunk)
                          for chunk in split_evenly(indices, plan.workers))
        run_sharded(plan, run_chunk, chunks)

    # -- grouped observables -------------------------------------------------
    def term_expectations(self, circuit, observable, *,
                          noise_model=None,
                          backend: Union[str, Backend] = "auto",
                          trajectories: Optional[int] = None,
                          include_idle: bool = True,
                          use_cache: Optional[bool] = None,
                          parallel: Optional[str] = None,
                          max_workers: Optional[int] = None,
                          policy: Optional[ExecutionPolicy] = None
                          ) -> "np.ndarray":
        """Per-term ⟨P_i⟩ of ``observable``'s terms from **one** evolution.

        The returned float array aligns with ``observable.terms()`` and does
        not include the coefficients — this is what term-resolved consumers
        (VarSaw's readout inversion, diagnostics) want.  Values are cached
        per (circuit, term), so later calls that share terms — or a
        Hamiltonian that only overlaps this one — skip the evolution
        entirely.  Example::

            values = executor.term_expectations(circuit, hamiltonian)
            for (pauli, coeff), value in zip(hamiltonian.terms(), values):
                print(pauli.label, value)
        """
        task = ExecutionTask(circuit=circuit, observable=observable,
                             noise_model=noise_model,
                             trajectories=trajectories,
                             include_idle=include_idle)
        return run_grouped(self, [task], backend=backend,
                           use_cache=use_cache, parallel=parallel,
                           max_workers=max_workers, policy=policy)[0]

    def evaluate_observable(self, circuits, observable, *,
                            noise_model=None,
                            backend: Union[str, Backend] = "auto",
                            trajectories: Optional[int] = None,
                            include_idle: bool = True,
                            use_cache: Optional[bool] = None,
                            max_workers: Optional[int] = None,
                            parallel: Optional[str] = None,
                            policy: Optional[ExecutionPolicy] = None
                            ) -> List[float]:
        """⟨H⟩ for one or many circuits, evolving each circuit **once**.

        The grouped fast path for many-term Hamiltonians: instead of one
        simulator run per Pauli term, every unique circuit is evolved a
        single time per backend and all term expectations are read off the
        final state (vectorized bitmask kernels on the dense simulators, one
        QWC basis rotation per commuting group on the stabilizer tableau,
        one pass for Pauli propagation).  Accepts a single circuit or a
        sequence; always returns a list of energies aligned with the input.
        Example::

            energies = executor.evaluate_observable(
                [ansatz.bind_parameters(theta) for theta in sweep],
                hamiltonian, backend="auto")
        """
        from ..circuits.circuit import QuantumCircuit
        if isinstance(circuits, QuantumCircuit):
            circuits = [circuits]
        else:
            circuits = list(circuits)
        tasks = [ExecutionTask(circuit=circuit, observable=observable,
                               noise_model=noise_model,
                               trajectories=trajectories,
                               include_idle=include_idle)
                 for circuit in circuits]
        values_per_task = run_grouped(self, tasks, backend=backend,
                                      use_cache=use_cache,
                                      max_workers=max_workers,
                                      parallel=parallel, policy=policy)
        coefficients = np.array([float(np.real(coeff))
                                 for _, coeff in observable.terms()])
        return [float(np.dot(coefficients, values))
                for values in values_per_task]

    # -- batched parameter sweeps --------------------------------------------
    def evaluate_sweep(self, template, parameter_sets, observable, *,
                       noise_model=None,
                       backend: Union[str, Backend] = "auto",
                       trajectories: Optional[int] = None,
                       include_idle: bool = True,
                       use_cache: Optional[bool] = None,
                       max_workers: Optional[int] = None,
                       parallel: Optional[str] = None,
                       policy: Optional[ExecutionPolicy] = None
                       ) -> List[float]:
        """⟨H⟩ at every point of a parameter sweep over one circuit template.

        The batched fast path of the compile layer: when every sweep point
        lands on the (noiseless) statevector backend, the template is
        compiled **once** (:func:`repro.simulators.program.compile_circuit`,
        served by the fingerprint-keyed program cache on repeat sweeps), each
        parameter set only rebinds the parametric matrices, and all uncached
        points execute as a single stacked ``(B, 2^n)``
        :func:`~repro.simulators.program.run_batch` pass with one vectorized
        term-readout kernel over the whole batch.  Values are cached per
        ``(template, parameter tuple, term)`` — a sweep-specific key space,
        separate from the grouped engine's per-circuit keys — so repeated
        points (SPSA ± re-queries, genetic elites) cost a dictionary lookup
        across sweep calls.  Sweeps that route elsewhere (noise models,
        Clifford regimes, custom backends) fall back to one grouped
        :meth:`evaluate_observable` batch over the bound circuits.  Returns
        energies aligned with ``parameter_sets``.
        Example::

            energies = executor.evaluate_sweep(
                ansatz.build(), sweep_points, hamiltonian,
                backend="statevector")
        """
        from .adapters import StatevectorBackend
        parameter_sets = [[float(value) for value in values]
                          for values in parameter_sets]
        if not parameter_sets:
            return []
        num_parameters = len(template.ordered_parameters())
        for values in parameter_sets:
            if len(values) != num_parameters:
                raise ExecutionError(
                    f"template has {num_parameters} free parameters, got a "
                    f"sweep point with {len(values)}")
        use_cache = self.use_cache if use_cache is None else use_cache

        def _is_statevector(resolved) -> bool:
            return (isinstance(resolved, StatevectorBackend)
                    and resolved.name == "statevector")

        noisy = noise_model is not None and noise_model.has_noise()
        bound_circuits: Optional[List] = None
        if not noisy and isinstance(backend, Backend):
            batchable = _is_statevector(backend)
        elif not noisy and backend != "auto":
            batchable = _is_statevector(self.registry.get(backend))
        elif not noisy:
            # Auto-routing depends on each bound circuit (Clifford points
            # route to the tableau engines), so it costs one circuit bind
            # per point.  A sweep whose every point already sits in the
            # sweep cache skips that entirely: cached values can only have
            # been produced by an earlier statevector-batched run of the
            # same (template, point), so serving them is consistent.
            if use_cache:
                served = self._serve_sweep_from_cache(template, parameter_sets,
                                                      observable)
                if served is not None:
                    return served
            # Bind once; a non-batchable verdict reuses these circuits.
            bound_circuits = [template.bind_parameters(values)
                              for values in parameter_sets]
            batchable = all(
                _is_statevector(self._resolve_backend(task, backend)[0])
                for task in (ExecutionTask(
                    circuit=circuit, observable=observable,
                    trajectories=trajectories, include_idle=include_idle)
                    for circuit in bound_circuits))
        else:
            batchable = False
        if not batchable:
            if bound_circuits is None:
                bound_circuits = [template.bind_parameters(values)
                                  for values in parameter_sets]
            return self.evaluate_observable(
                bound_circuits, observable, noise_model=noise_model,
                backend=backend, trajectories=trajectories,
                include_idle=include_idle, use_cache=use_cache,
                max_workers=max_workers, parallel=parallel, policy=policy)
        return self._sweep_statevector(template, parameter_sets, observable,
                                       use_cache, parallel=parallel,
                                       max_workers=max_workers, policy=policy)

    @staticmethod
    def _sweep_cache_keys(template_fingerprint: str, point_key: Tuple,
                          term_keys) -> List[Tuple]:
        """Value-cache keys of one sweep point — no circuit binding needed."""
        return [("sweep", template_fingerprint, point_key, term_key,
                 "statevector") for term_key in term_keys]

    def _serve_sweep_from_cache(self, template, parameter_sets,
                                observable) -> Optional[List[float]]:
        """The whole sweep's energies from cache, or None on any miss."""
        term_keys = [pauli.key() for pauli, _ in observable.terms()]
        template_fingerprint = template.fingerprint()
        values_per_point = []
        for values in parameter_sets:
            cached = self.cache.get_many(self._sweep_cache_keys(
                template_fingerprint, tuple(values), term_keys))
            if any(value is None for value in cached):
                return None
            values_per_point.append(np.array(cached))
        with self._lock:
            self.stats.tasks_submitted += len(parameter_sets)
            self.stats.grouped_tasks += len(parameter_sets)
            self.stats.term_cache_hits += \
                len(parameter_sets) * len(term_keys)
        coefficients = np.array([float(np.real(coeff))
                                 for _, coeff in observable.terms()])
        return [float(np.dot(coefficients, values))
                for values in values_per_point]

    def _sweep_statevector(self, template, parameter_sets, observable,
                           use_cache: bool,
                           parallel: Optional[str] = None,
                           max_workers: Optional[int] = None,
                           policy: Optional[ExecutionPolicy] = None
                           ) -> List[float]:
        """One compiled batch over the uncached points of a noiseless sweep.

        Cached values are keyed per ``("sweep", template fingerprint,
        parameter tuple, term)`` — derived without binding a circuit per
        point, which keeps the repeat-query hot path at dictionary-lookup
        cost.  Process-mode sweeps run their uncached points in
        fixed-size **point blocks** whose size depends only on the qubit
        count and the unique-point count — never on the worker count or
        broker — so pooled and spool-brokered sweeps submit byte-identical
        shard payloads (a spool's content-named result files stay valid
        across run shapes, and fine-grained blocks let elastic workers
        load-balance).  Each block's term values flush through the cache
        (and its disk tier) **as the block lands**, so a killed
        multi-worker sweep resumes warm: already-flushed points are served
        from cache and recompute nothing.  Inline sweeps keep the single
        compiled batch (one lowering, full stacked vectorisation) — the
        per-point values are identical either way, so the two shapes can
        never diverge bitwise.
        """
        num_points = len(parameter_sets)
        with self._lock:
            self.stats.tasks_submitted += num_points
            self.stats.grouped_tasks += num_points
        term_keys = [pauli.key() for pauli, _ in observable.terms()]
        values_per_point: List[Optional[np.ndarray]] = [None] * num_points
        point_keys = [tuple(values) for values in parameter_sets]
        with track_program_cache(self):
            bare_template = template.without_measurements()
            template_fingerprint = template.fingerprint()

            def cache_keys(point_key: Tuple) -> List[Tuple]:
                return self._sweep_cache_keys(template_fingerprint,
                                              point_key, term_keys)

            missing: List[int] = []
            for index in range(num_points):
                if not use_cache:
                    missing.append(index)
                    continue
                cached = self.cache.get_many(cache_keys(point_keys[index]))
                if all(value is not None for value in cached):
                    values_per_point[index] = np.array(cached)
                    with self._lock:
                        self.stats.term_cache_hits += len(cached)
                else:
                    missing.append(index)
            if missing:
                # In-batch dedup: identical sweep points share one evolution.
                leaders: Dict[Tuple, int] = {}
                unique: List[int] = []
                for index in missing:
                    if point_keys[index] in leaders:
                        continue
                    leaders[point_keys[index]] = len(unique)
                    unique.append(index)
                effective = self._resolve_policy(policy, parallel=parallel,
                                                 max_workers=max_workers)
                plan = self.planner.plan(len(unique), hints=("process",),
                                         parallel=effective.parallel,
                                         max_workers=effective.max_workers)
                if plan.mode == "process" and len(unique) > 1:
                    # Point-block size: a function of the qubit count and
                    # the unique-point count alone — never the worker count
                    # or broker — so block composition (and hence shard
                    # payload identity) is the same pooled or brokered, and
                    # stable across a kill/resume with a different worker
                    # census.  Up to 8 concurrent workers each holding one
                    # stacked block stay inside the ~1 GB amplitude bound;
                    # the /16 divisor keeps at least ~16 blocks on big
                    # sweeps so elastic workers can load-balance and
                    # checkpoints stay fine-grained.
                    num_qubits = int(bare_template.num_qubits)
                    block_size = max(1, min(64,
                                            _SWEEP_BATCH_AMPLITUDES
                                            // (8 << num_qubits),
                                            -(-len(unique) // 16)))
                    blocks = [unique[start:start + block_size]
                              for start in range(0, len(unique), block_size)]
                    # Each block is one shard payload executing as a single
                    # stacked batch (its amplitude budget is its size).
                    payloads = [(bare_template,
                                 [parameter_sets[index] for index in block],
                                 observable, len(block) << num_qubits)
                                for block in blocks]

                    def flush_block(position: int, block_values) -> None:
                        """Checkpoint one landed block through the cache."""
                        entries = []
                        for row, index in enumerate(blocks[position]):
                            entries.extend(zip(
                                cache_keys(point_keys[index]),
                                (float(v) for v in block_values[row])))
                        self.cache.put_many(entries)

                    row_blocks = run_sharded(
                        plan, _sweep_points_shard, payloads,
                        on_result=flush_block if use_cache else None,
                        **self._shard_kwargs(effective, plan))
                    unique_values = (row_blocks[0] if len(row_blocks) == 1
                                     else np.concatenate(row_blocks, axis=0))
                    with self._lock:
                        self.stats.process_shards += len(payloads)
                else:
                    # Same code path a worker shard runs (compile +
                    # amplitude-budget chunked batches), executed
                    # in-process as one compiled batch — one
                    # implementation, so inline and sharded sweeps can
                    # never diverge.
                    unique_values = _sweep_points_shard(
                        bare_template,
                        [parameter_sets[index] for index in unique],
                        observable, _SWEEP_BATCH_AMPLITUDES)
                    if use_cache:
                        for row, index in enumerate(unique):
                            self.cache.put_many(
                                zip(cache_keys(point_keys[index]),
                                    (float(v) for v in unique_values[row])))
                for index in missing:
                    values_per_point[index] = \
                        unique_values[leaders[point_keys[index]]]
                with self._lock:
                    counters = self.stats.backend_invocations
                    counters["statevector"] = \
                        counters.get("statevector", 0) + len(unique)
                    self.stats.dedup_hits += len(missing) - len(unique)
        coefficients = np.array([float(np.real(coeff))
                                 for _, coeff in observable.terms()])
        return [float(np.dot(coefficients, values))
                for values in values_per_point]

    # -- lifecycle -----------------------------------------------------------
    def shutdown(self, wait: bool = True) -> Optional[DiskCacheStats]:
        """Retire the worker-process pool and flush disk-cache accounting.

        Long-running hosts (the :mod:`repro.service` job server) need a
        clean lifecycle: before this method the persistent
        ``ProcessPoolExecutor`` only died with the interpreter.  ``wait=True``
        lets in-flight shard payloads finish; ``wait=False`` abandons them.
        The final :class:`~repro.execution.disk_cache.DiskCacheStats`
        snapshot is captured on :attr:`final_disk_stats` and returned (None
        when no persistent cache is configured), so a server's shutdown path
        can log lifetime hit/miss/eviction counts after the pool is gone.

        Shutdown is idempotent and deliberately non-poisoning: the pool is
        process-global (shared by every executor), so a later dispatch from
        any executor lazily recreates it.  Executors support the context
        manager protocol — ``with Executor() as executor: ...`` shuts down
        on exit.
        """
        from .sharding import shutdown_process_pool
        shutdown_process_pool(wait=wait)
        self.final_disk_stats = self.disk_cache_stats
        return self.final_disk_stats

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.shutdown()

    # -- introspection -------------------------------------------------------
    def note_fault_report(self, report: FaultReport) -> None:
        """Fold one shard-supervisor :class:`FaultReport` into the stats.

        Wired as the ``on_fault`` callback of every ``run_sharded`` call
        this executor plans (its own dispatches and executor-routed
        pipelines like :mod:`repro.qec.sampling`), so recoveries are never
        silent: counters land in :attr:`stats` and the report itself is
        kept on the bounded :attr:`fault_reports` deque for inspection.
        """
        with self._lock:
            self.stats.shard_retries += len(report.retried)
            self.stats.shard_timeouts += report.timeouts
            self.stats.pool_respawns += report.respawns
            self.stats.degraded_shards += report.inline_shards
        self.fault_reports.append(report)

    def note_process_shards(self, count: int) -> None:
        """Record ``count`` externally submitted process-shard payloads.

        Pipelines that plan with this executor's :class:`ShardPlanner` and
        cache in its expectation cache but submit their own shard payloads
        (the batched QEC sampler, :mod:`repro.qec.sampling`) report their
        pool traffic here so ``stats.process_shards`` stays a complete
        account of the executor's fan-out.
        """
        with self._lock:
            self.stats.process_shards += int(count)

    def broker_workers(self) -> List[dict]:
        """The configured broker's current worker census (JSON-able dicts).

        For the default local broker this is the fork pool's live worker
        processes; for a filesystem broker it is the spool's worker census
        files — what a service's ``stats()`` endpoint reports as
        ``workers``.
        """
        effective = self._resolve_policy()
        broker = make_broker(effective.broker,
                             resolve_workers(effective.max_workers))
        return broker.workers()

    @property
    def cache_stats(self) -> CacheStats:
        return self.cache.stats

    @property
    def disk_cache(self) -> Optional[DiskExpectationCache]:
        """The persistent L2 store, or None when not configured."""
        if isinstance(self.cache, TieredExpectationCache):
            return self.cache.disk
        return None

    @property
    def disk_cache_stats(self) -> Optional[DiskCacheStats]:
        """Hit/miss/write/eviction counters of the L2 store, or None."""
        disk = self.disk_cache
        return disk.stats if disk is not None else None

    def reset_stats(self) -> None:
        self.stats = ExecutionStats()


_default_executor: Optional[Executor] = None
_default_lock = threading.Lock()


def default_executor() -> Executor:
    """The process-wide executor behind :func:`execute` (created lazily)."""
    global _default_executor
    with _default_lock:
        if _default_executor is None:
            _default_executor = Executor()
        return _default_executor


def reset_default_executor() -> None:
    """Drop the shared executor (and its cache/stats); mainly for tests."""
    global _default_executor
    with _default_lock:
        _default_executor = None


def execute(tasks: Union[ExecutionTask, Sequence[ExecutionTask]],
            backend: Union[str, Backend] = "auto",
            max_workers: Optional[int] = None,
            use_cache: Optional[bool] = None,
            parallel: Optional[str] = None,
            policy: Optional[ExecutionPolicy] = None) -> List[ExecutionResult]:
    """Run tasks through the shared default executor (see :class:`Executor`).

    This is the one call every consumer in the package dispatches through::

        results = execute([ExecutionTask(circuit, observable=hamiltonian)])
        energy = results[0].value

    ``parallel="process"`` fans a CPU-bound batch out across worker
    processes (``max_workers``, or the ``REPRO_WORKERS`` environment
    override); results are identical to an inline run — see
    :mod:`repro.execution.sharding` for the determinism contract.
    """
    return default_executor().run(tasks, backend=backend,
                                  max_workers=max_workers,
                                  use_cache=use_cache, parallel=parallel,
                                  policy=policy)


def execute_one(task: ExecutionTask,
                backend: Union[str, Backend] = "auto",
                use_cache: Optional[bool] = None) -> ExecutionResult:
    """Convenience wrapper: run a single task and return its result."""
    return execute(task, backend=backend, use_cache=use_cache)[0]


def evaluate_observable(circuits, observable, *, noise_model=None,
                        backend: Union[str, Backend] = "auto",
                        trajectories: Optional[int] = None,
                        include_idle: bool = True,
                        use_cache: Optional[bool] = None,
                        max_workers: Optional[int] = None,
                        parallel: Optional[str] = None,
                        policy: Optional[ExecutionPolicy] = None
                        ) -> List[float]:
    """⟨H⟩ for one or many circuits through the shared default executor.

    The grouped-observable fast path: each unique circuit is evolved
    **once** per backend and every Pauli term of ``observable`` is read off
    the final state, with per-(circuit, term) caching — see
    :meth:`Executor.evaluate_observable`.  Example::

        from repro.execution import evaluate_observable

        [energy] = evaluate_observable(circuit, hamiltonian)
    """
    return default_executor().evaluate_observable(
        circuits, observable, noise_model=noise_model, backend=backend,
        trajectories=trajectories, include_idle=include_idle,
        use_cache=use_cache, max_workers=max_workers, parallel=parallel,
        policy=policy)


def evaluate_sweep(template, parameter_sets, observable, *, noise_model=None,
                   backend: Union[str, Backend] = "auto",
                   trajectories: Optional[int] = None,
                   include_idle: bool = True,
                   use_cache: Optional[bool] = None,
                   max_workers: Optional[int] = None,
                   parallel: Optional[str] = None,
                   policy: Optional[ExecutionPolicy] = None) -> List[float]:
    """⟨H⟩ over a whole parameter sweep through the shared default executor.

    The batched sweep entry point: the parametric ``template`` is compiled
    once, every parameter set rebinds only the parametric gate matrices, and
    noiseless statevector sweeps execute as a single stacked NumPy pass —
    see :meth:`Executor.evaluate_sweep`.  Other regimes fall back to one
    grouped :func:`evaluate_observable` batch over the bound circuits.
    Example::

        from repro.execution import evaluate_sweep

        energies = evaluate_sweep(ansatz.build(), sweep_points, hamiltonian)
    """
    return default_executor().evaluate_sweep(
        template, parameter_sets, observable, noise_model=noise_model,
        backend=backend, trajectories=trajectories, include_idle=include_idle,
        use_cache=use_cache, max_workers=max_workers, parallel=parallel,
        policy=policy)


def term_expectations(circuit, observable, *, noise_model=None,
                      backend: Union[str, Backend] = "auto",
                      trajectories: Optional[int] = None,
                      include_idle: bool = True,
                      use_cache: Optional[bool] = None,
                      parallel: Optional[str] = None,
                      max_workers: Optional[int] = None,
                      policy: Optional[ExecutionPolicy] = None
                      ) -> "np.ndarray":
    """Per-term ⟨P_i⟩ from one evolution, via the shared default executor.

    See :meth:`Executor.term_expectations`; values align with
    ``observable.terms()`` and exclude the coefficients.
    """
    return default_executor().term_expectations(
        circuit, observable, noise_model=noise_model, backend=backend,
        trajectories=trajectories, include_idle=include_idle,
        use_cache=use_cache, parallel=parallel, max_workers=max_workers,
        policy=policy)
