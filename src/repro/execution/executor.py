"""The batched, cached, regime-aware ``execute()`` entry point.

Pipeline for one :meth:`Executor.run` call:

1. **Resolve** — every task is assigned a backend: its own ``backend`` field,
   the call-level ``backend=`` argument, or regime-aware auto-routing
   (:func:`repro.execution.router.route_task`).
2. **Cache lookup** — deterministic expectation tasks are looked up in the
   LRU expectation cache (keyed on circuit fingerprint, observable, noise
   model and backend options).
3. **Deduplicate** — remaining identical deterministic tasks collapse to a
   single simulator invocation per distinct key.
4. **Dispatch** — unique tasks are grouped per backend, chunked, and fanned
   out across a thread pool (``max_workers``); small batches run inline.
5. **Assemble** — results come back in input order, each labelled with the
   backend that ran it and whether it was served from cache or dedup.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from .backend import Backend
from .cache import CacheStats, ExpectationCache
from .errors import BackendCapabilityError, ExecutionError
from .observables import _INLINE_THRESHOLD, _MAX_AUTO_WORKERS, run_grouped
from .registry import BackendRegistry, DEFAULT_REGISTRY
from .router import route_task
from .task import ExecutionResult, ExecutionTask


@dataclass
class ExecutionStats:
    """Aggregate counters for one :class:`Executor` across all calls.

    ``grouped_tasks`` counts tasks served by the grouped-observable engine
    and ``term_cache_hits`` the per-(circuit, term) cache hits it scored;
    ``backend_invocations`` counts circuit evolutions either pipeline spent.
    """

    tasks_submitted: int = 0
    cache_hits: int = 0
    dedup_hits: int = 0
    grouped_tasks: int = 0
    term_cache_hits: int = 0
    backend_invocations: Dict[str, int] = field(default_factory=dict)

    @property
    def simulator_invocations(self) -> int:
        return sum(self.backend_invocations.values())

    def __repr__(self):
        return (f"ExecutionStats(submitted={self.tasks_submitted}, "
                f"cache_hits={self.cache_hits}, dedup_hits={self.dedup_hits}, "
                f"grouped={self.grouped_tasks}, "
                f"term_cache_hits={self.term_cache_hits}, "
                f"invocations={dict(self.backend_invocations)})")


class Executor:
    """Batches tasks onto backends with caching, dedup and threading.

    One executor owns one expectation cache and one stats block; the
    module-level :func:`execute` uses a shared default instance so all
    layers of the package benefit from each other's cache entries.
    """

    def __init__(self, registry: Optional[BackendRegistry] = None,
                 cache: Optional[ExpectationCache] = None,
                 cache_size: int = 4096,
                 max_workers: Optional[int] = None,
                 use_cache: bool = True):
        self.registry = registry or DEFAULT_REGISTRY
        self.cache = cache or ExpectationCache(max_size=cache_size)
        self.max_workers = max_workers
        self.use_cache = use_cache
        self.stats = ExecutionStats()
        self._lock = threading.Lock()

    # -- resolution ----------------------------------------------------------
    def _resolve_backend(self, task: ExecutionTask,
                         backend: Union[str, Backend]
                         ) -> Tuple[Backend, bool]:
        """The backend for ``task`` plus whether it was explicitly chosen.

        Explicit choices (a Backend instance, a task-level name, or a named
        call-level backend) may exceed the advisory qubit ceilings, exactly
        like calling the underlying simulator directly; auto-routing never
        does.
        """
        if isinstance(backend, Backend):
            return backend, True
        if task.backend is not None:
            return self.registry.get(task.backend), True
        if backend == "auto":
            return self.registry.get(route_task(task, self.registry)), False
        return self.registry.get(backend), True

    # -- execution -----------------------------------------------------------
    def run(self, tasks: Union[ExecutionTask, Sequence[ExecutionTask]],
            backend: Union[str, Backend] = "auto",
            max_workers: Optional[int] = None,
            use_cache: Optional[bool] = None) -> List[ExecutionResult]:
        """Execute ``tasks``; returns results aligned with the input order.

        ``backend`` may be ``"auto"`` (route each task), a registry name, or
        a :class:`Backend` instance (used for every task, bypassing the
        registry).  A single task is accepted and still yields a list.
        """
        if isinstance(tasks, ExecutionTask):
            tasks = [tasks]
        else:
            tasks = list(tasks)
        for task in tasks:
            if not isinstance(task, ExecutionTask):
                raise ExecutionError(
                    f"execute() expects ExecutionTask objects, got "
                    f"{type(task).__name__}")
        use_cache = self.use_cache if use_cache is None else use_cache
        max_workers = self.max_workers if max_workers is None else max_workers
        with self._lock:
            self.stats.tasks_submitted += len(tasks)
        if not tasks:
            return []

        backends: List[Backend] = []
        keys: List[Optional[Tuple]] = []
        results: List[Optional[ExecutionResult]] = [None] * len(tasks)
        for task in tasks:
            resolved, explicit = self._resolve_backend(task, backend)
            reason = resolved.unsupported_reason(
                task, enforce_qubit_limit=not explicit)
            if reason is not None:
                raise BackendCapabilityError(f"{reason} (task: {task!r})")
            backends.append(resolved)
            # Only deterministic expectation values are safe to share.
            cacheable = (task.is_expectation
                         and resolved.is_deterministic_for(task))
            keys.append(task.cache_key(resolved.name) if cacheable else None)

        # Cache lookup + in-batch dedup bookkeeping.
        pending: Dict[Tuple, List[int]] = {}
        to_run: List[int] = []
        for index, (task, key) in enumerate(zip(tasks, keys)):
            if key is not None and use_cache:
                hit = self.cache.get(key)
                if hit is not None:
                    results[index] = ExecutionResult(
                        task=task, backend_name=backends[index].name,
                        value=hit, source="cache")
                    with self._lock:
                        self.stats.cache_hits += 1
                    continue
            if key is not None:
                owners = pending.setdefault(key, [])
                owners.append(index)
                if len(owners) > 1:
                    continue  # an identical task already leads this key
            to_run.append(index)

        self._dispatch(tasks, backends, to_run, results, max_workers)

        # Fill cache and duplicate slots from the leaders that actually ran.
        for key, owners in pending.items():
            leader = owners[0]
            leader_result = results[leader]
            if leader_result is None:
                raise ExecutionError("internal error: leader task not run")
            if use_cache:
                self.cache.put(key, leader_result.value,
                               pin=tasks[leader].noise_model)
            for follower in owners[1:]:
                results[follower] = ExecutionResult(
                    task=tasks[follower], backend_name=leader_result.backend_name,
                    value=leader_result.value, source="dedup")
                with self._lock:
                    self.stats.dedup_hits += 1
        return results  # type: ignore[return-value]

    def _dispatch(self, tasks: Sequence[ExecutionTask],
                  backends: Sequence[Backend], to_run: Sequence[int],
                  results: List[Optional[ExecutionResult]],
                  max_workers: Optional[int]) -> None:
        """Run the given task indices, grouped per backend, possibly threaded."""
        by_backend: Dict[int, Tuple[Backend, List[int]]] = {}
        for index in to_run:
            entry = by_backend.setdefault(id(backends[index]),
                                          (backends[index], []))
            entry[1].append(index)
        if not by_backend:
            return

        def run_chunk(backend: Backend, indices: List[int]) -> None:
            batch = [tasks[i] for i in indices]
            for i, result in zip(indices, backend.run_batch(batch)):
                results[i] = result
            with self._lock:
                counters = self.stats.backend_invocations
                counters[backend.name] = counters.get(backend.name, 0) \
                    + len(indices)

        workers = max_workers
        if workers is None:
            workers = min(_MAX_AUTO_WORKERS, os.cpu_count() or 1)
        if workers <= 1 or len(to_run) <= _INLINE_THRESHOLD:
            for backend, indices in by_backend.values():
                run_chunk(backend, indices)
            return

        chunks: List[Tuple[Backend, List[int]]] = []
        for backend, indices in by_backend.values():
            chunk_size = max(1, -(-len(indices) // workers))
            for start in range(0, len(indices), chunk_size):
                chunks.append((backend, indices[start:start + chunk_size]))
        with ThreadPoolExecutor(max_workers=min(workers, len(chunks))) as pool:
            futures = [pool.submit(run_chunk, backend, indices)
                       for backend, indices in chunks]
            for future in futures:
                future.result()  # surface worker exceptions

    # -- grouped observables -------------------------------------------------
    def term_expectations(self, circuit, observable, *,
                          noise_model=None,
                          backend: Union[str, Backend] = "auto",
                          trajectories: Optional[int] = None,
                          include_idle: bool = True,
                          use_cache: Optional[bool] = None) -> "np.ndarray":
        """Per-term ⟨P_i⟩ of ``observable``'s terms from **one** evolution.

        The returned float array aligns with ``observable.terms()`` and does
        not include the coefficients — this is what term-resolved consumers
        (VarSaw's readout inversion, diagnostics) want.  Values are cached
        per (circuit, term), so later calls that share terms — or a
        Hamiltonian that only overlaps this one — skip the evolution
        entirely.  Example::

            values = executor.term_expectations(circuit, hamiltonian)
            for (pauli, coeff), value in zip(hamiltonian.terms(), values):
                print(pauli.label, value)
        """
        task = ExecutionTask(circuit=circuit, observable=observable,
                             noise_model=noise_model,
                             trajectories=trajectories,
                             include_idle=include_idle)
        return run_grouped(self, [task], backend=backend,
                           use_cache=use_cache)[0]

    def evaluate_observable(self, circuits, observable, *,
                            noise_model=None,
                            backend: Union[str, Backend] = "auto",
                            trajectories: Optional[int] = None,
                            include_idle: bool = True,
                            use_cache: Optional[bool] = None,
                            max_workers: Optional[int] = None) -> List[float]:
        """⟨H⟩ for one or many circuits, evolving each circuit **once**.

        The grouped fast path for many-term Hamiltonians: instead of one
        simulator run per Pauli term, every unique circuit is evolved a
        single time per backend and all term expectations are read off the
        final state (vectorized bitmask kernels on the dense simulators, one
        QWC basis rotation per commuting group on the stabilizer tableau,
        one pass for Pauli propagation).  Accepts a single circuit or a
        sequence; always returns a list of energies aligned with the input.
        Example::

            energies = executor.evaluate_observable(
                [ansatz.bind_parameters(theta) for theta in sweep],
                hamiltonian, backend="auto")
        """
        from ..circuits.circuit import QuantumCircuit
        if isinstance(circuits, QuantumCircuit):
            circuits = [circuits]
        else:
            circuits = list(circuits)
        tasks = [ExecutionTask(circuit=circuit, observable=observable,
                               noise_model=noise_model,
                               trajectories=trajectories,
                               include_idle=include_idle)
                 for circuit in circuits]
        values_per_task = run_grouped(self, tasks, backend=backend,
                                      use_cache=use_cache,
                                      max_workers=max_workers)
        coefficients = np.array([float(np.real(coeff))
                                 for _, coeff in observable.terms()])
        return [float(np.dot(coefficients, values))
                for values in values_per_task]

    # -- introspection -------------------------------------------------------
    @property
    def cache_stats(self) -> CacheStats:
        return self.cache.stats

    def reset_stats(self) -> None:
        self.stats = ExecutionStats()


_default_executor: Optional[Executor] = None
_default_lock = threading.Lock()


def default_executor() -> Executor:
    """The process-wide executor behind :func:`execute` (created lazily)."""
    global _default_executor
    with _default_lock:
        if _default_executor is None:
            _default_executor = Executor()
        return _default_executor


def reset_default_executor() -> None:
    """Drop the shared executor (and its cache/stats); mainly for tests."""
    global _default_executor
    with _default_lock:
        _default_executor = None


def execute(tasks: Union[ExecutionTask, Sequence[ExecutionTask]],
            backend: Union[str, Backend] = "auto",
            max_workers: Optional[int] = None,
            use_cache: Optional[bool] = None) -> List[ExecutionResult]:
    """Run tasks through the shared default executor (see :class:`Executor`).

    This is the one call every consumer in the package dispatches through::

        results = execute([ExecutionTask(circuit, observable=hamiltonian)])
        energy = results[0].value
    """
    return default_executor().run(tasks, backend=backend,
                                  max_workers=max_workers,
                                  use_cache=use_cache)


def execute_one(task: ExecutionTask,
                backend: Union[str, Backend] = "auto",
                use_cache: Optional[bool] = None) -> ExecutionResult:
    """Convenience wrapper: run a single task and return its result."""
    return execute(task, backend=backend, use_cache=use_cache)[0]


def evaluate_observable(circuits, observable, *, noise_model=None,
                        backend: Union[str, Backend] = "auto",
                        trajectories: Optional[int] = None,
                        include_idle: bool = True,
                        use_cache: Optional[bool] = None,
                        max_workers: Optional[int] = None) -> List[float]:
    """⟨H⟩ for one or many circuits through the shared default executor.

    The grouped-observable fast path: each unique circuit is evolved
    **once** per backend and every Pauli term of ``observable`` is read off
    the final state, with per-(circuit, term) caching — see
    :meth:`Executor.evaluate_observable`.  Example::

        from repro.execution import evaluate_observable

        [energy] = evaluate_observable(circuit, hamiltonian)
    """
    return default_executor().evaluate_observable(
        circuits, observable, noise_model=noise_model, backend=backend,
        trajectories=trajectories, include_idle=include_idle,
        use_cache=use_cache, max_workers=max_workers)


def term_expectations(circuit, observable, *, noise_model=None,
                      backend: Union[str, Backend] = "auto",
                      trajectories: Optional[int] = None,
                      include_idle: bool = True,
                      use_cache: Optional[bool] = None) -> "np.ndarray":
    """Per-term ⟨P_i⟩ from one evolution, via the shared default executor.

    See :meth:`Executor.term_expectations`; values align with
    ``observable.terms()`` and exclude the coefficients.
    """
    return default_executor().term_expectations(
        circuit, observable, noise_model=noise_model, backend=backend,
        trajectories=trajectories, include_idle=include_idle,
        use_cache=use_cache)
