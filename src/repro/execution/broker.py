"""Pluggable shard brokers: where a supervised dispatch actually runs.

:func:`~repro.execution.sharding.run_sharded`'s supervisor speaks one small
protocol (:class:`ShardBroker`) and never touches a pool or a filesystem
directly, so the *placement* of shard work is swappable without changing
retry, backoff, fault-injection or :class:`~repro.execution.sharding.FaultReport`
semantics:

* :class:`LocalProcessBroker` — the default.  Wraps the module-shared fork
  pool in :mod:`~repro.execution.sharding`; behavior and bitwise results
  are identical to the pre-broker supervisor (same pool, same
  ``_shard_entry`` wrapper, same BrokenExecutor/timeout classification).
* :class:`FilesystemBroker` — a spool-directory work queue on a shared
  filesystem.  Any number of elastic ``repro-worker`` processes
  (:mod:`repro.worker`) — on this host or any host mounting the spool —
  claim task files by **atomic rename**, hold a **lease** while executing,
  and drop results as **content-named** files.  A worker that dies
  mid-shard simply stops renewing its lease; the supervisor's heartbeat
  reclaims and requeues the shard, and the recovery is accounted like any
  other retry.  Because every shard payload carries its own seeds,
  placement (which worker, how many, joins/leaves mid-run) can never
  change results.

Spool layout (one directory, five subdirectories)::

    spool/
      tasks/    <shard_id>.task      pickled envelope, claim me by rename
      claimed/  <shard_id>.task      renamed here by the winning claimant
      leases/   <shard_id>.json      {"owner", "expires"} renewed while running
      results/  <digest>.result      pickled outcome, named by payload content
      workers/  <worker_id>.json     worker census: pid, claims, last_seen

The claim is ``os.rename(tasks/X, claimed/X)``: exactly one claimant wins,
losers get ``FileNotFoundError`` — no locks, no fsync ordering games.
Results are named by the BLAKE2 digest of the pickled ``(fn, payload)``
body, so an identical shard resubmitted later (a retry, or a killed run
resumed against the same spool) is served the already-computed result file
instead of recomputing.

Trust model: the spool carries pickles, exactly like the fork pool's IPC —
it must live on a filesystem writable only by the cooperating run and its
workers (a job-scoped tmp dir, not a world-writable share).
"""

from __future__ import annotations

import json
import os
import pickle
import tempfile
import time
from concurrent.futures import FIRST_COMPLETED, BrokenExecutor
from concurrent.futures import wait as _futures_wait
from hashlib import blake2b
from typing import Dict, List, Optional, Protocol, Sequence, Set

from .errors import ExecutionError, TransientFault
from .sharding import (ShardOutcome, ShardSpec, _invalidate_pool,
                       _shard_entry, _submit_to_pool)

#: Environment override pointing executions at a shared spool directory.
BROKER_SPOOL_ENV = "REPRO_BROKER_SPOOL"

#: A census entry older than this many lease periods is a dead worker.
_CENSUS_STALE_LEASES = 2.0


class ShardBroker(Protocol):
    """What the shard supervisor needs from a work-distribution backend.

    ``submit`` enqueues :class:`~repro.execution.sharding.ShardSpec`
    batches and returns one opaque shard id per spec; ``poll`` blocks up
    to ``timeout`` seconds and returns completed
    :class:`~repro.execution.sharding.ShardOutcome` events; ``ack``
    releases a consumed success, ``nack`` withdraws a failed/abandoned
    shard so a resubmission recomputes it; ``heartbeat`` performs
    liveness housekeeping and returns the shard ids whose lease expired
    and were requeued since the last call; ``workers`` reports the
    current worker census as JSON-able dicts.
    """

    name: str

    def submit(self, specs: Sequence[ShardSpec]) -> List[str]: ...

    def poll(self, timeout: Optional[float] = None) -> List[ShardOutcome]: ...

    def ack(self, shard_id: str) -> None: ...

    def nack(self, shard_id: str, cause: str = "") -> None: ...

    def heartbeat(self) -> List[str]: ...

    def workers(self) -> List[dict]: ...


def make_broker(spec, workers: int):
    """Resolve a broker spec: ``None``/``"local"`` → the shared fork pool,
    a path or ``"spool:PATH"`` string → a :class:`FilesystemBroker` on that
    directory, an object already speaking the protocol → itself."""
    if spec is None or spec == "local":
        return LocalProcessBroker(workers)
    if isinstance(spec, (str, os.PathLike)):
        path = os.fspath(spec)
        if path.startswith("spool:"):
            path = path[len("spool:"):]
        return FilesystemBroker(path)
    if hasattr(spec, "submit") and hasattr(spec, "poll"):
        return spec
    raise ExecutionError(
        f"broker must be None, 'local', a spool path, or a ShardBroker, "
        f"got {spec!r}")


# ---------------------------------------------------------------------------
# LocalProcessBroker
# ---------------------------------------------------------------------------


class LocalProcessBroker:
    """The supervised fork pool behind the broker protocol (the default).

    One instance serves one dispatch: it holds the shard-id → future map
    and is not shared between concurrent ``run_sharded`` calls (the pool
    underneath *is* shared — that is the point).  Failure classification
    matches the historical supervisor exactly: ``BrokenExecutor`` retires
    the pool and is retryable, :class:`TransientFault` is retryable,
    anything else is deterministic and propagates.
    """

    name = "local"

    def __init__(self, workers: int):
        self.workers = int(workers)
        self._futures: Dict[str, object] = {}
        self._sequence = 0

    def submit(self, specs: Sequence[ShardSpec]) -> List[str]:
        wrapped = [(spec.directive, spec.fn, spec.payload) for spec in specs]
        try:
            futures = _submit_to_pool(self.workers, _shard_entry, wrapped)
        except BrokenExecutor:
            _invalidate_pool()
            raise
        shard_ids = []
        for future in futures:
            shard_id = f"local-{self._sequence:05d}"
            self._sequence += 1
            self._futures[shard_id] = future
            shard_ids.append(shard_id)
        return shard_ids

    def poll(self, timeout: Optional[float] = None) -> List[ShardOutcome]:
        if not self._futures:
            return []
        done, _ = _futures_wait(set(self._futures.values()), timeout=timeout,
                                return_when=FIRST_COMPLETED)
        outcomes: List[ShardOutcome] = []
        invalidated = False
        for shard_id in sorted(shard_id for shard_id, future
                               in self._futures.items() if future in done):
            future = self._futures.pop(shard_id)
            try:
                value = future.result()
            except BrokenExecutor as error:
                if not invalidated:
                    # A broken pool poisons every later submit: retire it so
                    # the next round lazily rebuilds a healthy one.
                    _invalidate_pool()
                    invalidated = True
                outcomes.append(ShardOutcome(
                    shard_id, ok=False, cause=type(error).__name__,
                    retryable=True, respawned=True))
            except TransientFault as error:
                outcomes.append(ShardOutcome(
                    shard_id, ok=False, cause=f"TransientFault: {error}",
                    retryable=True))
            except BaseException as error:  # deterministic: propagates
                outcomes.append(ShardOutcome(
                    shard_id, ok=False, cause=type(error).__name__,
                    error=error))
            else:
                outcomes.append(ShardOutcome(shard_id, ok=True, value=value))
        return outcomes

    def ack(self, shard_id: str) -> None:
        self._futures.pop(shard_id, None)

    def nack(self, shard_id: str, cause: str = "") -> None:
        future = self._futures.pop(shard_id, None)
        if future is not None:
            future.cancel()
        if cause == "timeout":
            # A timed-out round means a wedged worker; retire the pool so
            # the retry starts against a fresh one.
            _invalidate_pool()

    def heartbeat(self) -> List[str]:
        return []

    def workers(self) -> List[dict]:
        from . import sharding
        pool = sharding._pool
        if pool is None:
            return []
        try:
            processes = dict(pool._processes or {})
        except AttributeError:
            return []
        return [{"worker_id": f"fork-{pid}", "pid": pid,
                 "alive": process.is_alive()}
                for pid, process in sorted(processes.items())]


# ---------------------------------------------------------------------------
# the spool
# ---------------------------------------------------------------------------


def atomic_write_bytes(path: str, data: bytes) -> None:
    """Write-then-rename so a reader never observes a torn file."""
    directory = os.path.dirname(path) or "."
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".tmp-")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.remove(tmp)
        except OSError:
            pass
        raise


class SpoolLayout:
    """Path arithmetic for one spool directory (shared with the workers)."""

    SUBDIRS = ("tasks", "claimed", "leases", "results", "workers")

    def __init__(self, spool):
        self.root = os.fspath(spool)
        self.tasks = os.path.join(self.root, "tasks")
        self.claimed = os.path.join(self.root, "claimed")
        self.leases = os.path.join(self.root, "leases")
        self.results = os.path.join(self.root, "results")
        self.workers = os.path.join(self.root, "workers")
        self.stop_file = os.path.join(self.root, "stop")

    def ensure(self) -> "SpoolLayout":
        for name in self.SUBDIRS:
            os.makedirs(os.path.join(self.root, name), exist_ok=True)
        return self

    def task(self, shard_id: str) -> str:
        return os.path.join(self.tasks, shard_id + ".task")

    def claim(self, shard_id: str) -> str:
        return os.path.join(self.claimed, shard_id + ".task")

    def lease(self, shard_id: str) -> str:
        return os.path.join(self.leases, shard_id + ".json")

    def result(self, digest: str) -> str:
        return os.path.join(self.results, digest + ".result")

    def worker(self, worker_id: str) -> str:
        return os.path.join(self.workers, worker_id + ".json")

    def pending_task_ids(self) -> List[str]:
        try:
            names = os.listdir(self.tasks)
        except FileNotFoundError:
            return []
        return sorted(name[:-len(".task")] for name in names
                      if name.endswith(".task"))

    def lease_expiry(self, shard_id: str) -> Optional[float]:
        try:
            with open(self.lease(shard_id), "r", encoding="utf-8") as handle:
                return float(json.load(handle)["expires"])
        except (OSError, ValueError, KeyError, json.JSONDecodeError):
            return None

    def write_lease(self, shard_id: str, owner: str,
                    lease_seconds: float) -> None:
        atomic_write_bytes(self.lease(shard_id), json.dumps(
            {"owner": owner,
             "expires": time.time() + lease_seconds}).encode("utf-8"))

    def load_envelope(self, path: str) -> dict:
        with open(path, "rb") as handle:
            return pickle.load(handle)

    def write_result(self, digest: str, record: dict) -> None:
        atomic_write_bytes(self.result(digest),
                           pickle.dumps(record,
                                        protocol=pickle.HIGHEST_PROTOCOL))


def result_record(fn, payload) -> dict:
    """Execute one claimed shard body and classify the outcome the same
    way the local pool supervisor does (shared by workers and the
    parent's work-stealing path)."""
    try:
        value = fn(*payload)
    except TransientFault as error:
        return {"ok": False, "cause": f"TransientFault: {error}",
                "retryable": True, "error": error}
    except BaseException as error:  # deterministic: parent re-raises
        return {"ok": False, "cause": type(error).__name__,
                "retryable": False, "error": error}
    return {"ok": True, "value": value}


# ---------------------------------------------------------------------------
# FilesystemBroker
# ---------------------------------------------------------------------------


class FilesystemBroker:
    """A spool-directory work queue for elastic multi-process workers.

    One instance serves one dispatch (like :class:`LocalProcessBroker`);
    many dispatches and many runs may share the same spool — shard ids
    carry a per-dispatch prefix and results are content-named, so runs
    never collide and identical resubmitted work is served warm.

    ``poll`` is where all the distributed housekeeping happens: collect
    result files for outstanding shards, reclaim expired leases (requeue
    the task, stripped of any injected fault directive so a chaos ``kill``
    fires once, not per-victim), and — when no live worker shows up in the
    census — **steal** one pending shard and execute it in-process, so a
    spool with zero attached workers still completes (the parent is the
    worker of last resort).  Set ``steal=False`` to require real workers.
    """

    name = "filesystem"

    def __init__(self, spool, *, lease_seconds: float = 5.0,
                 poll_interval: float = 0.05, steal: bool = True):
        self.layout = SpoolLayout(spool).ensure()
        self.lease_seconds = float(lease_seconds)
        self.poll_interval = float(poll_interval)
        self.steal = bool(steal)
        self.stolen = 0
        self._specs: Dict[str, ShardSpec] = {}
        self._digests: Dict[str, str] = {}
        self._outstanding: Set[str] = set()
        self._expired: List[str] = []
        self._claim_seen: Dict[str, float] = {}
        self._sequence = 0
        self._prefix = f"{os.getpid():08x}-{id(self) & 0xffffff:06x}"

    @property
    def spool(self) -> str:
        return self.layout.root

    # -- protocol ----------------------------------------------------------

    def submit(self, specs: Sequence[ShardSpec]) -> List[str]:
        shard_ids = []
        for spec in specs:
            body = pickle.dumps((spec.fn, spec.payload),
                                protocol=pickle.HIGHEST_PROTOCOL)
            digest = blake2b(body, digest_size=16).hexdigest()
            shard_id = f"{self._prefix}-{self._sequence:05d}-{digest}"
            self._sequence += 1
            self._specs[shard_id] = spec
            self._digests[shard_id] = digest
            self._outstanding.add(shard_id)
            shard_ids.append(shard_id)
            if os.path.exists(self.layout.result(digest)):
                continue  # already computed (warm resume / duplicate shard)
            if os.path.exists(self.layout.task(shard_id)) \
                    or os.path.exists(self.layout.claim(shard_id)):
                continue  # still queued from an earlier round
            self._write_task(shard_id, spec.directive)
        return shard_ids

    def poll(self, timeout: Optional[float] = None) -> List[ShardOutcome]:
        deadline = None if timeout is None \
            else time.monotonic() + max(0.0, timeout)
        while True:
            outcomes = self._collect()
            if outcomes:
                return outcomes
            self._reclaim_expired()
            if self.steal and self._steal_one():
                continue  # the stolen shard's result is ready to collect
            if deadline is not None and time.monotonic() >= deadline:
                return []
            time.sleep(self.poll_interval)

    def ack(self, shard_id: str) -> None:
        # The result file stays: it is the content-named checkpoint a
        # resumed or duplicate run is served from.
        self._forget(shard_id, remove_task=True)

    def nack(self, shard_id: str, cause: str = "") -> None:
        digest = self._digests.get(shard_id)
        if digest is not None:
            # A nacked result is suspect (failed attempt, timed-out round):
            # drop it so a resubmission recomputes instead of re-reading it.
            self._remove(self.layout.result(digest))
        self._forget(shard_id, remove_task=(cause == "abandoned"))

    def heartbeat(self) -> List[str]:
        self._reclaim_expired()
        expired, self._expired = self._expired, []
        return expired

    def workers(self) -> List[dict]:
        census = []
        now = time.time()
        try:
            names = sorted(os.listdir(self.layout.workers))
        except FileNotFoundError:
            return []
        stale = _CENSUS_STALE_LEASES * max(1.0, self.lease_seconds)
        for name in names:
            if not name.endswith(".json"):
                continue
            try:
                with open(os.path.join(self.layout.workers, name), "r",
                          encoding="utf-8") as handle:
                    record = json.load(handle)
            except (OSError, json.JSONDecodeError):
                continue
            record["alive"] = \
                (now - float(record.get("last_seen", 0.0))) <= stale
            census.append(record)
        return census

    # -- internals ---------------------------------------------------------

    def _write_task(self, shard_id: str, directive) -> None:
        spec = self._specs[shard_id]
        envelope = {"shard_id": shard_id, "digest": self._digests[shard_id],
                    "fn": spec.fn, "payload": spec.payload,
                    "directive": directive}
        atomic_write_bytes(self.layout.task(shard_id),
                           pickle.dumps(envelope,
                                        protocol=pickle.HIGHEST_PROTOCOL))

    def _collect(self) -> List[ShardOutcome]:
        outcomes: List[ShardOutcome] = []
        for shard_id in sorted(self._outstanding):
            path = self.layout.result(self._digests[shard_id])
            try:
                with open(path, "rb") as handle:
                    record = pickle.load(handle)
            except FileNotFoundError:
                continue
            except (OSError, pickle.UnpicklingError, EOFError,
                    AttributeError):
                continue  # torn or half-renamed write; next tick re-reads
            if record.get("ok"):
                outcomes.append(ShardOutcome(shard_id, ok=True,
                                             value=record.get("value")))
            else:
                outcomes.append(ShardOutcome(
                    shard_id, ok=False, cause=record.get("cause", ""),
                    retryable=bool(record.get("retryable")),
                    error=record.get("error")))
        return outcomes

    def _reclaim_expired(self) -> None:
        now = time.time()
        for shard_id in sorted(self._outstanding):
            claim = self.layout.claim(shard_id)
            if not os.path.exists(claim):
                self._claim_seen.pop(shard_id, None)
                # Safety net: a shard with no task, no claim and no result
                # (e.g. its files were cleaned by a dead run) is re-spooled
                # from the in-memory spec.
                if not os.path.exists(self.layout.task(shard_id)) \
                        and not os.path.exists(
                            self.layout.result(self._digests[shard_id])):
                    self._write_task(shard_id, None)
                continue
            expiry = self.layout.lease_expiry(shard_id)
            if expiry is None:
                # Claimed but no lease yet: give the claimant one lease
                # period of grace (it writes the lease right after the
                # rename wins) before declaring it dead.
                first_seen = self._claim_seen.setdefault(shard_id, now)
                if now - first_seen <= self.lease_seconds:
                    continue
            elif expiry > now:
                self._claim_seen.pop(shard_id, None)
                continue
            # Dead claimant: reclaim.  The requeued envelope drops any
            # injected fault directive — a chaos kill fires once, and the
            # recovery path must not re-kill every successive claimant.
            self._claim_seen.pop(shard_id, None)
            self._remove(self.layout.lease(shard_id))
            self._remove(claim)
            if not os.path.exists(
                    self.layout.result(self._digests[shard_id])):
                self._write_task(shard_id, None)
            self._expired.append(shard_id)

    def _steal_one(self) -> bool:
        """Claim and execute one pending shard in-process.

        Only when the census shows no live worker: with real workers
        attached the parent stays a pure supervisor, without any the spool
        still drains (and a worker joining mid-run simply starts winning
        claims again).  Stolen shards run their raw payload — never an
        injected kill directive, which must not execute in the caller.
        """
        if any(worker.get("alive") for worker in self.workers()):
            return False
        for shard_id in sorted(self._outstanding):
            task = self.layout.task(shard_id)
            if not os.path.exists(task):
                continue
            try:
                os.rename(task, self.layout.claim(shard_id))
            except OSError:
                continue  # a worker won the claim after all
            spec = self._specs[shard_id]
            record = result_record(spec.fn, spec.payload)
            self.layout.write_result(self._digests[shard_id], record)
            self._remove(self.layout.claim(shard_id))
            self.stolen += 1
            return True
        return False

    def _forget(self, shard_id: str, remove_task: bool) -> None:
        self._outstanding.discard(shard_id)
        self._claim_seen.pop(shard_id, None)
        if remove_task:
            self._remove(self.layout.task(shard_id))
            self._remove(self.layout.claim(shard_id))
        self._remove(self.layout.lease(shard_id))

    @staticmethod
    def _remove(path: str) -> None:
        try:
            os.remove(path)
        except OSError:
            pass
