"""The Solovay–Kitaev recursion for single-qubit Clifford+T synthesis.

The Solovay–Kitaev theorem guarantees that any finite universal gate set can
approximate an arbitrary single-qubit unitary to precision ε with a word of
length ``O(log^c(1/ε))``.  This module implements the textbook recursion
(Dawson & Nielsen 2005):

1. a base approximation from the Clifford+T ε-net
   (:func:`repro.synthesis.gridsynth.build_epsilon_net`);
2. the *balanced group commutator* decomposition ``Δ = V W V† W†`` of the
   residual rotation Δ, realized with rotations about the x̂ and ŷ axes;
3. recursive refinement of V and W, squaring the residual error each level
   (up to constants).

The recursion is exact group theory; the achievable precision on a given run
is bounded by the quality of the base net, which is why
:func:`repro.synthesis.gridsynth.approximate_rz` records whether its output
is explicit or falls back to the Ross–Selinger cost model.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Tuple

import numpy as np

from .gridsynth import EpsilonNet, build_epsilon_net
from .verification import invert_sequence, operator_distance, sequence_unitary


def _to_su2(unitary: np.ndarray) -> np.ndarray:
    """Rescale a 2×2 unitary to determinant +1 (SU(2))."""
    determinant = np.linalg.det(unitary)
    return unitary / np.sqrt(determinant)


def bloch_axis_angle(unitary: np.ndarray) -> Tuple[np.ndarray, float]:
    """Rotation axis (unit vector) and angle of an SU(2) element.

    ``U = cos(θ/2)·I − i·sin(θ/2)·(n̂ · σ)``.
    """
    su2 = _to_su2(np.asarray(unitary, dtype=complex))
    cos_half = np.clip(su2[0, 0].real + su2[1, 1].real, -2.0, 2.0) / 2.0
    angle = 2.0 * math.acos(np.clip(cos_half, -1.0, 1.0))
    sin_half = math.sin(angle / 2.0)
    if abs(sin_half) < 1e-12:
        return np.array([0.0, 0.0, 1.0]), 0.0
    nx = -su2[0, 1].imag / sin_half
    ny = -su2[0, 1].real / sin_half
    nz = -su2[0, 0].imag / sin_half
    axis = np.array([nx, ny, nz], dtype=float)
    norm = np.linalg.norm(axis)
    if norm < 1e-12:
        return np.array([0.0, 0.0, 1.0]), float(angle)
    return axis / norm, float(angle)


def rotation_matrix(axis: Sequence[float], angle: float) -> np.ndarray:
    """SU(2) rotation by ``angle`` about ``axis``."""
    axis = np.asarray(axis, dtype=float)
    axis = axis / np.linalg.norm(axis)
    pauli_x = np.array([[0, 1], [1, 0]], dtype=complex)
    pauli_y = np.array([[0, -1j], [1j, 0]], dtype=complex)
    pauli_z = np.array([[1, 0], [0, -1]], dtype=complex)
    generator = axis[0] * pauli_x + axis[1] * pauli_y + axis[2] * pauli_z
    return (math.cos(angle / 2.0) * np.eye(2, dtype=complex)
            - 1.0j * math.sin(angle / 2.0) * generator)


def _similarity_transform(from_axis: np.ndarray,
                          to_axis: np.ndarray) -> np.ndarray:
    """An SU(2) element S with ``S · R(from_axis) · S† = R(to_axis)``."""
    from_axis = from_axis / np.linalg.norm(from_axis)
    to_axis = to_axis / np.linalg.norm(to_axis)
    cross = np.cross(from_axis, to_axis)
    dot = float(np.clip(np.dot(from_axis, to_axis), -1.0, 1.0))
    if np.linalg.norm(cross) < 1e-12:
        if dot > 0:
            return np.eye(2, dtype=complex)
        # Antiparallel axes: rotate by π about any perpendicular axis.
        perpendicular = np.cross(from_axis, np.array([1.0, 0.0, 0.0]))
        if np.linalg.norm(perpendicular) < 1e-12:
            perpendicular = np.cross(from_axis, np.array([0.0, 1.0, 0.0]))
        return rotation_matrix(perpendicular, math.pi)
    angle = math.acos(dot)
    return rotation_matrix(cross, angle)


def group_commutator_decompose(unitary: np.ndarray
                               ) -> Tuple[np.ndarray, np.ndarray]:
    """Balanced group-commutator factors V, W with ``U ≈ V W V† W†``.

    For a rotation by θ the factors are rotations by φ about x̂ and ŷ where
    ``sin(θ/2) = 2 sin²(φ/2) √(1 − sin⁴(φ/2))``, conjugated so the commutator
    axis lines up with U's axis.  The construction is exact (up to floating
    point) for any single-qubit unitary.
    """
    axis, theta = bloch_axis_angle(unitary)
    if abs(theta) < 1e-14:
        identity = np.eye(2, dtype=complex)
        return identity, identity
    sin_theta_half = math.sin(theta / 2.0)
    # Solve sin(θ/2) = 2 s² √(1 − s⁴) for s = sin(φ/2).
    s_squared = math.sqrt(max(0.0, (1.0 - math.sqrt(max(0.0, 1.0 - sin_theta_half ** 2))) / 2.0))
    phi = 2.0 * math.asin(math.sqrt(min(1.0, s_squared)))
    v = rotation_matrix([1.0, 0.0, 0.0], phi)
    w = rotation_matrix([0.0, 1.0, 0.0], phi)
    commutator = v @ w @ v.conj().T @ w.conj().T
    commutator_axis, _ = bloch_axis_angle(commutator)
    similarity = _similarity_transform(commutator_axis, axis)
    v_aligned = similarity @ v @ similarity.conj().T
    w_aligned = similarity @ w @ similarity.conj().T
    return v_aligned, w_aligned


class SolovayKitaevSynthesizer:
    """Recursive Solovay–Kitaev synthesis over a Clifford+T ε-net."""

    def __init__(self, net: Optional[EpsilonNet] = None,
                 net_t_count: int = 5):
        self._net = net if net is not None else build_epsilon_net(net_t_count)

    @property
    def net(self) -> EpsilonNet:
        return self._net

    def basic_approximation(self, target: np.ndarray) -> Tuple[str, ...]:
        """The ε-net word closest to ``target`` (recursion depth 0)."""
        point, _ = self._net.nearest(np.asarray(target, dtype=complex))
        return point.word

    def synthesize(self, target: np.ndarray, depth: int = 2) -> Tuple[str, ...]:
        """Synthesize ``target`` with ``depth`` levels of SK recursion."""
        target = np.asarray(target, dtype=complex)
        if target.shape != (2, 2):
            raise ValueError("SolovayKitaevSynthesizer works on 2×2 unitaries")
        if depth < 0:
            raise ValueError("depth must be non-negative")
        return self._synthesize(target, depth)

    def _synthesize(self, target: np.ndarray, depth: int) -> Tuple[str, ...]:
        if depth == 0:
            return self.basic_approximation(target)
        previous = self._synthesize(target, depth - 1)
        previous_unitary = sequence_unitary(previous)
        residual = target @ previous_unitary.conj().T
        v, w = group_commutator_decompose(residual)
        v_word = self._synthesize(v, depth - 1)
        w_word = self._synthesize(w, depth - 1)
        refined = (previous + invert_sequence(w_word) + invert_sequence(v_word)
                   + w_word + v_word)
        # Guard against the (rare) regression where the refinement is worse
        # than the previous level — keep the better word.
        if (operator_distance(sequence_unitary(refined), target)
                <= operator_distance(previous_unitary, target)):
            return refined
        return previous

    def synthesis_error(self, target: np.ndarray, depth: int = 2) -> float:
        """Distance between the synthesized word and ``target``."""
        word = self.synthesize(target, depth)
        return operator_distance(sequence_unitary(word), target)
