"""Single-qubit gate synthesis into the Clifford+T gate set.

The ``qec-conventional`` baseline (paper Secs. 2.3–2.5) decomposes every
``Rz(θ)`` rotation of the VQA ansatz into a long Clifford+T word using
Gridsynth-style synthesis.  :mod:`repro.qec.clifford_t` models the *cost* of
that synthesis (T-count and depth inflation versus precision); this package
implements the synthesis itself so the repository can generate, verify and
ablate actual Clifford+T sequences:

* :mod:`repro.synthesis.clifford_group` — the 24-element single-qubit
  Clifford group, exact decompositions into {H, S} words, and nearest-Clifford
  projection;
* :mod:`repro.synthesis.verification` — phase-invariant distance metrics and
  sequence verification utilities;
* :mod:`repro.synthesis.gridsynth` — breadth-first ε-net search over
  Clifford+T words (a dependency-free stand-in for Ross–Selinger Gridsynth)
  with the paper's T-count scaling model as the asymptotic fallback;
* :mod:`repro.synthesis.solovay_kitaev` — the Solovay–Kitaev recursion for
  refining an ε-net approximation to arbitrary precision.
"""

from .clifford_group import (CLIFFORD_WORDS, CliffordElement,
                             clifford_group_elements, closest_clifford,
                             is_clifford_unitary)
from .gridsynth import (EpsilonNet, GridsynthResult, approximate_rz,
                        build_epsilon_net, sequence_to_circuit,
                        t_count_of_sequence)
from .solovay_kitaev import SolovayKitaevSynthesizer, group_commutator_decompose
from .verification import (operator_distance, process_fidelity,
                           sequence_unitary, verify_sequence)

__all__ = [
    "CLIFFORD_WORDS",
    "CliffordElement",
    "EpsilonNet",
    "GridsynthResult",
    "SolovayKitaevSynthesizer",
    "approximate_rz",
    "build_epsilon_net",
    "clifford_group_elements",
    "closest_clifford",
    "group_commutator_decompose",
    "is_clifford_unitary",
    "operator_distance",
    "process_fidelity",
    "sequence_to_circuit",
    "sequence_unitary",
    "t_count_of_sequence",
    "verify_sequence",
]
