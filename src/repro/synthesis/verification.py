"""Distance metrics and sequence verification for single-qubit synthesis.

All metrics are *global-phase invariant*: synthesized Clifford+T words only
ever match the target rotation up to a phase, and that phase is irrelevant
for circuit execution.
"""

from __future__ import annotations

import math
from typing import Dict, Sequence, Tuple

import numpy as np


#: Matrices of the single-qubit gates synthesis sequences are built from.
_GATE_MATRICES: Dict[str, np.ndarray] = {
    "i": np.eye(2, dtype=complex),
    "h": np.array([[1, 1], [1, -1]], dtype=complex) / math.sqrt(2),
    "s": np.diag([1.0, 1.0j]),
    "sdg": np.diag([1.0, -1.0j]),
    "t": np.diag([1.0, np.exp(1.0j * math.pi / 4)]),
    "tdg": np.diag([1.0, np.exp(-1.0j * math.pi / 4)]),
    "x": np.array([[0, 1], [1, 0]], dtype=complex),
    "y": np.array([[0, -1.0j], [1.0j, 0]], dtype=complex),
    "z": np.diag([1.0, -1.0]),
    "sx": 0.5 * np.array([[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]], dtype=complex),
}

#: Gate names whose inverse is themselves / their partner.
_INVERSES = {"h": "h", "x": "x", "y": "y", "z": "z", "i": "i",
             "s": "sdg", "sdg": "s", "t": "tdg", "tdg": "t"}


def gate_matrix(name: str) -> np.ndarray:
    """The 2×2 matrix of a named single-qubit synthesis gate."""
    key = name.lower()
    if key not in _GATE_MATRICES:
        raise ValueError(f"unknown synthesis gate {name!r}; known gates: "
                         f"{sorted(_GATE_MATRICES)}")
    return _GATE_MATRICES[key]


def sequence_unitary(sequence: Sequence[str]) -> np.ndarray:
    """Unitary of a gate-name word, applied left-to-right in circuit order.

    ``sequence_unitary(["h", "t"])`` is the unitary of a circuit that applies
    H first and then T, i.e. the matrix product ``T · H``.
    """
    unitary = np.eye(2, dtype=complex)
    for name in sequence:
        unitary = gate_matrix(name) @ unitary
    return unitary


def invert_sequence(sequence: Sequence[str]) -> Tuple[str, ...]:
    """The gate word implementing the inverse unitary."""
    inverted = []
    for name in reversed(list(sequence)):
        key = name.lower()
        if key not in _INVERSES:
            raise ValueError(f"gate {name!r} has no registered inverse")
        inverted.append(_INVERSES[key])
    return tuple(inverted)


def operator_distance(actual: np.ndarray, target: np.ndarray) -> float:
    """Phase-invariant operator-norm distance ``min_φ ‖actual − e^{iφ} target‖``.

    This is the metric the Solovay–Kitaev analysis is stated in; for 2×2
    unitaries the optimal phase is the phase of ``tr(target† actual)``.
    """
    actual = np.asarray(actual, dtype=complex)
    target = np.asarray(target, dtype=complex)
    overlap = np.trace(target.conj().T @ actual)
    if abs(overlap) < 1e-15:
        phase = 1.0
    else:
        phase = overlap / abs(overlap)
    difference = actual - phase * target
    return float(np.linalg.norm(difference, ord=2))


def process_fidelity(actual: np.ndarray, target: np.ndarray) -> float:
    """Average-gate-fidelity-style overlap ``|tr(target† actual)|² / d²``."""
    actual = np.asarray(actual, dtype=complex)
    target = np.asarray(target, dtype=complex)
    dimension = actual.shape[0]
    overlap = np.trace(target.conj().T @ actual)
    return float(abs(overlap) ** 2 / dimension ** 2)


def rz_unitary(theta: float) -> np.ndarray:
    """The target ``Rz(θ) = diag(e^{−iθ/2}, e^{iθ/2})``."""
    return np.diag([np.exp(-0.5j * theta), np.exp(0.5j * theta)])


def verify_sequence(sequence: Sequence[str], target: np.ndarray,
                    tolerance: float) -> bool:
    """Whether the word implements ``target`` to within ``tolerance``."""
    return operator_distance(sequence_unitary(sequence), target) <= tolerance
