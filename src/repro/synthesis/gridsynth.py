"""ε-net search synthesis of ``Rz(θ)`` into Clifford+T words.

Ross–Selinger Gridsynth performs number-theoretic synthesis over the ring
ℤ[1/√2, i]; it is not available offline, so this module provides a
dependency-free stand-in with the same interface contract:

* :func:`build_epsilon_net` — breadth-first enumeration of distinct Clifford+T
  unitaries by T-count, giving an ε-net over SU(2) whose resolution improves
  as the T-count budget grows;
* :func:`approximate_rz` — nearest-net-point synthesis of an ``Rz(θ)`` target,
  optionally refined by the Solovay–Kitaev recursion
  (:mod:`repro.synthesis.solovay_kitaev`) when the net alone cannot reach the
  requested precision;
* the Ross–Selinger *cost model* (``T ≈ 3·log2(1/ε)``) from
  :mod:`repro.qec.clifford_t` remains the source of truth for resource
  estimation at precisions the explicit search cannot reach — the
  :class:`GridsynthResult` records whether its sequence is explicit or
  model-extrapolated.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..qec.clifford_t import t_count_for_precision
from .clifford_group import clifford_group_elements
from .verification import (gate_matrix, operator_distance, rz_unitary,
                           sequence_unitary)


def t_count_of_sequence(sequence: Sequence[str]) -> int:
    """Number of T/T† gates in a synthesis word."""
    return sum(1 for name in sequence if name.lower() in ("t", "tdg"))


def sequence_to_circuit(sequence: Sequence[str], qubit: int = 0,
                        num_qubits: int = 1) -> QuantumCircuit:
    """Materialize a synthesis word as a circuit acting on ``qubit``."""
    circuit = QuantumCircuit(max(num_qubits, qubit + 1), name="synthesized_rz")
    from ..circuits.gates import Gate
    for name in sequence:
        circuit.append(Gate(name.lower()), (qubit,))
    return circuit


@dataclass(frozen=True)
class NetPoint:
    """One entry of the ε-net: a canonical word and its unitary."""

    word: Tuple[str, ...]
    matrix: np.ndarray
    t_count: int


class EpsilonNet:
    """A set of distinct Clifford+T unitaries organized by T-count."""

    def __init__(self, points: List[NetPoint], max_t_count: int):
        self._points = points
        self._max_t_count = max_t_count
        self._matrices = np.stack([point.matrix for point in points])
        self._t_counts = np.array([point.t_count for point in points])

    @property
    def max_t_count(self) -> int:
        return self._max_t_count

    @property
    def size(self) -> int:
        return len(self._points)

    def points(self) -> List[NetPoint]:
        return list(self._points)

    def nearest(self, target: np.ndarray,
                t_budget: Optional[int] = None) -> Tuple[NetPoint, float]:
        """The net point closest to ``target`` within an optional T budget.

        The search maximizes the phase-optimal overlap ``|tr(target† · M)|``
        (equivalent to minimizing the phase-invariant Frobenius distance),
        which vectorizes over the whole net; the returned distance is the
        exact operator-norm distance of the selected point.
        """
        target = np.asarray(target, dtype=complex)
        overlaps = np.abs(np.einsum("ij,nij->n", target.conj(), self._matrices))
        if t_budget is not None:
            overlaps = np.where(self._t_counts <= t_budget, overlaps, -np.inf)
        if not np.isfinite(overlaps).any():
            raise ValueError("no net point satisfies the T budget")
        index = int(np.argmax(overlaps))
        point = self._points[index]
        return point, operator_distance(point.matrix, target)

    def resolution(self, num_samples: int = 64) -> float:
        """Worst-case distance from sampled Rz targets to the net (diagnostic)."""
        worst = 0.0
        for theta in np.linspace(0.0, 2.0 * math.pi, num_samples, endpoint=False):
            _, distance = self.nearest(rz_unitary(float(theta)))
            worst = max(worst, distance)
        return worst


def _canonical_key(matrix: np.ndarray) -> Tuple[int, ...]:
    flat = matrix.ravel()
    pivot = next(value for value in flat if abs(value) > 1e-8)
    normalized = matrix * (abs(pivot) / pivot)
    real = np.round(normalized.real * 1e7).astype(np.int64)
    imag = np.round(normalized.imag * 1e7).astype(np.int64)
    return tuple(int(v) for part in (real, imag) for v in part.ravel())


@lru_cache(maxsize=8)
def build_epsilon_net(max_t_count: int = 6,
                      max_points: int = 20_000) -> EpsilonNet:
    """Enumerate distinct Clifford+T unitaries with at most ``max_t_count`` Ts.

    Every element of the Clifford+T group has a canonical form
    ``C_0 · T · C_1 · T · … · T · C_k`` with interior Cliffords restricted to
    coset representatives; this enumeration explores words of the form
    (Clifford) (T (H|SH|I))^k and de-duplicates by matrix, which covers the
    canonical forms while staying dependency-free.  The net is cached per
    ``(max_t_count, max_points)``.
    """
    clifford_elements = clifford_group_elements()
    points: Dict[Tuple[int, ...], NetPoint] = {}
    for element in clifford_elements:
        key = _canonical_key(element.matrix)
        if key not in points:
            points[key] = NetPoint(word=element.word, matrix=element.matrix,
                                   t_count=0)
    # Interior connectives between successive T gates.
    connectives: Tuple[Tuple[str, ...], ...] = ((), ("h",), ("s", "h"))
    frontier: List[NetPoint] = list(points.values())
    for t_layer in range(1, max_t_count + 1):
        next_frontier: List[NetPoint] = []
        for point in frontier:
            for connective in connectives:
                word = point.word + ("t",) + connective
                matrix = sequence_unitary(connective) @ gate_matrix("t") @ point.matrix
                key = _canonical_key(matrix)
                if key in points:
                    continue
                new_point = NetPoint(word=word, matrix=matrix, t_count=t_layer)
                points[key] = new_point
                next_frontier.append(new_point)
                if len(points) >= max_points:
                    return EpsilonNet(list(points.values()), t_layer)
        frontier = next_frontier
    return EpsilonNet(list(points.values()), max_t_count)


@dataclass(frozen=True)
class GridsynthResult:
    """Outcome of synthesizing a single ``Rz(θ)`` rotation."""

    theta: float
    target_error: float
    sequence: Tuple[str, ...]
    achieved_error: float
    t_count: int
    explicit: bool

    @property
    def meets_target(self) -> bool:
        return self.achieved_error <= self.target_error

    @property
    def gate_count(self) -> int:
        return len(self.sequence)


def approximate_rz(theta: float, target_error: float = 1e-2,
                   max_net_t_count: int = 6,
                   use_solovay_kitaev: bool = True,
                   max_sk_depth: int = 3) -> GridsynthResult:
    """Synthesize ``Rz(θ)`` as a Clifford+T word with error ≤ ``target_error``.

    Strategy: look up the nearest ε-net point; if it misses the target
    precision and ``use_solovay_kitaev`` is set, refine with the
    Solovay–Kitaev recursion.  If the explicit search still cannot reach the
    requested precision (e.g. ``target_error = 1e−6``, beyond a laptop-scale
    net), the result falls back to the Ross–Selinger T-count *model* with
    ``explicit=False`` — resource estimation stays correct while the sequence
    reflects the best explicit approximation found.
    """
    if target_error <= 0:
        raise ValueError("target_error must be positive")
    target = rz_unitary(float(theta))
    net = build_epsilon_net(max_net_t_count)
    best_point, best_distance = net.nearest(target)
    sequence: Tuple[str, ...] = best_point.word
    achieved = best_distance

    if achieved > target_error and use_solovay_kitaev:
        from .solovay_kitaev import SolovayKitaevSynthesizer
        synthesizer = SolovayKitaevSynthesizer(net)
        for depth in range(1, max_sk_depth + 1):
            candidate = synthesizer.synthesize(target, depth)
            candidate_error = operator_distance(
                sequence_unitary(candidate), target)
            if candidate_error < achieved:
                sequence = tuple(candidate)
                achieved = candidate_error
            if achieved <= target_error:
                break

    explicit = achieved <= target_error
    t_count = (t_count_of_sequence(sequence) if explicit
               else max(t_count_for_precision(target_error),
                        t_count_of_sequence(sequence)))
    return GridsynthResult(theta=float(theta), target_error=float(target_error),
                           sequence=tuple(sequence), achieved_error=float(achieved),
                           t_count=int(t_count), explicit=explicit)


def synthesize_circuit_rotations(circuit: QuantumCircuit,
                                 target_error: float = 1e-2,
                                 max_net_t_count: int = 5
                                 ) -> Tuple[QuantumCircuit, List[GridsynthResult]]:
    """Replace every bound ``rz``/``rx``/``ry`` rotation by a Clifford+T word.

    ``rx`` and ``ry`` are conjugated into the z-axis with the usual H / S
    sandwiches before synthesis.  Returns the synthesized circuit and the
    per-rotation synthesis reports (used by the qec-conventional cost
    benches).
    """
    from ..circuits.gates import Gate

    synthesized = QuantumCircuit(circuit.num_qubits,
                                 name=f"{circuit.name}_clifford_t")
    reports: List[GridsynthResult] = []

    def emit_word(word: Sequence[str], qubit: int) -> None:
        for name in word:
            synthesized.append(Gate(name.lower()), (qubit,))

    for instruction in circuit.instructions:
        name = instruction.name
        if name in ("rz", "rx", "ry") and not instruction.gate.is_parameterized:
            theta = float(instruction.gate.bound_params()[0])
            qubit = instruction.qubits[0]
            report = approximate_rz(theta, target_error, max_net_t_count)
            reports.append(report)
            if name == "rx":
                synthesized.h(qubit)
            elif name == "ry":
                # Ry(θ) = S · H · Rz(θ) · H · S† as a matrix product, i.e. the
                # circuit applies S†, H, Rz(θ), H, S in that order.
                synthesized.sdg(qubit)
                synthesized.h(qubit)
            emit_word(report.sequence, qubit)
            if name == "rx":
                synthesized.h(qubit)
            elif name == "ry":
                synthesized.h(qubit)
                synthesized.s(qubit)
            continue
        synthesized.append_instruction(instruction)
    return synthesized, reports
