"""Magic-state injection of arbitrary Rz(θ) states (Lao–Criger) and the
repeat-until-success statistics behind patch shuffling (paper Secs. 2.6, 3.1
and the Sec. 9 proof).

Key quantities:

* the injected-state error rate ``23·p/30`` for CNOT error rate ``p`` (with
  initialization and single-qubit error rates ``p/10``), i.e. ≈0.767e-3 at the
  EFT operating point — the paper's "0.76e-3" Rz error;
* the post-selection pass probability of one injection attempt,
  ``p_pass = 1 − 2p(1−p)(d²−1)`` (Sec. 9, Eq. 4);
* the geometric repeat-until-success statistics of injection
  (:class:`InjectionStatistics`) and of magic-state *consumption*
  (:func:`expected_consumptions_per_rotation` = 2), and
* the Sec. 9 condition under which a fresh compensatory state can always be
  injected while the previous one is being consumed (patch shuffling never
  stalls): ``E[X] + σ[X] ≤ 2d`` ⇔ ``p ≤ α(d)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple

from ..qec.surface_code import EFT_CODE_DISTANCE, EFT_PHYSICAL_ERROR_RATE

#: Lao–Criger injected Rz(θ) state error coefficient: error = 23·p/30.
INJECTION_ERROR_COEFFICIENT = 23.0 / 30.0

#: Probability that one consumption attempt applies the intended rotation
#: (measurement outcome 0 in Fig. 2(C)); the failure applies Rz(−θ) and is
#: compensated by a 2θ retry.
CONSUMPTION_SUCCESS_PROBABILITY = 0.5

#: Approximate Pauli bias of the injected-state error (Z-biased, following the
#: biased noise model of Lao & Criger Fig. 6).
INJECTION_ERROR_BIAS = {"Z": 0.6, "X": 0.2, "Y": 0.2}


def injection_error_rate(physical_error_rate: float = EFT_PHYSICAL_ERROR_RATE) -> float:
    """Error rate of one injected Rz(θ) magic state: ``23·p/30``.

    The paper's headline analytic result (Sec. 4.2): preparing an arbitrary
    Rz magic state by post-selected injection inherits an error linear in the
    physical rate ``p``, with the 23/30 coefficient from averaging the
    post-selection survival over injection locations.  This is the quantity
    that makes partial QEC's per-rotation cost competitive with synthesis.
    Example::

        rate = injection_error_rate(1e-4)   # ≈ 7.67e-5 per rotation
    """
    if physical_error_rate < 0:
        raise ValueError("physical error rate must be non-negative")
    return INJECTION_ERROR_COEFFICIENT * physical_error_rate


def injection_error_pauli_probabilities(
        physical_error_rate: float = EFT_PHYSICAL_ERROR_RATE) -> Dict[str, float]:
    """Biased Pauli decomposition of the injected-state error."""
    total = injection_error_rate(physical_error_rate)
    probabilities = {pauli: bias * total
                     for pauli, bias in INJECTION_ERROR_BIAS.items()}
    probabilities["I"] = 1.0 - total
    return probabilities


def expected_consumptions_per_rotation(
        success_probability: float = CONSUMPTION_SUCCESS_PROBABILITY) -> float:
    """E[g]: expected number of magic states consumed per logical rotation.

    The consumption circuit (Fig. 2(C)) succeeds with probability 1/2; the
    repeat-until-success protocol therefore consumes a geometric number of
    states with mean 1/p_succ = 2.
    """
    if not 0.0 < success_probability <= 1.0:
        raise ValueError("success probability must lie in (0, 1]")
    return 1.0 / success_probability


def effective_rotation_error(physical_error_rate: float = EFT_PHYSICAL_ERROR_RATE,
                             success_probability: float = CONSUMPTION_SUCCESS_PROBABILITY
                             ) -> float:
    """Total injected error accumulated by one *logical* rotation.

    Every consumed state (E[g] of them in expectation) carries an independent
    injected-state error, so the per-logical-rotation error is
    ``E[g] · 23p/30``.
    """
    return expected_consumptions_per_rotation(success_probability) \
        * injection_error_rate(physical_error_rate)


def stall_free_probability(num_backup_states: int,
                           success_probability: float = CONSUMPTION_SUCCESS_PROBABILITY
                           ) -> float:
    """Probability that ``num_backup_states`` pre-injected states suffice.

    With b pre-prepared compensatory states the rotation stalls only when all
    b consumptions fail, which happens with probability (1−p_succ)^b; the
    paper's example: b = 4 ⇒ 93.75% stall-free.
    """
    if num_backup_states < 0:
        raise ValueError("number of backup states must be non-negative")
    return 1.0 - (1.0 - success_probability) ** num_backup_states


@dataclass(frozen=True)
class InjectionStatistics:
    """Sec. 9 statistics of the injection post-selection protocol."""

    physical_error_rate: float = EFT_PHYSICAL_ERROR_RATE
    distance: int = EFT_CODE_DISTANCE

    def __post_init__(self):
        if self.distance < 3 or self.distance % 2 == 0:
            raise ValueError("distance must be an odd integer ≥ 3")
        if not 0.0 <= self.physical_error_rate < 0.5:
            raise ValueError("physical error rate must lie in [0, 0.5)")

    # -- Sec. 9 quantities -------------------------------------------------------
    @property
    def pass_probability(self) -> float:
        """p_pass = 1 − 2p(1−p)(d²−1)   (Eq. 4)."""
        p = self.physical_error_rate
        return 1.0 - 2.0 * p * (1.0 - p) * (self.distance ** 2 - 1)

    @property
    def expected_attempts(self) -> float:
        """E[X] = 1 / p_pass for the geometric number of injection attempts."""
        return 1.0 / self.pass_probability

    @property
    def attempts_std(self) -> float:
        """σ[X] = sqrt(1 − p_pass) / p_pass."""
        p_pass = self.pass_probability
        return math.sqrt(1.0 - p_pass) / p_pass

    @property
    def high_probability_attempts(self) -> float:
        """N_trials = E[X] + σ[X] (the paper evaluates this to 1.959 at d=11)."""
        return self.expected_attempts + self.attempts_std

    @property
    def consumption_cycles(self) -> int:
        """Rounds needed to consume a state via lattice surgery: 2d."""
        return 2 * self.distance

    def probability_within_high_probability_bound(self) -> float:
        """P[X ≤ E[X] + σ[X]] = 1 − (1 − p_pass)^(E+σ) (paper: 0.9391)."""
        p_pass = self.pass_probability
        return 1.0 - (1.0 - p_pass) ** self.high_probability_attempts

    # -- the shuffling feasibility condition -----------------------------------------
    def shuffling_thresholds(self) -> Tuple[float, float]:
        """Roots (α, β) of p² − p + c ≥ 0 with c = (2d−1)²/(8d²(d²−1)).

        Patch shuffling keeps up with consumption whenever the physical error
        rate lies below α (or above β, which is unphysical); at d = 11 the
        paper finds α = 0.003811.
        """
        d = self.distance
        c = (4 * d * d - 4 * d + 1) / (8.0 * d * d * (d * d - 1))
        discriminant = 1.0 - 4.0 * c
        if discriminant < 0:
            # No real solution: shuffling can never keep up at this distance.
            return (0.0, 0.0)
        root = math.sqrt(discriminant)
        return ((1.0 - root) / 2.0, (1.0 + root) / 2.0)

    def supports_stall_free_shuffling(self) -> bool:
        """True when E[X] + σ[X] ≤ 2d (injection finishes within a consumption)."""
        alpha, beta = self.shuffling_thresholds()
        p = self.physical_error_rate
        return p <= alpha or p >= beta

    def summary(self) -> Dict[str, float]:
        return {
            "pass_probability": self.pass_probability,
            "expected_attempts": self.expected_attempts,
            "attempts_std": self.attempts_std,
            "high_probability_attempts": self.high_probability_attempts,
            "high_probability_mass": self.probability_within_high_probability_bound(),
            "consumption_cycles": float(self.consumption_cycles),
            "alpha_threshold": self.shuffling_thresholds()[0],
            "injected_state_error": injection_error_rate(self.physical_error_rate),
        }
