"""Analytic circuit-fidelity estimation per execution regime.

The paper's architecture-level comparisons (Figs. 4, 5, 6 and 11) evaluate
circuit success probability as the product of per-error-location survival
probabilities,

    F = Π_locations (1 − p_location),

with error locations counted from the scheduled circuit: entangling gates,
logical rotations (injected states or synthesized T gates), single-qubit
Cliffords, measurements, and memory (patch-cycles of idling, including
stalls while waiting for T states).  This module implements that model for
all four regimes; the NISQ and pQEC estimates can be cross-checked against
the circuit-level simulators (see the test suite).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..ansatz.base import Ansatz
from ..architecture.layouts import make_layout
from ..architecture.scheduler import schedule_on_layout
from ..circuits.circuit import QuantumCircuit
from ..circuits.transpile import gate_census
from ..qec.clifford_t import t_count_for_precision
from ..qec.surface_code import EFT_CODE_DISTANCE
from .regimes import (ExecutionRegime, NISQRegime, PQECRegime,
                      QECConventionalRegime, QECCultivationRegime)
from .resources import (EFTDevice, MagicStateProvision, provision_cultivation,
                        provision_distillation)


@dataclass(frozen=True)
class CircuitProfile:
    """Gate and schedule accounting of a circuit, independent of the regime."""

    num_qubits: int
    cnot_count: int
    rotation_count: int
    single_qubit_clifford_count: int
    measurement_count: int
    execution_cycles: float

    @classmethod
    def from_ansatz(cls, ansatz: Ansatz, layout_name: str = "proposed",
                    distance: int = EFT_CODE_DISTANCE,
                    include_measurement: bool = True) -> "CircuitProfile":
        """Profile an ansatz using its count formulas and the layout scheduler."""
        try:
            layout = make_layout(layout_name, ansatz.num_qubits)
            schedule = schedule_on_layout(ansatz, layout, distance=distance,
                                          include_measurement=include_measurement)
            cycles = schedule.cycles
        except ValueError:
            # Sizes the proposed layout cannot host exactly fall back to a
            # depth-proportional cycle estimate.
            cycles = float(6 * ansatz.num_qubits * ansatz.depth)
        return cls(
            num_qubits=ansatz.num_qubits,
            cnot_count=ansatz.cnot_count(),
            rotation_count=ansatz.rotation_count(),
            single_qubit_clifford_count=0,
            measurement_count=ansatz.num_qubits if include_measurement else 0,
            execution_cycles=cycles,
        )

    @classmethod
    def from_circuit(cls, circuit: QuantumCircuit,
                     execution_cycles: Optional[float] = None) -> "CircuitProfile":
        """Profile an explicit circuit (bound or parameterized)."""
        census = gate_census(circuit)
        cycles = execution_cycles if execution_cycles is not None \
            else float(max(census.depth, 1))
        return cls(
            num_qubits=census.num_qubits,
            cnot_count=census.cnot,
            rotation_count=census.rz,
            single_qubit_clifford_count=census.single_qubit_clifford,
            measurement_count=census.measure,
            execution_cycles=cycles,
        )


@dataclass(frozen=True)
class FidelityBreakdown:
    """Per-source survival probabilities and the resulting circuit fidelity."""

    regime: str
    feasible: bool
    entangling_survival: float
    rotation_survival: float
    clifford_survival: float
    measurement_survival: float
    memory_survival: float

    @property
    def fidelity(self) -> float:
        if not self.feasible:
            return 0.0
        return (self.entangling_survival * self.rotation_survival
                * self.clifford_survival * self.measurement_survival
                * self.memory_survival)

    def dominant_error_source(self) -> str:
        sources = {
            "entangling": self.entangling_survival,
            "rotation": self.rotation_survival,
            "clifford": self.clifford_survival,
            "measurement": self.measurement_survival,
            "memory": self.memory_survival,
        }
        return min(sources, key=sources.get)


def _survival(error_probability: float, count: float) -> float:
    if count <= 0:
        return 1.0
    error_probability = min(max(error_probability, 0.0), 1.0)
    return float((1.0 - error_probability) ** count)


# --------------------------------------------------------------------------
# Per-regime estimators
# --------------------------------------------------------------------------

def nisq_fidelity(profile: CircuitProfile, regime: Optional[NISQRegime] = None,
                  include_idle: bool = False) -> FidelityBreakdown:
    """NISQ execution fidelity (CNOT errors dominate, Sec. 4.4)."""
    regime = regime or NISQRegime()
    idle_exposure = 0.0
    if include_idle:
        idle_exposure = profile.num_qubits * profile.execution_cycles * 0.5
    return FidelityBreakdown(
        regime="nisq",
        feasible=True,
        entangling_survival=_survival(regime.cnot_error, profile.cnot_count),
        rotation_survival=_survival(regime.rz_error, profile.rotation_count),
        clifford_survival=_survival(regime.single_qubit_error,
                                    profile.single_qubit_clifford_count),
        measurement_survival=_survival(regime.measurement_error,
                                       profile.measurement_count),
        memory_survival=_survival(regime.idle_error, idle_exposure),
    )


def pqec_fidelity(profile: CircuitProfile, regime: Optional[PQECRegime] = None,
                  device: Optional[EFTDevice] = None) -> FidelityBreakdown:
    """pQEC execution fidelity: injected rotations dominate (Sec. 4.4)."""
    regime = regime or PQECRegime()
    feasible = True
    if device is not None:
        feasible = device.fits_program(profile.num_qubits)
    injected_states = profile.rotation_count * regime.expected_injections
    memory_exposure = profile.num_qubits * profile.execution_cycles
    return FidelityBreakdown(
        regime="pqec",
        feasible=feasible,
        entangling_survival=_survival(regime.cnot_error, profile.cnot_count),
        rotation_survival=_survival(regime.rz_injection_error, injected_states),
        clifford_survival=_survival(regime.single_qubit_error,
                                    profile.single_qubit_clifford_count),
        measurement_survival=_survival(regime.measurement_error,
                                       profile.measurement_count),
        memory_survival=_survival(regime.memory_error, memory_exposure),
    )


def _clifford_t_fidelity(profile: CircuitProfile, regime, device: EFTDevice,
                         provision: MagicStateProvision,
                         regime_label: str) -> FidelityBreakdown:
    """Shared estimator for the qec-conventional and qec-cultivation baselines."""
    feasible = device.fits_program(profile.num_qubits) and provision.feasible
    t_per_rotation = t_count_for_precision(regime.synthesis_precision)
    total_t_gates = profile.rotation_count * t_per_rotation
    # Synthesis also adds ~1.5 Clifford gates per T gate, each at the logical
    # Clifford rate (negligible but accounted for).
    synthesis_cliffords = 1.5 * total_t_gates
    logical = regime.logical_model
    # The program consumes T gates serially along its critical path; when the
    # farm produces slower than one per cycle the program stalls and every
    # patch idles for the difference.
    if provision.feasible:
        stall_per_t = provision.stall_cycles_per_tstate(1.0)
        execution_cycles = profile.execution_cycles + total_t_gates * (1.0 + stall_per_t)
    else:
        execution_cycles = math.inf
    memory_exposure = profile.num_qubits * execution_cycles if feasible else 0.0
    return FidelityBreakdown(
        regime=regime_label,
        feasible=feasible,
        entangling_survival=_survival(logical.cnot, profile.cnot_count),
        rotation_survival=_survival(provision.t_state_error, total_t_gates),
        clifford_survival=_survival(
            logical.single_qubit_clifford,
            profile.single_qubit_clifford_count + synthesis_cliffords),
        measurement_survival=_survival(logical.measurement,
                                       profile.measurement_count),
        memory_survival=_survival(logical.memory, memory_exposure),
    )


def qec_conventional_fidelity(profile: CircuitProfile,
                              regime: Optional[QECConventionalRegime] = None,
                              device: Optional[EFTDevice] = None
                              ) -> FidelityBreakdown:
    """Clifford+T + distillation fidelity on a budgeted device (Fig. 4)."""
    regime = regime or QECConventionalRegime()
    device = device or EFTDevice()
    provision = provision_distillation(device, profile.num_qubits, regime.factory)
    return _clifford_t_fidelity(profile, regime, device, provision,
                                "qec_conventional")


def qec_cultivation_fidelity(profile: CircuitProfile,
                             regime: Optional[QECCultivationRegime] = None,
                             device: Optional[EFTDevice] = None
                             ) -> FidelityBreakdown:
    """Clifford+T + magic state cultivation fidelity (Fig. 6)."""
    regime = regime or QECCultivationRegime()
    device = device or EFTDevice()
    provision = provision_cultivation(device, profile.num_qubits, regime.unit)
    return _clifford_t_fidelity(profile, regime, device, provision,
                                "qec_cultivation")


def estimate_fidelity(profile: CircuitProfile, regime: ExecutionRegime,
                      device: Optional[EFTDevice] = None) -> FidelityBreakdown:
    """Dispatch to the regime-appropriate fidelity estimator.

    Given a circuit's gate-count :class:`CircuitProfile` and an execution
    regime (NISQ, pQEC, or either QEC variant), returns the analytic
    :class:`FidelityBreakdown` of the paper's Sec. 4 model — per-source error
    contributions (gates, idling, injection, T states) and the total
    estimated circuit fidelity.  Example::

        profile = CircuitProfile.from_ansatz(FullyConnectedAnsatz(16))
        breakdown = estimate_fidelity(profile, PQECRegime())
        print(breakdown.total_fidelity)
    """
    if isinstance(regime, NISQRegime):
        return nisq_fidelity(profile, regime)
    if isinstance(regime, PQECRegime):
        return pqec_fidelity(profile, regime, device)
    if isinstance(regime, QECConventionalRegime):
        return qec_conventional_fidelity(profile, regime, device)
    if isinstance(regime, QECCultivationRegime):
        return qec_cultivation_fidelity(profile, regime, device)
    raise TypeError(f"unsupported regime type: {type(regime).__name__}")
