"""EFT device resource model: qubit budgets, factory fitting, feasibility.

Implements the accounting behind Figs. 4, 5 and 6:

* a program of ``n`` logical qubits occupies ``n`` surface-code data patches
  (the paper's feasibility accounting for the Clifford+T baselines — routing
  ancilla are charged separately by the layout model when relevant);
* whatever physical qubits remain can host magic-state factories or
  cultivation units; the number that fit determines the T-state production
  rate and hence how long the program stalls per T gate;
* a configuration is infeasible (a "white square" in Fig. 5) when the data
  patches alone exceed the device, or when not even one T-state source fits
  alongside them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional

from ..qec.cultivation import CultivationFarm, CultivationUnit, max_units_fitting
from ..qec.distillation import (FactoryConfig, FactoryFarm,
                                PAPER_FIG4_FACTORIES, get_factory,
                                max_factories_fitting)
from ..qec.surface_code import (EFT_CODE_DISTANCE, EFT_PHYSICAL_ERROR_RATE,
                                EFT_PHYSICAL_QUBIT_BUDGET, SurfaceCodePatch)


@dataclass(frozen=True)
class EFTDevice:
    """An early-fault-tolerance device: a physical-qubit budget at a given p."""

    physical_qubits: int = EFT_PHYSICAL_QUBIT_BUDGET
    physical_error_rate: float = EFT_PHYSICAL_ERROR_RATE
    distance: int = EFT_CODE_DISTANCE

    def __post_init__(self):
        if self.physical_qubits < 1:
            raise ValueError("the device needs at least one physical qubit")

    @property
    def patch(self) -> SurfaceCodePatch:
        return SurfaceCodePatch(self.distance, self.physical_error_rate)

    def data_patch_qubits(self, num_logical_qubits: int) -> int:
        """Physical qubits consumed by the program's data patches."""
        return num_logical_qubits * self.patch.physical_qubits

    def fits_program(self, num_logical_qubits: int) -> bool:
        """Feasibility check used for the white squares of Fig. 5."""
        return self.data_patch_qubits(num_logical_qubits) <= self.physical_qubits

    def qubits_left_for_magic(self, num_logical_qubits: int) -> int:
        """Physical qubits available for factories / cultivation units."""
        return max(0, self.physical_qubits - self.data_patch_qubits(num_logical_qubits))

    def max_logical_qubits(self) -> int:
        return self.physical_qubits // self.patch.physical_qubits


@dataclass(frozen=True)
class MagicStateProvision:
    """A T-state supply plan for a program on a device."""

    source_name: str
    source_count: int
    source_qubits: int
    t_state_error: float
    cycles_per_tstate: float

    @property
    def feasible(self) -> bool:
        return self.source_count >= 1

    def stall_cycles_per_tstate(self, consumption_interval_cycles: float) -> float:
        """Stall per consumed T state when the program wants one every interval."""
        if not self.feasible:
            return math.inf
        return max(0.0, self.cycles_per_tstate - consumption_interval_cycles)


def provision_distillation(device: EFTDevice, num_logical_qubits: int,
                           factory: FactoryConfig) -> MagicStateProvision:
    """Fit as many copies of ``factory`` as possible next to the program."""
    available = device.qubits_left_for_magic(num_logical_qubits)
    count = max_factories_fitting(factory, available)
    farm = FactoryFarm(factory, count)
    return MagicStateProvision(
        source_name=factory.label,
        source_count=count,
        source_qubits=farm.physical_qubits,
        t_state_error=factory.output_error(device.physical_error_rate),
        cycles_per_tstate=farm.cycles_per_tstate(),
    )


def provision_cultivation(device: EFTDevice, num_logical_qubits: int,
                          unit: Optional[CultivationUnit] = None) -> MagicStateProvision:
    """Fit as many cultivation units as possible next to the program."""
    unit = unit or CultivationUnit(distance=device.distance,
                                   physical_error_rate=device.physical_error_rate)
    available = device.qubits_left_for_magic(num_logical_qubits)
    count = max_units_fitting(unit, available)
    farm = CultivationFarm(unit, count)
    return MagicStateProvision(
        source_name="cultivation",
        source_count=count,
        source_qubits=farm.physical_qubits,
        t_state_error=unit.output_error(device.physical_error_rate),
        cycles_per_tstate=farm.cycles_per_tstate(),
    )


def best_distillation_provision(device: EFTDevice, num_logical_qubits: int,
                                candidates: Iterable[str] = PAPER_FIG4_FACTORIES,
                                t_demand_interval_cycles: float = 1.0
                                ) -> Optional[MagicStateProvision]:
    """The factory choice minimizing (T error + stall-induced memory exposure).

    Used by the Fig. 5 win-percentage analysis, which assumes the
    qec-conventional baseline always picks its best available factory.
    Returns ``None`` when no factory fits alongside the program.
    """
    best: Optional[MagicStateProvision] = None
    best_score = math.inf
    for name in candidates:
        provision = provision_distillation(device, num_logical_qubits,
                                           get_factory(name))
        if not provision.feasible:
            continue
        stall = provision.stall_cycles_per_tstate(t_demand_interval_cycles)
        memory_exposure = stall * num_logical_qubits \
            * 1e-7  # per-cycle logical memory error at the EFT operating point
        score = provision.t_state_error + memory_exposure
        if score < best_score:
            best_score = score
            best = provision
    return best


def device_size_sweep(min_qubits: int = 10_000, max_qubits: int = 60_000,
                      step: int = 10_000) -> List[int]:
    """The device sizes swept in Fig. 5."""
    return list(range(min_qubits, max_qubits + 1, step))
