"""Patch shuffling for repeat-until-success rotation injection (Sec. 4.2, Fig. 8).

A logical Rz(θ) consumes a geometric number of magic states (θ, 2θ, 4θ, …
compensations).  Two ways to provision those states:

* **naive(b)** — pre-inject the θ, 2θ, …, 2ᵇθ states into b+1 dedicated
  patches at the start of the rotation.  With b backups the rotation is
  stall-free with probability 1 − 2⁻ᵇ (93.75% at b = 4), but the extra
  patches and their routing stay allocated for the whole rotation, inflating
  spacetime volume; when the backups run out the program stalls for a full
  injection.
* **patch shuffling** — keep only two magic-state patches and re-inject the
  next compensatory angle into the idle patch *while* the other is being
  consumed.  Sec. 9 shows the injection completes within the 2d-cycle
  consumption window with probability ≥ 0.939 at (p = 1e-3, d = 11), so the
  rotation never stalls and only two patches are ever allocated.

The :func:`compare_strategies` sweep regenerates Fig. 8: spacetime volume of
the rotation subsystem of a depth-1 blocked_all_to_all circuit for 20–76
qubits, for patch shuffling and for naive(b), b = 1…4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..qec.surface_code import (EFT_CODE_DISTANCE, EFT_PHYSICAL_ERROR_RATE,
                                SurfaceCodePatch)
from .injection import (CONSUMPTION_SUCCESS_PROBABILITY, InjectionStatistics,
                        expected_consumptions_per_rotation)


@dataclass(frozen=True)
class RotationResourceEstimate:
    """Space/time/volume cost of executing one logical rotation."""

    strategy: str
    magic_patches: int
    expected_cycles: float
    expected_stall_cycles: float
    spacetime_volume_patch_cycles: float

    def spacetime_volume_physical(self, distance: int = EFT_CODE_DISTANCE) -> float:
        patch = SurfaceCodePatch(distance)
        return self.spacetime_volume_patch_cycles * patch.physical_qubits


def _expected_consumptions(success_probability: float) -> float:
    return expected_consumptions_per_rotation(success_probability)


def shuffling_rotation_estimate(distance: int = EFT_CODE_DISTANCE,
                                physical_error_rate: float = EFT_PHYSICAL_ERROR_RATE,
                                success_probability: float = CONSUMPTION_SUCCESS_PROBABILITY
                                ) -> RotationResourceEstimate:
    """Resource cost of one logical rotation under patch shuffling."""
    stats = InjectionStatistics(physical_error_rate, distance)
    consumption_cycles = stats.consumption_cycles
    expected_consumptions = _expected_consumptions(success_probability)
    # Stall only in the unlikely event the re-injection overruns the
    # consumption window; the overrun is at most one injection attempt round.
    overrun_probability = 1.0 - stats.probability_within_high_probability_bound()
    stall = overrun_probability * 2.0  # two syndrome rounds per extra attempt
    cycles = expected_consumptions * consumption_cycles + stall
    # One data patch + two magic-state patches + one routing patch are engaged.
    patches = 1 + 2 + 1
    return RotationResourceEstimate(
        strategy="patch_shuffling",
        magic_patches=2,
        expected_cycles=cycles,
        expected_stall_cycles=stall,
        spacetime_volume_patch_cycles=cycles * patches,
    )


def naive_rotation_estimate(num_backup_states: int,
                            distance: int = EFT_CODE_DISTANCE,
                            physical_error_rate: float = EFT_PHYSICAL_ERROR_RATE,
                            success_probability: float = CONSUMPTION_SUCCESS_PROBABILITY
                            ) -> RotationResourceEstimate:
    """Resource cost of one logical rotation with ``b`` pre-injected backups."""
    if num_backup_states < 1:
        raise ValueError("the naive strategy needs at least one prepared state")
    stats = InjectionStatistics(physical_error_rate, distance)
    consumption_cycles = stats.consumption_cycles
    expected_consumptions = _expected_consumptions(success_probability)
    # If all b prepared states are consumed without success, the program
    # stalls for a full injection (expected attempts × 2 rounds each) per
    # additional consumption beyond the prepared ones.
    failure_probability = (1.0 - success_probability) ** num_backup_states
    expected_extra_consumptions = failure_probability / success_probability
    injection_cycles = 2.0 * stats.expected_attempts
    stall = expected_extra_consumptions * injection_cycles
    cycles = expected_consumptions * consumption_cycles + stall
    # One data patch + (b + 1) magic patches + routing to reach each of them.
    magic_patches = num_backup_states + 1
    routing_patches = 1 + (num_backup_states // 2)
    patches = 1 + magic_patches + routing_patches
    return RotationResourceEstimate(
        strategy=f"naive(b={num_backup_states})",
        magic_patches=magic_patches,
        expected_cycles=cycles,
        expected_stall_cycles=stall,
        spacetime_volume_patch_cycles=cycles * patches,
    )


@dataclass(frozen=True)
class StrategyComparison:
    """Fig. 8 data point: circuit-level rotation spacetime volume per strategy."""

    num_qubits: int
    num_rotations: int
    shuffling_volume: float
    naive_volumes: Dict[int, float]

    def best_naive(self) -> float:
        return min(self.naive_volumes.values())


def rotation_count_blocked(num_qubits: int, depth: int = 1) -> int:
    """Logical rotations of a depth-p blocked_all_to_all circuit: 2·N·p."""
    return 2 * num_qubits * depth


def compare_strategies(num_qubits_list: Sequence[int],
                       backups: Sequence[int] = (1, 2, 3, 4),
                       depth: int = 1,
                       distance: int = EFT_CODE_DISTANCE,
                       physical_error_rate: float = EFT_PHYSICAL_ERROR_RATE
                       ) -> List[StrategyComparison]:
    """Regenerate the Fig. 8 sweep (physical-qubit × cycle spacetime volumes)."""
    shuffling = shuffling_rotation_estimate(distance, physical_error_rate)
    naive = {b: naive_rotation_estimate(b, distance, physical_error_rate)
             for b in backups}
    patch = SurfaceCodePatch(distance)
    results: List[StrategyComparison] = []
    for num_qubits in num_qubits_list:
        rotations = rotation_count_blocked(num_qubits, depth)
        shuffling_volume = (shuffling.spacetime_volume_patch_cycles * rotations
                            * patch.physical_qubits)
        naive_volumes = {
            b: est.spacetime_volume_patch_cycles * rotations * patch.physical_qubits
            for b, est in naive.items()}
        results.append(StrategyComparison(
            num_qubits=num_qubits,
            num_rotations=rotations,
            shuffling_volume=shuffling_volume,
            naive_volumes=naive_volumes,
        ))
    return results
