"""Extended Rz(θ) injection protocols: extra post-selection and pre-distillation.

The paper's Sec. 2.6 notes that the fidelity of an injected Rz(θ) state "can
be improved by post-selecting over multiple (more than two) rounds or
'pre-distillation' … however, this comes at additional overhead.  The cost vs
benefit trade-offs for these techniques are worthy of exploration in future
work."  This module implements that exploration so the trade-off can be
measured instead of deferred:

* **extra post-selection rounds** — the baseline Lao–Criger protocol
  post-selects over two rounds of stabilizer measurements and leaves an error
  of ``23·p/30``.  Additional rounds catch part of the *detectable* residual
  (errors that fired during earlier measurement rounds) but cannot touch the
  undetectable floor (errors on the injection qubit before it is protected by
  the code), and every extra round lowers the acceptance probability, i.e.
  raises the injection latency;
* **pre-distillation** — a Campbell–Howard-style parity check between two
  injected states detects first-order errors, squaring the error rate at the
  cost of one extra patch and one extra lattice-surgery check per accepted
  state.

:class:`ProtocolPQECRegime` plugs any protocol into the standard pQEC fidelity
and noise-model machinery, and :func:`protocol_tradeoff` quantifies the
fidelity-versus-spacetime-volume exchange for a rotation workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..qec.surface_code import EFT_CODE_DISTANCE, EFT_PHYSICAL_ERROR_RATE
from .injection import (CONSUMPTION_SUCCESS_PROBABILITY,
                        INJECTION_ERROR_BIAS,
                        expected_consumptions_per_rotation,
                        injection_error_rate)
from .regimes import PQECRegime

#: Fraction of the Lao–Criger injected-state error that later stabilizer
#: rounds can never detect (it acts on the injection qubit before the patch is
#: protected).  Extra post-selection rounds only suppress the remainder.
UNDETECTABLE_ERROR_FRACTION = 0.4

#: Fraction of the *detectable* residual that survives each additional
#: post-selection round (a round is one more cycle of stabilizer measurements
#: whose syndrome must come back clean).
DETECTION_MISS_PER_ROUND = 0.25

#: Error-suppression coefficient of the parity-check pre-distillation step:
#: error_out ≈ coefficient · error_in².
PRE_DISTILLATION_COEFFICIENT = 3.0

#: Extra patches and lattice-surgery cycles one pre-distillation check costs.
PRE_DISTILLATION_EXTRA_PATCHES = 2
PRE_DISTILLATION_EXTRA_CYCLES = 2


@dataclass(frozen=True)
class InjectionProtocol:
    """A configured Rz(θ) injection procedure.

    ``post_selection_rounds = 2`` and ``use_pre_distillation = False`` is the
    baseline protocol the paper evaluates; anything beyond that is the
    "future work" territory this module explores.
    """

    post_selection_rounds: int = 2
    use_pre_distillation: bool = False
    physical_error_rate: float = EFT_PHYSICAL_ERROR_RATE
    distance: int = EFT_CODE_DISTANCE

    def __post_init__(self):
        if self.post_selection_rounds < 2:
            raise ValueError("the injection protocol needs at least the two "
                             "baseline post-selection rounds")
        if not 0.0 <= self.physical_error_rate < 0.5:
            raise ValueError("physical error rate must be in [0, 0.5)")
        if self.distance < 3:
            raise ValueError("code distance must be at least 3")

    # -- error rate --------------------------------------------------------------
    @property
    def baseline_error(self) -> float:
        """The two-round Lao–Criger injected-state error (23·p/30)."""
        return injection_error_rate(self.physical_error_rate)

    @property
    def post_selected_error(self) -> float:
        """Injected-state error after the configured post-selection rounds."""
        floor = UNDETECTABLE_ERROR_FRACTION * self.baseline_error
        detectable = self.baseline_error - floor
        extra_rounds = self.post_selection_rounds - 2
        return floor + detectable * (DETECTION_MISS_PER_ROUND ** extra_rounds)

    @property
    def injected_state_error(self) -> float:
        """Final per-state error, including pre-distillation when enabled."""
        error = self.post_selected_error
        if self.use_pre_distillation:
            error = min(error, PRE_DISTILLATION_COEFFICIENT * error ** 2)
        return error

    # -- acceptance and latency -----------------------------------------------------
    @property
    def single_round_pass_probability(self) -> float:
        """Probability one round of post-selection sees a clean syndrome (Sec. 9)."""
        p = self.physical_error_rate
        return 1.0 - 2.0 * p * (1.0 - p) * (self.distance ** 2 - 1)

    @property
    def acceptance_probability(self) -> float:
        """Probability an injection attempt survives every acceptance check."""
        accept = self.single_round_pass_probability ** self.post_selection_rounds
        if self.use_pre_distillation:
            # The parity check discards the pair when either input carries a
            # detectable error.
            accept *= (1.0 - 2.0 * self.post_selected_error)
        return max(accept, 1e-12)

    @property
    def expected_attempts(self) -> float:
        """Expected injection attempts before a state is accepted."""
        return 1.0 / self.acceptance_probability

    @property
    def cycles_per_accepted_state(self) -> float:
        """Expected syndrome-measurement cycles to produce one accepted state."""
        cycles_per_attempt = float(self.post_selection_rounds)
        cycles = self.expected_attempts * cycles_per_attempt
        if self.use_pre_distillation:
            # Two states feed one check, and the check itself takes cycles.
            cycles = 2.0 * cycles + PRE_DISTILLATION_EXTRA_CYCLES
        return cycles

    @property
    def extra_patches(self) -> int:
        """Ancilla patches needed beyond the single baseline injection patch."""
        return PRE_DISTILLATION_EXTRA_PATCHES if self.use_pre_distillation else 0

    @property
    def supports_stall_free_shuffling(self) -> bool:
        """Whether an accepted state is ready within one consumption window (2d)."""
        return self.cycles_per_accepted_state <= 2.0 * self.distance

    # -- per-rotation view -------------------------------------------------------------
    def rotation_error(self,
                       consumption_success_probability: float =
                       CONSUMPTION_SUCCESS_PROBABILITY) -> float:
        """Error accumulated by one logical rotation (E[g] accepted states)."""
        return (expected_consumptions_per_rotation(consumption_success_probability)
                * self.injected_state_error)

    def summary(self) -> Dict[str, float]:
        return {
            "post_selection_rounds": float(self.post_selection_rounds),
            "pre_distillation": float(self.use_pre_distillation),
            "injected_state_error": self.injected_state_error,
            "acceptance_probability": self.acceptance_probability,
            "cycles_per_accepted_state": self.cycles_per_accepted_state,
            "extra_patches": float(self.extra_patches),
        }


class ProtocolPQECRegime(PQECRegime):
    """A pQEC regime whose rotation error follows a configured protocol."""

    name = "pqec_protocol"

    def __init__(self, protocol: InjectionProtocol,
                 consumption_success_probability: float =
                 CONSUMPTION_SUCCESS_PROBABILITY):
        super().__init__(physical_error_rate=protocol.physical_error_rate,
                         distance=protocol.distance,
                         consumption_success_probability=
                         consumption_success_probability)
        self.protocol = protocol

    @property
    def rz_injection_error(self) -> float:
        return self.protocol.injected_state_error

    @property
    def rz_error(self) -> float:
        return self.protocol.rotation_error(self.consumption_success_probability)

    def _scaled_injection_probabilities(self) -> Dict[str, float]:
        total = self.rz_error
        probabilities = {pauli: bias * total
                         for pauli, bias in INJECTION_ERROR_BIAS.items()}
        probabilities["I"] = 1.0 - sum(probabilities.values())
        return probabilities


@dataclass(frozen=True)
class ProtocolTradeoff:
    """Fidelity and latency of a rotation workload under one protocol."""

    protocol: InjectionProtocol
    rotation_survival: float
    injection_cycles: float
    spacetime_volume: float

    @property
    def label(self) -> str:
        suffix = "+predistill" if self.protocol.use_pre_distillation else ""
        return f"r={self.protocol.post_selection_rounds}{suffix}"


def protocol_tradeoff(num_rotations: int,
                      protocol: InjectionProtocol,
                      consumption_success_probability: float =
                      CONSUMPTION_SUCCESS_PROBABILITY) -> ProtocolTradeoff:
    """Cost/benefit of one protocol for a workload of ``num_rotations``.

    The benefit is the survival probability of all rotation injections
    (``(1 − ε)^(E[g]·R)``); the cost is the injection latency and the
    spacetime volume of the injection patches (baseline patch + extras, times
    cycles per accepted state, times accepted states).
    """
    if num_rotations < 1:
        raise ValueError("the workload needs at least one rotation")
    expected_states = (num_rotations *
                       expected_consumptions_per_rotation(
                           consumption_success_probability))
    survival = (1.0 - protocol.injected_state_error) ** expected_states
    cycles = protocol.cycles_per_accepted_state * expected_states
    patches = 1 + protocol.extra_patches
    return ProtocolTradeoff(protocol=protocol,
                            rotation_survival=survival,
                            injection_cycles=cycles,
                            spacetime_volume=patches * cycles)


def compare_protocols(num_rotations: int,
                      protocols: Sequence[InjectionProtocol]
                      ) -> List[ProtocolTradeoff]:
    """Evaluate several protocols on the same rotation workload."""
    return [protocol_tradeoff(num_rotations, protocol)
            for protocol in protocols]
