"""Evaluation metrics (paper Sec. 5.3).

The headline metric is the *relative improvement*

    γ_{A/B} = (E0 − E_B) / (E0 − E_A)            (Eq. 3)

which quantifies how much closer regime A (e.g. pQEC) gets to the reference
energy E0 than regime B (e.g. NISQ).  E0 is the exact ground-state energy for
≤12-qubit Hamiltonians and the best noiseless Clifford-state energy for
larger systems.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Sequence


def relative_improvement(reference_energy: float, energy_a: float,
                         energy_b: float, floor: float = 1e-12) -> float:
    """γ_{A/B} = (E0 − E_B) / (E0 − E_A).

    Larger is better for regime A.  Energies below the reference (which can
    happen with noisy estimators on small gaps) are clamped so the gap stays
    non-negative; a vanishing gap for A is floored to avoid division by zero.
    """
    gap_a = max(energy_a - reference_energy, 0.0)
    gap_b = max(energy_b - reference_energy, 0.0)
    gap_a = max(gap_a, floor)
    return gap_b / gap_a


@dataclass(frozen=True)
class RegimeComparison:
    """The γ comparison of two regimes on one benchmark Hamiltonian."""

    benchmark: str
    reference_energy: float
    energy_a: float
    energy_b: float
    regime_a: str = "pqec"
    regime_b: str = "nisq"

    @property
    def gamma(self) -> float:
        return relative_improvement(self.reference_energy, self.energy_a,
                                    self.energy_b)

    @property
    def energy_gap_a(self) -> float:
        return self.energy_a - self.reference_energy

    @property
    def energy_gap_b(self) -> float:
        return self.energy_b - self.reference_energy

    def __repr__(self):
        return (f"RegimeComparison({self.benchmark}: γ_{self.regime_a}/"
                f"{self.regime_b}={self.gamma:.2f})")


def summarize_gammas(comparisons: Sequence[RegimeComparison]) -> Dict[str, float]:
    """Average / max / min / geometric-mean γ over a benchmark sweep."""
    if not comparisons:
        raise ValueError("need at least one comparison")
    gammas = [comparison.gamma for comparison in comparisons]
    log_sum = sum(math.log(max(g, 1e-12)) for g in gammas)
    return {
        "mean": sum(gammas) / len(gammas),
        "max": max(gammas),
        "min": min(gammas),
        "geometric_mean": math.exp(log_sum / len(gammas)),
        "count": float(len(gammas)),
    }


def win_fraction(fidelities_a: Sequence[float], fidelities_b: Sequence[float]) -> float:
    """Fraction of benchmarks on which regime A strictly beats regime B (Fig. 5)."""
    if len(fidelities_a) != len(fidelities_b) or not fidelities_a:
        raise ValueError("need two equal-length, non-empty fidelity lists")
    wins = sum(1 for a, b in zip(fidelities_a, fidelities_b) if a > b)
    return wins / len(fidelities_a)
