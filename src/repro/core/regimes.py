"""Execution regimes: NISQ, pQEC, qec-conventional, qec-cultivation.

A regime bundles

* the per-operation error rates the paper assumes for it (Sec. 4.4, 5.2.1),
* a :class:`~repro.simulators.noise.NoiseModel` for circuit-level simulation
  (density-matrix for ≤12 qubits, Pauli-propagation / stabilizer for more) —
  available for the NISQ and pQEC regimes, which is what the paper simulates,
  and
* the inputs the analytic fidelity estimator (:mod:`repro.core.fidelity`)
  needs — available for all four regimes, including the Clifford+T baselines
  whose synthesized circuits are too large to simulate directly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict

from ..qec.cultivation import CultivationUnit
from ..qec.distillation import FactoryConfig, get_factory
from ..qec.surface_code import (EFT_CODE_DISTANCE, EFT_PHYSICAL_ERROR_RATE,
                                LogicalOperationErrorModel)
from ..simulators.noise import (NoiseModel, PauliChannel, depolarizing_channel,
                                thermal_relaxation_channel)
from .injection import (effective_rotation_error,
                        expected_consumptions_per_rotation,
                        injection_error_pauli_probabilities,
                        injection_error_rate)


class ExecutionRegime:
    """Base class for execution regimes."""

    name = "regime"

    def error_rates(self) -> Dict[str, float]:
        """Per-operation error rates used by the analytic fidelity model."""
        raise NotImplementedError

    def noise_model(self) -> NoiseModel:
        """Circuit-level noise model (only for directly simulable regimes)."""
        raise NotImplementedError(
            f"the {self.name} regime is evaluated analytically; it has no "
            f"circuit-level noise model")

    def is_simulable(self) -> bool:
        return False

    def __repr__(self):
        rates = ", ".join(f"{k}={v:.2e}" for k, v in sorted(self.error_rates().items()))
        return f"{type(self).__name__}({rates})"


@dataclass
class NISQRegime(ExecutionRegime):
    """Uncorrected near-term execution (the paper's NISQ baseline, Sec. 4.4).

    Error rates: CNOT ``p``, non-Rz single-qubit gates ``p/10``, Rz gates 0
    (virtual-Z), measurement ``10·p``, with ``p = 1e-3`` by default.  The
    density-matrix noise model additionally mixes in thermal relaxation for
    gates, measurement and idling, as in the paper's Sec. 5.2.1 setup.
    """

    physical_error_rate: float = EFT_PHYSICAL_ERROR_RATE
    t1_seconds: float = 1.2e-3
    t2_seconds: float = 1.2e-3
    one_qubit_gate_seconds: float = 35e-9
    two_qubit_gate_seconds: float = 300e-9
    measurement_seconds: float = 4000e-9
    include_thermal_relaxation: bool = True

    name = "nisq"

    # -- rates -------------------------------------------------------------------
    @property
    def cnot_error(self) -> float:
        return self.physical_error_rate

    @property
    def single_qubit_error(self) -> float:
        return self.physical_error_rate / 10.0

    @property
    def rz_error(self) -> float:
        return 0.0  # virtual-Z rotations are error-free on NISQ hardware

    @property
    def measurement_error(self) -> float:
        return 10.0 * self.physical_error_rate

    @property
    def idle_error(self) -> float:
        """Per-layer idling error from thermal relaxation."""
        if not self.include_thermal_relaxation:
            return 0.0
        return 1.0 - math.exp(-self.two_qubit_gate_seconds / self.t1_seconds)

    def error_rates(self) -> Dict[str, float]:
        return {
            "cnot": self.cnot_error,
            "single_qubit": self.single_qubit_error,
            "rz": self.rz_error,
            "measurement": self.measurement_error,
            "idle": self.idle_error,
        }

    # -- simulation --------------------------------------------------------------
    def is_simulable(self) -> bool:
        return True

    def noise_model(self) -> NoiseModel:
        model = NoiseModel(name="nisq")
        depolarizing_fraction = 0.75 if self.include_thermal_relaxation else 1.0
        two_qubit = depolarizing_channel(self.cnot_error * depolarizing_fraction, 2)
        one_qubit = depolarizing_channel(self.single_qubit_error * depolarizing_fraction, 1)
        model.add_gate_error(two_qubit, ["cx", "cnot", "cz", "swap"])
        model.add_gate_error(one_qubit, ["h", "s", "sdg", "x", "y", "z", "sx", "rx", "ry"])
        if self.include_thermal_relaxation:
            relax_2q = thermal_relaxation_channel(
                self.t1_seconds, self.t2_seconds, self.two_qubit_gate_seconds)
            relax_1q = thermal_relaxation_channel(
                self.t1_seconds, self.t2_seconds, self.one_qubit_gate_seconds)
            for name in ("cx", "cnot", "cz", "swap"):
                model.add_gate_error(
                    _two_qubit_relaxation(relax_2q), [name])
            model.add_gate_error(relax_1q,
                                 ["h", "s", "sdg", "x", "y", "z", "sx", "rx", "ry"])
            model.add_idle_error(thermal_relaxation_channel(
                self.t1_seconds, self.t2_seconds, self.two_qubit_gate_seconds))
        # Rz gates are virtual on NISQ hardware: no channel attached.
        model.add_readout_error(self.measurement_error)
        return model


def _two_qubit_relaxation(single_qubit_channel):
    from ..simulators.noise import two_qubit_tensor_channel
    return two_qubit_tensor_channel(single_qubit_channel, single_qubit_channel)


@dataclass
class PQECRegime(ExecutionRegime):
    """Partial quantum error correction (the paper's proposal, Sec. 3).

    Clifford gates, measurements and memory are error-corrected at the d=11
    surface-code logical rates (≈1e-7 at p=1e-3); Rz(θ) rotations are executed
    by magic-state injection and keep a near-physical error rate of
    ``23·p/30 ≈ 0.767e-3`` per injected state, with E[g]=2 injected states
    consumed per logical rotation.
    """

    physical_error_rate: float = EFT_PHYSICAL_ERROR_RATE
    distance: int = EFT_CODE_DISTANCE
    consumption_success_probability: float = 0.5

    name = "pqec"

    # -- rates ------------------------------------------------------------------
    @property
    def logical_model(self) -> LogicalOperationErrorModel:
        return LogicalOperationErrorModel(self.distance, self.physical_error_rate)

    @property
    def cnot_error(self) -> float:
        return self.logical_model.cnot

    @property
    def single_qubit_error(self) -> float:
        return self.logical_model.single_qubit_clifford

    @property
    def measurement_error(self) -> float:
        return self.logical_model.measurement

    @property
    def memory_error(self) -> float:
        return self.logical_model.memory

    @property
    def rz_injection_error(self) -> float:
        """Error per injected magic state (23·p/30)."""
        return injection_error_rate(self.physical_error_rate)

    @property
    def expected_injections(self) -> float:
        return expected_consumptions_per_rotation(self.consumption_success_probability)

    @property
    def rz_error(self) -> float:
        """Error per logical rotation (E[g] injected states)."""
        return effective_rotation_error(self.physical_error_rate,
                                        self.consumption_success_probability)

    def error_rates(self) -> Dict[str, float]:
        return {
            "cnot": self.cnot_error,
            "single_qubit": self.single_qubit_error,
            "rz": self.rz_error,
            "rz_per_injection": self.rz_injection_error,
            "measurement": self.measurement_error,
            "idle": self.memory_error,
        }

    # -- simulation ---------------------------------------------------------------
    def is_simulable(self) -> bool:
        return True

    def noise_model(self) -> NoiseModel:
        model = NoiseModel(name="pqec")
        model.add_gate_error(depolarizing_channel(self.cnot_error, 2),
                             ["cx", "cnot", "cz", "swap"])
        model.add_gate_error(depolarizing_channel(self.single_qubit_error, 1),
                             ["h", "s", "sdg", "x", "y", "z", "sx"])
        # Injected rotations: biased Pauli error with the per-logical-rotation
        # magnitude (E[g] injections folded in), attached to rx/ry/rz alike —
        # after transpilation to Clifford+Rz only rz carries angles, but the
        # channels are registered for all three for robustness.
        injected = PauliChannel(self._scaled_injection_probabilities(),
                                name="rz_injection")
        model.add_gate_error(injected, ["rz", "rx", "ry"])
        model.add_idle_error(depolarizing_channel(self.memory_error, 1))
        model.add_readout_error(self.measurement_error)
        return model

    def _scaled_injection_probabilities(self) -> Dict[str, float]:
        per_injection = injection_error_pauli_probabilities(self.physical_error_rate)
        scale = self.expected_injections
        probabilities = {pauli: probability * scale
                         for pauli, probability in per_injection.items()
                         if pauli != "I"}
        probabilities["I"] = 1.0 - sum(probabilities.values())
        return probabilities


@dataclass
class QECConventionalRegime(ExecutionRegime):
    """Clifford+T with Gridsynth synthesis and distillation factories (Sec. 2.5).

    Evaluated analytically: every logical rotation becomes
    ``t_count_for_precision(ε)`` T gates, each carrying the factory's output
    error; the program stalls whenever the factory farm cannot keep up, and
    stalled patches accumulate memory errors.  The fidelity estimator
    (:mod:`repro.core.fidelity`) consumes the fields exposed here.
    """

    factory: FactoryConfig = field(default_factory=lambda: get_factory("15-to-1_11,5,5"))
    physical_error_rate: float = EFT_PHYSICAL_ERROR_RATE
    distance: int = EFT_CODE_DISTANCE
    # Gridsynth precision per rotation.  The default 1e-8 reflects that the
    # per-rotation angle error must stay well below the overall accuracy
    # target divided by the rotation count (Sec. 2.5 uses 1e-6 as an example;
    # chemistry-accuracy VQE needs tighter synthesis).
    synthesis_precision: float = 1e-8

    name = "qec_conventional"

    @property
    def logical_model(self) -> LogicalOperationErrorModel:
        return LogicalOperationErrorModel(self.distance, self.physical_error_rate)

    @property
    def t_state_error(self) -> float:
        return self.factory.output_error(self.physical_error_rate)

    def error_rates(self) -> Dict[str, float]:
        return {
            "cnot": self.logical_model.cnot,
            "single_qubit": self.logical_model.single_qubit_clifford,
            "t_state": self.t_state_error,
            "measurement": self.logical_model.measurement,
            "idle": self.logical_model.memory,
        }


@dataclass
class QECCultivationRegime(ExecutionRegime):
    """Clifford+T with magic state cultivation instead of distillation (Sec. 3.4)."""

    unit: CultivationUnit = field(default_factory=CultivationUnit)
    physical_error_rate: float = EFT_PHYSICAL_ERROR_RATE
    distance: int = EFT_CODE_DISTANCE
    synthesis_precision: float = 1e-8

    name = "qec_cultivation"

    @property
    def logical_model(self) -> LogicalOperationErrorModel:
        return LogicalOperationErrorModel(self.distance, self.physical_error_rate)

    @property
    def t_state_error(self) -> float:
        return self.unit.output_error(self.physical_error_rate)

    def error_rates(self) -> Dict[str, float]:
        return {
            "cnot": self.logical_model.cnot,
            "single_qubit": self.logical_model.single_qubit_clifford,
            "t_state": self.t_state_error,
            "measurement": self.logical_model.measurement,
            "idle": self.logical_model.memory,
        }
