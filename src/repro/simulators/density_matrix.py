"""Dense density-matrix simulator with Kraus-operator noise.

This is the substitute for Qiskit's ``AerSimulator`` density-matrix backend
used by the paper for 8–12 qubit evaluations (Sec. 5.2.1).  Gates are applied
as unitary conjugations and noise as Kraus channels, both via tensor
contraction, so the cost per gate is O(4^n · 4^k) rather than O(16^n).

Index convention matches the rest of the package: qubit ``q`` is bit ``q`` of
the computational-basis index (little-endian); multi-qubit gate matrices put
``qubits[0]`` on the least-significant index bit.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..operators.pauli import PauliSum
from .noise import NoiseModel, QuantumChannel, RESET_CHANNEL
from .statevector import Statevector, counts_from_outcomes


class DensityMatrix:
    """A density operator on ``num_qubits`` qubits."""

    def __init__(self, data: np.ndarray):
        data = np.asarray(data, dtype=complex)
        if data.ndim != 2 or data.shape[0] != data.shape[1]:
            raise ValueError("density matrix must be square")
        num_qubits = int(round(math.log2(data.shape[0])))
        if 2 ** num_qubits != data.shape[0]:
            raise ValueError("density matrix dimension must be a power of two")
        self._data = data
        self._num_qubits = num_qubits

    # -- constructors ---------------------------------------------------------
    @classmethod
    def zero_state(cls, num_qubits: int) -> "DensityMatrix":
        dim = 2 ** num_qubits
        data = np.zeros((dim, dim), dtype=complex)
        data[0, 0] = 1.0
        return cls(data)

    @classmethod
    def from_statevector(cls, state: Statevector) -> "DensityMatrix":
        vector = state.data.reshape(-1, 1)
        return cls(vector @ vector.conj().T)

    @classmethod
    def maximally_mixed(cls, num_qubits: int) -> "DensityMatrix":
        dim = 2 ** num_qubits
        return cls(np.eye(dim, dtype=complex) / dim)

    # -- properties -----------------------------------------------------------
    @property
    def num_qubits(self) -> int:
        return self._num_qubits

    @property
    def data(self) -> np.ndarray:
        return self._data

    def trace(self) -> float:
        return float(np.trace(self._data).real)

    def purity(self) -> float:
        return float(np.trace(self._data @ self._data).real)

    def probabilities(self) -> np.ndarray:
        return np.clip(np.real(np.diag(self._data)), 0.0, None)

    def expectation(self, observable: PauliSum) -> float:
        """Tr(ρ H) for a Hermitian Pauli-sum observable."""
        from .kernels import density_matrix_term_expectations
        if observable.num_qubits != self._num_qubits:
            raise ValueError("observable acts on a different number of qubits")
        coefficients, x_bits, z_bits = observable.bit_matrices()
        if not len(coefficients):
            return 0.0
        values = density_matrix_term_expectations(self._data, x_bits, z_bits)
        return float(np.real(np.sum(coefficients * values)))

    def expectation_many(self, observable: PauliSum) -> np.ndarray:
        """Tr(ρ·P_i) for every bare Pauli term of ``observable``.

        One vectorized off-diagonal gather per term (see
        :mod:`repro.simulators.kernels`); values align with
        ``observable.terms()`` and exclude the coefficients.
        """
        from .kernels import density_matrix_term_expectations
        if observable.num_qubits != self._num_qubits:
            raise ValueError("observable acts on a different number of qubits")
        return density_matrix_term_expectations(self._data,
                                                observable=observable)

    def fidelity_with_pure_state(self, state: Statevector) -> float:
        """⟨ψ|ρ|ψ⟩ — state fidelity against a pure reference."""
        vector = state.data
        return float(np.real(np.vdot(vector, self._data @ vector)))

    def sample_counts(self, shots: int,
                      rng: Optional[np.random.Generator] = None) -> Dict[str, int]:
        rng = rng or np.random.default_rng()
        probabilities = self.probabilities()
        probabilities = probabilities / probabilities.sum()
        outcomes = rng.choice(len(probabilities), size=shots, p=probabilities)
        return counts_from_outcomes(outcomes, self._num_qubits)


def _apply_matrix(tensor: np.ndarray, matrix: np.ndarray, tensor_axes: List[int],
                  total_axes: int) -> np.ndarray:
    """Contract ``matrix`` against ``tensor_axes`` of a (2,)*total_axes tensor."""
    k = len(tensor_axes)
    gate_tensor = matrix.reshape([2] * (2 * k))
    tensor = np.tensordot(gate_tensor, tensor,
                          axes=(list(range(k, 2 * k)), tensor_axes))
    return np.moveaxis(tensor, list(range(k)), tensor_axes)


class DensityMatrixSimulator:
    """Executes circuits on density matrices under a :class:`NoiseModel`."""

    def __init__(self, noise_model: Optional[NoiseModel] = None,
                 seed: Optional[int] = None):
        self.noise_model = noise_model
        self._rng = np.random.default_rng(seed)

    # -- low-level application --------------------------------------------------
    def _apply_unitary(self, rho: np.ndarray, matrix: np.ndarray,
                       qubits: Sequence[int], num_qubits: int) -> np.ndarray:
        total_axes = 2 * num_qubits
        tensor = rho.reshape([2] * total_axes)
        # Row axis of qubit q is (num_qubits - 1 - q); column axis adds num_qubits.
        row_axes = [num_qubits - 1 - q for q in reversed(qubits)]
        col_axes = [num_qubits + axis for axis in row_axes]
        tensor = _apply_matrix(tensor, matrix, row_axes, total_axes)
        tensor = _apply_matrix(tensor, matrix.conj(), col_axes, total_axes)
        dim = 2 ** num_qubits
        return tensor.reshape(dim, dim)

    def _apply_channel(self, rho: np.ndarray, channel: QuantumChannel,
                       qubits: Sequence[int], num_qubits: int) -> np.ndarray:
        total_axes = 2 * num_qubits
        dim = 2 ** num_qubits
        row_axes = [num_qubits - 1 - q for q in reversed(qubits)]
        col_axes = [num_qubits + axis for axis in row_axes]
        accumulated = np.zeros((dim, dim), dtype=complex)
        for kraus in channel.kraus_operators:
            tensor = rho.reshape([2] * total_axes)
            tensor = _apply_matrix(tensor, kraus, row_axes, total_axes)
            tensor = _apply_matrix(tensor, kraus.conj(), col_axes, total_axes)
            accumulated += tensor.reshape(dim, dim)
        return accumulated

    def _apply_reset(self, rho: np.ndarray, qubit: int, num_qubits: int) -> np.ndarray:
        """Reset a qubit to |0⟩ (trace out and re-prepare)."""
        return self._apply_channel(rho, RESET_CHANNEL, (qubit,), num_qubits)

    # -- execution ----------------------------------------------------------------
    def run(self, circuit: QuantumCircuit,
            initial_state: Optional[DensityMatrix] = None,
            apply_measure_noise: bool = False) -> DensityMatrix:
        """Simulate the circuit and return the final density matrix.

        The circuit is lowered once through
        :func:`repro.simulators.program.compile_circuit` (cached by circuit
        fingerprint + noise-model version): gate matrices are resolved at
        compile time, each noisy slot carries one pre-merged Kraus channel,
        and diagonal gates apply as row/column phase multiplies.

        ``measure`` instructions do not collapse the state (the evaluation
        works with expectation values); with ``apply_measure_noise=True`` the
        noise model's readout bit-flip channel is applied to each measured
        qubit, which is the correct treatment for diagonal observables.
        """
        from .program import compile_circuit
        num_qubits = circuit.num_qubits
        if initial_state is not None \
                and initial_state.num_qubits != num_qubits:
            raise ValueError("initial state size mismatch")
        program = compile_circuit(circuit, noise_model=self.noise_model)
        rho = program.run_density_matrix(
            None if initial_state is None else initial_state.data,
            apply_measure_noise=apply_measure_noise)
        return DensityMatrix(rho)

    def expectation(self, circuit: QuantumCircuit, observable: PauliSum, *,
                    initial_state: Optional[DensityMatrix] = None,
                    trajectories: Optional[int] = None) -> float:
        """Noisy expectation value Tr(ρ H) of the prepared state.

        ``trajectories`` is accepted for signature parity with
        :class:`~repro.simulators.stabilizer.StabilizerSimulator` and ignored:
        the density-matrix expectation is exact.
        """
        values = self.expectation_many(circuit, observable,
                                       initial_state=initial_state)
        coefficients = np.array([float(np.real(c))
                                 for _, c in observable.terms()])
        return float(np.dot(coefficients, values))

    def expectation_many(self, circuit: QuantumCircuit, observable: PauliSum, *,
                         initial_state: Optional[DensityMatrix] = None,
                         trajectories: Optional[int] = None) -> np.ndarray:
        """Per-term noisy ⟨P_i⟩ from a **single** density-matrix evolution.

        The grouped-observable fast path: the circuit runs once and every
        term is read off the final ρ with the vectorized bitmask kernel.
        Symmetric readout bit flips damp each term by ``(1 − 2·p_meas)^w``
        (``w`` the term's weight), exactly as in :meth:`expectation`.  Values
        align with ``observable.terms()`` (coefficients are not applied);
        ``trajectories`` is accepted for signature parity and ignored.
        """
        state = self.run(circuit.without_measurements(), initial_state)
        values = state.expectation_many(observable)
        if self.noise_model is not None and self.noise_model.readout_error > 0:
            # Symmetric readout bit flips damp each Pauli term by
            # (1 - 2·p_meas)^weight; exact for uncorrelated symmetric flips.
            damping = 1.0 - 2.0 * self.noise_model.readout_error
            weights = np.array([pauli.weight()
                                for pauli, _ in observable.terms()])
            values = values * damping ** weights
        return values

    def sample(self, circuit: QuantumCircuit, shots: int) -> Dict[str, int]:
        """Sample computational-basis outcomes including readout errors."""
        state = self.run(circuit, apply_measure_noise=True)
        return state.sample_counts(shots, self._rng)
