"""Noise channels and noise models.

The paper's two simulation flows use the following error channels
(Sec. 5.2.1):

* NISQ regime — gate errors are depolarizing + thermal relaxation, measurement
  errors are bit-flip + thermal relaxation, idling errors are thermal
  relaxation;
* pQEC regime — gate and memory errors are depolarizing, measurement errors
  are bit-flips, and the injected ``Rz(θ)`` gates carry the Lao–Criger
  injection error rate.

This module provides the Kraus-operator channels consumed by the
density-matrix simulator, their Pauli-twirled approximations consumed by the
stabilizer / Pauli-propagation evaluators, and :class:`NoiseModel`, which maps
gate names to channels and knows how to annotate a circuit with error
locations.
"""

from __future__ import annotations

import hashlib
import itertools
import math
import struct
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..circuits.gates import PAULI_MATRICES

_PAULI_LABELS_1Q = ("I", "X", "Y", "Z")


def _kron_all(matrices: Sequence[np.ndarray]) -> np.ndarray:
    out = np.eye(1, dtype=complex)
    for matrix in matrices:
        out = np.kron(matrix, out)
    return out


def pauli_label_matrix(label: str) -> np.ndarray:
    """Matrix of a multi-qubit Pauli label (qubit 0 = least significant)."""
    return _kron_all([PAULI_MATRICES[c] for c in label])


class QuantumChannel:
    """A completely-positive trace-preserving map given by Kraus operators."""

    def __init__(self, kraus_operators: Sequence[np.ndarray], name: str = "channel"):
        ops = [np.asarray(op, dtype=complex) for op in kraus_operators]
        if not ops:
            raise ValueError("a channel needs at least one Kraus operator")
        dim = ops[0].shape[0]
        for op in ops:
            if op.shape != (dim, dim):
                raise ValueError("all Kraus operators must be square and equal-sized")
        self._kraus = ops
        self._dim = dim
        self.name = name
        self._validate()

    def _validate(self, atol: float = 1e-8) -> None:
        total = sum(op.conj().T @ op for op in self._kraus)
        if not np.allclose(total, np.eye(self._dim), atol=atol):
            raise ValueError(
                f"Kraus operators of {self.name!r} do not satisfy "
                f"Σ K†K = I (deviation {np.max(np.abs(total - np.eye(self._dim))):.2e})")

    @property
    def kraus_operators(self) -> List[np.ndarray]:
        return list(self._kraus)

    @property
    def num_qubits(self) -> int:
        return int(round(math.log2(self._dim)))

    def apply_to_density_matrix(self, rho: np.ndarray) -> np.ndarray:
        """Apply the channel to a density matrix of matching dimension."""
        out = np.zeros_like(rho)
        for op in self._kraus:
            out += op @ rho @ op.conj().T
        return out

    def compose(self, other: "QuantumChannel") -> "QuantumChannel":
        """Channel composition ``self ∘ other`` (other applied first)."""
        if self._dim != other._dim:
            raise ValueError("cannot compose channels of different dimension")
        ops = [a @ b for a in self._kraus for b in other._kraus]
        return QuantumChannel(ops, name=f"{self.name}∘{other.name}")

    def is_identity(self, atol: float = 1e-12) -> bool:
        probs = self.pauli_twirl_probabilities()
        identity_label = "I" * self.num_qubits
        return abs(probs.get(identity_label, 0.0) - 1.0) <= atol

    def fingerprint(self) -> str:
        """Stable content hash of the channel's Kraus operators (hex digest).

        Two channels built independently from bit-identical operator arrays
        share a fingerprint across processes and interpreter runs — the
        channel ``name`` does not contribute.  This is what lets the
        execution layer key caches on a noise model's *content* rather than
        its object identity.
        """
        hasher = hashlib.blake2b(digest_size=16)
        hasher.update(struct.pack("<I", self._dim))
        for op in self._kraus:
            hasher.update(np.ascontiguousarray(op, dtype=complex).tobytes())
        return hasher.hexdigest()

    def pauli_twirl_probabilities(self) -> Dict[str, float]:
        """Pauli-twirled approximation of the channel.

        Returns ``{pauli_label: probability}``; the probability of label P is
        ``Σ_k |Tr(P K_k)|² / dim²``, i.e. the diagonal of the chi matrix in
        the Pauli basis.  For a channel that is already a Pauli channel this
        is exact; for coherent / amplitude-damping channels this is the
        standard twirling approximation the paper cites (Ghosh et al.) for
        Clifford-level simulation.
        """
        num_qubits = self.num_qubits
        labels = ["".join(combo) for combo in
                  itertools.product(_PAULI_LABELS_1Q, repeat=num_qubits)]
        probabilities: Dict[str, float] = {}
        for label in labels:
            pauli = pauli_label_matrix(label)
            weight = 0.0
            for op in self._kraus:
                weight += abs(np.trace(pauli.conj().T @ op)) ** 2
            probabilities[label] = float(weight) / (self._dim ** 2)
        total = sum(probabilities.values())
        if total <= 0:
            raise ValueError("degenerate channel: zero total twirl weight")
        return {label: prob / total for label, prob in probabilities.items()}

    def __repr__(self):
        return f"QuantumChannel(name={self.name!r}, qubits={self.num_qubits}, kraus={len(self._kraus)})"


class PauliChannel(QuantumChannel):
    """A stochastic Pauli channel ``ρ → Σ_P p_P P ρ P``.

    This is the channel family that stabilizer simulation and the
    Pauli-propagation expectation engine can treat exactly.
    """

    def __init__(self, probabilities: Mapping[str, float], name: str = "pauli"):
        probs = {label.upper(): float(p) for label, p in probabilities.items()
                 if float(p) > 0.0}
        if not probs:
            raise ValueError("Pauli channel needs at least one nonzero probability")
        lengths = {len(label) for label in probs}
        if len(lengths) != 1:
            raise ValueError("all Pauli labels must have equal length")
        total = sum(probs.values())
        if total > 1.0 + 1e-9:
            raise ValueError(f"Pauli probabilities sum to {total} > 1")
        identity = "I" * lengths.pop()
        probs[identity] = probs.get(identity, 0.0) + max(0.0, 1.0 - total)
        self._probabilities = probs
        kraus = [math.sqrt(p) * pauli_label_matrix(label)
                 for label, p in probs.items()]
        super().__init__(kraus, name=name)

    @property
    def probabilities(self) -> Dict[str, float]:
        return dict(self._probabilities)

    def pauli_twirl_probabilities(self) -> Dict[str, float]:
        num_qubits = self.num_qubits
        labels = ["".join(combo) for combo in
                  itertools.product(_PAULI_LABELS_1Q, repeat=num_qubits)]
        return {label: self._probabilities.get(label, 0.0) for label in labels}

    def error_probability(self) -> float:
        """Probability that a non-identity Pauli is applied."""
        identity = "I" * self.num_qubits
        return 1.0 - self._probabilities.get(identity, 0.0)

    def sample(self, rng: np.random.Generator) -> str:
        labels = list(self._probabilities)
        probs = np.array([self._probabilities[l] for l in labels])
        probs = probs / probs.sum()
        return labels[int(rng.choice(len(labels), p=probs))]


# --------------------------------------------------------------------------
# Channel constructors
# --------------------------------------------------------------------------

def depolarizing_channel(error_probability: float, num_qubits: int = 1) -> PauliChannel:
    """Uniform depolarizing channel on ``num_qubits`` qubits.

    With probability ``error_probability`` one of the ``4^n - 1`` non-identity
    Paulis is applied uniformly at random.
    """
    if not 0.0 <= error_probability <= 1.0:
        raise ValueError("error probability must be in [0, 1]")
    labels = ["".join(c) for c in itertools.product(_PAULI_LABELS_1Q, repeat=num_qubits)]
    identity = "I" * num_qubits
    non_identity = [label for label in labels if label != identity]
    each = error_probability / len(non_identity)
    probs = {label: each for label in non_identity}
    probs[identity] = 1.0 - error_probability
    return PauliChannel(probs, name=f"depolarizing({error_probability:g}, {num_qubits}q)")


def bit_flip_channel(error_probability: float) -> PauliChannel:
    """X-error (bit flip) channel; models measurement flips in the paper."""
    return PauliChannel({"I": 1.0 - error_probability, "X": error_probability},
                        name=f"bit_flip({error_probability:g})")


def phase_flip_channel(error_probability: float) -> PauliChannel:
    return PauliChannel({"I": 1.0 - error_probability, "Z": error_probability},
                        name=f"phase_flip({error_probability:g})")


def pauli_error_channel(px: float, py: float, pz: float) -> PauliChannel:
    return PauliChannel({"I": 1.0 - px - py - pz, "X": px, "Y": py, "Z": pz},
                        name=f"pauli({px:g},{py:g},{pz:g})")


def amplitude_damping_channel(gamma: float) -> QuantumChannel:
    """Amplitude damping (T1 decay) with damping probability ``gamma``."""
    if not 0.0 <= gamma <= 1.0:
        raise ValueError("gamma must be in [0, 1]")
    k0 = np.array([[1, 0], [0, math.sqrt(1 - gamma)]], dtype=complex)
    k1 = np.array([[0, math.sqrt(gamma)], [0, 0]], dtype=complex)
    return QuantumChannel([k0, k1], name=f"amplitude_damping({gamma:g})")


def phase_damping_channel(lam: float) -> QuantumChannel:
    """Pure dephasing with dephasing probability ``lam``."""
    if not 0.0 <= lam <= 1.0:
        raise ValueError("lambda must be in [0, 1]")
    k0 = np.array([[1, 0], [0, math.sqrt(1 - lam)]], dtype=complex)
    k1 = np.array([[0, 0], [0, math.sqrt(lam)]], dtype=complex)
    return QuantumChannel([k0, k1], name=f"phase_damping({lam:g})")


def thermal_relaxation_channel(t1: float, t2: float, gate_time: float) -> QuantumChannel:
    """Thermal relaxation channel for a gate of duration ``gate_time``.

    Modelled as amplitude damping with ``γ = 1 - exp(-t/T1)`` composed with
    pure dephasing chosen so the total coherence decay matches
    ``exp(-t/T2)``.  Requires ``T2 ≤ 2·T1``.
    """
    if t1 <= 0 or t2 <= 0 or gate_time < 0:
        raise ValueError("T1, T2 must be positive and gate_time non-negative")
    if t2 > 2 * t1 + 1e-12:
        raise ValueError("unphysical relaxation times: T2 must be ≤ 2·T1")
    gamma = 1.0 - math.exp(-gate_time / t1)
    total_dephasing = math.exp(-gate_time / t2)
    amplitude_part = math.exp(-gate_time / (2.0 * t1))
    residual = total_dephasing / amplitude_part
    residual = min(max(residual, 0.0), 1.0)
    lam = 1.0 - residual ** 2
    channel = amplitude_damping_channel(gamma).compose(phase_damping_channel(lam))
    channel.name = f"thermal_relaxation(T1={t1:g}, T2={t2:g}, t={gate_time:g})"
    return channel


#: The qubit-reset channel: project onto |0⟩/|1⟩, then re-prepare |0⟩.
#: Hoisted to a module constant so the density-matrix hot path (and the
#: circuit compiler) never rebuilds — and never re-validates — its Kraus
#: operators per reset instruction.
RESET_CHANNEL = QuantumChannel(
    [np.array([[1, 0], [0, 0]], dtype=complex),   # keep |0⟩
     np.array([[0, 1], [0, 0]], dtype=complex)],  # lower |1⟩ → |0⟩
    name="reset")


def two_qubit_tensor_channel(channel_a: QuantumChannel,
                             channel_b: QuantumChannel) -> QuantumChannel:
    """Tensor product channel acting independently on two qubits."""
    kraus = [np.kron(kb, ka)
             for ka in channel_a.kraus_operators
             for kb in channel_b.kraus_operators]
    return QuantumChannel(kraus, name=f"{channel_a.name}⊗{channel_b.name}")


def pauli_twirl(channel: QuantumChannel) -> PauliChannel:
    """The Pauli-twirled (stochastic Pauli) approximation of a channel."""
    probs = channel.pauli_twirl_probabilities()
    return PauliChannel(probs, name=f"twirl({channel.name})")


# --------------------------------------------------------------------------
# Noise model
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class ErrorLocation:
    """A noise channel attached to specific qubits at a specific circuit point."""

    channel: QuantumChannel
    qubits: Tuple[int, ...]
    instruction_index: int
    kind: str  # "gate", "idle", "measure", "injection"

    @property
    def pauli_probabilities(self) -> Dict[str, float]:
        return self.channel.pauli_twirl_probabilities()


class NoiseModel:
    """Maps gate names to error channels and annotates circuits with them.

    * ``add_gate_error(channel, gate_names)`` — channel applied after each
      matching gate, on the gate's qubits;
    * ``add_readout_error(p)`` — classical bit-flip probability applied to
      measurement outcomes (also exposed as a bit-flip channel location so
      the expectation-based evaluators can account for it);
    * ``add_idle_error(channel)`` — channel applied to every idle qubit in
      every layer of the scheduled circuit (the paper's idling / memory
      errors).
    """

    def __init__(self, name: str = "noise_model"):
        self.name = name
        self._gate_errors: Dict[str, List[QuantumChannel]] = {}
        self._idle_channel: Optional[QuantumChannel] = None
        self._readout_error: float = 0.0
        self._version = 0
        self._fingerprint_cache: Optional[Tuple[int, str]] = None

    # -- construction ---------------------------------------------------------
    def add_gate_error(self, channel: QuantumChannel,
                       gate_names: Iterable[str]) -> "NoiseModel":
        for name in gate_names:
            self._gate_errors.setdefault(name.lower(), []).append(channel)
        self._version += 1
        return self

    def add_idle_error(self, channel: QuantumChannel) -> "NoiseModel":
        if channel.num_qubits != 1:
            raise ValueError("idle error must be a single-qubit channel")
        self._idle_channel = channel
        self._version += 1
        return self

    def add_readout_error(self, probability: float) -> "NoiseModel":
        if not 0.0 <= probability <= 1.0:
            raise ValueError("readout error probability must be in [0, 1]")
        self._readout_error = float(probability)
        self._version += 1
        return self

    @property
    def version(self) -> int:
        """Mutation counter: bumps on every ``add_*`` call.

        Consumers that key caches on a noise model's identity combine it
        with this counter so in-place edits invalidate stale entries.
        """
        return self._version

    def fingerprint(self) -> str:
        """Stable content hash of the model (hex digest).

        Covers every gate channel (by gate name and attachment order), the
        idle channel and the readout-error probability; the model ``name``
        does not contribute.  Two models with bit-identical channels share a
        fingerprint across processes and runs, which is what the execution
        layer's persistent :class:`~repro.execution.disk_cache.DiskExpectationCache`
        keys entries on; an in-place ``add_*`` edit changes the content and
        therefore the fingerprint.  The digest is memoized per
        :attr:`version`, so hot cache-key paths do not rehash Kraus arrays.
        """
        cached = self._fingerprint_cache
        if cached is not None and cached[0] == self._version:
            return cached[1]
        hasher = hashlib.blake2b(digest_size=16)
        for gate_name in sorted(self._gate_errors):
            hasher.update(b"g" + gate_name.encode("utf-8") + b"\x00")
            for channel in self._gate_errors[gate_name]:
                hasher.update(channel.fingerprint().encode("ascii"))
        if self._idle_channel is not None:
            hasher.update(b"i" + self._idle_channel.fingerprint().encode("ascii"))
        hasher.update(b"r" + struct.pack("<d", self._readout_error))
        digest = hasher.hexdigest()
        self._fingerprint_cache = (self._version, digest)
        return digest

    # -- queries -----------------------------------------------------------------
    @property
    def readout_error(self) -> float:
        return self._readout_error

    @property
    def idle_channel(self) -> Optional[QuantumChannel]:
        return self._idle_channel

    def gate_channels(self, gate_name: str) -> List[QuantumChannel]:
        return list(self._gate_errors.get(gate_name.lower(), []))

    def has_noise(self) -> bool:
        return bool(self._gate_errors) or self._idle_channel is not None \
            or self._readout_error > 0

    # -- circuit annotation ----------------------------------------------------------
    def error_locations(self, circuit: QuantumCircuit,
                        include_idle: bool = True) -> List[ErrorLocation]:
        """All error locations induced by this model on ``circuit``.

        Gate errors are attached per instruction.  Idle errors are attached
        per (layer, idle qubit) pair using the circuit's greedy layering,
        indexed by the layer's last instruction.  Readout errors appear as
        bit-flip locations on measured qubits.
        """
        locations: List[ErrorLocation] = []
        for index, inst in enumerate(circuit):
            if inst.name in ("barrier",):
                continue
            if inst.name == "measure":
                if self._readout_error > 0:
                    locations.append(ErrorLocation(
                        bit_flip_channel(self._readout_error),
                        inst.qubits, index, "measure"))
                continue
            for channel in self._gate_errors.get(inst.name, []):
                if channel.num_qubits != len(inst.qubits):
                    raise ValueError(
                        f"channel {channel.name!r} acts on {channel.num_qubits} qubits "
                        f"but gate {inst.name!r} acts on {len(inst.qubits)}")
                locations.append(ErrorLocation(channel, inst.qubits, index, "gate"))
        if include_idle and self._idle_channel is not None:
            instruction_positions = {id(inst): i for i, inst in enumerate(circuit)}
            for layer in circuit.layers():
                busy = set()
                for inst in layer:
                    busy.update(inst.qubits)
                last_index = max(instruction_positions[id(inst)] for inst in layer)
                for qubit in range(circuit.num_qubits):
                    if qubit not in busy:
                        locations.append(ErrorLocation(
                            self._idle_channel, (qubit,), last_index, "idle"))
        return locations

    def __repr__(self):
        gates = {name: len(chs) for name, chs in self._gate_errors.items()}
        return (f"NoiseModel(name={self.name!r}, gate_errors={gates}, "
                f"idle={self._idle_channel is not None}, "
                f"readout={self._readout_error:g})")
