"""Quantum state simulators and noise models.

All four engines share the keyword surface
``expectation(circuit, observable, *, initial_state=None, trajectories=None)``
and its grouped counterpart ``expectation_many(...) -> np.ndarray`` (per-term
values from a single evolution), which is what lets the execution layer treat
them interchangeably behind the :class:`repro.execution.Backend` protocol.
"""

from .density_matrix import DensityMatrix, DensityMatrixSimulator
from .kernels import (density_matrix_term_expectations, observable_bit_matrices,
                      statevector_term_expectations)
from .noise import (ErrorLocation, NoiseModel, PauliChannel, QuantumChannel,
                    amplitude_damping_channel, bit_flip_channel,
                    depolarizing_channel, pauli_error_channel, pauli_twirl,
                    phase_damping_channel, phase_flip_channel,
                    thermal_relaxation_channel, two_qubit_tensor_channel)
from .pauli_propagation import (PauliPropagationSimulator, PauliPropagator,
                                expectation_value)
from .program import (CompiledProgram, compile_circuit, program_cache_counters,
                      run_batch, run_interpreted)
from .stabilizer import (DenseStabilizerState, StabilizerSimulator,
                         StabilizerState)
from .statevector import Statevector, StatevectorSimulator, circuit_unitary

__all__ = [
    "CompiledProgram",
    "DensityMatrix",
    "DensityMatrixSimulator",
    "ErrorLocation",
    "NoiseModel",
    "PauliChannel",
    "PauliPropagationSimulator",
    "PauliPropagator",
    "QuantumChannel",
    "DenseStabilizerState",
    "StabilizerSimulator",
    "StabilizerState",
    "Statevector",
    "StatevectorSimulator",
    "amplitude_damping_channel",
    "bit_flip_channel",
    "circuit_unitary",
    "compile_circuit",
    "density_matrix_term_expectations",
    "depolarizing_channel",
    "expectation_value",
    "observable_bit_matrices",
    "program_cache_counters",
    "run_batch",
    "run_interpreted",
    "statevector_term_expectations",
    "pauli_error_channel",
    "pauli_twirl",
    "phase_damping_channel",
    "phase_flip_channel",
    "thermal_relaxation_channel",
    "two_qubit_tensor_channel",
]
