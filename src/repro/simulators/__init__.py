"""Quantum state simulators and noise models."""

from .density_matrix import DensityMatrix, DensityMatrixSimulator
from .noise import (ErrorLocation, NoiseModel, PauliChannel, QuantumChannel,
                    amplitude_damping_channel, bit_flip_channel,
                    depolarizing_channel, pauli_error_channel, pauli_twirl,
                    phase_damping_channel, phase_flip_channel,
                    thermal_relaxation_channel, two_qubit_tensor_channel)
from .pauli_propagation import (PauliPropagationSimulator, PauliPropagator,
                                expectation_value)
from .stabilizer import StabilizerSimulator, StabilizerState
from .statevector import Statevector, StatevectorSimulator, circuit_unitary

__all__ = [
    "DensityMatrix",
    "DensityMatrixSimulator",
    "ErrorLocation",
    "NoiseModel",
    "PauliChannel",
    "PauliPropagationSimulator",
    "PauliPropagator",
    "QuantumChannel",
    "StabilizerSimulator",
    "StabilizerState",
    "Statevector",
    "StatevectorSimulator",
    "amplitude_damping_channel",
    "bit_flip_channel",
    "circuit_unitary",
    "depolarizing_channel",
    "expectation_value",
    "pauli_error_channel",
    "pauli_twirl",
    "phase_damping_channel",
    "phase_flip_channel",
    "thermal_relaxation_channel",
    "two_qubit_tensor_channel",
]
