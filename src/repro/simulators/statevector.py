"""Dense statevector simulator.

Used for noiseless reference energies, ansatz expressibility studies
(Fig. 14's ideal-energy ratio), and as ground truth in the test suite.  The
qubit-index convention is little-endian: qubit ``q`` is bit ``q`` of the
computational-basis index.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Sequence

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..operators.pauli import PauliSum


class Statevector:
    """A normalized pure state on ``num_qubits`` qubits."""

    def __init__(self, data: np.ndarray, num_qubits: Optional[int] = None):
        data = np.asarray(data, dtype=complex).ravel()
        inferred = int(round(math.log2(data.size)))
        if 2 ** inferred != data.size:
            raise ValueError("statevector length must be a power of two")
        if num_qubits is not None and num_qubits != inferred:
            raise ValueError("num_qubits does not match data length")
        self._data = data
        self._num_qubits = inferred

    @classmethod
    def zero_state(cls, num_qubits: int) -> "Statevector":
        data = np.zeros(2 ** num_qubits, dtype=complex)
        data[0] = 1.0
        return cls(data)

    @classmethod
    def from_bitstring(cls, bits: Sequence[int]) -> "Statevector":
        num_qubits = len(bits)
        index = sum((1 << q) for q, bit in enumerate(bits) if bit)
        data = np.zeros(2 ** num_qubits, dtype=complex)
        data[index] = 1.0
        return cls(data)

    @property
    def num_qubits(self) -> int:
        return self._num_qubits

    @property
    def data(self) -> np.ndarray:
        return self._data

    def norm(self) -> float:
        return float(np.linalg.norm(self._data))

    def normalized(self) -> "Statevector":
        return Statevector(self._data / self.norm())

    def probabilities(self) -> np.ndarray:
        return np.abs(self._data) ** 2

    def fidelity(self, other: "Statevector") -> float:
        """|⟨ψ|φ⟩|² between two pure states."""
        return float(abs(np.vdot(self._data, other._data)) ** 2)

    def expectation(self, observable: PauliSum) -> float:
        return observable.expectation(self._data)

    def expectation_many(self, observable: PauliSum) -> np.ndarray:
        """⟨ψ|P_i|ψ⟩ for every bare Pauli term of ``observable``.

        One vectorized bitmask/phase kernel pass over the state per term
        (see :mod:`repro.simulators.kernels`); values align with
        ``observable.terms()`` and exclude the coefficients.
        """
        from .kernels import statevector_term_expectations
        if observable.num_qubits != self._num_qubits:
            raise ValueError("observable acts on a different number of qubits")
        return statevector_term_expectations(self._data, observable=observable)

    def sample_counts(self, shots: int, rng: Optional[np.random.Generator] = None
                      ) -> Dict[str, int]:
        """Sample measurement outcomes in the computational basis.

        Keys are bitstrings with qubit 0 as the left-most character, matching
        the Pauli-label convention.
        """
        rng = rng or np.random.default_rng()
        probabilities = self.probabilities()
        outcomes = rng.choice(len(probabilities), size=shots, p=probabilities)
        return counts_from_outcomes(outcomes, self._num_qubits)


def counts_from_outcomes(outcomes: np.ndarray, num_qubits: int
                         ) -> Dict[str, int]:
    """Histogram integer outcomes into bitstring counts, vectorized.

    One ``np.unique`` pass plus a single vectorized bit-unpack replaces the
    per-shot Python bitstring loop; only the distinct outcomes ever touch
    Python.  Keys put qubit 0 left-most (the Pauli-label convention).
    """
    unique, tallies = np.unique(np.asarray(outcomes, dtype=np.int64),
                                return_counts=True)
    bit_chars = (((unique[:, None] >> np.arange(num_qubits)) & 1)
                 .astype(np.uint8) + ord("0"))
    return {row.tobytes().decode("ascii"): int(count)
            for row, count in zip(bit_chars, tallies)}


class StatevectorSimulator:
    """Executes circuits on dense statevectors (no noise).

    The exact noiseless reference engine.  Circuits are lowered through
    :func:`repro.simulators.program.compile_circuit` — resolved matrices,
    fused adjacent gates, diagonal gates as phase vectors — and the compiled
    program is cached by circuit fingerprint, so optimizer re-queries skip
    straight to execution; memory is O(2^n).  Shares the package-wide
    ``expectation(circuit, observable, *, initial_state=None,
    trajectories=None)`` and ``expectation_many(...)`` keyword surface with
    the other three simulators, which is what lets the execution layer swap
    them behind one :class:`~repro.execution.Backend` protocol.  Example::

        simulator = StatevectorSimulator()
        energy = simulator.expectation(circuit, hamiltonian)
        per_term = simulator.expectation_many(circuit, hamiltonian)
    """

    def __init__(self, seed: Optional[int] = None):
        self._rng = np.random.default_rng(seed)

    def run(self, circuit: QuantumCircuit,
            initial_state: Optional[Statevector] = None) -> Statevector:
        """Simulate ``circuit`` (ignoring measurements) and return the state."""
        from .program import compile_circuit
        if initial_state is not None \
                and initial_state.num_qubits != circuit.num_qubits:
            raise ValueError("initial state size mismatch")
        program = compile_circuit(circuit)
        state = program.run_statevector(
            None if initial_state is None else initial_state.data,
            rng=self._rng)
        return Statevector(state)

    def expectation(self, circuit: QuantumCircuit, observable: PauliSum, *,
                    initial_state: Optional[Statevector] = None,
                    trajectories: Optional[int] = None) -> float:
        """⟨H⟩ of the state prepared by ``circuit`` (noiseless).

        ``trajectories`` is accepted for signature parity with the other
        simulators and ignored: the statevector expectation is exact.
        """
        state = self.run(circuit.without_measurements(), initial_state)
        return state.expectation(observable)

    def expectation_many(self, circuit: QuantumCircuit, observable: PauliSum, *,
                         initial_state: Optional[Statevector] = None,
                         trajectories: Optional[int] = None) -> np.ndarray:
        """Per-term ⟨P_i⟩ of the prepared state from a **single** evolution.

        The grouped-observable fast path: the circuit is simulated once and
        every term of ``observable`` is evaluated from the final state with
        the vectorized bitmask kernel.  Values align with
        ``observable.terms()`` (coefficients are not applied);
        ``trajectories`` is accepted for signature parity and ignored.
        """
        state = self.run(circuit.without_measurements(), initial_state)
        return state.expectation_many(observable)

    def sample(self, circuit: QuantumCircuit, shots: int) -> Dict[str, int]:
        state = self.run(circuit.without_measurements())
        return state.sample_counts(shots, self._rng)


def circuit_unitary(circuit: QuantumCircuit) -> np.ndarray:
    """Dense unitary of a (measurement-free) circuit. Exponential in qubits.

    The circuit is compiled once and the whole computational basis is pushed
    through :func:`repro.simulators.program.run_batch` as one ``(2^n, 2^n)``
    stacked pass — one contraction per compiled op instead of ``2^n``
    separate simulations.
    """
    from .program import compile_circuit, run_batch
    num_qubits = circuit.num_qubits
    dim = 2 ** num_qubits
    program = compile_circuit(circuit.without_measurements())
    basis = np.eye(dim, dtype=complex)
    outputs = run_batch([program] * dim, initial_states=basis)
    # Row b of `outputs` is U|b>; the unitary's columns are those kets.
    return np.ascontiguousarray(outputs.T)
