"""Dense statevector simulator.

Used for noiseless reference energies, ansatz expressibility studies
(Fig. 14's ideal-energy ratio), and as ground truth in the test suite.  The
qubit-index convention is little-endian: qubit ``q`` is bit ``q`` of the
computational-basis index.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Optional, Sequence

import numpy as np

from ..circuits.circuit import Instruction, QuantumCircuit
from ..operators.pauli import PauliSum


class Statevector:
    """A normalized pure state on ``num_qubits`` qubits."""

    def __init__(self, data: np.ndarray, num_qubits: Optional[int] = None):
        data = np.asarray(data, dtype=complex).ravel()
        inferred = int(round(math.log2(data.size)))
        if 2 ** inferred != data.size:
            raise ValueError("statevector length must be a power of two")
        if num_qubits is not None and num_qubits != inferred:
            raise ValueError("num_qubits does not match data length")
        self._data = data
        self._num_qubits = inferred

    @classmethod
    def zero_state(cls, num_qubits: int) -> "Statevector":
        data = np.zeros(2 ** num_qubits, dtype=complex)
        data[0] = 1.0
        return cls(data)

    @classmethod
    def from_bitstring(cls, bits: Sequence[int]) -> "Statevector":
        num_qubits = len(bits)
        index = sum((1 << q) for q, bit in enumerate(bits) if bit)
        data = np.zeros(2 ** num_qubits, dtype=complex)
        data[index] = 1.0
        return cls(data)

    @property
    def num_qubits(self) -> int:
        return self._num_qubits

    @property
    def data(self) -> np.ndarray:
        return self._data

    def norm(self) -> float:
        return float(np.linalg.norm(self._data))

    def normalized(self) -> "Statevector":
        return Statevector(self._data / self.norm())

    def probabilities(self) -> np.ndarray:
        return np.abs(self._data) ** 2

    def fidelity(self, other: "Statevector") -> float:
        """|⟨ψ|φ⟩|² between two pure states."""
        return float(abs(np.vdot(self._data, other._data)) ** 2)

    def expectation(self, observable: PauliSum) -> float:
        return observable.expectation(self._data)

    def expectation_many(self, observable: PauliSum) -> np.ndarray:
        """⟨ψ|P_i|ψ⟩ for every bare Pauli term of ``observable``.

        One vectorized bitmask/phase kernel pass over the state per term
        (see :mod:`repro.simulators.kernels`); values align with
        ``observable.terms()`` and exclude the coefficients.
        """
        from .kernels import statevector_term_expectations
        if observable.num_qubits != self._num_qubits:
            raise ValueError("observable acts on a different number of qubits")
        return statevector_term_expectations(self._data, observable=observable)

    def sample_counts(self, shots: int, rng: Optional[np.random.Generator] = None
                      ) -> Dict[str, int]:
        """Sample measurement outcomes in the computational basis.

        Keys are bitstrings with qubit 0 as the left-most character, matching
        the Pauli-label convention.
        """
        rng = rng or np.random.default_rng()
        probabilities = self.probabilities()
        outcomes = rng.choice(len(probabilities), size=shots, p=probabilities)
        counts: Dict[str, int] = {}
        for outcome in outcomes:
            bits = "".join(str((outcome >> q) & 1) for q in range(self._num_qubits))
            counts[bits] = counts.get(bits, 0) + 1
        return counts


def _apply_unitary(state: np.ndarray, matrix: np.ndarray,
                   qubits: Sequence[int], num_qubits: int) -> np.ndarray:
    """Apply ``matrix`` to ``qubits`` of a statevector via tensor contraction."""
    k = len(qubits)
    tensor = state.reshape([2] * num_qubits)
    # Axis for qubit q is (num_qubits - 1 - q) in C-order reshaping.
    axes = [num_qubits - 1 - q for q in qubits]
    gate_tensor = matrix.reshape([2] * (2 * k))
    # gate indices: first k are output (row), last k are input (column).
    # The matrix convention is: row/col index bit order matches `qubits`
    # little-endian, i.e. qubits[0] is the least-significant bit.
    # Reorder gate tensor axes so that the slowest-varying tensor axis is
    # qubits[-1] (the most significant bit of the matrix index).
    tensor = np.tensordot(gate_tensor, tensor, axes=(list(range(k, 2 * k)),
                                                     list(reversed(axes))))
    # tensordot put the new output axes first in the order qubits[k-1..0];
    # move them back to their original positions.
    current = list(range(k))
    destinations = list(reversed(axes))
    tensor = np.moveaxis(tensor, current, destinations)
    return tensor.reshape(-1)


class StatevectorSimulator:
    """Executes circuits on dense statevectors (no noise).

    The exact noiseless reference engine: gates are applied by tensor
    contraction, so memory is O(2^n).  Shares the package-wide
    ``expectation(circuit, observable, *, initial_state=None,
    trajectories=None)`` and ``expectation_many(...)`` keyword surface with
    the other three simulators, which is what lets the execution layer swap
    them behind one :class:`~repro.execution.Backend` protocol.  Example::

        simulator = StatevectorSimulator()
        energy = simulator.expectation(circuit, hamiltonian)
        per_term = simulator.expectation_many(circuit, hamiltonian)
    """

    def __init__(self, seed: Optional[int] = None):
        self._rng = np.random.default_rng(seed)

    def run(self, circuit: QuantumCircuit,
            initial_state: Optional[Statevector] = None) -> Statevector:
        """Simulate ``circuit`` (ignoring measurements) and return the state."""
        if initial_state is None:
            state = Statevector.zero_state(circuit.num_qubits).data.copy()
        else:
            if initial_state.num_qubits != circuit.num_qubits:
                raise ValueError("initial state size mismatch")
            state = initial_state.data.copy()
        num_qubits = circuit.num_qubits
        for inst in circuit:
            if inst.name in ("barrier", "measure"):
                continue
            if inst.name == "reset":
                state = self._reset_qubit(state, inst.qubits[0], num_qubits)
                continue
            matrix = inst.gate.matrix()
            state = _apply_unitary(state, matrix, inst.qubits, num_qubits)
        return Statevector(state)

    def _reset_qubit(self, state: np.ndarray, qubit: int, num_qubits: int) -> np.ndarray:
        """Project qubit onto |0⟩/|1⟩ probabilistically, then set it to |0⟩."""
        dim = state.size
        indices = np.arange(dim)
        mask_one = (indices >> qubit) & 1 == 1
        prob_one = float(np.sum(np.abs(state[mask_one]) ** 2))
        if self._rng.random() < prob_one:
            new_state = np.zeros_like(state)
            # outcome 1: move amplitude from |...1...> to |...0...>
            new_state[indices[mask_one] ^ (1 << qubit)] = state[mask_one]
            norm = math.sqrt(prob_one)
        else:
            new_state = state.copy()
            new_state[mask_one] = 0.0
            norm = math.sqrt(max(1.0 - prob_one, 1e-300))
        return new_state / norm

    def expectation(self, circuit: QuantumCircuit, observable: PauliSum, *,
                    initial_state: Optional[Statevector] = None,
                    trajectories: Optional[int] = None) -> float:
        """⟨H⟩ of the state prepared by ``circuit`` (noiseless).

        ``trajectories`` is accepted for signature parity with the other
        simulators and ignored: the statevector expectation is exact.
        """
        state = self.run(circuit.without_measurements(), initial_state)
        return state.expectation(observable)

    def expectation_many(self, circuit: QuantumCircuit, observable: PauliSum, *,
                         initial_state: Optional[Statevector] = None,
                         trajectories: Optional[int] = None) -> np.ndarray:
        """Per-term ⟨P_i⟩ of the prepared state from a **single** evolution.

        The grouped-observable fast path: the circuit is simulated once and
        every term of ``observable`` is evaluated from the final state with
        the vectorized bitmask kernel.  Values align with
        ``observable.terms()`` (coefficients are not applied);
        ``trajectories`` is accepted for signature parity and ignored.
        """
        state = self.run(circuit.without_measurements(), initial_state)
        return state.expectation_many(observable)

    def sample(self, circuit: QuantumCircuit, shots: int) -> Dict[str, int]:
        state = self.run(circuit.without_measurements())
        return state.sample_counts(shots, self._rng)


def circuit_unitary(circuit: QuantumCircuit) -> np.ndarray:
    """Dense unitary of a (measurement-free) circuit. Exponential in qubits."""
    num_qubits = circuit.num_qubits
    dim = 2 ** num_qubits
    unitary = np.eye(dim, dtype=complex)
    simulator = StatevectorSimulator()
    columns = []
    for basis_index in range(dim):
        data = np.zeros(dim, dtype=complex)
        data[basis_index] = 1.0
        out = simulator.run(circuit.without_measurements(), Statevector(data))
        columns.append(out.data)
    unitary = np.stack(columns, axis=1)
    return unitary
