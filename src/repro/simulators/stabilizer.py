"""Aaronson–Gottesman (CHP) stabilizer-tableau simulator.

This is the from-scratch substitute for Stim used by the paper for

* Clifford-state ("stabilizer proxy") evaluation of 16–100 qubit VQAs
  (Sec. 5.2.2), and
* deriving error-corrected operation error rates by simulating surface-code
  circuits (Sec. 5.2.1) — see :mod:`repro.qec.memory_experiment`.

The tableau stores ``2n`` rows (n destabilizers followed by n stabilizers)
with X/Z bit matrices and a sign bit per row.  Since PR 7 the row bits live
**bit-packed** in ``uint64`` words (:mod:`repro.qec.bitops` layout: bit
``q`` of a row in word ``q // 64`` at position ``q % 64``): gates are O(1)
column-mask updates, and the rowsum — the measurement hot loop that was a
per-qubit Python loop — is a handful of word-wise boolean identities whose
±i phase tallies come from two popcounts.  The byte-per-bit implementation
survives as :class:`DenseStabilizerState`, the differential-testing
reference (``tests/test_properties.py`` holds the two bit-for-bit equal,
including the measurement draw stream).

Supported Clifford gates: H, S, Sdg, X, Y, Z, CX, CZ, SWAP, plus
``rz``/``rx``/``ry`` at multiples of π/2.  Pauli errors can be injected
directly (used by Monte-Carlo noisy trajectories), and expectation values
of Pauli observables are computed exactly.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..circuits.gates import is_clifford_angle
from ..operators.pauli import PauliString, PauliSum
from .._bitops import pack_rows, packed_words, popcount, row_parity, \
    unpack_rows
from .noise import NoiseModel, PauliChannel, pauli_twirl


class _StabilizerOps:
    """Clifford conveniences shared by both tableau implementations.

    Everything here is defined in terms of the primitive gate/measure
    methods the concrete classes provide, so the packed state and the dense
    reference cannot drift apart on derived operations.
    """

    def apply_sdg(self, qubit: int) -> None:
        # Sdg = Z · S
        self.apply_z(qubit)
        self.apply_s(qubit)

    def apply_cz(self, qubit_a: int, qubit_b: int) -> None:
        self.apply_h(qubit_b)
        self.apply_cx(qubit_a, qubit_b)
        self.apply_h(qubit_b)

    def apply_rz_clifford(self, theta: float, qubit: int) -> None:
        """Apply Rz at a multiple of π/2 (up to global phase)."""
        if not is_clifford_angle(theta):
            raise ValueError(f"Rz angle {theta} is not a Clifford angle")
        quarter_turns = int(round(theta / (math.pi / 2.0))) % 4
        if quarter_turns == 1:
            self.apply_s(qubit)
        elif quarter_turns == 2:
            self.apply_z(qubit)
        elif quarter_turns == 3:
            self.apply_sdg(qubit)

    def apply_pauli(self, pauli: PauliString) -> None:
        """Apply a Pauli operator (e.g. an injected error) to the state."""
        if pauli.num_qubits != self.num_qubits:
            raise ValueError("Pauli string size mismatch")
        for qubit in pauli.support():
            label = pauli.pauli_on(qubit)
            if label == "X":
                self.apply_x(qubit)
            elif label == "Y":
                self.apply_y(qubit)
            elif label == "Z":
                self.apply_z(qubit)

    def apply_pauli_label(self, label: str, qubits: Sequence[int]) -> None:
        """Apply a short Pauli label to specific qubits (for channel sampling)."""
        for character, qubit in zip(label, qubits):
            if character == "X":
                self.apply_x(qubit)
            elif character == "Y":
                self.apply_y(qubit)
            elif character == "Z":
                self.apply_z(qubit)

    def reset(self, qubit: int,
              rng: Optional[np.random.Generator] = None) -> None:
        outcome = self.measure(qubit, rng)
        if outcome == 1:
            self.apply_x(qubit)

    def expectation(self, observable: PauliSum) -> float:
        total = 0.0
        for pauli, coeff in observable.terms():
            total += float(np.real(coeff)) * self.expectation_pauli(pauli)
        return total


class StabilizerState(_StabilizerOps):
    """A pure stabilizer state on ``num_qubits`` qubits (packed CHP tableau).

    Row bits are stored bit-packed: ``x_words``/``z_words`` are
    ``(2n, packed_words(n))`` uint64 in the :func:`repro.qec.bitops.pack_rows`
    layout, ``r`` the per-row sign bits.  The byte-matrix row API survives
    as the read-only :attr:`x`/:attr:`z` properties (unpacked snapshots) so
    existing row-level callers keep working; mutation goes through the gate
    methods.  Bitwise-identical in behaviour — including every measurement
    RNG draw — to :class:`DenseStabilizerState`.
    """

    def __init__(self, num_qubits: int):
        if num_qubits < 1:
            raise ValueError("need at least one qubit")
        self.num_qubits = int(num_qubits)
        n = self.num_qubits
        self.num_words = packed_words(n)
        # Rows 0..n-1: destabilizers (initially X_i); rows n..2n-1: stabilizers (Z_i).
        self.x_words = np.zeros((2 * n, self.num_words), dtype=np.uint64)
        self.z_words = np.zeros((2 * n, self.num_words), dtype=np.uint64)
        self.r = np.zeros(2 * n, dtype=np.uint8)
        qubits = np.arange(n)
        bits = np.uint64(1) << (qubits & 63).astype(np.uint64)
        self.x_words[qubits, qubits >> 6] = bits
        self.z_words[n + qubits, qubits >> 6] = bits

    # -- helpers ------------------------------------------------------------
    def copy(self) -> "StabilizerState":
        new = StabilizerState.__new__(StabilizerState)
        new.num_qubits = self.num_qubits
        new.num_words = self.num_words
        new.x_words = self.x_words.copy()
        new.z_words = self.z_words.copy()
        new.r = self.r.copy()
        return new

    @property
    def x(self) -> np.ndarray:
        """Unpacked ``(2n, n)`` X-bit matrix (a snapshot, not a view)."""
        return unpack_rows(self.x_words, self.num_qubits)

    @property
    def z(self) -> np.ndarray:
        """Unpacked ``(2n, n)`` Z-bit matrix (a snapshot, not a view)."""
        return unpack_rows(self.z_words, self.num_qubits)

    @staticmethod
    def _column(qubit: int) -> Tuple[int, np.uint64]:
        """``(word index, bit mask)`` addressing one qubit's tableau column."""
        return qubit >> 6, np.uint64(1 << (qubit & 63))

    @staticmethod
    def _phase_tally(x1: np.ndarray, z1: np.ndarray,
                     x2: np.ndarray, z2: np.ndarray) -> int:
        """Σ_j g(x1,z1,x2,z2) over packed Pauli rows, via two popcounts.

        The Aaronson–Gottesman ``g`` is +1 on the bit patterns
        Y·Z / X·Y / Z·X and −1 on Y·X / X·Z / Z·Y; each case is one
        word-wise boolean minterm, and every minterm contains a
        non-negated operand, so zero tail bits can never contribute.
        """
        plus = ((x1 & z1 & ~x2 & z2)
                | (x1 & ~z1 & x2 & z2)
                | (~x1 & z1 & x2 & ~z2))
        minus = ((x1 & z1 & x2 & ~z2)
                 | (x1 & ~z1 & ~x2 & z2)
                 | (~x1 & z1 & x2 & z2))
        return int(popcount(plus)) - int(popcount(minus))

    def _rowsum_into(self, target_x: np.ndarray, target_z: np.ndarray,
                     target_phase: int,
                     row: int) -> Tuple[np.ndarray, np.ndarray, int]:
        """Multiply an external packed Pauli row by tableau ``row``.

        Phases are in units of i²; inputs/outputs are packed word rows.
        """
        row_x = self.x_words[row]
        row_z = self.z_words[row]
        phase = (2 * int(self.r[row]) + target_phase
                 + self._phase_tally(row_x, row_z, target_x, target_z))
        return target_x ^ row_x, target_z ^ row_z, phase % 4

    def _rowsum(self, h: int, i: int) -> None:
        """Tableau rowsum: row h ← row h · row i (Aaronson–Gottesman)."""
        new_x, new_z, phase = self._rowsum_into(
            self.x_words[h].copy(), self.z_words[h].copy(),
            2 * int(self.r[h]), i)
        if phase not in (0, 2):
            raise RuntimeError("rowsum produced imaginary phase; tableau corrupted")
        self.r[h] = phase // 2
        self.x_words[h] = new_x
        self.z_words[h] = new_z

    # -- gate application -----------------------------------------------------
    def apply_h(self, qubit: int) -> None:
        word, mask = self._column(qubit)
        x_bits = self.x_words[:, word] & mask
        z_bits = self.z_words[:, word] & mask
        self.r ^= ((x_bits != 0) & (z_bits != 0)).astype(np.uint8)
        keep = ~mask
        self.x_words[:, word] = (self.x_words[:, word] & keep) | z_bits
        self.z_words[:, word] = (self.z_words[:, word] & keep) | x_bits

    def apply_s(self, qubit: int) -> None:
        word, mask = self._column(qubit)
        x_bits = self.x_words[:, word] & mask
        self.r ^= ((x_bits != 0)
                   & ((self.z_words[:, word] & mask) != 0)).astype(np.uint8)
        self.z_words[:, word] ^= x_bits

    def apply_x(self, qubit: int) -> None:
        word, mask = self._column(qubit)
        self.r ^= ((self.z_words[:, word] & mask) != 0).astype(np.uint8)

    def apply_z(self, qubit: int) -> None:
        word, mask = self._column(qubit)
        self.r ^= ((self.x_words[:, word] & mask) != 0).astype(np.uint8)

    def apply_y(self, qubit: int) -> None:
        word, mask = self._column(qubit)
        self.r ^= (((self.x_words[:, word] ^ self.z_words[:, word]) & mask)
                   != 0).astype(np.uint8)

    def apply_cx(self, control: int, target: int) -> None:
        word_a, mask_a = self._column(control)
        word_b, mask_b = self._column(target)
        x_a = (self.x_words[:, word_a] & mask_a) != 0
        z_a = (self.z_words[:, word_a] & mask_a) != 0
        x_b = (self.x_words[:, word_b] & mask_b) != 0
        z_b = (self.z_words[:, word_b] & mask_b) != 0
        self.r ^= (x_a & z_b & ~(x_b ^ z_a)).astype(np.uint8)
        self.x_words[:, word_b] ^= np.where(x_a, mask_b, np.uint64(0))
        self.z_words[:, word_a] ^= np.where(z_b, mask_a, np.uint64(0))

    def apply_swap(self, qubit_a: int, qubit_b: int) -> None:
        word_a, mask_a = self._column(qubit_a)
        word_b, mask_b = self._column(qubit_b)
        for words in (self.x_words, self.z_words):
            differ = (((words[:, word_a] & mask_a) != 0)
                      ^ ((words[:, word_b] & mask_b) != 0))
            words[:, word_a] ^= np.where(differ, mask_a, np.uint64(0))
            words[:, word_b] ^= np.where(differ, mask_b, np.uint64(0))

    # -- measurement -------------------------------------------------------------
    def measure(self, qubit: int, rng: Optional[np.random.Generator] = None) -> int:
        """Measure a qubit in the Z basis, collapsing the state."""
        rng = rng or np.random.default_rng()
        n = self.num_qubits
        word, mask = self._column(qubit)
        x_column = (self.x_words[:, word] & mask) != 0
        # Random outcome iff some stabilizer anticommutes with Z_qubit,
        # i.e. has an X component on the qubit.
        candidates = np.flatnonzero(x_column[n:])
        if candidates.size:
            p = int(candidates[0]) + n
            # Skip row p−n as well as p: destabilizer p−n anticommutes with
            # stabilizer p by the tableau invariant, so their rowsum phase
            # is imaginary — and the row is overwritten with old row p
            # below, so the product is discarded anyway.
            for i in np.flatnonzero(x_column):
                if int(i) != p and int(i) != p - n:
                    self._rowsum(int(i), p)
            # Destabilizer p-n ← old stabilizer p; stabilizer p ← ±Z_qubit.
            self.x_words[p - n] = self.x_words[p]
            self.z_words[p - n] = self.z_words[p]
            self.r[p - n] = self.r[p]
            self.x_words[p] = 0
            self.z_words[p] = 0
            self.z_words[p, word] = mask
            outcome = int(rng.integers(0, 2))
            self.r[p] = outcome
            return outcome
        # Deterministic outcome.
        scratch_x = np.zeros(self.num_words, dtype=np.uint64)
        scratch_z = np.zeros(self.num_words, dtype=np.uint64)
        phase = 0
        for i in np.flatnonzero(x_column[:n]):
            scratch_x, scratch_z, phase = self._rowsum_into(
                scratch_x, scratch_z, phase, int(i) + n)
        return int(phase // 2)

    # -- expectation values ---------------------------------------------------------
    def expectation_pauli(self, pauli: PauliString) -> float:
        """⟨P⟩ for a Hermitian Pauli operator: exactly -1, 0 or +1."""
        if pauli.num_qubits != self.num_qubits:
            raise ValueError("Pauli string size mismatch")
        if pauli.is_identity():
            return float(pauli.phase.real)
        n = self.num_qubits
        pauli_x = pack_rows(pauli.x.astype(np.uint8), n)
        pauli_z = pack_rows(pauli.z.astype(np.uint8), n)
        # Anticommutes with some stabilizer → expectation 0.  The symplectic
        # product is the parity of (x & pz) ^ (z & px) per packed row.
        anti_stab = row_parity((self.x_words[n:] & pauli_z)
                               ^ (self.z_words[n:] & pauli_x))
        if np.any(anti_stab):
            return 0.0
        # P equals ± the product of stabilizers indexed by destabilizers that
        # anticommute with P.
        anti_destab = row_parity((self.x_words[:n] & pauli_z)
                                 ^ (self.z_words[:n] & pauli_x))
        scratch_x = np.zeros(self.num_words, dtype=np.uint64)
        scratch_z = np.zeros(self.num_words, dtype=np.uint64)
        phase = 0
        for i in np.flatnonzero(anti_destab):
            scratch_x, scratch_z, phase = self._rowsum_into(
                scratch_x, scratch_z, phase, int(i) + n)
        if not (np.array_equal(scratch_x, pauli_x)
                and np.array_equal(scratch_z, pauli_z)):
            raise RuntimeError("stabilizer decomposition failed; tableau corrupted")
        sign = 1.0 if phase == 0 else -1.0
        # Account for the observable's own phase (must be ±1 for Hermitian P).
        return sign * float(pauli.phase.real)

    def stabilizer_strings(self) -> List[PauliString]:
        """The n stabilizer generators as PauliString objects."""
        n = self.num_qubits
        x_rows = unpack_rows(self.x_words[n:], n)
        z_rows = unpack_rows(self.z_words[n:], n)
        strings = []
        for row in range(n):
            phase_power = 2 if self.r[n + row] else 0
            strings.append(PauliString(x_rows[row], z_rows[row], phase_power))
        return strings


class DenseStabilizerState(_StabilizerOps):
    """Byte-per-bit CHP tableau: the differential reference implementation.

    The pre-PR-7 implementation, kept verbatim as the oracle the packed
    :class:`StabilizerState` is property-tested against: same public API,
    same results, same RNG draw stream (one ``rng.integers(0, 2)`` per
    random-outcome measurement, nothing on deterministic ones) — only the
    storage (one byte per tableau bit) and the per-qubit Python rowsum loop
    differ.
    """

    def __init__(self, num_qubits: int):
        if num_qubits < 1:
            raise ValueError("need at least one qubit")
        self.num_qubits = int(num_qubits)
        n = self.num_qubits
        # Rows 0..n-1: destabilizers (initially X_i); rows n..2n-1: stabilizers (Z_i).
        self.x = np.zeros((2 * n, n), dtype=np.uint8)
        self.z = np.zeros((2 * n, n), dtype=np.uint8)
        self.r = np.zeros(2 * n, dtype=np.uint8)
        for i in range(n):
            self.x[i, i] = 1
            self.z[n + i, i] = 1

    # -- helpers ------------------------------------------------------------
    def copy(self) -> "DenseStabilizerState":
        new = DenseStabilizerState(self.num_qubits)
        new.x = self.x.copy()
        new.z = self.z.copy()
        new.r = self.r.copy()
        return new

    @staticmethod
    def _g(x1, z1, x2, z2) -> int:
        """Phase exponent contributed when multiplying single-qubit Paulis."""
        if x1 == 0 and z1 == 0:
            return 0
        if x1 == 1 and z1 == 1:  # Y
            return int(z2) - int(x2)
        if x1 == 1 and z1 == 0:  # X
            return int(z2) * (2 * int(x2) - 1)
        # Z
        return int(x2) * (1 - 2 * int(z2))

    def _rowsum_into(self, target_x, target_z, target_phase: int,
                     row: int) -> Tuple[np.ndarray, np.ndarray, int]:
        """Multiply an external Pauli row by tableau ``row`` (phase in units of i^2)."""
        n = self.num_qubits
        phase = 2 * int(self.r[row]) + target_phase
        for j in range(n):
            phase += self._g(int(self.x[row, j]), int(self.z[row, j]),
                             int(target_x[j]), int(target_z[j]))
        new_x = target_x ^ self.x[row]
        new_z = target_z ^ self.z[row]
        return new_x, new_z, phase % 4

    def _rowsum(self, h: int, i: int) -> None:
        """Tableau rowsum: row h ← row h · row i (Aaronson–Gottesman)."""
        new_x, new_z, phase = self._rowsum_into(self.x[h].copy(), self.z[h].copy(),
                                                2 * int(self.r[h]), i)
        if phase not in (0, 2):
            raise RuntimeError("rowsum produced imaginary phase; tableau corrupted")
        self.r[h] = phase // 2
        self.x[h] = new_x
        self.z[h] = new_z

    # -- gate application -----------------------------------------------------
    def apply_h(self, qubit: int) -> None:
        xq = self.x[:, qubit].copy()
        zq = self.z[:, qubit].copy()
        self.r ^= xq & zq
        self.x[:, qubit] = zq
        self.z[:, qubit] = xq

    def apply_s(self, qubit: int) -> None:
        xq = self.x[:, qubit]
        zq = self.z[:, qubit]
        self.r ^= xq & zq
        self.z[:, qubit] = zq ^ xq

    def apply_x(self, qubit: int) -> None:
        self.r ^= self.z[:, qubit]

    def apply_z(self, qubit: int) -> None:
        self.r ^= self.x[:, qubit]

    def apply_y(self, qubit: int) -> None:
        self.r ^= self.x[:, qubit] ^ self.z[:, qubit]

    def apply_cx(self, control: int, target: int) -> None:
        xa = self.x[:, control].copy()
        za = self.z[:, control].copy()
        xb = self.x[:, target].copy()
        zb = self.z[:, target].copy()
        self.r ^= xa & zb & (xb ^ za ^ 1)
        self.x[:, target] = xb ^ xa
        self.z[:, control] = za ^ zb

    def apply_swap(self, qubit_a: int, qubit_b: int) -> None:
        for array in (self.x, self.z):
            array[:, [qubit_a, qubit_b]] = array[:, [qubit_b, qubit_a]]

    # -- measurement -------------------------------------------------------------
    def measure(self, qubit: int, rng: Optional[np.random.Generator] = None) -> int:
        """Measure a qubit in the Z basis, collapsing the state."""
        rng = rng or np.random.default_rng()
        n = self.num_qubits
        # Random outcome iff some stabilizer anticommutes with Z_qubit,
        # i.e. has an X component on the qubit.
        candidates = [p for p in range(n, 2 * n) if self.x[p, qubit]]
        if candidates:
            p = candidates[0]
            # Skip row p−n as well as p (it anticommutes with row p, so the
            # rowsum phase would be imaginary; the row is overwritten with
            # old row p below).  The pre-PR-7 code rowsummed it and crashed
            # on valid states — the property harness caught this.
            for i in range(2 * n):
                if i != p and i != p - n and self.x[i, qubit]:
                    self._rowsum(i, p)
            # Destabilizer p-n ← old stabilizer p; stabilizer p ← ±Z_qubit.
            self.x[p - n] = self.x[p].copy()
            self.z[p - n] = self.z[p].copy()
            self.r[p - n] = self.r[p]
            self.x[p] = 0
            self.z[p] = 0
            self.z[p, qubit] = 1
            outcome = int(rng.integers(0, 2))
            self.r[p] = outcome
            return outcome
        # Deterministic outcome.
        scratch_x = np.zeros(n, dtype=np.uint8)
        scratch_z = np.zeros(n, dtype=np.uint8)
        phase = 0
        for i in range(n):
            if self.x[i, qubit]:
                scratch_x, scratch_z, phase = self._rowsum_into(
                    scratch_x, scratch_z, phase, i + n)
        return int(phase // 2)

    # -- expectation values ---------------------------------------------------------
    def expectation_pauli(self, pauli: PauliString) -> float:
        """⟨P⟩ for a Hermitian Pauli operator: exactly -1, 0 or +1."""
        if pauli.num_qubits != self.num_qubits:
            raise ValueError("Pauli string size mismatch")
        if pauli.is_identity():
            return float(pauli.phase.real)
        n = self.num_qubits
        px = pauli.x.astype(np.uint8)
        pz = pauli.z.astype(np.uint8)
        # Anticommutes with some stabilizer → expectation 0.
        anti_stab = ((self.x[n:] & pz[None, :]) ^ (self.z[n:] & px[None, :])).sum(axis=1) % 2
        if np.any(anti_stab):
            return 0.0
        # P equals ± the product of stabilizers indexed by destabilizers that
        # anticommute with P.
        anti_destab = ((self.x[:n] & pz[None, :]) ^ (self.z[:n] & px[None, :])).sum(axis=1) % 2
        scratch_x = np.zeros(n, dtype=np.uint8)
        scratch_z = np.zeros(n, dtype=np.uint8)
        phase = 0
        for i in np.nonzero(anti_destab)[0]:
            scratch_x, scratch_z, phase = self._rowsum_into(
                scratch_x, scratch_z, phase, int(i) + n)
        if not (np.array_equal(scratch_x, px) and np.array_equal(scratch_z, pz)):
            raise RuntimeError("stabilizer decomposition failed; tableau corrupted")
        sign = 1.0 if phase == 0 else -1.0
        # Account for the observable's own phase (must be ±1 for Hermitian P).
        return sign * float(pauli.phase.real)

    def stabilizer_strings(self) -> List[PauliString]:
        """The n stabilizer generators as PauliString objects."""
        n = self.num_qubits
        strings = []
        for row in range(n, 2 * n):
            phase_power = 2 if self.r[row] else 0
            strings.append(PauliString(self.x[row].copy(), self.z[row].copy(),
                                       phase_power))
        return strings


class StabilizerSimulator:
    """Executes Clifford circuits on stabilizer states, optionally with Pauli noise.

    With a noise model, ``expectation`` averages Monte-Carlo Pauli-error
    trajectories; the deterministic alternative is
    :class:`repro.simulators.pauli_propagation.PauliPropagator`, which is
    exact for the same noise class and is what the evaluation pipeline uses.
    """

    #: Tableau implementation trajectories run on; the differential test
    #: harness swaps in :class:`DenseStabilizerState` to replay identical
    #: instruction+noise streams through the reference implementation.
    state_class = StabilizerState

    def __init__(self, noise_model: Optional[NoiseModel] = None,
                 seed: Optional[int] = None):
        self.noise_model = noise_model
        self._rng = np.random.default_rng(seed)

    def _apply_instruction(self, state, inst,
                           rng: Optional[np.random.Generator] = None) -> None:
        name = inst.name
        if name in ("barrier", "measure"):
            return
        if name == "reset":
            state.reset(inst.qubits[0], rng if rng is not None else self._rng)
            return
        if name in ("i", "id"):
            return
        if name == "h":
            state.apply_h(inst.qubits[0])
        elif name == "s":
            state.apply_s(inst.qubits[0])
        elif name == "sdg":
            state.apply_sdg(inst.qubits[0])
        elif name == "x":
            state.apply_x(inst.qubits[0])
        elif name == "y":
            state.apply_y(inst.qubits[0])
        elif name == "z":
            state.apply_z(inst.qubits[0])
        elif name in ("cx", "cnot"):
            state.apply_cx(*inst.qubits)
        elif name == "cz":
            state.apply_cz(*inst.qubits)
        elif name == "swap":
            state.apply_swap(*inst.qubits)
        elif name == "rz":
            state.apply_rz_clifford(float(inst.params[0]), inst.qubits[0])
        elif name == "rx":
            qubit = inst.qubits[0]
            state.apply_h(qubit)
            state.apply_rz_clifford(float(inst.params[0]), qubit)
            state.apply_h(qubit)
        elif name == "ry":
            qubit = inst.qubits[0]
            state.apply_sdg(qubit)
            state.apply_h(qubit)
            state.apply_rz_clifford(float(inst.params[0]), qubit)
            state.apply_h(qubit)
            state.apply_s(qubit)
        else:
            raise ValueError(f"gate {name!r} is not supported by the stabilizer simulator")

    def _sample_channel(self, state, channel,
                        qubits: Sequence[int],
                        rng: Optional[np.random.Generator] = None) -> None:
        pauli_channel = channel if isinstance(channel, PauliChannel) else pauli_twirl(channel)
        label = pauli_channel.sample(rng if rng is not None else self._rng)
        state.apply_pauli_label(label, qubits)

    def run(self, circuit: QuantumCircuit,
            inject_noise: bool = True,
            rng: Optional[np.random.Generator] = None) -> StabilizerState:
        """Run a single (possibly noisy) trajectory of the circuit.

        ``rng`` overrides the simulator's own generator for this trajectory —
        the hook that lets a trajectory ensemble assign one spawned
        :class:`numpy.random.SeedSequence` child per trajectory, making the
        ensemble's results independent of how trajectories are sharded
        across worker processes.
        """
        state = self.state_class(circuit.num_qubits)
        noise = self.noise_model if inject_noise else None
        idle_channel = noise.idle_channel if noise is not None else None
        for layer in circuit.layers():
            busy: set = set()
            for inst in layer:
                busy.update(inst.qubits)
                self._apply_instruction(state, inst, rng)
                if noise is not None and inst.gate.is_unitary and inst.name != "barrier":
                    for channel in noise.gate_channels(inst.name):
                        self._sample_channel(state, channel, inst.qubits, rng)
            if idle_channel is not None:
                for qubit in range(circuit.num_qubits):
                    if qubit not in busy:
                        self._sample_channel(state, idle_channel, (qubit,), rng)
        return state

    def expectation(self, circuit: QuantumCircuit, observable: PauliSum, *,
                    initial_state=None,
                    trajectories: Optional[int] = None) -> float:
        """Noisy expectation value averaged over Monte-Carlo trajectories.

        ``initial_state`` is accepted for signature parity with the dense
        simulators; the tableau simulator only supports the |0…0⟩ start and
        raises if a different state is requested.  ``trajectories`` defaults
        to 200 when the noise model is nontrivial.
        """
        if initial_state is not None:
            raise ValueError("StabilizerSimulator only supports the |0...0> "
                             "initial state")
        trajectories = 200 if trajectories is None else int(trajectories)
        if self.noise_model is None or not self.noise_model.has_noise():
            state = self.run(circuit, inject_noise=False)
            return state.expectation(observable)
        total = 0.0
        readout_damping = 1.0 - 2.0 * self.noise_model.readout_error
        for _ in range(trajectories):
            state = self.run(circuit, inject_noise=True)
            for pauli, coeff in observable.terms():
                value = state.expectation_pauli(pauli)
                total += float(np.real(coeff)) * value * readout_damping ** pauli.weight()
        return total / trajectories

    # -- grouped-observable fast path -----------------------------------------
    def _grouped_term_plan(self, observable: PauliSum):
        """QWC measurement plan: per group, the basis-change instructions and
        the (term index, Z-image) pairs to read off the rotated tableau."""
        from ..operators.grouping import group_commuting
        index_by_key = {pauli.key(): i
                        for i, (pauli, _) in enumerate(observable.terms())}
        plan = []
        for group in group_commuting(observable, qubitwise=True):
            rotation = list(group.basis_change_circuit(observable.num_qubits))
            readouts = []
            for pauli, _ in group.terms:
                # The single-qubit rotation maps every group member onto the
                # Z-string over its own support (H: X→Z, H·S†: Y→Z).
                z_image = PauliString(np.zeros(observable.num_qubits,
                                               dtype=np.uint8),
                                      (pauli.x | pauli.z).astype(np.uint8))
                readouts.append((index_by_key[pauli.key()], z_image))
            plan.append((rotation, readouts))
        return plan

    def _read_groups(self, state, plan,
                     values: np.ndarray) -> None:
        """Accumulate one state's term values into ``values`` via the plan."""
        for rotation, readouts in plan:
            rotated = state.copy() if rotation else state
            for inst in rotation:
                self._apply_instruction(rotated, inst)
            for term_index, z_image in readouts:
                values[term_index] += rotated.expectation_pauli(z_image)

    def expectation_many(self, circuit: QuantumCircuit, observable: PauliSum, *,
                         initial_state=None,
                         trajectories: Optional[int] = None) -> np.ndarray:
        """Per-term ⟨P_i⟩ with one tableau evolution per trajectory.

        Terms are partitioned into qubit-wise-commuting groups
        (:func:`repro.operators.grouping.group_commuting`); the circuit is
        evolved **once** (per noisy trajectory) and each group is read out by
        applying its single-qubit basis rotation to a copy of the final
        tableau and evaluating the terms' Z-basis images — one basis rotation
        per group rather than one circuit run per term.  Noisy values average
        ``trajectories`` Monte-Carlo runs and damp each term by
        ``(1 − 2·p_meas)^w`` exactly as :meth:`expectation` does.  Values
        align with ``observable.terms()`` (coefficients are not applied).

        Note: the tableau *could* read every Pauli directly
        (:meth:`StabilizerState.expectation_pauli`) with identical results;
        the grouped basis-rotation path deliberately mirrors the hardware
        measurement model the QWC grouping exists for (one measured circuit
        per group), keeping the simulated cost structure aligned with the
        shot-based cost model in :mod:`repro.operators.grouping`.
        """
        if initial_state is not None:
            raise ValueError("StabilizerSimulator only supports the |0...0> "
                             "initial state")
        plan = self._grouped_term_plan(observable)
        values = np.zeros(observable.num_terms)
        identity_indices = [i for i, (pauli, _) in enumerate(observable.terms())
                            if pauli.is_identity()]
        noisy = self.noise_model is not None and self.noise_model.has_noise()
        if not noisy:
            state = self.run(circuit, inject_noise=False)
            self._read_groups(state, plan, values)
            for index in identity_indices:
                values[index] = 1.0
            return values
        trajectories = 200 if trajectories is None else int(trajectories)
        for _ in range(trajectories):
            state = self.run(circuit, inject_noise=True)
            self._read_groups(state, plan, values)
        values /= trajectories
        for index in identity_indices:
            values[index] = 1.0
        readout_damping = 1.0 - 2.0 * self.noise_model.readout_error
        weights = np.array([pauli.weight() for pauli, _ in observable.terms()])
        return values * readout_damping ** weights

    def trajectory_term_values(self, circuit: QuantumCircuit,
                               observable: PauliSum,
                               seeds: Sequence) -> np.ndarray:
        """Raw per-trajectory term values, one seeded trajectory per row.

        Runs ``len(seeds)`` noisy trajectories, each with its **own**
        generator built from the corresponding seed (any
        ``numpy.random.default_rng`` seed — typically
        :class:`numpy.random.SeedSequence` children spawned from one base
        seed), and returns a ``(len(seeds), num_terms)`` array of term
        values read through the QWC group plan.  Because every trajectory's
        randomness is a pure function of its seed, any partition of the seed
        list across worker processes reproduces the same rows — this is the
        determinism contract behind process-sharded Monte-Carlo ensembles
        (``parallel="process"``).  Values are raw: identity terms are 1,
        readout damping is **not** applied (callers average the rows, then
        damp by ``(1 − 2·p_meas)^weight`` exactly like :meth:`expectation_many`).
        """
        plan = self._grouped_term_plan(observable)
        identity_indices = [i for i, (pauli, _)
                            in enumerate(observable.terms())
                            if pauli.is_identity()]
        values = np.zeros((len(seeds), observable.num_terms))
        for row, seed in enumerate(seeds):
            rng = np.random.default_rng(seed)
            state = self.run(circuit, inject_noise=True, rng=rng)
            self._read_groups(state, plan, values[row])
            for index in identity_indices:
                values[row, index] = 1.0
        return values

    def sample(self, circuit: QuantumCircuit, shots: int) -> Dict[str, int]:
        """Sample measurement outcomes over full trajectories (1 shot = 1 run)."""
        counts: Dict[str, int] = {}
        for _ in range(shots):
            state = self.run(circuit)
            bits = []
            flip_probability = (self.noise_model.readout_error
                                if self.noise_model is not None else 0.0)
            for qubit in range(circuit.num_qubits):
                outcome = state.measure(qubit, self._rng)
                if flip_probability > 0 and self._rng.random() < flip_probability:
                    outcome ^= 1
                bits.append(str(outcome))
            key = "".join(bits)
            counts[key] = counts.get(key, 0) + 1
        return counts
