"""Exact noisy expectation values for Clifford circuits via Pauli propagation.

For a Clifford circuit ``U = U_L … U_1`` with stochastic Pauli noise inserted
between gates, the expectation of a Pauli observable O obeys

    ⟨O⟩ = f · ⟨0…0| U_1† … U_L† O U_L … U_1 |0…0⟩,

where the Heisenberg-picture observable stays a single Pauli (with sign) under
Clifford conjugation, and every Pauli noise location contributes a
multiplicative damping factor ``f_loc = Σ_a p_a · (±1)`` depending on whether
the *intermediate* observable commutes with each error Pauli ``P_a``.  This is
exact — not sampled — which is why the large-qubit evaluation pipeline uses it
instead of Monte-Carlo stabilizer trajectories; the two agree (see the test
suite) but this one is deterministic and fast.

All Hamiltonian terms are propagated simultaneously using bit-matrix updates,
so the cost is O(num_gates · num_terms) with small numpy constants.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..circuits.gates import is_clifford_angle
from ..operators.pauli import PauliSum
from .noise import ErrorLocation, NoiseModel, PauliChannel, pauli_twirl

_SINGLE_PAULI_INDEX = {"I": 0, "X": 1, "Y": 2, "Z": 3}


def _restriction_index_correct(x_bits: np.ndarray, z_bits: np.ndarray) -> np.ndarray:
    """Pauli index per qubit: 0=I, 1=X, 2=Y, 3=Z."""
    out = np.zeros(x_bits.shape, dtype=np.int8)
    out[(x_bits == 1) & (z_bits == 0)] = 1
    out[(x_bits == 1) & (z_bits == 1)] = 2
    out[(x_bits == 0) & (z_bits == 1)] = 3
    return out


class PauliPropagator:
    """Propagates a batch of Pauli observables backwards through a Clifford circuit.

    Parameters
    ----------
    observable:
        The Hamiltonian whose expectation value is required.
    """

    def __init__(self, observable: PauliSum):
        self.observable = observable
        self.num_qubits = observable.num_qubits
        terms = list(observable.terms())
        self.num_terms = len(terms)
        self.coefficients = np.array([float(np.real(c)) for _, c in terms])
        self.x = np.zeros((self.num_terms, self.num_qubits), dtype=np.uint8)
        self.z = np.zeros((self.num_terms, self.num_qubits), dtype=np.uint8)
        for index, (pauli, _) in enumerate(terms):
            self.x[index] = pauli.x
            self.z[index] = pauli.z
        self.signs = np.ones(self.num_terms)
        self.damping = np.ones(self.num_terms)

    # -- Clifford conjugation updates (observable ← G† · observable · G) ------
    def _conj_h(self, qubit: int) -> None:
        xq = self.x[:, qubit].copy()
        zq = self.z[:, qubit].copy()
        self.signs[np.nonzero(xq & zq)[0]] *= -1.0
        self.x[:, qubit] = zq
        self.z[:, qubit] = xq

    def _conj_s(self, qubit: int) -> None:
        # S† X S = -Y ; S† Y S = X ; S† Z S = Z
        xq = self.x[:, qubit]
        zq = self.z[:, qubit].copy()
        flip = (xq == 1) & (zq == 0)
        self.signs[np.nonzero(flip)[0]] *= -1.0
        self.z[:, qubit] = zq ^ xq

    def _conj_sdg(self, qubit: int) -> None:
        # Sdg† X Sdg = Y ; Sdg† Y Sdg = -X ; Z unchanged
        xq = self.x[:, qubit]
        zq = self.z[:, qubit].copy()
        flip = (xq == 1) & (zq == 1)
        self.signs[np.nonzero(flip)[0]] *= -1.0
        self.z[:, qubit] = zq ^ xq

    def _conj_x(self, qubit: int) -> None:
        flip = self.z[:, qubit] == 1
        self.signs[np.nonzero(flip)[0]] *= -1.0

    def _conj_y(self, qubit: int) -> None:
        flip = (self.x[:, qubit] ^ self.z[:, qubit]) == 1
        self.signs[np.nonzero(flip)[0]] *= -1.0

    def _conj_z(self, qubit: int) -> None:
        flip = self.x[:, qubit] == 1
        self.signs[np.nonzero(flip)[0]] *= -1.0

    def _conj_cx(self, control: int, target: int) -> None:
        xa = self.x[:, control].copy()
        za = self.z[:, control].copy()
        xb = self.x[:, target].copy()
        zb = self.z[:, target].copy()
        flip = (xa & zb & (xb ^ za ^ 1)) == 1
        self.signs[np.nonzero(flip)[0]] *= -1.0
        self.x[:, target] = xb ^ xa
        self.z[:, control] = za ^ zb

    def _conj_cz(self, qubit_a: int, qubit_b: int) -> None:
        self._conj_h(qubit_b)
        self._conj_cx(qubit_a, qubit_b)
        self._conj_h(qubit_b)

    def _conj_swap(self, qubit_a: int, qubit_b: int) -> None:
        for array in (self.x, self.z):
            array[:, [qubit_a, qubit_b]] = array[:, [qubit_b, qubit_a]]

    def _conj_rz(self, theta: float, qubit: int) -> None:
        if not is_clifford_angle(theta):
            raise ValueError(
                f"PauliPropagator only supports Clifford angles; got Rz({theta})")
        quarter_turns = int(round(theta / (math.pi / 2.0))) % 4
        if quarter_turns == 0:
            return
        if quarter_turns == 1:
            self._conj_s(qubit)
        elif quarter_turns == 2:
            self._conj_z(qubit)
        else:
            self._conj_sdg(qubit)

    def conjugate_instruction(self, inst) -> None:
        """Apply G† · O · G for instruction ``inst`` (backward-pass update)."""
        name = inst.name
        if name in ("barrier", "measure", "i", "id"):
            return
        if name == "h":
            self._conj_h(inst.qubits[0])
        elif name == "s":
            self._conj_s(inst.qubits[0])
        elif name == "sdg":
            self._conj_sdg(inst.qubits[0])
        elif name == "x":
            self._conj_x(inst.qubits[0])
        elif name == "y":
            self._conj_y(inst.qubits[0])
        elif name == "z":
            self._conj_z(inst.qubits[0])
        elif name in ("cx", "cnot"):
            self._conj_cx(*inst.qubits)
        elif name == "cz":
            self._conj_cz(*inst.qubits)
        elif name == "swap":
            self._conj_swap(*inst.qubits)
        elif name == "rz":
            self._conj_rz(float(inst.params[0]), inst.qubits[0])
        elif name == "rx":
            qubit = inst.qubits[0]
            self._conj_h(qubit)
            self._conj_rz(float(inst.params[0]), qubit)
            self._conj_h(qubit)
        elif name == "ry":
            qubit = inst.qubits[0]
            # Backward pass of the forward decomposition Sdg·H·Rz·H·S means
            # conjugating by the gates in forward order here (the caller walks
            # instructions in reverse, each instruction expanded atomically).
            self._conj_s(qubit)
            self._conj_h(qubit)
            self._conj_rz(float(inst.params[0]), qubit)
            self._conj_h(qubit)
            self._conj_sdg(qubit)
        else:
            raise ValueError(f"gate {name!r} is not Clifford-propagatable")

    # -- noise damping ----------------------------------------------------------
    def apply_pauli_noise(self, probabilities: Dict[str, float],
                          qubits: Sequence[int]) -> None:
        """Multiply damping factors for a Pauli channel on ``qubits``.

        ``probabilities`` maps Pauli labels (length == len(qubits), character
        j acting on qubits[j]) to probabilities.
        """
        factors = np.zeros(self.num_terms)
        restriction = np.stack(
            [_restriction_index_correct(self.x[:, q], self.z[:, q]) for q in qubits],
            axis=1)  # (num_terms, k) with values 0..3
        for label, probability in probabilities.items():
            if probability <= 0.0:
                continue
            error_index = np.array([_SINGLE_PAULI_INDEX[c] for c in label.upper()],
                                   dtype=np.int8)
            # Anticommutation count per term: positions where both are
            # non-identity and different.
            both_nontrivial = (restriction != 0) & (error_index[None, :] != 0)
            different = restriction != error_index[None, :]
            anticommuting = np.sum(both_nontrivial & different, axis=1)
            sign = np.where(anticommuting % 2 == 0, 1.0, -1.0)
            factors += probability * sign
        self.damping *= factors

    def apply_error_location(self, location: ErrorLocation) -> None:
        channel = location.channel
        pauli_channel = channel if isinstance(channel, PauliChannel) else pauli_twirl(channel)
        if location.kind == "measure":
            # Symmetric readout flips: damping (1-2p) per measured qubit in
            # the support of the observable.
            probability = pauli_channel.probabilities.get("X", 0.0)
            for qubit in location.qubits:
                nontrivial = (self.x[:, qubit] | self.z[:, qubit]) == 1
                self.damping[nontrivial] *= (1.0 - 2.0 * probability)
            return
        self.apply_pauli_noise(pauli_channel.probabilities, location.qubits)

    # -- result -----------------------------------------------------------------
    def expectation_on_zero_state(self) -> float:
        """⟨0…0| Σ c_i f_i s_i P_i |0…0⟩ for the current propagated batch."""
        diagonal = ~np.any(self.x == 1, axis=1)
        contributions = np.where(diagonal,
                                 self.coefficients * self.signs * self.damping,
                                 0.0)
        return float(np.sum(contributions))

    def term_values(self) -> np.ndarray:
        """Per-term expectation contribution (before summation)."""
        diagonal = ~np.any(self.x == 1, axis=1)
        return np.where(diagonal, self.signs * self.damping, 0.0)


def expectation_value(circuit: QuantumCircuit, observable: PauliSum,
                      noise_model: Optional[NoiseModel] = None,
                      include_idle: bool = True) -> float:
    """Exact expectation value of ``observable`` after ``circuit`` under Pauli noise.

    The circuit must be Clifford (rotations at multiples of π/2).  The noise
    model's channels are Pauli-twirled if they are not already Pauli channels,
    which reproduces the paper's treatment of non-Clifford thermal relaxation
    in the Clifford-simulation flow (Sec. 5.2.2).
    """
    propagator = propagate(circuit, observable, noise_model,
                           include_idle=include_idle)
    # Identity terms never get damped or signed incorrectly, so the identity
    # coefficient is automatically included by the propagator's diagonal
    # check (see PauliPropagator.expectation_on_zero_state).
    return propagator.expectation_on_zero_state()


def propagate(circuit: QuantumCircuit, observable: PauliSum,
              noise_model: Optional[NoiseModel] = None,
              include_idle: bool = True) -> PauliPropagator:
    """Run one backward propagation pass and return the loaded propagator.

    All terms of ``observable`` travel through the circuit together (one
    bit-matrix pass), so callers can read either the summed energy
    (:meth:`PauliPropagator.expectation_on_zero_state`) or the per-term
    values (:meth:`PauliPropagator.term_values`) from a single evolution —
    the grouped-observable fast path.
    """
    if observable.num_qubits != circuit.num_qubits:
        raise ValueError("observable and circuit qubit counts differ")
    propagator = PauliPropagator(observable)
    locations_by_index: Dict[int, List[ErrorLocation]] = {}
    if noise_model is not None and noise_model.has_noise():
        for location in noise_model.error_locations(circuit, include_idle=include_idle):
            locations_by_index.setdefault(location.instruction_index, []).append(location)
    instructions = list(circuit)
    for index in range(len(instructions) - 1, -1, -1):
        for location in locations_by_index.get(index, []):
            propagator.apply_error_location(location)
        propagator.conjugate_instruction(instructions[index])
    return propagator


class PauliPropagationSimulator:
    """Class-based facade over :func:`expectation_value`.

    Gives the Pauli-propagation engine the same
    ``expectation(circuit, observable, ...)`` surface as
    :class:`~repro.simulators.statevector.StatevectorSimulator`,
    :class:`~repro.simulators.density_matrix.DensityMatrixSimulator` and
    :class:`~repro.simulators.stabilizer.StabilizerSimulator`, so all four
    execution paths are interchangeable behind
    :mod:`repro.execution`'s backend adapters.
    """

    def __init__(self, noise_model: Optional[NoiseModel] = None,
                 include_idle: bool = True):
        self.noise_model = noise_model
        self.include_idle = include_idle

    def expectation(self, circuit: QuantumCircuit, observable: PauliSum, *,
                    initial_state=None, trajectories: Optional[int] = None,
                    include_idle: Optional[bool] = None) -> float:
        """Exact noisy ⟨H⟩ of a Clifford circuit (deterministic, no sampling).

        ``initial_state`` and ``trajectories`` are accepted for signature
        parity with the other simulators; propagation starts from |0…0⟩ and
        is exact, so a non-default ``initial_state`` raises and
        ``trajectories`` is ignored.
        """
        if initial_state is not None:
            raise ValueError("PauliPropagationSimulator only supports the "
                             "|0...0> initial state")
        include_idle = self.include_idle if include_idle is None else include_idle
        return expectation_value(circuit, observable, self.noise_model,
                                 include_idle=include_idle)

    def expectation_many(self, circuit: QuantumCircuit, observable: PauliSum, *,
                         initial_state=None, trajectories: Optional[int] = None,
                         include_idle: Optional[bool] = None) -> np.ndarray:
        """Per-term noisy ⟨P_i⟩ from a **single** propagation pass.

        The propagator already carries every term of ``observable`` through
        the circuit simultaneously, so per-term values cost the same one
        evolution as the summed energy.  Values align with
        ``observable.terms()`` (coefficients are not applied); identity terms
        report 1.0.  ``initial_state`` must be None and ``trajectories`` is
        ignored, as in :meth:`expectation`.
        """
        if initial_state is not None:
            raise ValueError("PauliPropagationSimulator only supports the "
                             "|0...0> initial state")
        include_idle = self.include_idle if include_idle is None else include_idle
        propagator = propagate(circuit, observable, self.noise_model,
                               include_idle=include_idle)
        return propagator.term_values()
