"""Vectorized bitmask/phase kernels for many-term Pauli expectations.

Evaluating a T-term Pauli observable against a dense state by building one
(sparse) matrix per term costs far more than the simulation that produced the
state.  These kernels instead exploit the symplectic structure of a Pauli
string ``P = i^{n_Y} X^{x} Z^{z}`` acting on computational-basis states:

    P |j⟩ = i^{n_Y} · (−1)^{popcount(j & z)} · |j ⊕ x⟩,

where ``x``/``z`` are the string's X/Z bitmasks (qubit ``q`` ↔ bit ``q``,
matching the package-wide little-endian convention) and ``n_Y`` counts Y
factors.  Every term expectation then reduces to one masked gather plus one
parity-signed reduction over the state — no matrices, no per-term circuit
evolution.  The grouped-observable execution path evolves each circuit
**once** and hands the final state to these kernels for all terms.

All functions accept the observable either as a :class:`PauliSum`-like object
(anything with ``num_qubits`` and ``terms()``) or as pre-extracted
``(x_bits, z_bits)`` uint8 bit matrices of shape ``(num_terms, num_qubits)``.
Returned values are the expectations of the *bare* (phase-free, Hermitian)
Pauli strings in ``terms()`` order; coefficients are applied by the caller.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = [
    "observable_bit_matrices",
    "pauli_masks",
    "statevector_term_expectations",
    "statevector_term_expectations_batch",
    "density_matrix_term_expectations",
]


def observable_bit_matrices(observable) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Extract ``(coefficients, x_bits, z_bits)`` arrays from a Pauli sum.

    ``coefficients`` is complex of shape ``(T,)``; ``x_bits``/``z_bits`` are
    uint8 of shape ``(T, n)`` in the iteration order of
    ``observable.terms()``.  Example::

        coeffs, x_bits, z_bits = observable_bit_matrices(hamiltonian)
        values = statevector_term_expectations(state, x_bits, z_bits)
        energy = float(np.real(np.sum(coeffs * values)))
    """
    terms = list(observable.terms())
    num_terms = len(terms)
    num_qubits = observable.num_qubits
    coefficients = np.empty(num_terms, dtype=complex)
    x_bits = np.zeros((num_terms, num_qubits), dtype=np.uint8)
    z_bits = np.zeros((num_terms, num_qubits), dtype=np.uint8)
    for index, (pauli, coeff) in enumerate(terms):
        coefficients[index] = complex(coeff) * pauli.phase
        x_bits[index] = pauli.x
        z_bits[index] = pauli.z
    return coefficients, x_bits, z_bits


def pauli_masks(x_bits: np.ndarray, z_bits: np.ndarray
                ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Integer bitmasks and phase factors from symplectic bit matrices.

    Returns ``(x_masks, z_masks, phases)`` where the masks are int64 arrays of
    shape ``(T,)`` with qubit ``q`` on bit ``q``, and ``phases[t] = i^{n_Y}``
    accounts for the Y factors of term ``t``.
    """
    x_bits = np.atleast_2d(np.asarray(x_bits, dtype=np.uint8))
    z_bits = np.atleast_2d(np.asarray(z_bits, dtype=np.uint8))
    if x_bits.shape != z_bits.shape:
        raise ValueError("x and z bit matrices must have equal shape")
    num_qubits = x_bits.shape[1]
    if num_qubits > 62:
        raise ValueError("bitmask kernels support at most 62 qubits")
    weights = (np.int64(1) << np.arange(num_qubits, dtype=np.int64))
    x_masks = (x_bits.astype(np.int64) @ weights)
    z_masks = (z_bits.astype(np.int64) @ weights)
    num_y = (x_bits & z_bits).sum(axis=1).astype(np.int64)
    phases = np.power(1.0j, num_y % 4)
    return x_masks, z_masks, phases


def _resolve_bits(observable, x_bits, z_bits):
    if observable is not None:
        _, x_bits, z_bits = observable_bit_matrices(observable)
    if x_bits is None or z_bits is None:
        raise ValueError("provide either an observable or both bit matrices")
    return (np.atleast_2d(np.asarray(x_bits, dtype=np.uint8)),
            np.atleast_2d(np.asarray(z_bits, dtype=np.uint8)))


if hasattr(np, "bitwise_count"):  # NumPy >= 2.0
    _popcount = np.bitwise_count
else:  # pragma: no cover - exercised only on NumPy 1.x installs
    #: 16-bit popcount table; 62-bit masks fold into four table lookups.
    _POPCOUNT16 = np.unpackbits(
        np.arange(1 << 16, dtype=">u2").view(np.uint8)
    ).reshape(-1, 16).sum(axis=1).astype(np.uint8)

    def _popcount(values):
        total = _POPCOUNT16[values & 0xFFFF].astype(np.int64)
        total += _POPCOUNT16[(values >> 16) & 0xFFFF]
        total += _POPCOUNT16[(values >> 32) & 0xFFFF]
        total += _POPCOUNT16[(values >> 48) & 0xFFFF]
        return total


def _parity_signs(indices: np.ndarray, z_mask: int) -> np.ndarray:
    """(−1)^popcount(j & z_mask) for every index ``j`` (float64)."""
    if z_mask == 0:
        return np.ones(indices.size)
    parity = _popcount(indices & z_mask).astype(np.int64) & 1
    return 1.0 - 2.0 * parity


def statevector_term_expectations(state: np.ndarray,
                                  x_bits: Optional[np.ndarray] = None,
                                  z_bits: Optional[np.ndarray] = None,
                                  observable=None) -> np.ndarray:
    """⟨ψ|P_t|ψ⟩ for every bare Pauli term, from one statevector.

    ``state`` is a dense little-endian statevector of length ``2^n``.  Terms
    come either from ``observable`` (a :class:`~repro.operators.pauli.PauliSum`)
    or from explicit ``(T, n)`` bit matrices.  Returns a float64 array of
    length ``T``; each value is exact (the bare strings are Hermitian, so the
    imaginary parts cancel analytically).  Example::

        state = StatevectorSimulator().run(circuit).data
        values = statevector_term_expectations(state, observable=hamiltonian)
    """
    state = np.asarray(state, dtype=complex).ravel()
    x_bits, z_bits = _resolve_bits(observable, x_bits, z_bits)
    if state.size != 1 << x_bits.shape[1]:
        raise ValueError(
            f"state has dimension {state.size} but terms act on "
            f"{x_bits.shape[1]} qubits")
    x_masks, z_masks, phases = pauli_masks(x_bits, z_bits)
    indices = np.arange(state.size, dtype=np.int64)
    conj_state = np.conj(state)
    values = np.empty(len(x_masks))
    for t in range(len(x_masks)):
        signed = _parity_signs(indices, int(z_masks[t])) * state
        x_mask = int(x_masks[t])
        bra = conj_state if x_mask == 0 else conj_state[indices ^ x_mask]
        values[t] = np.real(phases[t] * np.dot(bra, signed))
    return values


def statevector_term_expectations_batch(states: np.ndarray,
                                        x_bits: Optional[np.ndarray] = None,
                                        z_bits: Optional[np.ndarray] = None,
                                        observable=None) -> np.ndarray:
    """⟨ψ_b|P_t|ψ_b⟩ for a whole ``(B, 2^n)`` batch of statevectors at once.

    The sweep-readout companion of :func:`statevector_term_expectations`:
    each term's parity signs and gather indices are computed once and applied
    across every state of the batch in one vectorized pass, which is how the
    batched parameter-sweep pipeline reads a many-term Hamiltonian off all
    sweep points together.  Returns a float64 array of shape ``(B, T)``.
    Example::

        states = program.run_sweep(parameter_sets)       # (B, 2^n)
        values = statevector_term_expectations_batch(
            states, observable=hamiltonian)              # (B, T)
    """
    states = np.atleast_2d(np.asarray(states, dtype=complex))
    x_bits, z_bits = _resolve_bits(observable, x_bits, z_bits)
    if states.shape[1] != 1 << x_bits.shape[1]:
        raise ValueError(
            f"states have dimension {states.shape[1]} but terms act on "
            f"{x_bits.shape[1]} qubits")
    x_masks, z_masks, phases = pauli_masks(x_bits, z_bits)
    indices = np.arange(states.shape[1], dtype=np.int64)
    values = np.empty((states.shape[0], len(x_masks)))
    # Diagonal terms (no X component, so i^{n_Y} = 1) reduce to signed sums
    # of probabilities; all of them are served by one (B, 2^n) @ (2^n, T_d)
    # matmul against the parity-sign table.
    diagonal = np.flatnonzero(x_masks == 0)
    if len(diagonal):
        parities = _popcount(indices[None, :]
                             & z_masks[diagonal][:, None]).astype(np.int64) & 1
        signs = 1.0 - 2.0 * parities
        probabilities = np.abs(states) ** 2
        values[:, diagonal] = probabilities @ signs.T
    conj_states = np.conj(states) if len(diagonal) < len(x_masks) else None
    for t in np.flatnonzero(x_masks != 0):
        signed = _parity_signs(indices, int(z_masks[t])) * states
        bras = conj_states[:, indices ^ int(x_masks[t])]
        # einsum contracts without materializing the elementwise product.
        values[:, t] = np.real(phases[t]
                               * np.einsum("bi,bi->b", bras, signed))
    return values


def density_matrix_term_expectations(rho: np.ndarray,
                                     x_bits: Optional[np.ndarray] = None,
                                     z_bits: Optional[np.ndarray] = None,
                                     observable=None) -> np.ndarray:
    """Tr(ρ·P_t) for every bare Pauli term, from one density matrix.

    ``rho`` is a dense ``2^n × 2^n`` density matrix.  The trace gathers one
    (possibly off-) diagonal per term — ``Tr(ρP) = Σ_j c_j ρ[j, j⊕x]`` with
    ``c_j`` the bitmask phase of ``P|j⟩`` — so the cost per term is ``O(2^n)``
    instead of a ``4^n`` sparse-matrix product.  Example::

        rho = DensityMatrixSimulator(noise).run(circuit).data
        values = density_matrix_term_expectations(rho, observable=hamiltonian)
    """
    rho = np.asarray(rho, dtype=complex)
    x_bits, z_bits = _resolve_bits(observable, x_bits, z_bits)
    dim = 1 << x_bits.shape[1]
    if rho.shape != (dim, dim):
        raise ValueError(
            f"density matrix has shape {rho.shape} but terms act on "
            f"{x_bits.shape[1]} qubits")
    x_masks, z_masks, phases = pauli_masks(x_bits, z_bits)
    indices = np.arange(dim, dtype=np.int64)
    values = np.empty(len(x_masks))
    for t in range(len(x_masks)):
        signs = _parity_signs(indices, int(z_masks[t]))
        gathered = rho[indices, indices ^ int(x_masks[t])]
        values[t] = np.real(phases[t] * np.dot(signs, gathered))
    return values
