"""Compiled circuit programs and batched parameter-sweep execution.

The interpreted simulator loops pay Python-level costs per gate per run:
``Gate.matrix()`` resolution, tensor-axis derivation, one generic
``tensordot`` per instruction — and every optimizer step (COBYLA/SPSA
queries, parameter-shift pairs, genetic populations, VQD levels, classifier
batches) re-simulates near-identical circuits one at a time.  This module
lowers a :class:`~repro.circuits.circuit.QuantumCircuit` **once** into a flat
:class:`CompiledProgram` and executes it — alone or across a whole parameter
sweep in one NumPy pass:

* **compile** — :func:`compile_circuit` resolves every gate matrix, derives
  tensor axes, fuses adjacent same-qubit unitaries (2×2/4×4 matmuls at
  compile time) and lowers diagonal gates (``rz``/``cz``/``rzz``/``z``/``s``/
  ``t``/…) to elementwise phase vectors instead of tensordots.  Compiling
  with a :class:`~repro.simulators.noise.NoiseModel` produces the
  density-matrix program: layer-ordered ops with one **pre-merged** Kraus
  channel per noisy slot plus idle/readout channel ops (fusion is skipped so
  channels keep their exact positions).
* **cache** — programs are cached by ``circuit.fingerprint()`` (+ the noise
  model's identity and mutation ``version``), so optimizer re-queries and
  repeated executor traffic skip compilation entirely.
  :func:`program_cache_counters` feeds the execution layer's
  ``programs_compiled`` / ``program_cache_hits`` stats.
* **bind** — a program compiled from a parametric template keeps its
  structure and rebuilds only the parametric matrices:
  ``program.bind(theta)`` is the per-sweep-point cost.
* **batch** — :func:`run_batch` executes ``B`` structure-sharing bound
  programs as one ``(B, 2^n)`` stacked pass: every op is applied across the
  whole batch in a single (batched) matmul or broadcast multiply, which is
  what serves SPSA ± pairs, gradient pairs, genetic populations and
  parameter sweeps at NumPy speed.

Example::

    template = ansatz.build()                      # free parameters
    program = compile_circuit(template)            # compiled once, cached
    states = run_batch([program.bind(theta) for theta in sweep])
    # states.shape == (len(sweep), 2 ** n)
"""

from __future__ import annotations

import math
import threading
from collections import OrderedDict
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..circuits.gates import DIAGONAL_GATE_NAMES, parametric_matrix
from ..circuits.parameters import Parameter, ParameterExpression
from .noise import NoiseModel, QuantumChannel, RESET_CHANNEL, bit_flip_channel

__all__ = [
    "CompiledOp",
    "CompiledProgram",
    "compile_circuit",
    "run_batch",
    "run_interpreted",
    "clear_program_cache",
    "program_cache_counters",
    "OP_UNITARY",
    "OP_DIAG",
    "OP_RESET",
    "OP_CHANNEL",
    "OP_MEASURE_NOISE",
]

# Op kinds -------------------------------------------------------------------
OP_UNITARY = "unitary"          # dense k-qubit matrix, tensor contraction
OP_DIAG = "diag"                # k-qubit diagonal, elementwise phase multiply
OP_PERM = "perm"                # monomial matrix (CX/SWAP/X/...), index gather
OP_RESET = "reset"              # projective reset to |0> (stochastic on kets)
OP_CHANNEL = "channel"          # Kraus channel (density-matrix programs)
OP_MEASURE_NOISE = "measure_noise"  # readout flip channel, applied on demand

#: Above this qubit count the per-op full-index gather tables of the
#: permutation fast path (O(2^n) int64 entries) cost more than they save.
_MAX_PERM_QUBITS = 20


def _diag_vector(matrix: np.ndarray) -> np.ndarray:
    """The diagonal of a (known-diagonal) gate unitary."""
    return np.ascontiguousarray(np.diag(matrix))


def _parametric_diag(name: str, params: Tuple[float, ...]) -> np.ndarray:
    """Diagonal phase vector of a parametric diagonal gate (rz / rzz)."""
    half = params[0] / 2.0
    phase, conj = np.exp(-1j * half), np.exp(1j * half)
    if name == "rz":
        return np.array([phase, conj])
    if name == "rzz":
        return np.array([phase, conj, conj, phase])
    raise ValueError(f"gate {name!r} is not a parametric diagonal gate")


def _broadcast_diag(diag: np.ndarray, qubits: Tuple[int, ...],
                    num_qubits: int) -> np.ndarray:
    """Reshape a ``2^k`` diagonal so it broadcasts onto the state tensor.

    The returned array has ``num_qubits`` axes: size 2 at the state-tensor
    axis of each target qubit (axis ``n-1-q`` for qubit ``q``), size 1
    elsewhere.  Multiplying the ``(…, 2, 2, …)`` state tensor by it applies
    the diagonal gate; a leading batch axis broadcasts for free.
    """
    k = len(qubits)
    tensor = np.asarray(diag, dtype=complex).reshape([2] * k)
    # tensor axis for qubits[j] is k-1-j (qubits[0] = least significant bit).
    # Reorder axes so they land in ascending state-tensor axis order, which
    # is descending qubit order.
    order = sorted(range(k), key=lambda j: qubits[j], reverse=True)
    tensor = np.transpose(tensor, axes=[k - 1 - j for j in order])
    shape = [1] * num_qubits
    for qubit in qubits:
        shape[num_qubits - 1 - qubit] = 2
    return np.ascontiguousarray(tensor).reshape(shape)


_ARANGE_CACHE: Dict[int, np.ndarray] = {}


def _index_arange(dim: int) -> np.ndarray:
    """A shared read-only ``arange(dim)`` (index tables are built often)."""
    cached = _ARANGE_CACHE.get(dim)
    if cached is None:
        cached = np.arange(dim, dtype=np.int64)
        cached.setflags(write=False)
        _ARANGE_CACHE[dim] = cached
    return cached


def _perm_apply_to_values(values: np.ndarray, qubits: Tuple[int, ...],
                          columns: np.ndarray,
                          phases: Optional[np.ndarray]
                          ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """Apply a monomial op's index action elementwise to ``values``.

    Treating each entry of ``values`` as a basis index, replaces its target-
    qubit bits through the op's column permutation and extracts the matching
    phase factors — pure bit arithmetic, no gather tables.  This is both how
    a single perm op materializes its full table and how a whole run of perm
    ops composes into one (apply each op's action to the evolving table).
    """
    small = (values >> qubits[0]) & 1
    for j in range(1, len(qubits)):
        small = small | (((values >> qubits[j]) & 1) << j)
    mapped = columns[small]
    mask = 0
    for qubit in qubits:
        mask |= 1 << qubit
    out = values & ~mask
    out = out | ((mapped & 1) << qubits[0])
    for j in range(1, len(qubits)):
        out |= ((mapped >> j) & 1) << qubits[j]
    return out, (None if phases is None else phases[small])


class _Factor:
    """One instruction's contribution to a (possibly fused) compiled op.

    Static factors carry their resolved array (a matrix, or a bare diagonal
    vector when ``diag``); parametric factors carry the gate name and its raw
    parameter expressions and are rebuilt on :meth:`CompiledProgram.bind`.
    """

    __slots__ = ("name", "params", "static", "diag")

    def __init__(self, name: str, params: Optional[tuple],
                 static: Optional[np.ndarray], diag: bool):
        self.name = name
        self.params = params
        self.static = static
        self.diag = diag

    @property
    def is_parametric(self) -> bool:
        return self.static is None

    def resolve(self, bindings: Mapping) -> Tuple[np.ndarray, bool]:
        """The factor's array at the given bindings: ``(array, is_diag)``."""
        if self.static is not None:
            return self.static, self.diag
        values = []
        for param in self.params:
            if isinstance(param, ParameterExpression):
                values.append(float(param.bind(bindings)))
            else:
                values.append(float(param))
        values = tuple(values)
        if self.diag:
            return _parametric_diag(self.name, values), True
        return parametric_matrix(self.name, values), False


class CompiledOp:
    """One lowered operation of a :class:`CompiledProgram`.

    ``data`` depends on ``kind``: the dense matrix (:data:`OP_UNITARY`), the
    broadcast-shaped phase tensor (:data:`OP_DIAG`), a ``(columns, phases)``
    pair over the small ``2^k`` index space (:data:`OP_PERM`), the
    Kraus-operator list (:data:`OP_CHANNEL` / :data:`OP_MEASURE_NOISE`) or
    ``None`` (:data:`OP_RESET`).  ``factors`` (gate ops only) records the
    constituent instructions so parametric ops can be rebuilt on bind;
    ``data is None`` marks an op still awaiting parameter binding.
    """

    __slots__ = ("kind", "qubits", "data", "factors", "raw_diag",
                 "is_parametric", "_full")

    def __init__(self, kind: str, qubits: Tuple[int, ...], data,
                 factors: Optional[List[_Factor]] = None,
                 raw_diag: Optional[np.ndarray] = None):
        self.kind = kind
        self.qubits = qubits
        self.data = data
        self.factors = factors
        self.raw_diag = raw_diag  # bare 2^k diagonal (diag ops only)
        self.is_parametric = bool(factors) and any(f.is_parametric
                                                   for f in factors)
        self._full = None  # lazy full-index gather table (perm ops)

    def full_indices(self, num_qubits: int
                     ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """Memoized ``(source_indices, phases)`` gather table of a perm op.

        ``out[j] = phases[j] * in[source_indices[j]]`` applies the monomial
        matrix over the full ``2^n`` index space; ``phases`` is ``None`` for
        pure permutations (CX, SWAP, X).
        """
        if self._full is None:
            columns, phases = self.data
            self._full = _perm_apply_to_values(
                _index_arange(1 << num_qubits), self.qubits, columns, phases)
        return self._full

    def bound(self, bindings: Mapping, num_qubits: int) -> "CompiledOp":
        """A bound copy with parametric factor matrices rebuilt."""
        if not self.is_parametric:
            return self
        if self.kind == OP_DIAG:
            diag = None
            for factor in self.factors:
                array, _ = factor.resolve(bindings)
                diag = array if diag is None else diag * array
            return CompiledOp(OP_DIAG, self.qubits,
                              _broadcast_diag(diag, self.qubits, num_qubits),
                              self.factors, raw_diag=diag)
        matrix = None
        for factor in self.factors:
            array, is_diag = factor.resolve(bindings)
            if is_diag:
                array = np.diag(array)
            matrix = array if matrix is None else array @ matrix
        return CompiledOp(OP_UNITARY, self.qubits, matrix, self.factors)

    def __repr__(self):
        return f"CompiledOp({self.kind}, qubits={self.qubits})"


class CompiledProgram:
    """A circuit lowered to a flat op stream with resolved numerics.

    Produced by :func:`compile_circuit`.  A program compiled from a
    parametric template is *structural*: its parametric ops carry no data
    until :meth:`bind` resolves them against a parameter vector (aligned
    with the source circuit's ``ordered_parameters()``) or a mapping.  Bound
    programs from one template share every static op, which is what lets
    :func:`run_batch` stack only the genuinely varying matrices.  Example::

        program = compile_circuit(ansatz.build())
        state = program.bind(theta).run_statevector()
    """

    __slots__ = ("num_qubits", "ops", "parameters", "noise_model",
                 "fingerprint", "fused", "_template", "_structure",
                 "_parametric_indices")

    def __init__(self, num_qubits: int, ops: List[CompiledOp],
                 parameters: List[Parameter],
                 noise_model: Optional[NoiseModel],
                 fingerprint: Optional[str], fused: bool,
                 template: Optional["CompiledProgram"] = None):
        self.num_qubits = num_qubits
        self.ops = ops
        self.parameters = parameters
        self.noise_model = noise_model
        self.fingerprint = fingerprint
        self.fused = fused
        self._template = template or self
        self._structure = None
        self._parametric_indices = [index for index, op in enumerate(ops)
                                    if op.is_parametric]

    # -- classification ------------------------------------------------------
    @property
    def is_parametric(self) -> bool:
        return bool(self.parameters)

    @property
    def is_bound(self) -> bool:
        """True when every op has resolved numeric data."""
        return all(op.data is not None or op.kind == OP_RESET
                   or op._full is not None for op in self.ops)

    @property
    def has_reset(self) -> bool:
        return any(op.kind == OP_RESET for op in self.ops)

    @property
    def has_channels(self) -> bool:
        return any(op.kind in (OP_CHANNEL, OP_MEASURE_NOISE)
                   for op in self.ops)

    def structure_key(self) -> Tuple:
        """Hashable op-stream shape; equal keys ⇒ batchable together."""
        if self._structure is None:
            self._structure = tuple((op.kind, op.qubits) for op in self.ops)
        return self._structure

    # -- binding -------------------------------------------------------------
    def bind(self, parameters) -> "CompiledProgram":
        """Bind the template's free parameters, rebuilding only parametric ops.

        ``parameters`` is a mapping ``{Parameter: value}`` or a sequence
        aligned with the source circuit's ``ordered_parameters()``.  Static
        ops (matrices, diagonals, channels) are shared with the template —
        only ops touching a free parameter are recomputed.
        """
        if isinstance(parameters, Mapping):
            bindings = dict(parameters)
        else:
            values = list(parameters)
            if len(values) != len(self.parameters):
                raise ValueError(
                    f"expected {len(self.parameters)} parameter values, "
                    f"got {len(values)}")
            bindings = dict(zip(self.parameters, values))
        ops = list(self.ops)
        for index in self._parametric_indices:
            ops[index] = ops[index].bound(bindings, self.num_qubits)
        return CompiledProgram(self.num_qubits, ops, [], self.noise_model,
                               None, self.fused, template=self._template)

    # -- execution -----------------------------------------------------------
    def run_statevector(self, initial_state: Optional[np.ndarray] = None,
                        rng: Optional[np.random.Generator] = None
                        ) -> np.ndarray:
        """Execute on a dense ket; returns the final ``2^n`` statevector.

        Requires a bound, channel-free program.  ``rng`` drives projective
        resets (one uniform draw per reset, matching the interpreted path).
        """
        if self.has_channels:
            raise ValueError(
                "program carries noise channels; use run_density_matrix")
        n = self.num_qubits
        dim = 1 << n
        if initial_state is None:
            state = np.zeros(dim, dtype=complex)
            state[0] = 1.0
        else:
            state = np.array(initial_state, dtype=complex).ravel()
        tensor = state.reshape([2] * n)
        for op in self.ops:
            if op.kind == OP_DIAG:
                tensor = tensor * op.data
            elif op.kind == OP_PERM:
                source, phases = op.full_indices(n)
                flat = tensor.reshape(-1)[source]
                if phases is not None:
                    flat = flat * phases
                tensor = flat.reshape([2] * n)
            elif op.kind == OP_UNITARY:
                tensor = _apply_unitary_tensor(tensor, op.data, op.qubits, n)
            elif op.kind == OP_RESET:
                flat = tensor.reshape(-1)
                flat = _reset_ket(flat, op.qubits[0],
                                  rng or np.random.default_rng())
                tensor = flat.reshape([2] * n)
            else:  # pragma: no cover - guarded above
                raise ValueError(f"statevector program cannot run {op.kind}")
        return tensor.reshape(-1)

    def run_density_matrix(self, initial_state: Optional[np.ndarray] = None,
                           apply_measure_noise: bool = False) -> np.ndarray:
        """Execute on a density matrix; returns the final ``2^n × 2^n`` ρ.

        Unitaries are applied as conjugations (diagonal ops as row/column
        phase multiplies), channels as pre-merged Kraus sums.
        :data:`OP_MEASURE_NOISE` ops fire only when ``apply_measure_noise``.
        """
        n = self.num_qubits
        dim = 1 << n
        if initial_state is None:
            rho = np.zeros((dim, dim), dtype=complex)
            rho[0, 0] = 1.0
        else:
            rho = np.array(initial_state, dtype=complex).reshape(dim, dim)
        for op in self.ops:
            if op.kind == OP_DIAG:
                rho = _dm_apply_diag(rho, op.data, n)
            elif op.kind == OP_PERM:
                source, phases = op.full_indices(n)
                rho = rho[source[:, None], source[None, :]]
                if phases is not None:
                    rho = rho * np.outer(phases, np.conj(phases))
            elif op.kind == OP_UNITARY:
                rho = _dm_apply_unitary(rho, op.data, op.qubits, n)
            elif op.kind == OP_CHANNEL:
                rho = _dm_apply_channel(rho, op.data, op.qubits, n)
            elif op.kind == OP_RESET:
                rho = _dm_apply_channel(rho, RESET_CHANNEL.kraus_operators,
                                        op.qubits, n)
            elif op.kind == OP_MEASURE_NOISE:
                if apply_measure_noise:
                    rho = _dm_apply_channel(rho, op.data, op.qubits, n)
        return rho

    def run_sweep(self, parameter_sets: Sequence[Sequence[float]]
                  ) -> np.ndarray:
        """Bind every parameter set and execute the batch in one pass.

        Returns the ``(B, 2^n)`` matrix of final statevectors — see
        :func:`run_batch` for the batching mechanics and restrictions.
        """
        return run_batch([self.bind(values) for values in parameter_sets])

    def __repr__(self):
        kind = "noisy" if self.noise_model is not None else "noiseless"
        return (f"CompiledProgram(qubits={self.num_qubits}, "
                f"ops={len(self.ops)}, {kind}, "
                f"parametric={self.is_parametric})")


# ---------------------------------------------------------------------------
# Low-level appliers
# ---------------------------------------------------------------------------

def _apply_unitary_tensor(tensor: np.ndarray, matrix: np.ndarray,
                          qubits: Tuple[int, ...], num_qubits: int
                          ) -> np.ndarray:
    """Contract a k-qubit matrix into a ``(2,)*n`` state tensor."""
    k = len(qubits)
    axes = [num_qubits - 1 - q for q in qubits]
    gate_tensor = matrix.reshape([2] * (2 * k))
    tensor = np.tensordot(gate_tensor, tensor,
                          axes=(list(range(k, 2 * k)), list(reversed(axes))))
    return np.moveaxis(tensor, list(range(k)), list(reversed(axes)))


def _reset_ket(state: np.ndarray, qubit: int,
               rng: np.random.Generator) -> np.ndarray:
    """Projective reset of one qubit of a flat ket (one uniform draw)."""
    indices = np.arange(state.size)
    mask_one = (indices >> qubit) & 1 == 1
    prob_one = float(np.sum(np.abs(state[mask_one]) ** 2))
    if rng.random() < prob_one:
        new_state = np.zeros_like(state)
        new_state[indices[mask_one] ^ (1 << qubit)] = state[mask_one]
        norm = math.sqrt(prob_one)
    else:
        new_state = state.copy()
        new_state[mask_one] = 0.0
        norm = math.sqrt(max(1.0 - prob_one, 1e-300))
    return new_state / norm


def _batch_apply_unitary(states: np.ndarray, matrices: np.ndarray,
                         qubits: Tuple[int, ...], num_qubits: int
                         ) -> np.ndarray:
    """Apply a (shared or per-batch) matrix across a flat ``(B, 2^n)`` batch.

    ``matrices`` is ``(2^k, 2^k)`` (shared) or ``(B, 2^k, 2^k)`` (one per
    batch element); either way the whole batch is served by a single
    (stacked) matmul.
    """
    k = len(qubits)
    dim_k = 1 << k
    batch = states.shape[0]
    tensor = states.reshape([batch] + [2] * num_qubits)
    # State-tensor axes of the target qubits, most-significant qubit first,
    # offset by the leading batch axis.
    src = [1 + num_qubits - 1 - q for q in reversed(qubits)]
    dest = list(range(1, k + 1))
    moved = np.moveaxis(tensor, src, dest)
    shape = moved.shape
    flat = moved.reshape(batch, dim_k, -1)
    out = np.matmul(matrices, flat)
    out = np.moveaxis(out.reshape(shape), dest, src)
    return out.reshape(batch, -1)


def _dm_apply_matrix(tensor: np.ndarray, matrix: np.ndarray,
                     tensor_axes: List[int]) -> np.ndarray:
    k = len(tensor_axes)
    gate_tensor = matrix.reshape([2] * (2 * k))
    tensor = np.tensordot(gate_tensor, tensor,
                          axes=(list(range(k, 2 * k)), tensor_axes))
    return np.moveaxis(tensor, list(range(k)), tensor_axes)


def _dm_axes(qubits: Sequence[int], num_qubits: int
             ) -> Tuple[List[int], List[int]]:
    row_axes = [num_qubits - 1 - q for q in reversed(qubits)]
    col_axes = [num_qubits + axis for axis in row_axes]
    return row_axes, col_axes


def _dm_apply_unitary(rho: np.ndarray, matrix: np.ndarray,
                      qubits: Tuple[int, ...], num_qubits: int) -> np.ndarray:
    dim = 1 << num_qubits
    row_axes, col_axes = _dm_axes(qubits, num_qubits)
    tensor = rho.reshape([2] * (2 * num_qubits))
    tensor = _dm_apply_matrix(tensor, matrix, row_axes)
    tensor = _dm_apply_matrix(tensor, matrix.conj(), col_axes)
    return tensor.reshape(dim, dim)


def _dm_apply_diag(rho: np.ndarray, diag_tensor: np.ndarray,
                   num_qubits: int) -> np.ndarray:
    """ρ → D ρ D† for a diagonal D given as a broadcast-shaped phase tensor."""
    tensor = rho.reshape([2] * (2 * num_qubits))
    # Trailing-axis broadcasting hits the column axes; prepending singleton
    # axes shifts the same tensor onto the row axes.
    row_view = diag_tensor.reshape(diag_tensor.shape + (1,) * num_qubits)
    tensor = tensor * row_view
    tensor = tensor * np.conj(diag_tensor)
    dim = 1 << num_qubits
    return tensor.reshape(dim, dim)


def _dm_apply_channel(rho: np.ndarray, kraus_operators: Sequence[np.ndarray],
                      qubits: Tuple[int, ...], num_qubits: int) -> np.ndarray:
    dim = 1 << num_qubits
    row_axes, col_axes = _dm_axes(qubits, num_qubits)
    accumulated = np.zeros((dim, dim), dtype=complex)
    for kraus in kraus_operators:
        tensor = rho.reshape([2] * (2 * num_qubits))
        tensor = _dm_apply_matrix(tensor, kraus, row_axes)
        tensor = _dm_apply_matrix(tensor, kraus.conj(), col_axes)
        accumulated += tensor.reshape(dim, dim)
    return accumulated


# ---------------------------------------------------------------------------
# Compilation
# ---------------------------------------------------------------------------

def _as_perm_op(op: CompiledOp) -> CompiledOp:
    """Convert a static unitary op to :data:`OP_PERM` when it is monomial.

    A monomial unitary (one nonzero per row — CX, SWAP, X, Y, and their
    products) applies as an index gather plus optional phases: one pass over
    the state instead of a matmul's several.  Non-monomial ops are returned
    unchanged.
    """
    matrix = op.data
    nonzero = np.abs(matrix) > 1e-12
    if (nonzero.sum(axis=1) != 1).any():
        return op
    columns = np.argmax(nonzero, axis=1).astype(np.int64)
    phases = matrix[np.arange(len(matrix)), columns]
    if (phases == 1.0).all():
        phases = None
    return CompiledOp(OP_PERM, op.qubits, (columns, phases), op.factors)


def _fuse_perm_run(run: List[CompiledOp], num_qubits: int) -> CompiledOp:
    """Collapse consecutive PERM ops into one full-index gather.

    Permutation composition happens index-wise over the full ``2^n`` space,
    so a whole CNOT ladder (or any monomial-gate run) becomes a *single*
    gather per execution, regardless of which qubits each gate touched.
    """
    if len(run) == 1:
        return run[0]
    # Walk the run in reverse, applying each op's bit-level action to the
    # evolving index table: the composed gather builds in O(run length)
    # vectorized passes with no per-op tables.
    source = _index_arange(1 << num_qubits)
    phases = None
    for op in reversed(run):
        columns, op_phases = op.data
        source, phase_factors = _perm_apply_to_values(source, op.qubits,
                                                      columns, op_phases)
        if phase_factors is not None:
            phases = (phase_factors if phases is None
                      else phases * phase_factors)
    qubits = tuple(sorted({q for op in run for q in op.qubits}))
    factors = [factor for op in run for factor in (op.factors or [])]
    fused = CompiledOp(OP_PERM, qubits, None, factors)
    fused._full = (source, phases)
    return fused


def _finalize_ops(ops: List[CompiledOp], num_qubits: int) -> List[CompiledOp]:
    """Post-fusion lowering pass for static monomial unitaries.

    Each static unitary with exactly one nonzero per row (CX, SWAP, X, Y and
    their products) is rewritten as an index gather (:data:`OP_PERM`), and
    consecutive gathers collapse into one.
    """
    if num_qubits > _MAX_PERM_QUBITS:
        return ops
    lowered = [_as_perm_op(op)
               if op.kind == OP_UNITARY and not op.is_parametric else op
               for op in ops]
    finalized: List[CompiledOp] = []
    run: List[CompiledOp] = []
    for op in lowered:
        if op.kind == OP_PERM:
            run.append(op)
            continue
        if run:
            finalized.append(_fuse_perm_run(run, num_qubits))
            run = []
        finalized.append(op)
    if run:
        finalized.append(_fuse_perm_run(run, num_qubits))
    return finalized


def _make_gate_op(inst, num_qubits: int) -> CompiledOp:
    """Lower one unitary instruction to an (unfused) compiled op."""
    gate = inst.gate
    diag = gate.name in DIAGONAL_GATE_NAMES
    if gate.is_parameterized:
        factor = _Factor(gate.name, gate.params, None, diag)
        return CompiledOp(OP_DIAG if diag else OP_UNITARY, inst.qubits,
                          None, [factor])
    matrix = gate.matrix()
    if diag:
        vector = _diag_vector(matrix)
        factor = _Factor(gate.name, None, vector, True)
        return CompiledOp(OP_DIAG, inst.qubits,
                          _broadcast_diag(vector, inst.qubits, num_qubits),
                          [factor], raw_diag=vector)
    factor = _Factor(gate.name, None, matrix, False)
    return CompiledOp(OP_UNITARY, inst.qubits, matrix, [factor])


def _try_fuse(previous: CompiledOp, new: CompiledOp,
              num_qubits: int) -> Optional[CompiledOp]:
    """Fuse two adjacent gate ops acting on the identical qubit tuple."""
    if previous.kind not in (OP_UNITARY, OP_DIAG):
        return None
    if new.kind not in (OP_UNITARY, OP_DIAG):
        return None
    if previous.qubits != new.qubits:
        return None
    factors = list(previous.factors) + list(new.factors)
    if previous.is_parametric or new.is_parametric:
        diag = previous.kind == OP_DIAG and new.kind == OP_DIAG
        return CompiledOp(OP_DIAG if diag else OP_UNITARY, new.qubits,
                          None, factors)
    if previous.kind == OP_DIAG and new.kind == OP_DIAG:
        merged = previous.raw_diag * new.raw_diag
        return CompiledOp(OP_DIAG, new.qubits,
                          _broadcast_diag(merged, new.qubits, num_qubits),
                          factors, raw_diag=merged)
    left = (np.diag(new.raw_diag) if new.kind == OP_DIAG else new.data)
    right = (np.diag(previous.raw_diag) if previous.kind == OP_DIAG
             else previous.data)
    return CompiledOp(OP_UNITARY, new.qubits, left @ right, factors)


def _merged_channel(channels: List[QuantumChannel]) -> QuantumChannel:
    """Compose a gate's channel list into one per-slot channel."""
    merged = channels[0]
    for channel in channels[1:]:
        merged = channel.compose(merged)
    return merged


def _compile_noiseless(circuit: QuantumCircuit, fuse: bool
                       ) -> List[CompiledOp]:
    """Instruction-order lowering: fusion + diagonal fast path, no channels."""
    num_qubits = circuit.num_qubits
    ops: List[CompiledOp] = []
    for inst in circuit:
        name = inst.name
        if name in ("barrier", "measure", "i", "id"):
            continue  # no-ops on a noiseless ket; identities are dropped
        if name == "reset":
            ops.append(CompiledOp(OP_RESET, inst.qubits, None))
            continue
        new = _make_gate_op(inst, num_qubits)
        if fuse and ops:
            fused = _try_fuse(ops[-1], new, num_qubits)
            if fused is not None:
                ops[-1] = fused
                continue
        ops.append(new)
    return ops


def _compile_noisy(circuit: QuantumCircuit,
                   noise_model: NoiseModel) -> List[CompiledOp]:
    """Layer-order lowering mirroring ``DensityMatrixSimulator.run``.

    Fusion is skipped: every unitary keeps its exact position so its
    pre-merged noise channel lands where the interpreted loop put it.  Idle
    channels are appended per layer, readout flips become
    :data:`OP_MEASURE_NOISE` ops the executor applies on demand.
    """
    num_qubits = circuit.num_qubits
    idle_channel = noise_model.idle_channel
    merged_cache: Dict[str, Optional[QuantumChannel]] = {}
    readout = None
    if noise_model.readout_error > 0:
        readout = bit_flip_channel(noise_model.readout_error)
    ops: List[CompiledOp] = []
    for layer in circuit.layers():
        busy: set = set()
        for inst in layer:
            busy.update(inst.qubits)
            name = inst.name
            if name == "measure":
                if readout is not None:
                    ops.append(CompiledOp(OP_MEASURE_NOISE, inst.qubits,
                                          readout.kraus_operators))
                continue
            if name == "reset":
                ops.append(CompiledOp(OP_RESET, inst.qubits, None))
                continue
            ops.append(_make_gate_op(inst, num_qubits))
            if name not in merged_cache:
                channels = noise_model.gate_channels(name)
                merged_cache[name] = (_merged_channel(channels)
                                      if channels else None)
            merged = merged_cache[name]
            if merged is not None:
                ops.append(CompiledOp(OP_CHANNEL, inst.qubits,
                                      merged.kraus_operators))
        if idle_channel is not None:
            idle_kraus = idle_channel.kraus_operators
            for qubit in range(num_qubits):
                if qubit not in busy:
                    ops.append(CompiledOp(OP_CHANNEL, (qubit,), idle_kraus))
    return ops


# ---------------------------------------------------------------------------
# Program cache
# ---------------------------------------------------------------------------

_CACHE_MAX_SIZE = 512
#: Approximate payload ceiling for the program cache.  Fused permutation
#: ops hold O(2^n) gather tables, so one-shot bound circuits at high qubit
#: counts would otherwise pin gigabytes of never-reused programs.
_CACHE_MAX_BYTES = 256 * 1024 * 1024
_PROGRAM_CACHE: "OrderedDict[Tuple, Tuple[CompiledProgram, int]]" = OrderedDict()
_CACHE_LOCK = threading.Lock()
_CACHE_BYTES = 0
_COMPILED_COUNT = 0
_HIT_COUNT = 0


def _program_nbytes(program: CompiledProgram) -> int:
    """Estimated numeric payload of a program (for cache accounting).

    Perm ops that have not materialized their ``O(2^n)`` gather tables yet
    are charged their *eventual* size: the tables appear lazily on first
    run, after the program has been inserted into the cache, so accounting
    only what exists at insert time would defeat the byte ceiling.
    """
    dim = 1 << program.num_qubits
    total = 0
    for op in program.ops:
        parts = op.data if isinstance(op.data, (tuple, list)) else (op.data,)
        for part in parts:
            if isinstance(part, np.ndarray):
                total += part.nbytes
        if op._full is not None:
            for part in op._full:
                if isinstance(part, np.ndarray):
                    total += part.nbytes
        elif op.kind == OP_PERM:
            total += dim * 8  # int64 source table, built on first run
            if op.data[1] is not None:
                total += dim * 16  # complex128 phase table
    return total


def program_cache_counters() -> Tuple[int, int]:
    """Process-wide ``(programs_compiled, program_cache_hits)`` counters.

    The execution layer samples these around dispatch to attribute compile
    activity to its :class:`~repro.execution.executor.ExecutionStats`.
    """
    with _CACHE_LOCK:
        return _COMPILED_COUNT, _HIT_COUNT


def clear_program_cache() -> None:
    """Drop every cached program and reset the counters (mainly for tests)."""
    global _COMPILED_COUNT, _HIT_COUNT, _CACHE_BYTES
    with _CACHE_LOCK:
        _PROGRAM_CACHE.clear()
        _CACHE_BYTES = 0
        _COMPILED_COUNT = 0
        _HIT_COUNT = 0


def _noise_cache_token(noise_model: Optional[NoiseModel]):
    if noise_model is None or not noise_model.has_noise():
        return None
    return (id(noise_model), noise_model.version)


def compile_circuit(circuit: QuantumCircuit,
                    noise_model: Optional[NoiseModel] = None,
                    fuse: bool = True,
                    use_cache: bool = True) -> CompiledProgram:
    """Lower ``circuit`` to a :class:`CompiledProgram` (cached).

    Without a noise model the program is the statevector fast path:
    instruction-ordered, adjacent same-qubit unitaries fused, diagonal gates
    lowered to phase vectors, barriers/measurements dropped.  With a noise
    model the program is layer-ordered with pre-merged Kraus channel ops and
    **fusion disabled** (channels must keep their positions); it is what
    :class:`~repro.simulators.density_matrix.DensityMatrixSimulator` executes.

    Programs are cached by ``circuit.fingerprint()`` plus the noise model's
    identity and mutation :attr:`~repro.simulators.noise.NoiseModel.version`
    (and the ``fuse`` flag), so an in-place ``add_*`` edit invalidates stale
    programs.  Parametric circuits compile their structure once; use
    :meth:`CompiledProgram.bind` per parameter vector.
    """
    global _COMPILED_COUNT, _HIT_COUNT
    parameters = circuit.ordered_parameters()
    key = None
    if use_cache:
        # Parameter *identities* join the key: two structurally identical
        # templates built from distinct Parameter objects share a
        # fingerprint, but a cached program holds the first template's
        # Parameter objects and mapping-based bind() matches by identity.
        # (The cached program pins its parameters, so ids cannot recycle.)
        key = (circuit.fingerprint(),
               tuple(id(parameter) for parameter in parameters), fuse,
               _noise_cache_token(noise_model))
        with _CACHE_LOCK:
            cached = _PROGRAM_CACHE.get(key)
            if cached is not None:
                _PROGRAM_CACHE.move_to_end(key)
                _HIT_COUNT += 1
                return cached[0]
    if noise_model is not None and noise_model.has_noise():
        ops = _compile_noisy(circuit, noise_model)
        effective_fuse = False
    else:
        ops = _compile_noiseless(circuit, fuse)
        effective_fuse = fuse
    ops = _finalize_ops(ops, circuit.num_qubits)
    program = CompiledProgram(circuit.num_qubits, ops, parameters,
                              noise_model,
                              circuit.fingerprint() if key is None else key[0],
                              effective_fuse)
    if use_cache:
        nbytes = _program_nbytes(program)
        global _CACHE_BYTES
        with _CACHE_LOCK:
            _COMPILED_COUNT += 1
            previous = _PROGRAM_CACHE.get(key)
            if previous is not None:
                _CACHE_BYTES -= previous[1]
            _PROGRAM_CACHE[key] = (program, nbytes)
            _PROGRAM_CACHE.move_to_end(key)
            _CACHE_BYTES += nbytes
            while _PROGRAM_CACHE and (len(_PROGRAM_CACHE) > _CACHE_MAX_SIZE
                                      or _CACHE_BYTES > _CACHE_MAX_BYTES):
                _, (_, evicted_bytes) = _PROGRAM_CACHE.popitem(last=False)
                _CACHE_BYTES -= evicted_bytes
    else:
        with _CACHE_LOCK:
            _COMPILED_COUNT += 1
    return program


# ---------------------------------------------------------------------------
# Batched execution
# ---------------------------------------------------------------------------

def run_batch(programs: Sequence[CompiledProgram],
              initial_states: Optional[np.ndarray] = None) -> np.ndarray:
    """Execute structure-sharing bound programs as one stacked pass.

    All programs must be bound, channel- and reset-free, and share one op
    structure (programs bound from one template always do).  Each op is
    applied across the whole ``(B, 2^n)`` batch in a single contraction:
    ops that are static in the template are applied as one broadcast matmul
    or phase multiply; parametric ops stack their per-program matrices into
    one ``(B, 2^k, 2^k)`` batched matmul.  Returns the ``(B, 2^n)`` final
    states in input order.  Example::

        program = compile_circuit(template)
        states = run_batch([program.bind(theta) for theta in sweep])
    """
    programs = list(programs)
    if not programs:
        return np.zeros((0, 0), dtype=complex)
    first = programs[0]
    n = first.num_qubits
    dim = 1 << n
    structure = first.structure_key()
    for program in programs[1:]:
        if program.structure_key() != structure:
            raise ValueError(
                "run_batch requires programs sharing one op structure "
                "(bind them from the same compiled template)")
    for program in programs:
        if program.has_channels:
            raise ValueError("run_batch cannot execute noisy programs")
        if program.has_reset:
            raise ValueError(
                "run_batch cannot batch programs with projective resets")
        if not program.is_bound:
            raise ValueError("run_batch requires bound programs")

    batch = len(programs)
    if initial_states is None:
        states = np.zeros((batch, dim), dtype=complex)
        states[:, 0] = 1.0
    else:
        states = np.array(initial_states, dtype=complex).reshape(batch, dim)

    # Programs bound from one template share every static op object, so the
    # per-op stacking decision reduces to the template's parametric index
    # set; mixed-origin batches fall back to identity checks per op.
    template = first._template
    same_template = all(program._template is template
                        for program in programs[1:])
    parametric_indices = set(first._parametric_indices)

    for index in range(len(first.ops)):
        lead = first.ops[index]
        if same_template and index not in parametric_indices:
            ops = None
            shared = True
        else:
            ops = [program.ops[index] for program in programs]
            shared = all(op is lead for op in ops)
        if lead.kind == OP_PERM:
            # Static by construction (parametric ops never lower to PERM),
            # but mixed-origin batches may hold *different* monomials behind
            # one structure key — those gather row by row.
            if shared:
                source, phases = lead.full_indices(n)
                states = states[:, source]
                if phases is not None:
                    states *= phases
            else:
                for row, op in enumerate(ops):
                    source, phases = op.full_indices(n)
                    gathered = states[row, source]
                    if phases is not None:
                        gathered = gathered * phases
                    states[row] = gathered
        elif lead.kind == OP_DIAG:
            tensor = states.reshape([batch] + [2] * n)
            if shared:
                tensor = tensor * lead.data
            else:
                tensor = tensor * np.stack([op.data for op in ops])
            states = tensor.reshape(batch, dim)
        else:  # OP_UNITARY
            if shared:
                matrices = lead.data
            else:
                matrices = np.stack([op.data for op in ops])
            states = _batch_apply_unitary(states, matrices, lead.qubits, n)
    return states.reshape(batch, dim)


# ---------------------------------------------------------------------------
# Interpreted reference
# ---------------------------------------------------------------------------

def run_interpreted(circuit: QuantumCircuit,
                    initial_state: Optional[np.ndarray] = None,
                    rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Gate-by-gate statevector execution without compilation.

    The pre-compile hot loop, kept as the correctness reference for the
    compile layer's equality tests and as the baseline for the
    compiled-vs-interpreted benchmarks: per instruction it re-resolves the
    gate matrix and re-derives tensor axes, then applies one generic
    ``tensordot`` — exactly what :func:`compile_circuit` amortizes away.
    """
    n = circuit.num_qubits
    dim = 1 << n
    if initial_state is None:
        state = np.zeros(dim, dtype=complex)
        state[0] = 1.0
    else:
        state = np.array(initial_state, dtype=complex).ravel()
    for inst in circuit:
        if inst.name in ("barrier", "measure"):
            continue
        if inst.name == "reset":
            state = _reset_ket(state, inst.qubits[0],
                               rng or np.random.default_rng())
            continue
        tensor = state.reshape([2] * n)
        tensor = _apply_unitary_tensor(tensor, inst.gate.matrix(),
                                       inst.qubits, n)
        state = tensor.reshape(-1)
    return state
