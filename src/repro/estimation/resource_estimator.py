"""Workload / device resource estimation sweeps.

The estimator composes the compiler pipeline (placement, scheduling, fidelity)
with the magic-state provisioning models to answer the questions the paper's
evaluation asks per configuration: does the program fit, how many physical
qubits go to data patches versus magic-state production, how long does one
VQE iteration take, and which regime gives the best fidelity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..ansatz.base import Ansatz
from ..architecture.pipeline import CompilationResult, EFTCompiler
from ..core.regimes import (ExecutionRegime, NISQRegime, PQECRegime,
                            QECConventionalRegime, QECCultivationRegime)
from ..core.resources import (EFTDevice, provision_cultivation,
                              provision_distillation)
from ..operators.pauli import PauliSum
from ..qec.surface_code import EFT_CODE_DISTANCE


@dataclass(frozen=True)
class ResourceEstimate:
    """A flattened per-(workload, regime) resource record."""

    workload: str
    regime: str
    logical_qubits: int
    fits_device: bool
    estimated_fidelity: float
    execution_cycles: float
    spacetime_volume_tiles: float
    data_patch_qubits: int
    magic_state_qubits: int
    physical_qubits_used: int
    physical_qubit_budget: int

    @property
    def device_utilization(self) -> float:
        return min(1.0, self.physical_qubits_used / self.physical_qubit_budget)


@dataclass(frozen=True)
class RegimeRecommendation:
    """Which regime the estimator recommends for a workload and why."""

    workload: str
    recommended_regime: str
    estimates: Tuple[ResourceEstimate, ...]

    def estimate_for(self, regime_name: str) -> ResourceEstimate:
        for estimate in self.estimates:
            if estimate.regime == regime_name:
                return estimate
        raise KeyError(f"no estimate for regime {regime_name!r}")


class ResourceEstimator:
    """Sweep workloads, regimes and device sizes through the compiler."""

    def __init__(self, device: Optional[EFTDevice] = None,
                 distance: int = EFT_CODE_DISTANCE,
                 optimize_qubit_placement: bool = False):
        self.device = device or EFTDevice()
        self.distance = int(distance)
        self.compiler = EFTCompiler(device=self.device, distance=self.distance,
                                    optimize_qubit_placement=optimize_qubit_placement)

    # -- single estimates ---------------------------------------------------------
    def _magic_state_qubits(self, regime: ExecutionRegime,
                            num_logical_qubits: int) -> int:
        if isinstance(regime, QECConventionalRegime):
            provision = provision_distillation(self.device, num_logical_qubits,
                                               regime.factory)
            return provision.source_qubits if provision.feasible else 0
        if isinstance(regime, QECCultivationRegime):
            provision = provision_cultivation(self.device, num_logical_qubits,
                                              regime.unit)
            return provision.source_qubits if provision.feasible else 0
        return 0

    def estimate(self, ansatz: Ansatz, regime: ExecutionRegime,
                 hamiltonian: Optional[PauliSum] = None,
                 workload_name: Optional[str] = None) -> ResourceEstimate:
        result: CompilationResult = self.compiler.compile(
            ansatz, regime, hamiltonian, workload_name)
        magic_qubits = self._magic_state_qubits(regime, ansatz.num_qubits)
        data_qubits = self.device.data_patch_qubits(ansatz.num_qubits)
        return ResourceEstimate(
            workload=result.workload_name,
            regime=result.regime_name,
            logical_qubits=ansatz.num_qubits,
            fits_device=result.fits_device,
            estimated_fidelity=result.estimated_fidelity,
            execution_cycles=result.execution_cycles,
            spacetime_volume_tiles=result.spacetime_volume,
            data_patch_qubits=data_qubits,
            magic_state_qubits=magic_qubits,
            physical_qubits_used=min(self.device.physical_qubits,
                                     data_qubits + magic_qubits),
            physical_qubit_budget=self.device.physical_qubits,
        )

    # -- sweeps --------------------------------------------------------------------
    def compare_regimes(self, ansatz: Ansatz,
                        hamiltonian: Optional[PauliSum] = None,
                        regimes: Optional[Sequence[ExecutionRegime]] = None,
                        workload_name: Optional[str] = None
                        ) -> RegimeRecommendation:
        regimes = regimes or (NISQRegime(), PQECRegime(),
                              QECConventionalRegime(), QECCultivationRegime())
        estimates = tuple(self.estimate(ansatz, regime, hamiltonian, workload_name)
                          for regime in regimes)
        feasible = [e for e in estimates if e.fits_device] or list(estimates)
        best = max(feasible, key=lambda e: e.estimated_fidelity)
        return RegimeRecommendation(workload=best.workload,
                                    recommended_regime=best.regime,
                                    estimates=estimates)

    def size_sweep(self, ansatz_factory, num_qubits_list: Sequence[int],
                   regime: ExecutionRegime) -> List[ResourceEstimate]:
        """Estimate one regime across program sizes (the Fig. 5 x-axis)."""
        return [self.estimate(ansatz_factory(num_qubits), regime)
                for num_qubits in num_qubits_list]


def device_capacity_table(device_sizes: Sequence[int],
                          distance: int = EFT_CODE_DISTANCE
                          ) -> List[Dict[str, object]]:
    """Maximum program sizes per device size (the Fig. 5 feasibility frontier)."""
    rows = []
    for physical_qubits in device_sizes:
        device = EFTDevice(physical_qubits=physical_qubits, distance=distance)
        rows.append({
            "physical_qubits": physical_qubits,
            "max_logical_qubits": device.max_logical_qubits(),
            "qubits_per_patch": device.patch.physical_qubits,
        })
    return rows


def format_estimate_table(estimates: Sequence[ResourceEstimate]) -> str:
    """Fixed-width text table of resource estimates (for examples / reports)."""
    header = ["workload", "regime", "qubits", "fits", "fidelity", "cycles",
              "data phys.", "magic phys.", "utilization"]
    rows = [[e.workload, e.regime, e.logical_qubits,
             "yes" if e.fits_device else "no",
             f"{e.estimated_fidelity:.4f}", f"{e.execution_cycles:.0f}",
             e.data_patch_qubits, e.magic_state_qubits,
             f"{e.device_utilization:.0%}"] for e in estimates]
    widths = [max(len(str(header[i])), *(len(str(row[i])) for row in rows))
              for i in range(len(header))]
    lines = ["  ".join(str(cell).ljust(width)
                       for cell, width in zip(header, widths))]
    lines.append("-" * len(lines[0]))
    for row in rows:
        lines.append("  ".join(str(cell).ljust(width)
                               for cell, width in zip(row, widths)))
    return "\n".join(lines)
