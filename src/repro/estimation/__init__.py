"""Device-level resource estimation built on the compiler pipeline.

:mod:`repro.architecture.pipeline` answers "what does this one workload cost
under this one regime?"; this package answers the sizing questions the paper's
Figs. 4–6 and Sec. 3.3 ask across whole sweeps: which regime wins at which
program/device size, how much of the device each component consumes, and how
large a program a given device can host.
"""

from .resource_estimator import (RegimeRecommendation, ResourceEstimate,
                                 ResourceEstimator, device_capacity_table,
                                 format_estimate_table)

__all__ = [
    "RegimeRecommendation",
    "ResourceEstimate",
    "ResourceEstimator",
    "device_capacity_table",
    "format_estimate_table",
]
