"""repro-worker — an elastic shard worker for a filesystem spool.

``python -m repro.worker --spool DIR`` attaches to the spool directory a
:class:`~repro.execution.broker.FilesystemBroker` dispatch (or several —
the spool is shared) is feeding, and loops: claim one task file by atomic
rename, hold a lease while executing it, drop the result as a
content-named file, repeat.  Workers are fully elastic — start as many as
you like, on any host that mounts the spool, before or during a run; kill
one mid-shard and its lease expires, the supervisor requeues the shard,
and another worker (or the parent) finishes it.  Per-shard seeds make the
results bitwise independent of which worker ran what.

Exit conditions: ``--max-shards N`` (stop after N shards), ``--idle-exit
SECONDS`` (stop after that long with nothing to claim), a ``stop`` file in
the spool root, or SIGINT/SIGTERM.
"""

from __future__ import annotations

import argparse
import json
import os
import pickle
import socket
import sys
import threading
import time
from typing import Optional

from .execution.broker import SpoolLayout, atomic_write_bytes, result_record
from .execution.faults import execute_directive
from .execution.sharding import _mark_worker_process


class WorkerAgent:
    """One worker's claim/lease/execute loop over a spool directory."""

    def __init__(self, spool, *, max_shards: Optional[int] = None,
                 poll_interval: float = 0.05, lease_seconds: float = 5.0,
                 idle_exit: Optional[float] = None,
                 worker_id: Optional[str] = None):
        self.layout = SpoolLayout(spool).ensure()
        self.max_shards = max_shards
        self.poll_interval = float(poll_interval)
        self.lease_seconds = float(lease_seconds)
        self.idle_exit = idle_exit
        self.worker_id = worker_id or \
            f"{socket.gethostname()}-{os.getpid()}"
        self.claims = 0
        self.shards_done = 0
        self._started = time.time()
        self._census_written = 0.0

    # -- census ------------------------------------------------------------

    def _write_census(self, force: bool = False) -> None:
        now = time.time()
        if not force and now - self._census_written < 0.5:
            return
        self._census_written = now
        atomic_write_bytes(self.layout.worker(self.worker_id), json.dumps(
            {"worker_id": self.worker_id, "pid": os.getpid(),
             "started": self._started, "last_seen": now,
             "claims": self.claims,
             "shards_done": self.shards_done}).encode("utf-8"))

    # -- the loop ----------------------------------------------------------

    def run(self) -> int:
        """Claim-and-execute until an exit condition; returns shards done."""
        # Nested dispatches inside a shard must stay inline — this process
        # IS the worker tier.
        _mark_worker_process()
        self._write_census(force=True)
        idle_since = time.monotonic()
        while True:
            if os.path.exists(self.layout.stop_file):
                break
            shard_id = self._claim_one()
            if shard_id is None:
                if self.idle_exit is not None \
                        and time.monotonic() - idle_since > self.idle_exit:
                    break
                self._write_census()
                time.sleep(self.poll_interval)
                continue
            idle_since = time.monotonic()
            self.claims += 1
            self._write_census(force=True)
            if self._execute(shard_id):
                self.shards_done += 1
                self._write_census(force=True)
            if self.max_shards is not None \
                    and self.shards_done >= self.max_shards:
                break
        self._write_census(force=True)
        return self.shards_done

    def _claim_one(self) -> Optional[str]:
        for shard_id in self.layout.pending_task_ids():
            try:
                os.rename(self.layout.task(shard_id),
                          self.layout.claim(shard_id))
            except OSError:
                continue  # another claimant won the rename
            return shard_id
        return None

    def _execute(self, shard_id: str) -> bool:
        claim_path = self.layout.claim(shard_id)
        self.layout.write_lease(shard_id, self.worker_id, self.lease_seconds)
        stop_renewing = threading.Event()

        def renew() -> None:
            while not stop_renewing.wait(max(0.2, self.lease_seconds / 3)):
                try:
                    self.layout.write_lease(shard_id, self.worker_id,
                                            self.lease_seconds)
                except OSError:
                    return

        renewer = threading.Thread(target=renew, daemon=True)
        renewer.start()
        try:
            try:
                envelope = self.layout.load_envelope(claim_path)
            except (OSError, pickle.UnpicklingError, EOFError,
                    AttributeError):
                # Unreadable envelope: drop the claim; the supervisor's
                # safety net re-spools the shard from its in-memory spec.
                return False
            directive = envelope.get("directive")

            def entry():
                if directive is not None:
                    # May kill/stall this process — that is the point; the
                    # lease expiry then hands the shard to someone else.  A
                    # "raise" directive lands in result_record's transient
                    # classification, exactly like the pool path.
                    execute_directive(directive)
                return envelope["fn"](*envelope["payload"])

            record = result_record(entry, ())
            self.layout.write_result(envelope["digest"], record)
            return True
        finally:
            stop_renewing.set()
            renewer.join()
            for path in (self.layout.lease(shard_id), claim_path):
                try:
                    os.remove(path)
                except OSError:
                    pass


def run_worker(spool, *, max_shards: Optional[int] = None,
               poll_interval: float = 0.05, lease_seconds: float = 5.0,
               idle_exit: Optional[float] = None,
               worker_id: Optional[str] = None) -> int:
    """Run one worker loop to completion; returns the shard count."""
    agent = WorkerAgent(spool, max_shards=max_shards,
                        poll_interval=poll_interval,
                        lease_seconds=lease_seconds, idle_exit=idle_exit,
                        worker_id=worker_id)
    return agent.run()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-worker",
        description="Elastic shard worker for a FilesystemBroker spool.")
    parser.add_argument("--spool", required=True,
                        help="spool directory shared with the dispatching "
                             "run (created if missing)")
    parser.add_argument("--max-shards", type=int, default=None,
                        help="exit after completing this many shards")
    parser.add_argument("--poll-interval", type=float, default=0.05,
                        help="seconds between claim scans when idle")
    parser.add_argument("--lease-seconds", type=float, default=5.0,
                        help="lease duration renewed while executing")
    parser.add_argument("--idle-exit", type=float, default=None,
                        help="exit after this many seconds with nothing "
                             "to claim (default: wait forever)")
    parser.add_argument("--worker-id", default=None,
                        help="census identity (default: host-pid)")
    options = parser.parse_args(argv)
    done = run_worker(options.spool, max_shards=options.max_shards,
                      poll_interval=options.poll_interval,
                      lease_seconds=options.lease_seconds,
                      idle_exit=options.idle_exit,
                      worker_id=options.worker_id)
    print(f"repro-worker: {done} shard(s) completed", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
