"""Physics Hamiltonians used by the paper's evaluation (Sec. 5.1.1).

Two 1-D spin models with constant couplings:

* the transverse-field Ising model
  ``H = J Σ X_i X_{i+1} + Σ Z_i``  (Eq. 1), and
* the field-free Heisenberg model
  ``H = Σ (J X_i X_{i+1} + J Y_i Y_{i+1} + Z_i Z_{i+1})``  (Eq. 2).

The paper studies J ∈ {0.25, 0.5, 1.0} for both models; the benchmark
registry below exposes exactly those instances at any qubit count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .pauli import PauliString, PauliSum

#: Coupling strengths studied in the paper.
PAPER_COUPLINGS: Tuple[float, ...] = (0.25, 0.50, 1.00)


def ising_hamiltonian(num_qubits: int, coupling: float = 1.0,
                      field: float = 1.0,
                      periodic: bool = False) -> PauliSum:
    """1-D transverse-field Ising Hamiltonian (paper Eq. 1).

    ``J Σ_i X_i X_{i+1} + h Σ_i Z_i`` with open boundary conditions by
    default (the paper's form); set ``periodic=True`` to close the chain.
    """
    if num_qubits < 2:
        raise ValueError("the Ising chain needs at least two qubits")
    hamiltonian = PauliSum(num_qubits)
    bonds = list(range(num_qubits - 1))
    if periodic:
        bonds.append(num_qubits - 1)
    for i in bonds:
        j = (i + 1) % num_qubits
        hamiltonian.add_term(
            PauliString.from_sparse(num_qubits, {i: "X", j: "X"}), coupling)
    for i in range(num_qubits):
        hamiltonian.add_term(PauliString.single(num_qubits, i, "Z"), field)
    return hamiltonian.simplify()


def heisenberg_hamiltonian(num_qubits: int, coupling: float = 1.0,
                           zz_coupling: float = 1.0,
                           periodic: bool = False) -> PauliSum:
    """1-D field-free Heisenberg Hamiltonian (paper Eq. 2).

    ``Σ_i (J X_i X_{i+1} + J Y_i Y_{i+1} + J_zz Z_i Z_{i+1})`` with the ZZ
    coupling fixed at 1 in the paper.
    """
    if num_qubits < 2:
        raise ValueError("the Heisenberg chain needs at least two qubits")
    hamiltonian = PauliSum(num_qubits)
    bonds = list(range(num_qubits - 1))
    if periodic:
        bonds.append(num_qubits - 1)
    for i in bonds:
        j = (i + 1) % num_qubits
        hamiltonian.add_term(
            PauliString.from_sparse(num_qubits, {i: "X", j: "X"}), coupling)
        hamiltonian.add_term(
            PauliString.from_sparse(num_qubits, {i: "Y", j: "Y"}), coupling)
        hamiltonian.add_term(
            PauliString.from_sparse(num_qubits, {i: "Z", j: "Z"}), zz_coupling)
    return hamiltonian.simplify()


def maxcut_hamiltonian(edges: Iterable[Tuple[int, int]],
                       num_qubits: Optional[int] = None) -> PauliSum:
    """MaxCut cost Hamiltonian ``Σ_(i,j) (Z_i Z_j - 1)/2`` for QAOA-style VQAs.

    Included because the paper notes EFT-VQA extends beyond VQE to QAOA; the
    examples exercise it.
    """
    edges = [tuple(sorted((int(a), int(b)))) for a, b in edges]
    if not edges:
        raise ValueError("the MaxCut Hamiltonian needs at least one edge")
    inferred = max(max(a, b) for a, b in edges) + 1
    n = int(num_qubits) if num_qubits is not None else inferred
    if n < inferred:
        raise ValueError("num_qubits too small for the supplied edges")
    hamiltonian = PauliSum(n)
    for a, b in edges:
        if a == b:
            raise ValueError("self-loops are not allowed")
        hamiltonian.add_term(
            PauliString.from_sparse(n, {a: "Z", b: "Z"}), 0.5)
        hamiltonian.add_term(PauliString.identity(n), -0.5)
    return hamiltonian.simplify()


@dataclass(frozen=True)
class BenchmarkInstance:
    """A named Hamiltonian instance of the paper's benchmark suite."""

    name: str
    family: str
    num_qubits: int
    parameter: float
    hamiltonian: PauliSum

    @property
    def label(self) -> str:
        return f"{self.family}(n={self.num_qubits}, param={self.parameter:g})"


def physics_benchmark_suite(num_qubits_list: Sequence[int],
                            couplings: Sequence[float] = PAPER_COUPLINGS
                            ) -> List[BenchmarkInstance]:
    """The paper's physics benchmark sweep: Ising and Heisenberg, J ∈ couplings."""
    instances: List[BenchmarkInstance] = []
    for num_qubits in num_qubits_list:
        for coupling in couplings:
            instances.append(BenchmarkInstance(
                name=f"ising_n{num_qubits}_J{coupling:g}",
                family="ising",
                num_qubits=num_qubits,
                parameter=coupling,
                hamiltonian=ising_hamiltonian(num_qubits, coupling)))
            instances.append(BenchmarkInstance(
                name=f"heisenberg_n{num_qubits}_J{coupling:g}",
                family="heisenberg",
                num_qubits=num_qubits,
                parameter=coupling,
                hamiltonian=heisenberg_hamiltonian(num_qubits, coupling)))
    return instances


def exact_ground_state(hamiltonian: PauliSum) -> Tuple[float, np.ndarray]:
    """Exact ground energy and ground state vector via diagonalization.

    Practical up to ~14 qubits; the paper's E0 reference for the ≤12-qubit
    density-matrix evaluations.
    """
    matrix = hamiltonian.to_matrix()
    eigenvalues, eigenvectors = np.linalg.eigh(matrix)
    return float(eigenvalues[0]), np.asarray(eigenvectors[:, 0]).ravel()
