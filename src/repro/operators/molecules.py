"""Synthetic molecular Hamiltonians (chemistry benchmarks, Sec. 5.1.2).

The paper builds H2O, H6 and LiH Hamiltonians with PySCF + Qiskit Nature
(6 active orbitals → 12 qubits, two bond lengths each, 367 / 919 / 631 Pauli
terms).  PySCF is not available offline, so we substitute deterministic
*synthetic* molecular Hamiltonians that preserve the structural features the
evaluation actually exercises:

* the same qubit count (12) and the same Pauli-term counts as the paper
  reports for each molecule;
* chemistry-like structure: a dominant identity shift, strong one- and
  two-body diagonal (Z / ZZ) terms, a tail of many small-coefficient
  higher-weight terms whose magnitude decays with Pauli weight — the
  coefficient profile characteristic of Jordan–Wigner-mapped electronic
  structure Hamiltonians;
* a "bond length" knob that re-weights the one-body vs. two-body content the
  way bond stretching does (longer bonds → weaker off-diagonal hopping,
  near-degenerate ground space), so the two configurations per molecule give
  genuinely different optimization landscapes.

Because the paper's γ metric (Eq. 3) normalizes each regime against the same
reference energy of the same Hamiltonian, the pQEC-vs-NISQ comparison depends
on circuit structure and noise, not on chemical accuracy of the coefficients —
see DESIGN.md §2 for the substitution argument.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .hamiltonians import BenchmarkInstance
from .pauli import PauliString, PauliSum

#: Molecule catalogue: (paper term count, base identity offset in Hartree-like
#: units, one-body scale, two-body scale, seed).
_MOLECULE_CATALOGUE: Dict[str, Dict[str, float]] = {
    "H2O": {"terms": 367, "offset": -71.0, "one_body": 1.20,
            "two_body": 0.45, "seed": 1101},
    "H6": {"terms": 919, "offset": -2.95, "one_body": 0.85,
           "two_body": 0.55, "seed": 2202},
    "LiH": {"terms": 631, "offset": -7.70, "one_body": 0.60,
            "two_body": 0.30, "seed": 3303},
}

#: Bond lengths (Å) studied in the paper for every molecule.
PAPER_BOND_LENGTHS: Tuple[float, ...] = (1.0, 4.5)

#: Active-space width used by the paper (6 orbitals → 12 qubits).
PAPER_NUM_QUBITS = 12

_PAULI_CHARS = ("X", "Y", "Z")


def _random_pauli_label(rng: np.random.Generator, num_qubits: int,
                        weight: int) -> str:
    """A random Pauli label of the requested weight."""
    qubits = rng.choice(num_qubits, size=weight, replace=False)
    chars = ["I"] * num_qubits
    for qubit in qubits:
        chars[qubit] = _PAULI_CHARS[rng.integers(0, 3)]
    return "".join(chars)


def _weight_distribution(rng: np.random.Generator, num_terms: int,
                         num_qubits: int) -> List[int]:
    """Sample Pauli weights with the 2-and-4-heavy profile of JW Hamiltonians."""
    weights = []
    choices = [1, 2, 3, 4]
    probabilities = [0.18, 0.34, 0.14, 0.34]
    for _ in range(num_terms):
        weight = int(rng.choice(choices, p=probabilities))
        weights.append(min(weight, num_qubits))
    return weights


@dataclass(frozen=True)
class MolecularSpec:
    """Specification of a synthetic molecular Hamiltonian."""

    name: str
    bond_length: float
    num_qubits: int
    num_terms: int


def molecular_hamiltonian(name: str, bond_length: float = 1.0,
                          num_qubits: int = PAPER_NUM_QUBITS,
                          num_terms: Optional[int] = None) -> PauliSum:
    """Build a synthetic molecular Hamiltonian for ``name`` at ``bond_length``.

    Supported molecules: ``"H2O"``, ``"H6"``, ``"LiH"`` (the paper's chemistry
    benchmarks).  The construction is fully deterministic for a given
    ``(name, bond_length, num_qubits, num_terms)``.
    """
    key = _canonical_molecule_name(name)
    spec = _MOLECULE_CATALOGUE[key]
    target_terms = int(num_terms if num_terms is not None else spec["terms"])
    if num_qubits < 4:
        raise ValueError("synthetic molecular Hamiltonians need at least 4 qubits")

    # The bond length enters through a "stretch factor": at equilibrium
    # (≈1 Å) hopping/off-diagonal terms are strong, at dissociation (≥4 Å)
    # they decay exponentially while the diagonal (Coulomb-like) structure
    # survives.  This mirrors how real molecular integrals behave.
    stretch = math.exp(-(bond_length - 1.0) / 1.8)
    seed = int(spec["seed"]) + int(round(bond_length * 1000))
    rng = np.random.default_rng(seed)

    hamiltonian = PauliSum(num_qubits)
    # Identity offset (nuclear repulsion + frozen-core energy analogue).
    hamiltonian.add_term(PauliString.identity(num_qubits),
                         spec["offset"] * (1.0 + 0.02 / max(bond_length, 0.3)))

    # One-body diagonal terms: Z_i with orbital-energy-like coefficients.
    for qubit in range(num_qubits):
        orbital_energy = spec["one_body"] * (1.0 - 0.12 * qubit) \
            * (0.6 + 0.4 * stretch)
        noise = 0.05 * rng.standard_normal()
        hamiltonian.add_term(PauliString.single(num_qubits, qubit, "Z"),
                             orbital_energy + noise)

    # Two-body diagonal terms: Z_i Z_j Coulomb/exchange analogues.
    for i in range(num_qubits):
        for j in range(i + 1, num_qubits):
            distance_decay = 1.0 / (1.0 + abs(i - j))
            coeff = spec["two_body"] * distance_decay * (0.8 + 0.2 * stretch)
            coeff += 0.02 * rng.standard_normal()
            hamiltonian.add_term(
                PauliString.from_sparse(num_qubits, {i: "Z", j: "Z"}), coeff)

    # Off-diagonal excitation terms (XX+YY style hopping and 4-body
    # double-excitation analogues) until the target term count is reached.
    attempts = 0
    max_attempts = 60 * target_terms
    while hamiltonian.num_terms < target_terms and attempts < max_attempts:
        attempts += 1
        weight = int(np.clip(rng.choice([2, 3, 4], p=[0.35, 0.15, 0.50]),
                             1, num_qubits))
        label = _random_pauli_label(rng, num_qubits, weight)
        pauli = PauliString(label)
        if abs(hamiltonian.coefficient(pauli)) > 0:
            continue
        magnitude = (spec["two_body"] * 0.35 * stretch
                     / (weight ** 1.5)) * abs(rng.standard_normal())
        magnitude = max(magnitude, 1e-4)
        sign = 1.0 if rng.random() < 0.5 else -1.0
        hamiltonian.add_term(pauli, sign * magnitude)
    hamiltonian.simplify(atol=0.0)

    if hamiltonian.num_terms < target_terms:
        raise RuntimeError(
            f"failed to reach {target_terms} terms for {name} "
            f"(got {hamiltonian.num_terms})")
    return hamiltonian


def _canonical_molecule_name(name: str) -> str:
    """Map a user-supplied molecule name to its catalogue key (case-insensitive)."""
    wanted = name.upper().replace(" ", "")
    if wanted == "H20":  # common typo guard: H-two-O written with a zero
        wanted = "H2O"
    for key in _MOLECULE_CATALOGUE:
        if key.upper() == wanted:
            return key
    supported = ", ".join(sorted(_MOLECULE_CATALOGUE))
    raise ValueError(f"unknown molecule {name!r}; supported: {supported}")


def molecule_spec(name: str, bond_length: float = 1.0) -> MolecularSpec:
    """Metadata of the synthetic Hamiltonian matching the paper's table."""
    key = _canonical_molecule_name(name)
    return MolecularSpec(name=key, bond_length=float(bond_length),
                         num_qubits=PAPER_NUM_QUBITS,
                         num_terms=int(_MOLECULE_CATALOGUE[key]["terms"]))


def available_molecules() -> Tuple[str, ...]:
    return tuple(sorted(_MOLECULE_CATALOGUE))


def chemistry_benchmark_suite(num_qubits: int = PAPER_NUM_QUBITS,
                              bond_lengths: Sequence[float] = PAPER_BOND_LENGTHS,
                              reduced_terms: Optional[int] = None
                              ) -> List[BenchmarkInstance]:
    """The paper's chemistry benchmark sweep (H2O, H6, LiH at two bond lengths).

    ``reduced_terms`` caps the number of Pauli terms per Hamiltonian, which is
    useful for fast CI runs; ``None`` reproduces the paper's term counts.
    """
    instances: List[BenchmarkInstance] = []
    for name in available_molecules():
        for bond_length in bond_lengths:
            hamiltonian = molecular_hamiltonian(
                name, bond_length, num_qubits=num_qubits,
                num_terms=reduced_terms)
            instances.append(BenchmarkInstance(
                name=f"{name.lower()}_l{bond_length:g}",
                family=name.lower(),
                num_qubits=num_qubits,
                parameter=bond_length,
                hamiltonian=hamiltonian))
    return instances
