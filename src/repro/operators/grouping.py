"""Measurement grouping and basis-change circuits for Pauli observables.

A VQE iteration measures every Pauli term of the Hamiltonian.  The number of
distinct measurement circuits — and therefore the shot budget and the number
of times the ansatz must be executed per iteration — is set by how the terms
are grouped into simultaneously-measurable sets.  This module provides

* general *commuting* grouping via greedy graph coloring (networkx) and
  qubit-wise-commuting (QWC) grouping (re-exported from
  :class:`~repro.operators.pauli.PauliSum` for symmetry);
* the single-qubit basis-rotation circuit that maps a QWC group onto Z-basis
  measurements;
* a measurement-cost model (circuits per iteration, shots for a target
  standard error) used by the resource estimator and the VarSaw-style
  mitigation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

import networkx as nx

from ..circuits.circuit import QuantumCircuit
from .pauli import PauliString, PauliSum


@dataclass(frozen=True)
class MeasurementGroup:
    """A set of Pauli terms measurable from a single circuit execution."""

    terms: Tuple[Tuple[PauliString, complex], ...]
    qubitwise: bool

    @property
    def num_terms(self) -> int:
        return len(self.terms)

    @property
    def paulis(self) -> Tuple[PauliString, ...]:
        return tuple(pauli for pauli, _ in self.terms)

    def measurement_basis(self) -> Dict[int, str]:
        """Per-qubit measurement basis for a qubit-wise-commuting group.

        Returns a mapping ``qubit -> 'X' | 'Y' | 'Z'`` covering every qubit in
        the group's joint support.  Raises for non-QWC groups, which require
        entangling basis changes.
        """
        if not self.qubitwise:
            raise ValueError("only qubit-wise-commuting groups have a "
                             "single-qubit measurement basis")
        basis: Dict[int, str] = {}
        for pauli, _ in self.terms:
            for qubit in pauli.support():
                letter = pauli.pauli_on(qubit)
                existing = basis.get(qubit)
                if existing is not None and existing != letter:
                    raise ValueError("group is not qubit-wise commuting")
                basis[qubit] = letter
        return basis

    def basis_change_circuit(self, num_qubits: int) -> QuantumCircuit:
        """Circuit rotating the group's measurement basis onto Z.

        X-basis qubits get an ``H``; Y-basis qubits get ``S† H``; Z-basis and
        untouched qubits get nothing.  Appending this circuit after the ansatz
        and measuring in the computational basis yields every term in the
        group simultaneously.
        """
        circuit = QuantumCircuit(num_qubits, name="basis_change")
        for qubit, letter in sorted(self.measurement_basis().items()):
            if letter == "X":
                circuit.h(qubit)
            elif letter == "Y":
                circuit.sdg(qubit)
                circuit.h(qubit)
        return circuit


def _build_anticommutation_graph(hamiltonian: PauliSum,
                                 qubitwise: bool) -> nx.Graph:
    """Graph whose edges join terms that cannot share a measurement circuit."""
    terms = [(pauli, coeff) for pauli, coeff in hamiltonian.terms()
             if not pauli.is_identity()]
    graph = nx.Graph()
    graph.add_nodes_from(range(len(terms)))
    for i in range(len(terms)):
        for j in range(i + 1, len(terms)):
            pauli_i, pauli_j = terms[i][0], terms[j][0]
            compatible = (pauli_i.qubitwise_commutes_with(pauli_j) if qubitwise
                          else pauli_i.commutes_with(pauli_j))
            if not compatible:
                graph.add_edge(i, j)
    graph.graph["terms"] = terms
    return graph


def group_commuting(hamiltonian: PauliSum, qubitwise: bool = True,
                    strategy: str = "largest_first") -> List[MeasurementGroup]:
    """Partition the Hamiltonian's terms into simultaneously-measurable groups.

    ``qubitwise=True`` (the default) requires qubit-wise commutation, so every
    group is measurable with single-qubit basis rotations only; the looser
    ``qubitwise=False`` requires general commutation, which yields fewer
    groups at the price of entangling basis-change circuits (not constructed
    here).  Grouping is graph coloring on the anticommutation graph with
    networkx's greedy coloring ``strategy``.
    """
    graph = _build_anticommutation_graph(hamiltonian, qubitwise)
    terms = graph.graph["terms"]
    if not terms:
        return []
    coloring = nx.coloring.greedy_color(graph, strategy=strategy)
    by_color: Dict[int, List[Tuple[PauliString, complex]]] = {}
    for node, color in coloring.items():
        by_color.setdefault(color, []).append(terms[node])
    groups = []
    for color in sorted(by_color):
        groups.append(MeasurementGroup(terms=tuple(by_color[color]),
                                       qubitwise=qubitwise))
    return groups


def num_measurement_circuits(hamiltonian: PauliSum,
                             qubitwise: bool = True) -> int:
    """Number of distinct measurement circuits one VQE iteration needs."""
    return len(group_commuting(hamiltonian, qubitwise=qubitwise))


@dataclass(frozen=True)
class MeasurementBudget:
    """Shot-count estimate for measuring a Hamiltonian to a target precision."""

    num_groups: int
    shots_per_group: int
    total_shots: int
    target_standard_error: float

    @property
    def circuits_per_iteration(self) -> int:
        return self.num_groups


def shot_budget(hamiltonian: PauliSum, target_standard_error: float = 1e-2,
                qubitwise: bool = True) -> MeasurementBudget:
    """Estimate the shots needed to hit ``target_standard_error`` on ⟨H⟩.

    Uses the standard worst-case variance bound ``Var[⟨P⟩] ≤ 1`` per Pauli
    term and allocates shots to groups proportionally to the L1 weight of the
    coefficients they contain (the "weighted dealing" heuristic).
    """
    if target_standard_error <= 0:
        raise ValueError("target_standard_error must be positive")
    groups = group_commuting(hamiltonian, qubitwise=qubitwise)
    if not groups:
        return MeasurementBudget(0, 0, 0, target_standard_error)
    group_weights = [sum(abs(coeff) for _, coeff in group.terms)
                     for group in groups]
    total_weight = sum(group_weights)
    # Var[Ĥ] ≤ (Σ_g w_g)² / N when shots are allocated ∝ w_g.
    total_shots = int(math.ceil((total_weight / target_standard_error) ** 2))
    shots_per_group = int(math.ceil(total_shots / len(groups)))
    return MeasurementBudget(num_groups=len(groups),
                             shots_per_group=shots_per_group,
                             total_shots=total_shots,
                             target_standard_error=target_standard_error)


def grouped_measurement_overhead(hamiltonian: PauliSum) -> Dict[str, float]:
    """Compare naive per-term measurement against QWC and general grouping."""
    num_terms = sum(1 for pauli, _ in hamiltonian.terms()
                    if not pauli.is_identity())
    qwc_groups = num_measurement_circuits(hamiltonian, qubitwise=True)
    commuting_groups = num_measurement_circuits(hamiltonian, qubitwise=False)
    return {
        "num_terms": float(num_terms),
        "qwc_groups": float(qwc_groups),
        "commuting_groups": float(commuting_groups),
        "qwc_savings": float(num_terms / qwc_groups) if qwc_groups else 1.0,
        "commuting_savings": (float(num_terms / commuting_groups)
                              if commuting_groups else 1.0),
    }
