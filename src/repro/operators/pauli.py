"""Pauli-string algebra.

Hamiltonians in the paper's evaluation (Ising, Heisenberg, molecular) are sums
of Pauli strings.  This module provides

* :class:`PauliString` — an n-qubit Pauli operator stored in the symplectic
  (x-bits, z-bits) representation together with a phase from {±1, ±i};
* :class:`PauliSum` — a linear combination of Pauli strings (the Hamiltonian
  container), with arithmetic, matrix export, expectation values and
  qubit-wise-commuting grouping (used by measurement scheduling and VarSaw).

The symplectic representation is what both the stabilizer simulator and the
Pauli-propagation noisy expectation engine operate on, so conversions are
essentially free.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

import numpy as np
from scipy import sparse

from ..circuits.gates import PAULI_MATRICES

_PHASES = (1.0 + 0.0j, 1.0j, -1.0 + 0.0j, -1.0j)

_LABEL_TO_XZ = {"I": (0, 0), "X": (1, 0), "Y": (1, 1), "Z": (0, 1)}
_XZ_TO_LABEL = {(0, 0): "I", (1, 0): "X", (1, 1): "Y", (0, 1): "Z"}


def _levi_civita_phase(x1: int, z1: int, x2: int, z2: int) -> int:
    """Exponent of i picked up when multiplying single-qubit Paulis (1)·(2)."""
    # Multiplication table for P1 * P2 expressed as i^k * P3 with
    # P3 = (x1^x2, z1^z2).  Values derived from the Pauli group relations.
    p1 = _XZ_TO_LABEL[(x1, z1)]
    p2 = _XZ_TO_LABEL[(x2, z2)]
    table = {
        ("X", "Y"): 1, ("Y", "Z"): 1, ("Z", "X"): 1,
        ("Y", "X"): 3, ("Z", "Y"): 3, ("X", "Z"): 3,
    }
    return table.get((p1, p2), 0)


class PauliString:
    """An n-qubit Pauli operator ``phase · P_{n-1} ⊗ … ⊗ P_0``.

    The label convention is *little-endian in qubit index but written
    left-to-right from qubit 0*: ``PauliString("XYZ")`` acts with X on qubit 0,
    Y on qubit 1 and Z on qubit 2.  This matches the circuit IR's qubit
    ordering and keeps Hamiltonian-building code readable.
    """

    __slots__ = ("_x", "_z", "_phase_power")

    def __init__(self, label_or_x, z: Optional[np.ndarray] = None,
                 phase_power: int = 0):
        if isinstance(label_or_x, str):
            label = label_or_x.upper()
            x_bits = np.zeros(len(label), dtype=np.uint8)
            z_bits = np.zeros(len(label), dtype=np.uint8)
            for index, char in enumerate(label):
                if char not in _LABEL_TO_XZ:
                    raise ValueError(f"invalid Pauli character {char!r} in {label!r}")
                x_bits[index], z_bits[index] = _LABEL_TO_XZ[char]
            self._x = x_bits
            self._z = z_bits
        else:
            self._x = np.asarray(label_or_x, dtype=np.uint8).copy()
            self._z = np.asarray(z, dtype=np.uint8).copy()
            if self._x.shape != self._z.shape:
                raise ValueError("x and z bit vectors must have equal length")
        self._phase_power = int(phase_power) % 4

    # -- constructors ---------------------------------------------------------
    @classmethod
    def identity(cls, num_qubits: int) -> "PauliString":
        return cls(np.zeros(num_qubits, dtype=np.uint8),
                   np.zeros(num_qubits, dtype=np.uint8))

    @classmethod
    def single(cls, num_qubits: int, qubit: int, pauli: str) -> "PauliString":
        """A single-qubit Pauli ``pauli`` on ``qubit`` padded with identities."""
        if not 0 <= qubit < num_qubits:
            raise ValueError(f"qubit {qubit} out of range")
        chars = ["I"] * num_qubits
        chars[qubit] = pauli.upper()
        return cls("".join(chars))

    @classmethod
    def from_sparse(cls, num_qubits: int,
                    terms: Mapping[int, str]) -> "PauliString":
        """Build from a ``{qubit: pauli_char}`` mapping."""
        chars = ["I"] * num_qubits
        for qubit, char in terms.items():
            if not 0 <= qubit < num_qubits:
                raise ValueError(f"qubit {qubit} out of range")
            chars[qubit] = char.upper()
        return cls("".join(chars))

    # -- properties -----------------------------------------------------------
    @property
    def num_qubits(self) -> int:
        return len(self._x)

    @property
    def x(self) -> np.ndarray:
        return self._x

    @property
    def z(self) -> np.ndarray:
        return self._z

    @property
    def phase(self) -> complex:
        return _PHASES[self._phase_power]

    @property
    def phase_power(self) -> int:
        return self._phase_power

    @property
    def label(self) -> str:
        return "".join(_XZ_TO_LABEL[(int(xb), int(zb))]
                       for xb, zb in zip(self._x, self._z))

    def weight(self) -> int:
        """Number of non-identity tensor factors."""
        return int(np.count_nonzero(self._x | self._z))

    def support(self) -> Tuple[int, ...]:
        """Qubits on which the operator acts non-trivially."""
        return tuple(int(q) for q in np.nonzero(self._x | self._z)[0])

    def is_identity(self) -> bool:
        return self.weight() == 0

    def pauli_on(self, qubit: int) -> str:
        return _XZ_TO_LABEL[(int(self._x[qubit]), int(self._z[qubit]))]

    # -- algebra ----------------------------------------------------------------
    def commutes_with(self, other: "PauliString") -> bool:
        """True when the two Pauli operators commute."""
        if self.num_qubits != other.num_qubits:
            raise ValueError("Pauli strings act on different numbers of qubits")
        symplectic = int(np.sum(self._x & other._z) + np.sum(self._z & other._x))
        return symplectic % 2 == 0

    def qubitwise_commutes_with(self, other: "PauliString") -> bool:
        """True when the operators commute qubit-by-qubit (same-basis measurable)."""
        if self.num_qubits != other.num_qubits:
            raise ValueError("Pauli strings act on different numbers of qubits")
        for xa, za, xb, zb in zip(self._x, self._z, other._x, other._z):
            a_id = xa == 0 and za == 0
            b_id = xb == 0 and zb == 0
            if a_id or b_id:
                continue
            if (xa, za) != (xb, zb):
                return False
        return True

    def __mul__(self, other: "PauliString") -> "PauliString":
        if not isinstance(other, PauliString):
            return NotImplemented
        if self.num_qubits != other.num_qubits:
            raise ValueError("Pauli strings act on different numbers of qubits")
        phase_power = self._phase_power + other._phase_power
        for xa, za, xb, zb in zip(self._x, self._z, other._x, other._z):
            phase_power += _levi_civita_phase(int(xa), int(za), int(xb), int(zb))
        return PauliString(self._x ^ other._x, self._z ^ other._z, phase_power)

    def with_phase_power(self, phase_power: int) -> "PauliString":
        return PauliString(self._x, self._z, phase_power)

    def bare(self) -> "PauliString":
        """The same operator with phase reset to +1."""
        return PauliString(self._x, self._z, 0)

    # -- matrices ---------------------------------------------------------------
    def to_matrix(self, sparse_output: bool = False):
        """Dense (or scipy-sparse) matrix of the operator, including phase.

        Qubit 0 is the least-significant bit of the computational-basis index.
        """
        result = sparse.identity(1, dtype=complex, format="csr")
        for xb, zb in zip(self._x, self._z):
            factor = sparse.csr_matrix(PAULI_MATRICES[_XZ_TO_LABEL[(int(xb), int(zb))]])
            result = sparse.kron(factor, result, format="csr")
        result = result * self.phase
        if sparse_output:
            return result
        return np.asarray(result.todense())

    def expectation(self, statevector: np.ndarray) -> complex:
        """⟨ψ| P |ψ⟩ for a dense statevector ``ψ`` (little-endian)."""
        statevector = np.asarray(statevector, dtype=complex).ravel()
        matrix = self.to_matrix(sparse_output=True)
        return complex(np.vdot(statevector, matrix.dot(statevector)))

    # -- comparison ---------------------------------------------------------------
    def key(self) -> Tuple[bytes, bytes]:
        """Hashable phase-free key (used by :class:`PauliSum`)."""
        return (self._x.tobytes(), self._z.tobytes())

    def __eq__(self, other):
        if not isinstance(other, PauliString):
            return NotImplemented
        return (np.array_equal(self._x, other._x)
                and np.array_equal(self._z, other._z)
                and self._phase_power == other._phase_power)

    def __hash__(self):
        return hash((self.key(), self._phase_power))

    def __repr__(self):
        prefix = {0: "", 1: "i*", 2: "-", 3: "-i*"}[self._phase_power]
        return f"{prefix}{self.label}"


class PauliSum:
    """A Hermitian (or general) linear combination of Pauli strings.

    Internally a dict mapping the phase-free symplectic key to a complex
    coefficient; phases of constituent strings are folded into the
    coefficients.
    """

    def __init__(self, num_qubits: int,
                 terms: Optional[Iterable[Tuple[PauliString, complex]]] = None):
        if num_qubits < 1:
            raise ValueError("PauliSum needs at least one qubit")
        self._num_qubits = int(num_qubits)
        self._coeffs: Dict[Tuple[bytes, bytes], complex] = {}
        self._strings: Dict[Tuple[bytes, bytes], PauliString] = {}
        if terms:
            for pauli, coeff in terms:
                self.add_term(pauli, coeff)

    # -- constructors --------------------------------------------------------------
    @classmethod
    def from_label_dict(cls, labels: Mapping[str, complex]) -> "PauliSum":
        """Build from ``{"XXI": 0.5, "IZZ": -1.0, ...}``."""
        if not labels:
            raise ValueError("label dict must not be empty")
        lengths = {len(label) for label in labels}
        if len(lengths) != 1:
            raise ValueError("all labels must have the same length")
        num_qubits = lengths.pop()
        op = cls(num_qubits)
        for label, coeff in labels.items():
            op.add_term(PauliString(label), coeff)
        return op

    @classmethod
    def zero(cls, num_qubits: int) -> "PauliSum":
        return cls(num_qubits)

    # -- mutation --------------------------------------------------------------------
    def add_term(self, pauli: PauliString, coeff: complex = 1.0) -> "PauliSum":
        """Accumulate ``coeff · pauli`` into the sum (in place)."""
        if pauli.num_qubits != self._num_qubits:
            raise ValueError(
                f"term has {pauli.num_qubits} qubits, operator has {self._num_qubits}")
        total = complex(coeff) * pauli.phase
        key = pauli.key()
        self._coeffs[key] = self._coeffs.get(key, 0.0) + total
        if key not in self._strings:
            self._strings[key] = pauli.bare()
        return self

    def add_label(self, label: str, coeff: complex = 1.0) -> "PauliSum":
        return self.add_term(PauliString(label), coeff)

    def simplify(self, atol: float = 1e-12) -> "PauliSum":
        """Drop terms with negligible coefficients (in place); returns self."""
        for key in [k for k, c in self._coeffs.items() if abs(c) <= atol]:
            del self._coeffs[key]
            del self._strings[key]
        return self

    # -- queries -------------------------------------------------------------------------
    @property
    def num_qubits(self) -> int:
        return self._num_qubits

    @property
    def num_terms(self) -> int:
        return len(self._coeffs)

    def terms(self) -> Iterator[Tuple[PauliString, complex]]:
        """Iterate ``(phase-free PauliString, coefficient)`` pairs."""
        for key, coeff in self._coeffs.items():
            yield self._strings[key], coeff

    def coefficient(self, pauli: PauliString) -> complex:
        return self._coeffs.get(pauli.bare().key(), 0.0) * np.conj(1.0)

    def identity_coefficient(self) -> complex:
        return self._coeffs.get(PauliString.identity(self._num_qubits).key(), 0.0)

    def is_hermitian(self, atol: float = 1e-10) -> bool:
        return all(abs(coeff.imag) <= atol for coeff in self._coeffs.values())

    def max_weight(self) -> int:
        return max((pauli.weight() for pauli, _ in self.terms()), default=0)

    def one_norm(self) -> float:
        """Sum of absolute coefficients (excluding nothing)."""
        return float(sum(abs(c) for c in self._coeffs.values()))

    # -- arithmetic ------------------------------------------------------------------------
    def __add__(self, other: "PauliSum") -> "PauliSum":
        if not isinstance(other, PauliSum):
            return NotImplemented
        if other.num_qubits != self._num_qubits:
            raise ValueError("operators act on different numbers of qubits")
        out = PauliSum(self._num_qubits, list(self.terms()))
        for pauli, coeff in other.terms():
            out.add_term(pauli, coeff)
        return out.simplify()

    def __sub__(self, other: "PauliSum") -> "PauliSum":
        if not isinstance(other, PauliSum):
            return NotImplemented
        return self + (other * -1.0)

    def __mul__(self, scalar) -> "PauliSum":
        if not isinstance(scalar, (int, float, complex)):
            return NotImplemented
        out = PauliSum(self._num_qubits)
        for pauli, coeff in self.terms():
            out.add_term(pauli, coeff * scalar)
        return out

    def __rmul__(self, scalar):
        return self.__mul__(scalar)

    def __matmul__(self, other: "PauliSum") -> "PauliSum":
        """Operator product (expands into Pauli strings)."""
        if not isinstance(other, PauliSum):
            return NotImplemented
        if other.num_qubits != self._num_qubits:
            raise ValueError("operators act on different numbers of qubits")
        out = PauliSum(self._num_qubits)
        for pa, ca in self.terms():
            for pb, cb in other.terms():
                product = pa * pb
                out.add_term(product, ca * cb)
        return out.simplify()

    # -- matrices / spectra ---------------------------------------------------------------------
    def to_sparse_matrix(self) -> sparse.csr_matrix:
        dim = 2 ** self._num_qubits
        result = sparse.csr_matrix((dim, dim), dtype=complex)
        for pauli, coeff in self.terms():
            result = result + coeff * pauli.to_matrix(sparse_output=True)
        return result.tocsr()

    def to_matrix(self) -> np.ndarray:
        return np.asarray(self.to_sparse_matrix().todense())

    def ground_state_energy(self, sparse_threshold: int = 6) -> float:
        """Lowest eigenvalue of the operator.

        Uses dense diagonalization for small systems and sparse Lanczos
        (``eigsh``) above ``sparse_threshold`` qubits.  This is the reference
        energy E0 of the paper's γ metric for ≤12-qubit Hamiltonians.
        """
        if not self.is_hermitian():
            raise ValueError("ground_state_energy requires a Hermitian operator")
        if self._num_qubits <= sparse_threshold:
            eigenvalues = np.linalg.eigvalsh(self.to_matrix().real)
            return float(eigenvalues[0])
        matrix = self.to_sparse_matrix().real
        from scipy.sparse.linalg import eigsh
        eigenvalues = eigsh(matrix, k=1, which="SA",
                            return_eigenvectors=False, maxiter=5000)
        return float(eigenvalues[0])

    def bit_matrices(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(coefficients, x_bits, z_bits)`` arrays in ``terms()`` order.

        The bit matrices are the ``(num_terms, num_qubits)`` symplectic
        representation consumed by the vectorized expectation kernels in
        :mod:`repro.simulators.kernels`.
        """
        from ..simulators.kernels import observable_bit_matrices
        return observable_bit_matrices(self)

    def expectation(self, statevector: np.ndarray) -> float:
        """⟨ψ|H|ψ⟩ for a dense statevector.

        Evaluated with the vectorized bitmask/phase kernel
        (:func:`repro.simulators.kernels.statevector_term_expectations`), so
        the cost is one ``O(2^n)`` gather-reduce per term rather than a
        sparse-matrix product.
        """
        from ..simulators.kernels import statevector_term_expectations
        statevector = np.asarray(statevector, dtype=complex).ravel()
        coefficients, x_bits, z_bits = self.bit_matrices()
        if not len(coefficients):
            return 0.0
        values = statevector_term_expectations(statevector, x_bits, z_bits)
        return float(np.real(np.sum(coefficients * values)))

    # -- measurement grouping ------------------------------------------------------------------------
    def group_qubitwise_commuting(self) -> List[List[Tuple[PauliString, complex]]]:
        """Greedy grouping into qubit-wise commuting sets.

        Every group can be measured with a single measurement basis; the
        VarSaw-style mitigation and the measurement-cost model both consume
        this grouping.
        """
        groups: List[List[Tuple[PauliString, complex]]] = []
        for pauli, coeff in sorted(self.terms(), key=lambda t: -t[0].weight()):
            placed = False
            for group in groups:
                if all(pauli.qubitwise_commutes_with(member) for member, _ in group):
                    group.append((pauli, coeff))
                    placed = True
                    break
            if not placed:
                groups.append([(pauli, coeff)])
        return groups

    # -- presentation -----------------------------------------------------------------------------
    def __eq__(self, other):
        if not isinstance(other, PauliSum):
            return NotImplemented
        if self._num_qubits != other._num_qubits:
            return False
        keys = set(self._coeffs) | set(other._coeffs)
        return all(abs(self._coeffs.get(k, 0.0) - other._coeffs.get(k, 0.0)) < 1e-10
                   for k in keys)

    def __repr__(self):
        pieces = []
        for pauli, coeff in list(self.terms())[:6]:
            pieces.append(f"({coeff:.3g})·{pauli.label}")
        suffix = " + ..." if self.num_terms > 6 else ""
        return (f"PauliSum(qubits={self._num_qubits}, terms={self.num_terms}: "
                + " + ".join(pieces) + suffix + ")")
