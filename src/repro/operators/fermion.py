"""Second-quantized fermionic operators and fermion-to-qubit mappings.

The paper's chemistry benchmarks (H2O, H6, LiH — Sec. 5.1.2) are built with
PySCF + Qiskit Nature: a molecular electronic-structure Hamiltonian in second
quantization is mapped onto qubits (Jordan–Wigner) before the VQE is run.
The offline evaluation environment has neither package, so this module
implements that substrate from scratch:

* :class:`FermionicOperator` — a polynomial in fermionic creation/annihilation
  operators ``a_p†`` / ``a_p`` with normal-ordering, arithmetic and
  hermiticity checks;
* :func:`jordan_wigner` and :func:`bravyi_kitaev` — the two standard
  fermion-to-qubit encodings, both returning a :class:`~repro.operators.pauli.PauliSum`;
* electronic-structure helpers — :func:`molecular_fermionic_hamiltonian`
  (from one-/two-body integral tensors), :func:`fermi_hubbard` (the Hubbard
  model, a standard VQE target beyond the paper's benchmarks) and
  :func:`synthetic_molecular_integrals` (deterministic integral tensors with
  the size/symmetry profile of the paper's 6-orbital active spaces).

The Jordan–Wigner pipeline gives the repository a *physically faithful* route
to molecular Hamiltonians; the lighter-weight synthetic generator in
:mod:`repro.operators.molecules` remains the default for the paper's figures
because it pins the exact Pauli-term counts the paper quotes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

import numpy as np

from .pauli import PauliString, PauliSum

#: A single ladder operator: (mode index, is_creation).
LadderOperator = Tuple[int, bool]
#: A product of ladder operators, e.g. ``((2, True), (0, False))`` = a_2† a_0.
LadderTerm = Tuple[LadderOperator, ...]


def _format_ladder_term(term: LadderTerm) -> str:
    if not term:
        return "1"
    pieces = []
    for index, creation in term:
        dagger = "^" if creation else ""
        pieces.append(f"a{dagger}_{index}")
    return " ".join(pieces)


class FermionicOperator:
    """A linear combination of products of fermionic ladder operators.

    Terms are stored as a mapping from :data:`LadderTerm` tuples to complex
    coefficients.  The class supports addition, scalar multiplication,
    operator multiplication (concatenation of ladder products), hermitian
    conjugation and normal ordering via the canonical anticommutation
    relations ``{a_p, a_q†} = δ_pq``, ``{a_p, a_q} = 0``.
    """

    def __init__(self, num_modes: int,
                 terms: Optional[Mapping[LadderTerm, complex]] = None):
        if num_modes < 1:
            raise ValueError("a fermionic operator needs at least one mode")
        self._num_modes = int(num_modes)
        self._terms: Dict[LadderTerm, complex] = {}
        if terms:
            for term, coeff in terms.items():
                self.add_term(term, coeff)

    # -- construction helpers ---------------------------------------------------
    @classmethod
    def zero(cls, num_modes: int) -> "FermionicOperator":
        return cls(num_modes)

    @classmethod
    def identity(cls, num_modes: int, coefficient: complex = 1.0) -> "FermionicOperator":
        return cls(num_modes, {(): complex(coefficient)})

    @classmethod
    def creation(cls, num_modes: int, mode: int) -> "FermionicOperator":
        """The creation operator ``a_mode†``."""
        return cls(num_modes, {((mode, True),): 1.0})

    @classmethod
    def annihilation(cls, num_modes: int, mode: int) -> "FermionicOperator":
        """The annihilation operator ``a_mode``."""
        return cls(num_modes, {((mode, False),): 1.0})

    @classmethod
    def number(cls, num_modes: int, mode: int) -> "FermionicOperator":
        """The number operator ``a_mode† a_mode``."""
        return cls(num_modes, {((mode, True), (mode, False)): 1.0})

    # -- basic properties -------------------------------------------------------
    @property
    def num_modes(self) -> int:
        return self._num_modes

    @property
    def num_terms(self) -> int:
        return len(self._terms)

    def terms(self) -> Iterator[Tuple[LadderTerm, complex]]:
        yield from self._terms.items()

    def coefficient(self, term: LadderTerm) -> complex:
        return self._terms.get(tuple(term), 0.0 + 0.0j)

    def max_ladder_length(self) -> int:
        """Length of the longest ladder product (0 for the zero operator)."""
        if not self._terms:
            return 0
        return max(len(term) for term in self._terms)

    def is_zero(self, atol: float = 1e-12) -> bool:
        return all(abs(coeff) <= atol for coeff in self._terms.values())

    # -- mutation ---------------------------------------------------------------
    def add_term(self, term: Iterable[LadderOperator],
                 coefficient: complex = 1.0) -> "FermionicOperator":
        """Add ``coefficient ·  Π ladder operators`` (in the given order)."""
        normalized: List[LadderOperator] = []
        for mode, creation in term:
            mode = int(mode)
            if not 0 <= mode < self._num_modes:
                raise ValueError(
                    f"mode {mode} out of range for {self._num_modes} modes")
            normalized.append((mode, bool(creation)))
        key = tuple(normalized)
        self._terms[key] = self._terms.get(key, 0.0 + 0.0j) + complex(coefficient)
        return self

    def simplify(self, atol: float = 1e-12) -> "FermionicOperator":
        """Drop terms whose coefficient magnitude is below ``atol``."""
        self._terms = {term: coeff for term, coeff in self._terms.items()
                       if abs(coeff) > atol}
        return self

    # -- arithmetic ---------------------------------------------------------------
    def __add__(self, other: "FermionicOperator") -> "FermionicOperator":
        self._check_compatible(other)
        result = FermionicOperator(self._num_modes, self._terms)
        for term, coeff in other.terms():
            result.add_term(term, coeff)
        return result.simplify()

    def __sub__(self, other: "FermionicOperator") -> "FermionicOperator":
        return self + (other * -1.0)

    def __mul__(self, other) -> "FermionicOperator":
        if isinstance(other, FermionicOperator):
            self._check_compatible(other)
            result = FermionicOperator(self._num_modes)
            for term_a, coeff_a in self.terms():
                for term_b, coeff_b in other.terms():
                    result.add_term(term_a + term_b, coeff_a * coeff_b)
            return result.simplify()
        scalar = complex(other)
        return FermionicOperator(
            self._num_modes,
            {term: coeff * scalar for term, coeff in self._terms.items()})

    def __rmul__(self, scalar) -> "FermionicOperator":
        return self * scalar

    def hermitian_conjugate(self) -> "FermionicOperator":
        """The adjoint operator (reverse each product, flip daggers, conjugate)."""
        result = FermionicOperator(self._num_modes)
        for term, coeff in self.terms():
            conjugated = tuple((mode, not creation) for mode, creation in reversed(term))
            result.add_term(conjugated, np.conj(coeff))
        return result.simplify()

    def is_hermitian(self, atol: float = 1e-10) -> bool:
        difference = self - self.hermitian_conjugate()
        return difference.normal_ordered().is_zero(atol)

    # -- normal ordering ----------------------------------------------------------
    def normal_ordered(self) -> "FermionicOperator":
        """Rewrite with all creation operators to the left of annihilations.

        Uses ``a_p a_q† = δ_pq − a_q† a_p`` and the anticommutation of
        identical-type operators; products containing a repeated creation (or
        annihilation) operator vanish by the Pauli exclusion principle.
        """
        result = FermionicOperator(self._num_modes)
        for term, coeff in self.terms():
            for ordered_term, ordered_coeff in _normal_order_term(term, coeff):
                result.add_term(ordered_term, ordered_coeff)
        return result.simplify()

    def _check_compatible(self, other: "FermionicOperator") -> None:
        if self._num_modes != other._num_modes:
            raise ValueError("operators act on different numbers of modes")

    # -- presentation --------------------------------------------------------------
    def __eq__(self, other):
        if not isinstance(other, FermionicOperator):
            return NotImplemented
        if self._num_modes != other._num_modes:
            return False
        difference = (self - other).normal_ordered()
        return difference.is_zero(1e-10)

    def __repr__(self):
        pieces = []
        for term, coeff in list(self.terms())[:6]:
            pieces.append(f"({coeff:.3g})·{_format_ladder_term(term)}")
        suffix = " + ..." if self.num_terms > 6 else ""
        return (f"FermionicOperator(modes={self._num_modes}, "
                f"terms={self.num_terms}: " + " + ".join(pieces) + suffix + ")")


def _normal_order_term(term: LadderTerm, coefficient: complex
                       ) -> List[Tuple[LadderTerm, complex]]:
    """Normal-order a single ladder product; returns a list of (term, coeff)."""
    # Work on a list of (mode, creation) with an explicit coefficient; bubble
    # annihilation operators to the right, creations to the left.
    pending: List[Tuple[List[LadderOperator], complex]] = [(list(term), coefficient)]
    finished: List[Tuple[LadderTerm, complex]] = []
    while pending:
        operators, coeff = pending.pop()
        swapped = True
        vanished = False
        while swapped:
            swapped = False
            for i in range(len(operators) - 1):
                (mode_a, create_a), (mode_b, create_b) = operators[i], operators[i + 1]
                if not create_a and create_b:
                    # a_p a_q† = δ_pq − a_q† a_p
                    if mode_a == mode_b:
                        contracted = operators[:i] + operators[i + 2:]
                        pending.append((contracted, coeff))
                    operators[i], operators[i + 1] = operators[i + 1], operators[i]
                    coeff = -coeff
                    swapped = True
                    break
                if create_a == create_b and mode_a == mode_b:
                    # a_p a_p = a_p† a_p† = 0 (Pauli exclusion).
                    vanished = True
                    break
                if create_a == create_b and mode_a < mode_b:
                    # Canonical ordering inside each block: descending mode for
                    # creations, ascending handled by the same swap rule.
                    operators[i], operators[i + 1] = operators[i + 1], operators[i]
                    coeff = -coeff
                    swapped = True
                    break
            if vanished:
                break
        if vanished:
            continue
        finished.append((tuple(operators), coeff))
    # Merge duplicates produced by different contraction paths.
    merged: Dict[LadderTerm, complex] = {}
    for ordered_term, coeff in finished:
        merged[ordered_term] = merged.get(ordered_term, 0.0 + 0.0j) + coeff
    return [(t, c) for t, c in merged.items() if abs(c) > 1e-15]


# ---------------------------------------------------------------------------
# Fermion-to-qubit mappings
# ---------------------------------------------------------------------------

def _jordan_wigner_ladder(num_modes: int, mode: int, creation: bool) -> PauliSum:
    """JW image of a single ladder operator as a two-term PauliSum.

    ``a_p† = (X_p − iY_p)/2 · Z_0 … Z_{p−1}`` and
    ``a_p  = (X_p + iY_p)/2 · Z_0 … Z_{p−1}``.
    """
    z_string = {q: "Z" for q in range(mode)}
    x_part = dict(z_string)
    x_part[mode] = "X"
    y_part = dict(z_string)
    y_part[mode] = "Y"
    operator = PauliSum(num_modes)
    operator.add_term(PauliString.from_sparse(num_modes, x_part), 0.5)
    y_coefficient = -0.5j if creation else 0.5j
    operator.add_term(PauliString.from_sparse(num_modes, y_part), y_coefficient)
    return operator


def jordan_wigner(operator: FermionicOperator) -> PauliSum:
    """Map a fermionic operator to qubits with the Jordan–Wigner encoding.

    Each fermionic mode becomes one qubit; the output acts on
    ``operator.num_modes`` qubits.  The mapping is exact (no truncation), so a
    Hermitian fermionic operator maps to a Hermitian :class:`PauliSum`.
    """
    num_modes = operator.num_modes
    result = PauliSum(num_modes)
    for term, coeff in operator.terms():
        if not term:
            result.add_term(PauliString.identity(num_modes), coeff)
            continue
        product = None
        for mode, creation in term:
            ladder = _jordan_wigner_ladder(num_modes, mode, creation)
            product = ladder if product is None else product @ ladder
        result = result + (coeff * product)
    return result.simplify()


def bravyi_kitaev_matrix(num_modes: int) -> np.ndarray:
    """The binary Bravyi–Kitaev (Fenwick-tree) accumulation matrix β.

    Qubit ``i`` stores ``b_i = Σ_j β[i, j] · n_j  (mod 2)`` where ``n_j`` is
    the occupation of fermionic mode ``j``.  Using 1-based Fenwick indexing,
    index ``i`` accumulates modes ``[i − lowbit(i) + 1, i]``; the matrix is
    lower triangular with unit diagonal, hence invertible over GF(2).
    """
    beta = np.zeros((num_modes, num_modes), dtype=np.uint8)
    for row in range(1, num_modes + 1):
        low = row - (row & -row) + 1
        beta[row - 1, low - 1:row] = 1
    return beta


def _gf2_inverse(matrix: np.ndarray) -> np.ndarray:
    """Inverse of a binary matrix over GF(2) via Gauss–Jordan elimination."""
    size = matrix.shape[0]
    augmented = np.concatenate(
        [matrix.astype(np.uint8) % 2, np.eye(size, dtype=np.uint8)], axis=1)
    for col in range(size):
        pivot_rows = np.nonzero(augmented[col:, col])[0]
        if pivot_rows.size == 0:
            raise ValueError("matrix is singular over GF(2)")
        pivot = col + int(pivot_rows[0])
        if pivot != col:
            augmented[[col, pivot]] = augmented[[pivot, col]]
        for row in range(size):
            if row != col and augmented[row, col]:
                augmented[row] ^= augmented[col]
    return augmented[:, size:]


def _bravyi_kitaev_sets(num_modes: int) -> Tuple[List[set], List[set], List[set]]:
    """Update, parity and flip sets of the Bravyi–Kitaev transform.

    Defined from the accumulation matrix β (Seeley, Richard & Love 2012):

    * ``update[j]`` — qubits ``i > j`` with ``β[i, j] = 1`` (their stored
      partial sums include mode ``j`` and must be flipped by ``X``);
    * ``flip[j]``   — qubits ``i < j`` with ``β[j, i] = 1`` (they determine
      whether qubit ``j`` stores ``n_j`` or its complement);
    * ``parity[j]`` — qubits whose stored bits sum to the parity of modes
      ``< j``; read off the rows of β⁻¹ over GF(2).
    """
    beta = bravyi_kitaev_matrix(num_modes)
    beta_inverse = _gf2_inverse(beta)
    update_sets: List[set] = []
    flip_sets: List[set] = []
    parity_sets: List[set] = []
    for j in range(num_modes):
        update_sets.append({i for i in range(j + 1, num_modes) if beta[i, j]})
        flip_sets.append({i for i in range(j) if beta[j, i]})
        parity_vector = beta_inverse[:j, :].sum(axis=0) % 2
        parity_sets.append({i for i in range(num_modes) if parity_vector[i]})
    return update_sets, parity_sets, flip_sets


def bravyi_kitaev(operator: FermionicOperator) -> PauliSum:
    """Map a fermionic operator to qubits with the Bravyi–Kitaev encoding.

    Implemented via the Fenwick-tree update/parity/flip sets.  The BK image of
    a ladder operator is::

        a_j†  =  1/2 · X_{U(j)} ⊗ ( X_j Z_{P(j)}  −  i Y_j Z_{R(j)} )

    with ``R(j) = P(j) \\ F(j)``.  The encoding has the same spectrum as
    Jordan–Wigner but Pauli weights that scale as O(log n) instead of O(n).
    """
    num_modes = operator.num_modes
    update_sets, parity_sets, flip_sets = _bravyi_kitaev_sets(num_modes)

    def ladder_image(mode: int, creation: bool) -> PauliSum:
        update = update_sets[mode]
        parity = parity_sets[mode]
        remainder = parity - flip_sets[mode]
        first = {q: "X" for q in update}
        first[mode] = "X"
        for q in parity:
            first[q] = "Z"
        second = {q: "X" for q in update}
        second[mode] = "Y"
        for q in remainder:
            second[q] = "Z"
        image = PauliSum(num_modes)
        image.add_term(PauliString.from_sparse(num_modes, first), 0.5)
        second_coeff = -0.5j if creation else 0.5j
        image.add_term(PauliString.from_sparse(num_modes, second), second_coeff)
        return image

    result = PauliSum(num_modes)
    for term, coeff in operator.terms():
        if not term:
            result.add_term(PauliString.identity(num_modes), coeff)
            continue
        product = None
        for mode, creation in term:
            ladder = ladder_image(mode, creation)
            product = ladder if product is None else product @ ladder
        result = result + (coeff * product)
    return result.simplify()


#: Mapping registry used by :func:`map_to_qubits`.
_MAPPINGS = {
    "jordan_wigner": jordan_wigner,
    "jw": jordan_wigner,
    "bravyi_kitaev": bravyi_kitaev,
    "bk": bravyi_kitaev,
}


def map_to_qubits(operator: FermionicOperator,
                  mapping: str = "jordan_wigner") -> PauliSum:
    """Map ``operator`` to a qubit :class:`PauliSum` using the named mapping."""
    key = mapping.lower().replace("-", "_")
    if key not in _MAPPINGS:
        raise ValueError(f"unknown fermion-to-qubit mapping {mapping!r}; "
                         f"choose from {sorted(set(_MAPPINGS))}")
    return _MAPPINGS[key](operator)


# ---------------------------------------------------------------------------
# Electronic-structure builders
# ---------------------------------------------------------------------------

def molecular_fermionic_hamiltonian(one_body: np.ndarray,
                                    two_body: Optional[np.ndarray] = None,
                                    constant: float = 0.0) -> FermionicOperator:
    """Second-quantized molecular Hamiltonian from integral tensors.

    ``H = E_0 + Σ_pq h_pq a_p† a_q + 1/2 Σ_pqrs g_pqrs a_p† a_q† a_r a_s``
    with ``h`` the one-body integrals (spin-orbital basis) and ``g`` the
    two-body integrals in physicists' ordering.
    """
    one_body = np.asarray(one_body, dtype=float)
    if one_body.ndim != 2 or one_body.shape[0] != one_body.shape[1]:
        raise ValueError("one_body must be a square matrix")
    num_modes = one_body.shape[0]
    operator = FermionicOperator(num_modes)
    if abs(constant) > 0:
        operator.add_term((), constant)
    for p in range(num_modes):
        for q in range(num_modes):
            coeff = one_body[p, q]
            if abs(coeff) > 1e-12:
                operator.add_term(((p, True), (q, False)), coeff)
    if two_body is not None:
        two_body = np.asarray(two_body, dtype=float)
        if two_body.shape != (num_modes,) * 4:
            raise ValueError("two_body must have shape (n, n, n, n)")
        for p in range(num_modes):
            for q in range(num_modes):
                for r in range(num_modes):
                    for s in range(num_modes):
                        coeff = two_body[p, q, r, s]
                        if abs(coeff) > 1e-12:
                            operator.add_term(
                                ((p, True), (q, True), (r, False), (s, False)),
                                0.5 * coeff)
    return operator.simplify()


def fermi_hubbard(num_sites: int, tunneling: float = 1.0,
                  interaction: float = 2.0,
                  chemical_potential: float = 0.0,
                  periodic: bool = False) -> FermionicOperator:
    """1-D spinful Fermi–Hubbard model on ``num_sites`` sites (2·sites modes).

    ``H = −t Σ_{⟨ij⟩σ} (a_iσ† a_jσ + h.c.) + U Σ_i n_i↑ n_i↓ − μ Σ_iσ n_iσ``.
    Mode ordering is ``(site, spin)`` with spin-up modes first
    (``mode = site`` for spin-up, ``mode = num_sites + site`` for spin-down).
    """
    if num_sites < 2:
        raise ValueError("the Hubbard chain needs at least two sites")
    num_modes = 2 * num_sites
    operator = FermionicOperator(num_modes)
    bonds = [(i, i + 1) for i in range(num_sites - 1)]
    if periodic and num_sites > 2:
        bonds.append((num_sites - 1, 0))
    for spin_offset in (0, num_sites):
        for i, j in bonds:
            p, q = i + spin_offset, j + spin_offset
            operator.add_term(((p, True), (q, False)), -tunneling)
            operator.add_term(((q, True), (p, False)), -tunneling)
    for site in range(num_sites):
        up, down = site, num_sites + site
        operator.add_term(((up, True), (up, False), (down, True), (down, False)),
                          interaction)
        if abs(chemical_potential) > 0:
            operator.add_term(((up, True), (up, False)), -chemical_potential)
            operator.add_term(((down, True), (down, False)), -chemical_potential)
    return operator.simplify()


@dataclass(frozen=True)
class MolecularIntegrals:
    """One- and two-body integral tensors plus the scalar offset."""

    name: str
    bond_length: float
    constant: float
    one_body: np.ndarray
    two_body: np.ndarray

    @property
    def num_modes(self) -> int:
        return self.one_body.shape[0]


def synthetic_molecular_integrals(name: str, bond_length: float = 1.0,
                                  num_modes: int = 12,
                                  seed: Optional[int] = None) -> MolecularIntegrals:
    """Deterministic synthetic integral tensors with molecular structure.

    The paper's active spaces are 6 spatial orbitals → 12 spin-orbitals.  Real
    integrals are unavailable offline (no PySCF), so this generator produces
    tensors with the correct symmetries (``h`` symmetric; ``g`` with the
    8-fold real-orbital symmetry), diagonal dominance, and bond-length
    dependence (off-diagonal decay as the molecule is stretched).  The result
    feeds :func:`molecular_fermionic_hamiltonian` + :func:`jordan_wigner` to
    exercise the full electronic-structure pipeline end to end.
    """
    if num_modes < 2 or num_modes % 2:
        raise ValueError("num_modes must be an even number ≥ 2")
    catalogue = {"H2O": 11, "H6": 23, "LIH": 37, "H2": 53, "N2": 71}
    key = name.strip().upper().replace("_", "")
    if key not in catalogue:
        raise ValueError(f"unknown molecule {name!r}; choose from "
                         f"{sorted(catalogue)}")
    base_seed = catalogue[key] if seed is None else int(seed)
    rng = np.random.default_rng(base_seed + int(round(bond_length * 1000)))
    stretch = math.exp(-(bond_length - 1.0) / 1.8)

    orbital_energies = -np.sort(-np.abs(rng.normal(1.2, 0.5, size=num_modes)))
    one_body = np.diag(-orbital_energies)
    hopping = 0.35 * stretch
    for p in range(num_modes):
        for q in range(p + 1, num_modes):
            value = hopping * rng.normal() / (1.0 + abs(p - q))
            one_body[p, q] = value
            one_body[q, p] = value

    two_body = np.zeros((num_modes,) * 4)
    coulomb = 0.5 + 0.2 * stretch
    for p in range(num_modes):
        for q in range(num_modes):
            # Density-density (Coulomb-like) part, always present.
            value = coulomb / (1.0 + abs(p - q))
            two_body[p, q, q, p] += value
    exchange_terms = max(4, num_modes)
    for _ in range(exchange_terms):
        p, q, r, s = rng.integers(0, num_modes, size=4)
        value = 0.08 * stretch * rng.normal()
        # Impose the real-orbital 8-fold symmetry on the sampled element.
        for a, b, c, d in ((p, q, r, s), (q, p, s, r), (s, r, q, p), (r, s, p, q)):
            two_body[a, b, c, d] += value
            two_body[c, d, a, b] += value
    constant = float(3.0 / max(bond_length, 0.25))
    return MolecularIntegrals(name=key, bond_length=float(bond_length),
                              constant=constant, one_body=one_body,
                              two_body=two_body)


def molecular_hamiltonian_from_integrals(name: str, bond_length: float = 1.0,
                                         num_modes: int = 12,
                                         mapping: str = "jordan_wigner"
                                         ) -> PauliSum:
    """End-to-end synthetic electronic-structure pipeline → qubit Hamiltonian."""
    integrals = synthetic_molecular_integrals(name, bond_length, num_modes)
    fermionic = molecular_fermionic_hamiltonian(integrals.one_body,
                                                integrals.two_body,
                                                integrals.constant)
    return map_to_qubits(fermionic, mapping)
