"""Graph-problem instances for QAOA-style variational workloads.

The paper focuses on VQE but notes that its EFT-VQA analysis "extends to
other VQAs like QAOA and QML" (Sec. 2.1).  This module provides the
combinatorial-optimization substrate for the QAOA implementation in
:mod:`repro.algorithms.qaoa`:

* deterministic graph-instance generators (rings, random d-regular,
  Erdős–Rényi, complete graphs) built on :mod:`networkx`;
* MaxCut cost Hamiltonians and exact classical solutions for small
  instances (used as the γ-metric reference energy);
* a benchmark registry analogous to
  :func:`repro.operators.hamiltonians.physics_benchmark_suite`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import networkx as nx

from .pauli import PauliString, PauliSum


def ring_graph(num_nodes: int) -> nx.Graph:
    """A cycle graph on ``num_nodes`` nodes (the simplest QAOA benchmark)."""
    if num_nodes < 3:
        raise ValueError("a ring needs at least three nodes")
    return nx.cycle_graph(num_nodes)


def complete_graph(num_nodes: int) -> nx.Graph:
    """The complete graph on ``num_nodes`` nodes."""
    if num_nodes < 2:
        raise ValueError("a complete graph needs at least two nodes")
    return nx.complete_graph(num_nodes)


def random_regular_graph(num_nodes: int, degree: int = 3,
                         seed: int = 7) -> nx.Graph:
    """A random ``degree``-regular graph (the canonical QAOA MaxCut family)."""
    if num_nodes * degree % 2:
        raise ValueError("num_nodes · degree must be even for a regular graph")
    if degree >= num_nodes:
        raise ValueError("degree must be smaller than the number of nodes")
    return nx.random_regular_graph(degree, num_nodes, seed=seed)


def erdos_renyi_graph(num_nodes: int, edge_probability: float = 0.5,
                      seed: int = 7) -> nx.Graph:
    """An Erdős–Rényi G(n, p) graph; resampled until it is connected."""
    if not 0.0 < edge_probability <= 1.0:
        raise ValueError("edge_probability must be in (0, 1]")
    for attempt in range(64):
        graph = nx.erdos_renyi_graph(num_nodes, edge_probability,
                                     seed=seed + attempt)
        if nx.is_connected(graph):
            return graph
    raise RuntimeError("could not sample a connected Erdős–Rényi graph; "
                       "increase edge_probability")


def weighted_edges(graph: nx.Graph) -> List[Tuple[int, int, float]]:
    """Edge list with weights (defaulting to 1.0 for unweighted graphs)."""
    edges = []
    for u, v, data in graph.edges(data=True):
        edges.append((int(u), int(v), float(data.get("weight", 1.0))))
    return edges


def maxcut_cost_hamiltonian(graph: nx.Graph) -> PauliSum:
    """The MaxCut cost Hamiltonian ``C = Σ_(i,j) w_ij (Z_i Z_j − 1)/2``.

    Ground states of ``C`` encode maximum cuts: ``⟨C⟩ = −(cut value)`` for a
    computational-basis state, so *minimizing* the expectation maximizes the
    cut (matching the VQE/γ-metric convention used across the repository).
    """
    num_qubits = graph.number_of_nodes()
    if num_qubits < 2:
        raise ValueError("MaxCut needs at least two nodes")
    hamiltonian = PauliSum(num_qubits)
    for u, v, weight in weighted_edges(graph):
        hamiltonian.add_term(
            PauliString.from_sparse(num_qubits, {u: "Z", v: "Z"}), 0.5 * weight)
        hamiltonian.add_term(PauliString.identity(num_qubits), -0.5 * weight)
    return hamiltonian.simplify()


def cut_value(graph: nx.Graph, bitstring: Sequence[int]) -> float:
    """Weight of the cut defined by ``bitstring`` (qubit i on side bit[i])."""
    bits = list(int(b) for b in bitstring)
    if len(bits) != graph.number_of_nodes():
        raise ValueError("bitstring length must equal the number of nodes")
    total = 0.0
    for u, v, weight in weighted_edges(graph):
        if bits[u] != bits[v]:
            total += weight
    return total


def exact_maxcut(graph: nx.Graph) -> Tuple[float, Tuple[int, ...]]:
    """Brute-force maximum cut (value, partition) for graphs up to 22 nodes."""
    num_nodes = graph.number_of_nodes()
    if num_nodes > 22:
        raise ValueError("exact_maxcut is limited to 22 nodes "
                         "(use goemans_williamson_bound instead)")
    edges = weighted_edges(graph)
    best_value = -1.0
    best_assignment: Tuple[int, ...] = tuple([0] * num_nodes)
    # Fix node 0 on side 0 — the cut is symmetric under global flip.
    for assignment in itertools.product((0, 1), repeat=num_nodes - 1):
        bits = (0,) + assignment
        value = 0.0
        for u, v, weight in edges:
            if bits[u] != bits[v]:
                value += weight
        if value > best_value:
            best_value = value
            best_assignment = bits
    return best_value, best_assignment


def goemans_williamson_bound(graph: nx.Graph) -> float:
    """A cheap upper bound on the maximum cut: total edge weight.

    Used as a sanity reference for instances too large for brute force (the
    true optimum is at least 0.878 of the SDP bound; the total weight is a
    looser but dependency-free bound).
    """
    return sum(weight for _, _, weight in weighted_edges(graph))


@dataclass(frozen=True)
class GraphInstance:
    """A named graph problem instance used by the QAOA benchmarks."""

    name: str
    graph: nx.Graph
    hamiltonian: PauliSum
    optimal_cut: Optional[float]

    @property
    def num_qubits(self) -> int:
        return self.graph.number_of_nodes()

    @property
    def reference_energy(self) -> Optional[float]:
        """Ground-state energy of the cost Hamiltonian (−optimal cut)."""
        if self.optimal_cut is None:
            return None
        return -self.optimal_cut


def graph_benchmark_suite(num_nodes_list: Sequence[int] = (8, 10, 12),
                          families: Sequence[str] = ("ring", "regular3"),
                          seed: int = 11) -> List[GraphInstance]:
    """Deterministic registry of QAOA MaxCut benchmark instances."""
    builders = {
        "ring": lambda n, s: ring_graph(n),
        "complete": lambda n, s: complete_graph(n),
        "regular3": lambda n, s: random_regular_graph(n, 3, seed=s),
        "erdos_renyi": lambda n, s: erdos_renyi_graph(n, 0.5, seed=s),
    }
    instances: List[GraphInstance] = []
    for family in families:
        if family not in builders:
            raise ValueError(f"unknown graph family {family!r}; choose from "
                             f"{sorted(builders)}")
        for num_nodes in num_nodes_list:
            graph = builders[family](num_nodes, seed)
            hamiltonian = maxcut_cost_hamiltonian(graph)
            optimal = exact_maxcut(graph)[0] if num_nodes <= 18 else None
            instances.append(GraphInstance(
                name=f"maxcut-{family}-{num_nodes}",
                graph=graph, hamiltonian=hamiltonian, optimal_cut=optimal))
    return instances
