"""Interchange formats: OpenQASM 2.0, JSON serialization and report writing.

Downstream users of an EFT-VQA compiler need to move circuits and results in
and out of the toolchain — exporting ansatz circuits to other simulators,
checkpointing optimized parameters, and recording experiment tables.  This
package provides the three formats the examples and benchmark harness rely
on:

* :mod:`repro.io.qasm` — OpenQASM 2.0 export/import for the circuit IR;
* :mod:`repro.io.serialization` — JSON round-tripping of circuits, Pauli
  operators and result records;
* :mod:`repro.io.reports` — markdown experiment tables (the generator behind
  ``EXPERIMENTS.md``).
"""

from .qasm import from_qasm, to_qasm
from .reports import ExperimentRecord, ExperimentReport, markdown_table
from .serialization import (circuit_from_dict, circuit_to_dict,
                            load_json, pauli_sum_from_dict, pauli_sum_to_dict,
                            result_to_dict, save_json)

__all__ = [
    "ExperimentRecord",
    "ExperimentReport",
    "circuit_from_dict",
    "circuit_to_dict",
    "from_qasm",
    "load_json",
    "markdown_table",
    "pauli_sum_from_dict",
    "pauli_sum_to_dict",
    "result_to_dict",
    "save_json",
    "to_qasm",
]
