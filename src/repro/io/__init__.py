"""Interchange formats: OpenQASM 2.0, JSON serialization and report writing.

Downstream users of an EFT-VQA compiler need to move circuits and results in
and out of the toolchain — exporting ansatz circuits to other simulators,
checkpointing optimized parameters, and recording experiment tables.  This
package provides the three formats the examples and benchmark harness rely
on:

* :mod:`repro.io.qasm` — OpenQASM 2.0 export/import for the circuit IR;
* :mod:`repro.io.serialization` — JSON round-tripping of circuits, Pauli
  operators and result records;
* :mod:`repro.io.reports` — markdown experiment tables (the generator behind
  ``EXPERIMENTS.md``).
"""

from .qasm import from_qasm, to_qasm
from .reports import ExperimentRecord, ExperimentReport, markdown_table
from .serialization import (channel_from_dict, channel_to_dict,
                            circuit_from_dict, circuit_to_dict,
                            load_json, noise_model_from_dict,
                            noise_model_to_dict, pauli_sum_from_dict,
                            pauli_sum_to_dict, result_to_dict, save_json,
                            template_from_dict, template_to_dict)

__all__ = [
    "ExperimentRecord",
    "ExperimentReport",
    "channel_from_dict",
    "channel_to_dict",
    "circuit_from_dict",
    "circuit_to_dict",
    "from_qasm",
    "load_json",
    "markdown_table",
    "noise_model_from_dict",
    "noise_model_to_dict",
    "pauli_sum_from_dict",
    "pauli_sum_to_dict",
    "result_to_dict",
    "save_json",
    "template_from_dict",
    "template_to_dict",
    "to_qasm",
]
