"""JSON serialization of circuits, Pauli operators and result records.

Everything round-trips through plain ``dict`` / ``list`` structures so the
output is stable, diffable and consumable outside Python.  Complex Hamiltonian
coefficients are stored as ``[real, imag]`` pairs.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Dict, List, Mapping, Union

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..circuits.gates import Gate
from ..circuits.parameters import Parameter, ParameterExpression
from ..operators.pauli import PauliString, PauliSum
from ..simulators.noise import NoiseModel, QuantumChannel

#: Format tags written into every serialized payload.
CIRCUIT_FORMAT = "repro-circuit-v1"
PAULI_SUM_FORMAT = "repro-pauli-sum-v1"
TEMPLATE_FORMAT = "repro-template-v1"
CHANNEL_FORMAT = "repro-channel-v1"
NOISE_MODEL_FORMAT = "repro-noise-model-v1"


# ---------------------------------------------------------------------------
# Circuits
# ---------------------------------------------------------------------------

def circuit_to_dict(circuit: QuantumCircuit) -> Dict[str, Any]:
    """Serialize a *bound* circuit (symbolic parameters are rejected)."""
    instructions: List[Dict[str, Any]] = []
    for inst in circuit.instructions:
        if inst.gate.is_parameterized:
            raise ValueError("cannot serialize a circuit with unbound parameters")
        entry: Dict[str, Any] = {"name": inst.name,
                                 "qubits": list(inst.qubits)}
        if inst.gate.params:
            entry["params"] = [float(p) for p in inst.gate.bound_params()]
        if inst.clbits:
            entry["clbits"] = list(inst.clbits)
        instructions.append(entry)
    return {
        "format": CIRCUIT_FORMAT,
        "name": circuit.name,
        "num_qubits": circuit.num_qubits,
        "metadata": {key: value for key, value in circuit.metadata.items()
                     if isinstance(value, (str, int, float, bool))},
        "instructions": instructions,
    }


def circuit_from_dict(payload: Mapping[str, Any]) -> QuantumCircuit:
    """Rebuild a circuit serialized by :func:`circuit_to_dict`."""
    if payload.get("format") != CIRCUIT_FORMAT:
        raise ValueError(f"not a serialized circuit (format tag "
                         f"{payload.get('format')!r})")
    circuit = QuantumCircuit(int(payload["num_qubits"]),
                             name=str(payload.get("name", "circuit")))
    circuit.metadata.update(payload.get("metadata", {}))
    for entry in payload["instructions"]:
        name = entry["name"]
        qubits = tuple(int(q) for q in entry["qubits"])
        if name == "barrier":
            circuit.barrier(*qubits)
            continue
        if name == "measure":
            clbits = entry.get("clbits", [])
            circuit.measure(qubits[0], clbits[0] if clbits else None)
            continue
        params = tuple(float(p) for p in entry.get("params", ()))
        circuit.append(Gate(name, params), qubits)
    return circuit


# ---------------------------------------------------------------------------
# Parametric templates
# ---------------------------------------------------------------------------

def _expression_to_dict(expression: ParameterExpression) -> Dict[str, Any]:
    """Serialize an affine parameter expression as name→coefficient terms."""
    return {
        "terms": {param.name: expression.coefficient(param)
                  for param in sorted(expression.parameters,
                                      key=lambda p: p.name)},
        "offset": expression.offset,
    }


def template_to_dict(circuit: QuantumCircuit) -> Dict[str, Any]:
    """Serialize a circuit that may carry **unbound** symbolic parameters.

    The wire format extends :func:`circuit_to_dict`: parametric gate angles
    are stored as affine ``{name: coefficient}`` terms plus an offset, and
    free parameters are identified by *name*.  Two distinct
    :class:`~repro.circuits.parameters.Parameter` objects sharing a display
    name cannot round-trip (they would merge on rebuild) and are rejected.
    Rebuilding with :func:`template_from_dict` preserves
    :meth:`~repro.circuits.circuit.QuantumCircuit.fingerprint` — parameters
    hash by name and appearance order on both sides of the wire, which is
    what lets the service layer share program and sweep caches with
    in-process callers.
    """
    by_name: Dict[str, Parameter] = {}
    for param in circuit.parameters:
        other = by_name.setdefault(param.name, param)
        if other is not param:
            raise ValueError(
                f"cannot serialize template: two distinct parameters share "
                f"the name {param.name!r}")
    instructions: List[Dict[str, Any]] = []
    for inst in circuit.instructions:
        entry: Dict[str, Any] = {"name": inst.name,
                                 "qubits": list(inst.qubits)}
        if inst.gate.params:
            params: List[Any] = []
            for param in inst.gate.params:
                if isinstance(param, ParameterExpression) \
                        and not param.is_bound:
                    params.append({"expr": _expression_to_dict(param)})
                else:
                    params.append(float(param))
            entry["params"] = params
        if inst.clbits:
            entry["clbits"] = list(inst.clbits)
        instructions.append(entry)
    return {
        "format": TEMPLATE_FORMAT,
        "name": circuit.name,
        "num_qubits": circuit.num_qubits,
        "metadata": {key: value for key, value in circuit.metadata.items()
                     if isinstance(value, (str, int, float, bool))},
        "instructions": instructions,
    }


def template_from_dict(payload: Mapping[str, Any]) -> QuantumCircuit:
    """Rebuild a (possibly parametric) circuit from :func:`template_to_dict`.

    Free parameters are re-created by name, one shared
    :class:`~repro.circuits.parameters.Parameter` instance per distinct name,
    so expressions that referenced the same symbol keep referencing the same
    symbol after the round trip.
    """
    if payload.get("format") != TEMPLATE_FORMAT:
        raise ValueError(f"not a serialized template (format tag "
                         f"{payload.get('format')!r})")
    parameters: Dict[str, Parameter] = {}

    def expression(entry: Mapping[str, Any]) -> ParameterExpression:
        terms = {}
        for name, coefficient in entry.get("terms", {}).items():
            param = parameters.setdefault(str(name), Parameter(str(name)))
            terms[param] = float(coefficient)
        return ParameterExpression(terms, float(entry.get("offset", 0.0)))

    circuit = QuantumCircuit(int(payload["num_qubits"]),
                             name=str(payload.get("name", "template")))
    circuit.metadata.update(payload.get("metadata", {}))
    for entry in payload["instructions"]:
        name = entry["name"]
        qubits = tuple(int(q) for q in entry["qubits"])
        if name == "barrier":
            circuit.barrier(*qubits)
            continue
        if name == "measure":
            clbits = entry.get("clbits", [])
            circuit.measure(qubits[0], clbits[0] if clbits else None)
            continue
        params = tuple(expression(p["expr"]) if isinstance(p, Mapping)
                       else float(p)
                       for p in entry.get("params", ()))
        circuit.append(Gate(name, params), qubits)
    return circuit


# ---------------------------------------------------------------------------
# Noise models
# ---------------------------------------------------------------------------

def channel_to_dict(channel: QuantumChannel) -> Dict[str, Any]:
    """Serialize a Kraus channel; complex entries become [real, imag] pairs."""
    kraus = []
    for op in channel.kraus_operators:
        matrix = np.asarray(op, dtype=complex)
        kraus.append([[[float(v.real), float(v.imag)] for v in row]
                      for row in matrix])
    return {"format": CHANNEL_FORMAT, "name": channel.name, "kraus": kraus}


def channel_from_dict(payload: Mapping[str, Any]) -> QuantumChannel:
    """Rebuild a channel serialized by :func:`channel_to_dict`.

    The :class:`~repro.simulators.noise.QuantumChannel` constructor
    re-validates trace preservation, so a corrupted payload cannot smuggle a
    non-physical channel into a simulation.
    """
    if payload.get("format") != CHANNEL_FORMAT:
        raise ValueError(f"not a serialized channel (format tag "
                         f"{payload.get('format')!r})")
    kraus = [np.array([[complex(entry[0], entry[1]) for entry in row]
                       for row in op])
             for op in payload["kraus"]]
    return QuantumChannel(kraus, name=str(payload.get("name", "channel")))


def noise_model_to_dict(model: NoiseModel) -> Dict[str, Any]:
    """Serialize a :class:`~repro.simulators.noise.NoiseModel`.

    Gate channels keep their attachment order per gate name, so the rebuilt
    model shares the original's content
    :meth:`~repro.simulators.noise.NoiseModel.fingerprint` — cache entries
    written by an in-process run are hit by a service job carrying the same
    model over the wire.
    """
    gate_errors = []
    for gate_name in sorted(model._gate_errors):
        for channel in model._gate_errors[gate_name]:
            gate_errors.append({"gate": gate_name,
                                "channel": channel_to_dict(channel)})
    idle = model.idle_channel
    return {
        "format": NOISE_MODEL_FORMAT,
        "name": model.name,
        "gate_errors": gate_errors,
        "idle": channel_to_dict(idle) if idle is not None else None,
        "readout": model.readout_error,
    }


def noise_model_from_dict(payload: Mapping[str, Any]) -> NoiseModel:
    """Rebuild a noise model serialized by :func:`noise_model_to_dict`."""
    if payload.get("format") != NOISE_MODEL_FORMAT:
        raise ValueError(f"not a serialized noise model (format tag "
                         f"{payload.get('format')!r})")
    model = NoiseModel(name=str(payload.get("name", "noise_model")))
    for entry in payload.get("gate_errors", ()):
        model.add_gate_error(channel_from_dict(entry["channel"]),
                             [str(entry["gate"])])
    if payload.get("idle") is not None:
        model.add_idle_error(channel_from_dict(payload["idle"]))
    readout = float(payload.get("readout", 0.0))
    if readout > 0.0:
        model.add_readout_error(readout)
    return model


# ---------------------------------------------------------------------------
# Pauli operators
# ---------------------------------------------------------------------------

def pauli_sum_to_dict(hamiltonian: PauliSum) -> Dict[str, Any]:
    """Serialize a PauliSum as a label → coefficient table."""
    terms = []
    for pauli, coefficient in hamiltonian.terms():
        terms.append({"label": pauli.label,
                      "coefficient": [float(coefficient.real),
                                      float(coefficient.imag)]})
    return {
        "format": PAULI_SUM_FORMAT,
        "num_qubits": hamiltonian.num_qubits,
        "terms": terms,
    }


def pauli_sum_from_dict(payload: Mapping[str, Any]) -> PauliSum:
    """Rebuild a PauliSum serialized by :func:`pauli_sum_to_dict`."""
    if payload.get("format") != PAULI_SUM_FORMAT:
        raise ValueError(f"not a serialized PauliSum (format tag "
                         f"{payload.get('format')!r})")
    result = PauliSum(int(payload["num_qubits"]))
    for entry in payload["terms"]:
        real, imag = entry["coefficient"]
        result.add_term(PauliString(entry["label"]), complex(real, imag))
    return result.simplify()


# ---------------------------------------------------------------------------
# Result records
# ---------------------------------------------------------------------------

def _jsonable(value: Any) -> Any:
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    if isinstance(value, np.ndarray):
        return [float(v) for v in value.ravel()]
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {field.name: _jsonable(getattr(value, field.name))
                for field in dataclasses.fields(value)}
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def result_to_dict(result: Any) -> Dict[str, Any]:
    """Serialize any result record (dataclass, dict or object with summary())."""
    if hasattr(result, "summary") and callable(result.summary):
        return _jsonable(result.summary())
    return _jsonable(result)


# ---------------------------------------------------------------------------
# File helpers
# ---------------------------------------------------------------------------

def save_json(payload: Any, path: Union[str, Path]) -> Path:
    """Write a JSON-serializable payload to ``path`` (creating parents)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(_jsonable(payload), indent=2, sort_keys=True))
    return path


def load_json(path: Union[str, Path]) -> Any:
    """Read a JSON payload written by :func:`save_json`."""
    return json.loads(Path(path).read_text())
