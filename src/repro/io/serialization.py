"""JSON serialization of circuits, Pauli operators and result records.

Everything round-trips through plain ``dict`` / ``list`` structures so the
output is stable, diffable and consumable outside Python.  Complex Hamiltonian
coefficients are stored as ``[real, imag]`` pairs.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Dict, List, Mapping, Union

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..circuits.gates import Gate
from ..operators.pauli import PauliString, PauliSum

#: Format tags written into every serialized payload.
CIRCUIT_FORMAT = "repro-circuit-v1"
PAULI_SUM_FORMAT = "repro-pauli-sum-v1"


# ---------------------------------------------------------------------------
# Circuits
# ---------------------------------------------------------------------------

def circuit_to_dict(circuit: QuantumCircuit) -> Dict[str, Any]:
    """Serialize a *bound* circuit (symbolic parameters are rejected)."""
    instructions: List[Dict[str, Any]] = []
    for inst in circuit.instructions:
        if inst.gate.is_parameterized:
            raise ValueError("cannot serialize a circuit with unbound parameters")
        entry: Dict[str, Any] = {"name": inst.name,
                                 "qubits": list(inst.qubits)}
        if inst.gate.params:
            entry["params"] = [float(p) for p in inst.gate.bound_params()]
        if inst.clbits:
            entry["clbits"] = list(inst.clbits)
        instructions.append(entry)
    return {
        "format": CIRCUIT_FORMAT,
        "name": circuit.name,
        "num_qubits": circuit.num_qubits,
        "metadata": {key: value for key, value in circuit.metadata.items()
                     if isinstance(value, (str, int, float, bool))},
        "instructions": instructions,
    }


def circuit_from_dict(payload: Mapping[str, Any]) -> QuantumCircuit:
    """Rebuild a circuit serialized by :func:`circuit_to_dict`."""
    if payload.get("format") != CIRCUIT_FORMAT:
        raise ValueError(f"not a serialized circuit (format tag "
                         f"{payload.get('format')!r})")
    circuit = QuantumCircuit(int(payload["num_qubits"]),
                             name=str(payload.get("name", "circuit")))
    circuit.metadata.update(payload.get("metadata", {}))
    for entry in payload["instructions"]:
        name = entry["name"]
        qubits = tuple(int(q) for q in entry["qubits"])
        if name == "barrier":
            circuit.barrier(*qubits)
            continue
        if name == "measure":
            clbits = entry.get("clbits", [])
            circuit.measure(qubits[0], clbits[0] if clbits else None)
            continue
        params = tuple(float(p) for p in entry.get("params", ()))
        circuit.append(Gate(name, params), qubits)
    return circuit


# ---------------------------------------------------------------------------
# Pauli operators
# ---------------------------------------------------------------------------

def pauli_sum_to_dict(hamiltonian: PauliSum) -> Dict[str, Any]:
    """Serialize a PauliSum as a label → coefficient table."""
    terms = []
    for pauli, coefficient in hamiltonian.terms():
        terms.append({"label": pauli.label,
                      "coefficient": [float(coefficient.real),
                                      float(coefficient.imag)]})
    return {
        "format": PAULI_SUM_FORMAT,
        "num_qubits": hamiltonian.num_qubits,
        "terms": terms,
    }


def pauli_sum_from_dict(payload: Mapping[str, Any]) -> PauliSum:
    """Rebuild a PauliSum serialized by :func:`pauli_sum_to_dict`."""
    if payload.get("format") != PAULI_SUM_FORMAT:
        raise ValueError(f"not a serialized PauliSum (format tag "
                         f"{payload.get('format')!r})")
    result = PauliSum(int(payload["num_qubits"]))
    for entry in payload["terms"]:
        real, imag = entry["coefficient"]
        result.add_term(PauliString(entry["label"]), complex(real, imag))
    return result.simplify()


# ---------------------------------------------------------------------------
# Result records
# ---------------------------------------------------------------------------

def _jsonable(value: Any) -> Any:
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    if isinstance(value, np.ndarray):
        return [float(v) for v in value.ravel()]
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {field.name: _jsonable(getattr(value, field.name))
                for field in dataclasses.fields(value)}
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def result_to_dict(result: Any) -> Dict[str, Any]:
    """Serialize any result record (dataclass, dict or object with summary())."""
    if hasattr(result, "summary") and callable(result.summary):
        return _jsonable(result.summary())
    return _jsonable(result)


# ---------------------------------------------------------------------------
# File helpers
# ---------------------------------------------------------------------------

def save_json(payload: Any, path: Union[str, Path]) -> Path:
    """Write a JSON-serializable payload to ``path`` (creating parents)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(_jsonable(payload), indent=2, sort_keys=True))
    return path


def load_json(path: Union[str, Path]) -> Any:
    """Read a JSON payload written by :func:`save_json`."""
    return json.loads(Path(path).read_text())
