"""OpenQASM 2.0 export and import for the circuit IR.

Only the gate vocabulary the repository actually uses is supported; circuits
with unbound parameters cannot be exported (OpenQASM 2.0 has no symbolic
parameters), and ``rzz`` is emitted as its standard ``cx · rz · cx``
decomposition so the output loads in any OpenQASM 2.0 consumer.
"""

from __future__ import annotations

import math
import re
from typing import Optional, Tuple

from ..circuits.circuit import QuantumCircuit
from ..circuits.gates import Gate

#: Gates emitted verbatim (same name and operand order in OpenQASM 2.0).
_DIRECT_GATES = {"x", "y", "z", "h", "s", "sdg", "t", "tdg", "sx", "cx", "cz",
                 "swap", "rx", "ry", "rz", "u3", "id"}

_HEADER = 'OPENQASM 2.0;\ninclude "qelib1.inc";\n'


def _format_angle(value: float) -> str:
    """Render an angle, using exact pi fractions when they apply."""
    for denominator in (1, 2, 3, 4, 6, 8):
        for numerator in range(-8 * denominator, 8 * denominator + 1):
            if numerator == 0:
                continue
            if math.isclose(value, numerator * math.pi / denominator,
                            rel_tol=0.0, abs_tol=1e-12):
                sign = "-" if numerator < 0 else ""
                numerator = abs(numerator)
                prefix = "" if numerator == 1 else f"{numerator}*"
                suffix = "" if denominator == 1 else f"/{denominator}"
                return f"{sign}{prefix}pi{suffix}"
    if math.isclose(value, 0.0, abs_tol=1e-15):
        return "0"
    return repr(float(value))


def to_qasm(circuit: QuantumCircuit) -> str:
    """Serialize a bound circuit to OpenQASM 2.0 text."""
    lines = [_HEADER.rstrip("\n")]
    lines.append(f"qreg q[{circuit.num_qubits}];")
    lines.append(f"creg c[{circuit.num_clbits}];")
    for inst in circuit.instructions:
        name = inst.name
        qubits = inst.qubits
        if name == "barrier":
            operands = ", ".join(f"q[{q}]" for q in qubits) if qubits else "q"
            lines.append(f"barrier {operands};")
            continue
        if name == "measure":
            clbit = inst.clbits[0] if inst.clbits else qubits[0]
            lines.append(f"measure q[{qubits[0]}] -> c[{clbit}];")
            continue
        if name == "reset":
            lines.append(f"reset q[{qubits[0]}];")
            continue
        if inst.gate.is_parameterized:
            raise ValueError("cannot export a circuit with unbound parameters "
                             "to OpenQASM 2.0; bind them first")
        if name in ("cnot",):
            name = "cx"
        if name == "i":
            name = "id"
        if name == "sxdg":
            # qelib1 has no sxdg; sdg·h·sdg implements it up to global phase.
            qubit = qubits[0]
            lines.append(f"sdg q[{qubit}];")
            lines.append(f"h q[{qubit}];")
            lines.append(f"sdg q[{qubit}];")
            continue
        if name == "rzz":
            theta = _format_angle(float(inst.gate.bound_params()[0]))
            control, target = qubits
            lines.append(f"cx q[{control}],q[{target}];")
            lines.append(f"rz({theta}) q[{target}];")
            lines.append(f"cx q[{control}],q[{target}];")
            continue
        if name not in _DIRECT_GATES:
            raise ValueError(f"gate {name!r} has no OpenQASM 2.0 export rule")
        operands = ",".join(f"q[{q}]" for q in qubits)
        if inst.gate.params:
            params = ",".join(_format_angle(float(p))
                              for p in inst.gate.bound_params())
            lines.append(f"{name}({params}) {operands};")
        else:
            lines.append(f"{name} {operands};")
    return "\n".join(lines) + "\n"


_QASM_STATEMENT = re.compile(
    r"^\s*(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)\s*"
    r"(?:\((?P<params>[^)]*)\))?\s*"
    r"(?P<operands>[^;]*);\s*$")
_QUBIT_REF = re.compile(r"q\[(\d+)\]")
_CLBIT_REF = re.compile(r"c\[(\d+)\]")


def _parse_angle(token: str) -> float:
    token = token.strip().replace(" ", "")
    if not token:
        raise ValueError("empty angle expression")
    # Support the limited arithmetic _format_angle emits: [-][n*]pi[/m] | float.
    match = re.fullmatch(r"(-?)(?:(\d+(?:\.\d+)?)\*)?pi(?:/(\d+(?:\.\d+)?))?",
                         token)
    if match:
        sign = -1.0 if match.group(1) == "-" else 1.0
        numerator = float(match.group(2)) if match.group(2) else 1.0
        denominator = float(match.group(3)) if match.group(3) else 1.0
        return sign * numerator * math.pi / denominator
    return float(token)


def from_qasm(text: str) -> QuantumCircuit:
    """Parse OpenQASM 2.0 text produced by :func:`to_qasm` (and similar).

    Supports a single quantum register, the qelib1 gate names used by this
    repository, ``measure``, ``reset`` and ``barrier``.
    """
    circuit: Optional[QuantumCircuit] = None
    for raw_line in text.splitlines():
        line = raw_line.split("//")[0].strip()
        if not line or line.startswith(("OPENQASM", "include")):
            continue
        match = _QASM_STATEMENT.match(line)
        if match is None:
            raise ValueError(f"cannot parse OpenQASM statement: {raw_line!r}")
        name = match.group("name").lower()
        params_text = match.group("params")
        operands_text = match.group("operands")
        if name == "qreg":
            size = int(re.search(r"\[(\d+)\]", operands_text).group(1))
            circuit = QuantumCircuit(size, name="from_qasm")
            continue
        if name == "creg":
            continue
        if circuit is None:
            raise ValueError("OpenQASM text declares gates before any qreg")
        qubits = [int(q) for q in _QUBIT_REF.findall(operands_text)]
        if name == "barrier":
            circuit.barrier(*qubits)
            continue
        if name == "measure":
            clbits = [int(c) for c in _CLBIT_REF.findall(operands_text)]
            circuit.measure(qubits[0], clbits[0] if clbits else None)
            continue
        if name == "reset":
            circuit.append(Gate("reset"), (qubits[0],))
            continue
        if name == "id":
            name = "i"
        params: Tuple[float, ...] = ()
        if params_text:
            params = tuple(_parse_angle(p) for p in params_text.split(","))
        circuit.append(Gate(name, params), tuple(qubits))
    if circuit is None:
        raise ValueError("OpenQASM text contains no qreg declaration")
    return circuit
