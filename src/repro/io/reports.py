"""Experiment report generation (the machinery behind ``EXPERIMENTS.md``).

Every benchmark regenerates one of the paper's tables or figures; an
:class:`ExperimentRecord` captures what the paper reports, what this
reproduction measured and how the two compare, and :class:`ExperimentReport`
renders the collection as markdown.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence, Union


def markdown_table(header: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a GitHub-flavoured markdown table."""
    if not header:
        raise ValueError("a table needs at least one column")
    lines = ["| " + " | ".join(str(cell) for cell in header) + " |",
             "|" + "|".join(" --- " for _ in header) + "|"]
    for row in rows:
        if len(row) != len(header):
            raise ValueError("row length does not match the header")
        lines.append("| " + " | ".join(str(cell) for cell in row) + " |")
    return "\n".join(lines)


@dataclass
class ExperimentRecord:
    """One paper artifact (table or figure) and its reproduction status."""

    experiment_id: str               # e.g. "Fig. 12", "Table 1"
    title: str
    paper_claim: str
    measured: str
    bench_target: str
    workload: str = ""
    agreement: str = "shape reproduced"
    notes: str = ""
    table_header: Optional[Sequence[str]] = None
    table_rows: Optional[Sequence[Sequence[object]]] = None

    def to_markdown(self) -> str:
        lines = [f"### {self.experiment_id} — {self.title}", ""]
        lines.append(f"* **Bench target:** `{self.bench_target}`")
        if self.workload:
            lines.append(f"* **Workload:** {self.workload}")
        lines.append(f"* **Paper reports:** {self.paper_claim}")
        lines.append(f"* **This reproduction measures:** {self.measured}")
        lines.append(f"* **Agreement:** {self.agreement}")
        if self.notes:
            lines.append(f"* **Notes:** {self.notes}")
        if self.table_header and self.table_rows:
            lines.append("")
            lines.append(markdown_table(self.table_header, self.table_rows))
        lines.append("")
        return "\n".join(lines)


@dataclass
class ExperimentReport:
    """A collection of experiment records rendered into one markdown file."""

    title: str
    preamble: str = ""
    records: List[ExperimentRecord] = field(default_factory=list)

    def add(self, record: ExperimentRecord) -> "ExperimentReport":
        self.records.append(record)
        return self

    def summary_table(self) -> str:
        header = ["Experiment", "What the paper shows", "Status", "Bench target"]
        rows = [[record.experiment_id, record.title, record.agreement,
                 f"`{record.bench_target}`"] for record in self.records]
        return markdown_table(header, rows)

    def to_markdown(self) -> str:
        parts = [f"# {self.title}", ""]
        if self.preamble:
            parts.extend([self.preamble, ""])
        parts.extend(["## Summary", "", self.summary_table(), ""])
        parts.append("## Per-experiment detail")
        parts.append("")
        for record in self.records:
            parts.append(record.to_markdown())
        return "\n".join(parts)

    def write(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.write_text(self.to_markdown())
        return path
