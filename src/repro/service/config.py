"""Configuration knobs for the execution job server.

Everything the server needs to stand up — where to listen, where the SQLite
run registry lives, which directory backs the shared
:class:`~repro.execution.disk_cache.DiskExpectationCache`, queue bounds and
per-tenant quotas — is collected in one :class:`ServiceConfig` value object.
``ServiceConfig.from_env()`` reads the ``REPRO_SERVICE_*`` environment
variables so ``python -m repro.service serve`` works with zero flags in a
configured container.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Optional

#: Directory of the persistent expectation cache every tenant job rides.
#: The server opens ONE ``Executor(cache_dir=...)`` from this knob, so all
#: clients share a single warm L1/L2 result store.
CACHE_DIR_ENV = "REPRO_SERVICE_CACHE_DIR"

#: Path of the SQLite run registry (jobs + events tables).
DB_ENV = "REPRO_SERVICE_DB"

#: Unix-socket path of the newline-delimited-JSON front door.
SOCKET_ENV = "REPRO_SERVICE_SOCKET"

#: TCP port of the HTTP front door (unset/0 = HTTP disabled).
HTTP_PORT_ENV = "REPRO_SERVICE_HTTP_PORT"

#: Worker threads mapping jobs onto the executor.
WORKERS_ENV = "REPRO_SERVICE_WORKERS"

#: Default per-job attempt budget (1 = no retries, the historical behavior).
MAX_ATTEMPTS_ENV = "REPRO_SERVICE_MAX_ATTEMPTS"

#: Lease duration granted on claim and renewed by the heartbeat thread.
LEASE_SECONDS_ENV = "REPRO_SERVICE_LEASE_SECONDS"

#: Base of the exponential retry backoff applied between job attempts.
RETRY_BACKOFF_ENV = "REPRO_SERVICE_RETRY_BACKOFF"

#: Spool directory of the filesystem shard broker.  When set the server's
#: executor dispatches process shards through a
#: :class:`~repro.execution.broker.FilesystemBroker` on this directory, so
#: elastic ``repro-worker`` processes (possibly on other machines sharing
#: the filesystem) execute the shards instead of the local fork pool.
SPOOL_ENV = "REPRO_SERVICE_SPOOL"


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name, "").strip()
    return int(raw) if raw else default


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name, "").strip()
    return float(raw) if raw else default


@dataclass(frozen=True)
class ServiceConfig:
    """Immutable server configuration.

    ``socket_path`` enables the NDJSON front door, ``http_port`` the HTTP
    one (``host`` is only used with HTTP); at least one must be set when the
    server starts.  ``db_path`` defaults to ``:memory:`` — fine for tests,
    but a registry that should survive the process (crashed-client reattach
    across server restarts) needs a real file.  ``cache_dir`` (or the
    ``REPRO_SERVICE_CACHE_DIR`` environment variable) attaches the
    persistent disk cache tier under the shared executor.

    Backpressure: ``max_pending`` bounds the total queued-job count and
    ``max_pending_per_tenant`` / ``max_running_per_tenant`` are the
    per-tenant quotas; submissions beyond a bound are rejected with a
    429-style error instead of queueing unboundedly.

    Resilience: ``max_attempts`` is the default per-job attempt budget
    (clients may request more per submission, ``1`` keeps the historical
    fail-on-first-error behavior), ``lease_seconds`` is how long a claimed
    job's lease lasts between heartbeats before a restarted/peer server may
    reclaim it, and ``retry_backoff`` seeds the exponential delay between
    attempts.

    Distribution: ``spool`` (or ``REPRO_SERVICE_SPOOL``) points the shared
    executor's shard broker at a filesystem spool directory, handing
    process shards to elastic ``repro-worker`` processes instead of the
    local fork pool.  Values are bitwise identical either way.
    """

    socket_path: Optional[str] = None
    host: str = "127.0.0.1"
    http_port: Optional[int] = None
    db_path: str = ":memory:"
    cache_dir: Optional[str] = None
    workers: int = 2
    max_pending: int = 256
    max_pending_per_tenant: int = 64
    max_running_per_tenant: int = 2
    default_tenant: str = "default"
    max_attempts: int = 1
    lease_seconds: float = 15.0
    retry_backoff: float = 0.2
    spool: Optional[str] = None

    @classmethod
    def from_env(cls, **overrides) -> "ServiceConfig":
        """A config from the ``REPRO_SERVICE_*`` environment, with keyword
        overrides applied on top."""
        http_port = _env_int(HTTP_PORT_ENV, 0)
        config = cls(
            socket_path=os.environ.get(SOCKET_ENV) or None,
            http_port=http_port or None,
            db_path=os.environ.get(DB_ENV) or ":memory:",
            cache_dir=os.environ.get(CACHE_DIR_ENV) or None,
            workers=_env_int(WORKERS_ENV, 2),
            max_attempts=_env_int(MAX_ATTEMPTS_ENV, 1),
            lease_seconds=_env_float(LEASE_SECONDS_ENV, 15.0),
            retry_backoff=_env_float(RETRY_BACKOFF_ENV, 0.2),
            spool=os.environ.get(SPOOL_ENV) or None,
        )
        return replace(config, **overrides) if overrides else config
