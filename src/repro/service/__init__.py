"""repro.service — a long-running multi-tenant execution job server.

The service layer turns the in-process execution engine into shared
infrastructure: an asyncio server (:mod:`repro.service.server`) accepts
pickle-free JSON jobs over a unix socket and HTTP, schedules them through
per-tenant priority queues with quotas and backpressure
(:mod:`repro.service.queue`), runs them on worker threads against one
shared :class:`~repro.execution.Executor`
(:mod:`repro.service.runner`), records every state change and streamed
partial result in a SQLite run registry
(:mod:`repro.service.registry`), and coalesces duplicate in-flight jobs
across clients by engine content fingerprints
(:mod:`repro.service.jobs`).

Quickstart (in-thread server, blocking client)::

    from repro.service import (ServiceClient, ServiceConfig,
                               start_in_thread)

    handle = start_in_thread(ServiceConfig(socket_path="/tmp/repro.sock"))
    with ServiceClient(handle.socket_path) as client:
        job_id = client.submit_qec_memory(
            distance=3, rounds=2, error_rate=0.01, shots=512, seed=7)
        print(client.fetch(job_id)["logical_error_rate"])
    handle.stop()

Or from a shell: ``python -m repro.service serve --socket /tmp/repro.sock``.
"""

from .client import (EventCallback, JobFailedError, ServiceClient,
                     ServiceError)
from .config import ServiceConfig
from .jobs import prepare_job
from .protocol import (JOB_KINDS, JOB_STATES, PROTOCOL_VERSION,
                       TERMINAL_STATES, ProtocolError, decode_line,
                       encode_line, expectation_payload, qec_memory_payload,
                       qec_rare_event_payload, sweep_payload)
from .queue import QueueFullError, QuotaExceededError, TenantQueues
from .registry import RegistryError, RunRegistry
from .runner import JobRunner, UnknownJobError
from .server import ServiceHandle, ServiceServer, start_in_thread

__all__ = [
    "EventCallback",
    "JobFailedError",
    "ServiceClient",
    "ServiceError",
    "ServiceConfig",
    "prepare_job",
    "JOB_KINDS",
    "JOB_STATES",
    "PROTOCOL_VERSION",
    "TERMINAL_STATES",
    "ProtocolError",
    "decode_line",
    "encode_line",
    "expectation_payload",
    "qec_memory_payload",
    "qec_rare_event_payload",
    "sweep_payload",
    "QueueFullError",
    "QuotaExceededError",
    "TenantQueues",
    "RegistryError",
    "RunRegistry",
    "JobRunner",
    "UnknownJobError",
    "ServiceHandle",
    "ServiceServer",
    "start_in_thread",
]
