"""Decoding wire payloads into runnable, dedup-keyed jobs.

:func:`prepare_job` turns a validated submission payload into a
:class:`PreparedJob`: the reconstructed in-memory objects (circuits,
observables, noise models, decoding graphs, decoders), a **content job key**
and a ``run`` callable the worker threads execute against the shared
executor.

The job key is what coalesces duplicate in-flight jobs *across clients*: it
is derived from the engine's own content fingerprints — circuit/template
:meth:`~repro.circuits.circuit.QuantumCircuit.fingerprint`,
:func:`~repro.execution.task.observable_fingerprint`,
:meth:`~repro.simulators.noise.NoiseModel.fingerprint`, decoding-graph
fingerprints and decoder cache tokens — the same identities the expectation
cache keys on.  Two clients independently building the same workload
therefore hash to the same key, and the runner executes it once.  Jobs whose
outcome is not a pure function of their payload (an unseeded QEC run) carry
``key=None`` and are never coalesced.

Runs are **chunked** so partial results stream out while the job executes:
per-circuit energies for expectation jobs, per-point energies for sweeps,
and cumulative failure counts with Wilson intervals for QEC memory jobs.
Chunking never changes values — every chunk rides the exact same executor
entry points an in-process caller would use, and the QEC path iterates the
same seeded sampling blocks in the same order
(:func:`repro.qec.sampling.stream_memory_sampling`).
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from ..execution.faults import consult as _consult_faults
from ..execution.faults import execute_directive as _execute_directive
from .protocol import ProtocolError

#: Default circuits / sweep points evaluated per streamed partial.
DEFAULT_CHUNK = 16

#: Default QEC sampling blocks per streamed partial.
DEFAULT_CHUNK_BLOCKS = 8


class JobCancelled(Exception):
    """Raised inside ``run`` when the job's cancel flag is set."""


@dataclass
class JobContext:
    """What a running job sees: the shared executor, an ``emit`` callback
    for partial-result events, and the cancellation flag."""

    executor: Any
    emit: Callable[[str, Dict[str, Any]], None]
    cancelled: threading.Event

    def checkpoint(self) -> None:
        """Raise :class:`JobCancelled` if the job was cancelled; also the
        ``"job"`` fault-injection site, so chaos tests can raise transient
        errors or stall a job at a chunk boundary deterministically."""
        if self.cancelled.is_set():
            raise JobCancelled()
        directive = _consult_faults("job")
        if directive is not None:
            _execute_directive(directive)


@dataclass
class PreparedJob:
    """A decoded, validated, ready-to-run job."""

    kind: str
    key: Optional[str]
    units: int
    run: Callable[[JobContext], Dict[str, Any]]


def _digest(*parts) -> str:
    hasher = hashlib.blake2b(digest_size=16)
    for part in parts:
        hasher.update(repr(part).encode("utf-8"))
        hasher.update(b"\x00")
    return hasher.hexdigest()


def _decode_noise(payload: Dict[str, Any]):
    from ..io.serialization import noise_model_from_dict
    entry = payload.get("noise_model")
    return noise_model_from_dict(entry) if entry is not None else None


def _noise_fingerprint(noise_model) -> Optional[str]:
    if noise_model is None or not noise_model.has_noise():
        return None
    return noise_model.fingerprint()


def _decode_policy(payload: Dict[str, Any]):
    """An optional :class:`~repro.execution.policy.ExecutionPolicy` from
    the submission's ``policy`` key.

    The policy steers *how* the job fans out (mode, workers, broker,
    retries) and is deliberately **not** part of the job key: the
    determinism contract makes results bitwise independent of it, so two
    submissions differing only in policy are the same job.
    """
    from ..execution.errors import ExecutionError
    from ..execution.policy import ExecutionPolicy
    entry = payload.get("policy")
    if entry is None:
        return None
    try:
        return ExecutionPolicy.from_payload(entry)
    except (ExecutionError, KeyError, TypeError, ValueError) as error:
        raise ProtocolError(f"malformed policy: {error}") from None


# ---------------------------------------------------------------------------
# expectation
# ---------------------------------------------------------------------------


def _prepare_expectation(payload: Dict[str, Any]) -> PreparedJob:
    from ..io.serialization import circuit_from_dict, pauli_sum_from_dict
    circuits = [circuit_from_dict(entry) for entry in payload["circuits"]]
    if not circuits:
        raise ProtocolError("an expectation job needs at least one circuit")
    observable = pauli_sum_from_dict(payload["observable"])
    noise_model = _decode_noise(payload)
    backend = payload.get("backend", "auto")
    trajectories = payload.get("trajectories")
    include_idle = bool(payload.get("include_idle", True))
    chunk = int(payload.get("chunk", DEFAULT_CHUNK))
    if chunk < 1:
        raise ProtocolError("chunk must be a positive integer")
    policy = _decode_policy(payload)

    # chunk is part of the key: the engine's batched evaluation is
    # ulp-sensitive to batch shape, so differently-chunked submissions are
    # different jobs.  policy is NOT: fan-out cannot change values.
    from ..execution.task import observable_fingerprint
    key = _digest("expectation",
                  tuple(circuit.fingerprint() for circuit in circuits),
                  observable_fingerprint(observable),
                  _noise_fingerprint(noise_model), backend, trajectories,
                  include_idle, chunk)

    def run(ctx: JobContext) -> Dict[str, Any]:
        energies = []
        for start in range(0, len(circuits), chunk):
            ctx.checkpoint()
            values = ctx.executor.evaluate_observable(
                circuits[start:start + chunk], observable,
                noise_model=noise_model, backend=backend,
                trajectories=trajectories, include_idle=include_idle,
                policy=policy)
            energies.extend(values)
            ctx.emit("partial", {"start": start, "values": values,
                                 "done": len(energies),
                                 "total": len(circuits)})
        return {"energies": energies}

    return PreparedJob(kind="expectation", key=key, units=len(circuits),
                       run=run)


# ---------------------------------------------------------------------------
# sweep
# ---------------------------------------------------------------------------


def _prepare_sweep(payload: Dict[str, Any]) -> PreparedJob:
    from ..io.serialization import pauli_sum_from_dict, template_from_dict
    template = template_from_dict(payload["template"])
    parameter_sets = [[float(v) for v in values]
                      for values in payload["parameter_sets"]]
    if not parameter_sets:
        raise ProtocolError("a sweep job needs at least one parameter set")
    num_parameters = len(template.ordered_parameters())
    for values in parameter_sets:
        if len(values) != num_parameters:
            raise ProtocolError(
                f"template has {num_parameters} free parameters, got a "
                f"sweep point with {len(values)}")
    observable = pauli_sum_from_dict(payload["observable"])
    noise_model = _decode_noise(payload)
    backend = payload.get("backend", "auto")
    trajectories = payload.get("trajectories")
    include_idle = bool(payload.get("include_idle", True))
    chunk = int(payload.get("chunk", DEFAULT_CHUNK))
    if chunk < 1:
        raise ProtocolError("chunk must be a positive integer")
    policy = _decode_policy(payload)

    # chunk is part of the key: batched sweep evaluation is ulp-sensitive
    # to batch shape, so differently-chunked submissions are different
    # jobs.  policy is NOT: fan-out cannot change values.
    from ..execution.task import observable_fingerprint
    key = _digest("sweep", template.fingerprint(),
                  tuple(tuple(values) for values in parameter_sets),
                  observable_fingerprint(observable),
                  _noise_fingerprint(noise_model), backend, trajectories,
                  include_idle, chunk)

    def run(ctx: JobContext) -> Dict[str, Any]:
        energies = []
        for start in range(0, len(parameter_sets), chunk):
            ctx.checkpoint()
            values = ctx.executor.evaluate_sweep(
                template, parameter_sets[start:start + chunk], observable,
                noise_model=noise_model, backend=backend,
                trajectories=trajectories, include_idle=include_idle,
                policy=policy)
            energies.extend(values)
            ctx.emit("partial", {"start": start, "values": values,
                                 "done": len(energies),
                                 "total": len(parameter_sets)})
        return {"energies": energies}

    return PreparedJob(kind="sweep", key=key, units=len(parameter_sets),
                       run=run)


# ---------------------------------------------------------------------------
# qec_memory
# ---------------------------------------------------------------------------

_DECODER_BUILDERS = {
    "mwpm": lambda graph: _import_qec().MWPMDecoder(graph),
    "union_find": lambda graph: _import_qec().UnionFindDecoder(graph),
    "lookup": lambda graph: _import_qec().LookupDecoder(graph),
}


def _import_qec():
    from .. import qec
    return qec


def _prepare_qec_memory(payload: Dict[str, Any]) -> PreparedJob:
    from ..qec.decoders.base import decoder_cache_token
    from ..qec.sampling import (SHOT_BLOCK, as_seed_sequence,
                                stream_memory_sampling, wilson_interval)

    graph, decoder = _decode_qec_graph_and_decoder(payload)
    shots = int(payload["shots"])
    if shots < 1:
        raise ProtocolError("shots must be a positive integer")
    seed = payload.get("seed")
    chunk_blocks = int(payload.get("chunk_blocks", DEFAULT_CHUNK_BLOCKS))
    if chunk_blocks < 1:
        raise ProtocolError("chunk_blocks must be a positive integer")

    # Seeded runs key on the same content identities the engine caches on;
    # an unseeded run is stochastic — no key, never coalesced.
    key = None
    if seed is not None:
        _, seed_key = as_seed_sequence(int(seed))
        token = decoder_cache_token(decoder)
        if token is not None:
            key = _digest("qec-memory", graph.fingerprint(), token, shots,
                          SHOT_BLOCK, seed_key)

    def run(ctx: JobContext) -> Dict[str, Any]:
        final = None
        for partial in stream_memory_sampling(
                graph, decoder, shots,
                seed=int(seed) if seed is not None else None,
                executor=ctx.executor, chunk_blocks=chunk_blocks):
            ctx.checkpoint()
            low, high = wilson_interval(partial.failures, partial.shots)
            ctx.emit("partial", {
                "shots": partial.shots,
                "failures": partial.failures,
                "logical_error_rate": partial.logical_error_rate,
                "wilson": [low, high],
                "total": shots,
            })
            final = partial
        low, high = wilson_interval(final.failures, final.shots)
        return {
            "shots": final.shots,
            "failures": final.failures,
            "total_defects": final.total_defects,
            "logical_error_rate": final.logical_error_rate,
            "wilson": [low, high],
            "from_cache": final.from_cache,
        }

    return PreparedJob(kind="qec_memory", key=key,
                       units=-(-shots // (SHOT_BLOCK * chunk_blocks)),
                       run=run)


# ---------------------------------------------------------------------------
# qec_rare_event
# ---------------------------------------------------------------------------


def _decode_qec_graph_and_decoder(payload: Dict[str, Any]):
    """The (graph, decoder) pair shared by the QEC job kinds."""
    from ..qec import repetition_code_graph, rotated_surface_code_graph
    code = payload.get("code", "repetition")
    distance = int(payload["distance"])
    rounds = int(payload["rounds"])
    error_rate = float(payload["error_rate"])
    measurement_error_rate = payload.get("measurement_error_rate")
    if measurement_error_rate is not None:
        measurement_error_rate = float(measurement_error_rate)
    if code == "repetition":
        graph = repetition_code_graph(distance, rounds, error_rate,
                                      measurement_error_rate)
    elif code == "surface":
        graph = rotated_surface_code_graph(distance, rounds, error_rate,
                                           measurement_error_rate)
    else:
        raise ProtocolError(f"unknown code family {code!r} "
                            f"(expected 'repetition' or 'surface')")
    builder = _DECODER_BUILDERS.get(payload.get("decoder", "mwpm"))
    if builder is None:
        raise ProtocolError(
            f"unknown decoder {payload.get('decoder')!r} (expected one of "
            f"{sorted(_DECODER_BUILDERS)})")
    return graph, builder(graph)


def _prepare_qec_rare_event(payload: Dict[str, Any]) -> PreparedJob:
    from ..qec.decoders.base import decoder_cache_token
    from ..qec.rare_event import stream_rare_event_sampling
    from ..qec.sampling import SHOT_BLOCK, as_seed_sequence

    graph, decoder = _decode_qec_graph_and_decoder(payload)
    shots = int(payload["shots"])
    if shots < 1:
        raise ProtocolError("shots must be a positive integer")
    seed = payload.get("seed")
    chunk_blocks = int(payload.get("chunk_blocks", DEFAULT_CHUNK_BLOCKS))
    if chunk_blocks < 1:
        raise ProtocolError("chunk_blocks must be a positive integer")
    method = payload.get("method", "stratified")
    if method == "rare-event":
        method = "stratified"
    if method not in ("stratified", "importance"):
        raise ProtocolError(f"unknown rare-event method {method!r} "
                            f"(expected 'stratified' or 'importance')")
    options = {}
    if payload.get("tilt") is not None:
        options["tilt"] = float(payload["tilt"])
    if payload.get("min_fault_weight") is not None:
        options["min_fault_weight"] = int(payload["min_fault_weight"])
    if payload.get("max_weight") is not None:
        options["max_weight"] = int(payload["max_weight"])
    if payload.get("pilot_shots") is not None:
        options["pilot_shots"] = int(payload["pilot_shots"])
    if payload.get("tail_rtol") is not None:
        options["tail_rtol"] = float(payload["tail_rtol"])

    # Seeded + token-pinned runs coalesce across clients on the same
    # content identities the estimator caches on.  The estimator knobs are
    # part of the key (they change the sampling distribution) and so is
    # chunk_blocks: importance-sampling partials fold per chunk, so
    # differently-chunked submissions may differ in the last ulp.
    key = None
    if seed is not None:
        _, seed_key = as_seed_sequence(int(seed))
        token = decoder_cache_token(decoder)
        if token is not None:
            key = _digest("qec-rare-event", graph.fingerprint(), token,
                          method, tuple(sorted(options.items())), shots,
                          SHOT_BLOCK, seed_key, chunk_blocks)

    def run(ctx: JobContext) -> Dict[str, Any]:
        final = None
        for partial in stream_rare_event_sampling(
                graph, decoder, shots,
                method=method,
                seed=int(seed) if seed is not None else None,
                executor=ctx.executor, chunk_blocks=chunk_blocks, **options):
            ctx.checkpoint()
            low, high = partial.wilson_interval()
            ctx.emit("partial", {
                "shots": partial.shots,
                "estimate": partial.estimate,
                "variance": partial.variance,
                "ess": partial.ess,
                "raw_failures": partial.raw_failures,
                "wilson": [low, high],
                "strata": [{"weight": s.weight,
                            "probability": s.probability,
                            "shots": s.shots,
                            "failures": s.failures}
                           for s in partial.strata],
                "total": shots,
            })
            final = partial
        low, high = final.wilson_interval()
        return {
            "method": final.method,
            "shots": final.shots,
            "estimate": final.estimate,
            "logical_error_rate": final.estimate,
            "variance": final.variance,
            "ess": final.ess,
            "raw_failures": final.raw_failures,
            "total_defects": final.total_defects,
            "wilson": [low, high],
            "tail_probability": final.tail_probability,
            "strata": [{"weight": s.weight, "probability": s.probability,
                        "shots": s.shots, "failures": s.failures}
                       for s in final.strata],
            "from_cache": final.from_cache,
        }

    return PreparedJob(kind="qec_rare_event", key=key,
                       units=-(-shots // (SHOT_BLOCK * chunk_blocks)),
                       run=run)


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------

_PREPARERS = {
    "expectation": _prepare_expectation,
    "sweep": _prepare_sweep,
    "qec_memory": _prepare_qec_memory,
    "qec_rare_event": _prepare_qec_rare_event,
}


def prepare_job(kind: str, payload: Dict[str, Any]) -> PreparedJob:
    """Decode and validate a submission payload into a :class:`PreparedJob`.

    Raises :class:`~repro.service.protocol.ProtocolError` on any malformed
    payload — validation happens at submit time, so a bad job is rejected on
    the submitting connection instead of failing later in a worker.
    """
    preparer = _PREPARERS.get(kind)
    if preparer is None:
        raise ProtocolError(f"unknown job kind {kind!r}")
    try:
        return preparer(payload)
    except ProtocolError:
        raise
    except (KeyError, TypeError, ValueError) as error:
        raise ProtocolError(f"malformed {kind} payload: {error}") from None
