"""Per-tenant priority scheduling with quotas and backpressure.

The scheduler sits between the front door and the worker threads.  Each
tenant owns a priority heap; workers pull the next job with
:meth:`TenantQueues.next_job`, which picks among *eligible* tenants (those
under their running-job quota) the one whose head job has the highest
priority — ties broken toward the tenant with the fewest running jobs, then
global submission order.  That gives strict priority within a tenant, and
approximate fairness plus quota isolation between tenants: one tenant
flooding the queue can neither starve another tenant's quota nor occupy
every worker.

Backpressure is a *bounded* queue: when the global queue or a tenant's
pending quota is full, :meth:`TenantQueues.submit` raises
:class:`QueueFullError` / :class:`QuotaExceededError` — surfaced to clients
as a 429-style protocol error — instead of buffering unboundedly.  Callers
are expected to retry with backoff; jobs already accepted are never dropped.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from typing import Dict, List, Optional, Tuple


class QueueFullError(Exception):
    """The server-wide pending-job bound is reached (retry later)."""


class QuotaExceededError(Exception):
    """The submitting tenant's pending-job quota is reached (retry later)."""


class TenantQueues:
    """Bounded, quota-aware, priority job queues (thread-safe).

    ``max_pending`` bounds the total queued jobs across tenants;
    ``max_pending_per_tenant`` bounds one tenant's queued jobs;
    ``max_running_per_tenant`` caps how many of a tenant's jobs may hold
    worker threads simultaneously (its queued jobs simply wait while other
    tenants run).  Higher ``priority`` values run first within a tenant.
    """

    def __init__(self, max_pending: int = 256,
                 max_pending_per_tenant: int = 64,
                 max_running_per_tenant: int = 2):
        self.max_pending = int(max_pending)
        self.max_pending_per_tenant = int(max_pending_per_tenant)
        self.max_running_per_tenant = int(max_running_per_tenant)
        self._heaps: Dict[str, List[Tuple[int, int, str]]] = {}
        self._running: Dict[str, int] = {}
        self._pending_total = 0
        self._sequence = itertools.count()
        self._condition = threading.Condition()
        self._closed = False

    # -- producer side ------------------------------------------------------
    def submit(self, tenant: str, priority: int, job_id: str) -> int:
        """Enqueue a job; returns its 0-based position across all queues.

        Raises :class:`QueueFullError` / :class:`QuotaExceededError` when a
        bound is hit — the caller maps these to 429-style rejections.
        """
        with self._condition:
            if self._closed:
                raise QueueFullError("the scheduler is shutting down")
            if self._pending_total >= self.max_pending:
                raise QueueFullError(
                    f"queue full ({self.max_pending} jobs pending)")
            heap = self._heaps.setdefault(tenant, [])
            if len(heap) >= self.max_pending_per_tenant:
                raise QuotaExceededError(
                    f"tenant {tenant!r} already has {len(heap)} jobs "
                    f"pending (quota {self.max_pending_per_tenant})")
            heapq.heappush(heap, (-int(priority), next(self._sequence),
                                  job_id))
            self._pending_total += 1
            position = self._pending_total - 1
            self._condition.notify()
            return position

    # -- worker side --------------------------------------------------------
    def next_job(self, timeout: Optional[float] = None
                 ) -> Optional[Tuple[str, str]]:
        """Block until a job from an under-quota tenant is available.

        Returns ``(tenant, job_id)`` and counts the tenant as running one
        more job; the worker must pair every successful pop with
        :meth:`task_done`.  Returns None on timeout or when the scheduler is
        closed and drained.
        """
        with self._condition:
            while True:
                choice = self._pick()
                if choice is not None:
                    tenant, job_id = choice
                    self._running[tenant] = self._running.get(tenant, 0) + 1
                    self._pending_total -= 1
                    return tenant, job_id
                if self._closed:
                    return None
                if not self._condition.wait(timeout=timeout):
                    return None

    def task_done(self, tenant: str) -> None:
        """Release the running-quota slot a ``next_job`` pop acquired."""
        with self._condition:
            count = self._running.get(tenant, 0) - 1
            if count > 0:
                self._running[tenant] = count
            else:
                self._running.pop(tenant, None)
            # A freed quota slot may make a blocked tenant eligible.
            self._condition.notify_all()

    def remove(self, tenant: str, job_id: str) -> bool:
        """Drop a queued job (cancellation); False if it was not queued."""
        with self._condition:
            heap = self._heaps.get(tenant, [])
            for index, entry in enumerate(heap):
                if entry[2] == job_id:
                    heap[index] = heap[-1]
                    heap.pop()
                    heapq.heapify(heap)
                    self._pending_total -= 1
                    return True
            return False

    def drain(self) -> List[Tuple[str, str]]:
        """Close the queue and return every still-pending ``(tenant, id)``."""
        with self._condition:
            self._closed = True
            drained = []
            for tenant, heap in self._heaps.items():
                drained.extend((tenant, job_id) for _, _, job_id in heap)
                heap.clear()
            self._pending_total = 0
            self._condition.notify_all()
            return drained

    def close(self) -> None:
        """Close the queue: pending jobs stay poppable, waiters wake."""
        with self._condition:
            self._closed = True
            self._condition.notify_all()

    # -- introspection ------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict[str, int]]:
        """Pending/running counts per tenant (for the stats endpoint)."""
        with self._condition:
            tenants = set(self._heaps) | set(self._running)
            return {tenant: {
                "pending": len(self._heaps.get(tenant, [])),
                "running": self._running.get(tenant, 0),
            } for tenant in sorted(tenants)}

    @property
    def pending(self) -> int:
        with self._condition:
            return self._pending_total

    # -- internals ----------------------------------------------------------
    def _pick(self) -> Optional[Tuple[str, str]]:
        """The best ``(tenant, job_id)`` among under-quota tenants, or None.

        Preference order: highest head priority, then fewest running jobs
        (fairness), then earliest submission.
        """
        best = None
        best_rank = None
        for tenant, heap in self._heaps.items():
            if not heap:
                continue
            running = self._running.get(tenant, 0)
            if running >= self.max_running_per_tenant:
                continue
            neg_priority, sequence, _ = heap[0]
            rank = (neg_priority, running, sequence)
            if best_rank is None or rank < best_rank:
                best_rank = rank
                best = tenant
        if best is None:
            return None
        _, _, job_id = heapq.heappop(self._heaps[best])
        return best, job_id
