"""The SQLite run registry: durable job rows and append-only event logs.

The registry — not any client connection — owns a job's lifecycle.  Every
submission becomes a row in ``jobs``; every state change and every streamed
partial result becomes a row in ``events`` with a per-job monotonically
increasing ``seq``.  A client that dies mid-stream loses nothing: it (or any
other client) reattaches by job id, replays the persisted events after the
last ``seq`` it saw, and reads the final result straight from the row.

Design points:

* **WAL mode** — writers (worker threads recording partials) never block the
  readers serving status/attach requests, and a crash can only lose the tail
  of the log, never corrupt committed rows.
* **Atomic state transitions** — ``transition()`` is one guarded
  ``UPDATE … WHERE state IN (…)``; the returned row count decides who won a
  race (e.g. a cancel racing the worker that just claimed the job), so
  illegal jumps like ``done → running`` are structurally impossible.
* **JSON columns** — payloads, results and event data are stored as JSON
  text, mirroring the pickle-free wire protocol; the registry file is
  inspectable with the ``sqlite3`` CLI and can never execute code on read.
* **Leases & attempts** — :meth:`~RunRegistry.claim` takes a queued job in
  one atomic UPDATE that spends an attempt and grants a time-bounded lease
  the owner must :meth:`~RunRegistry.heartbeat`; a restarted or peer server
  finds crashed work via :meth:`~RunRegistry.expired_running` and either
  calls :meth:`~RunRegistry.requeue` (attempts < max_attempts) or
  dead-letters it as ``failed``.  Attempt counts live on the row, so retry
  budgets survive server restarts.
* **Cache accounting** — per-job expectation-cache hit/miss deltas
  (in-memory L1 + persistent L2) recorded by the runner land on the job row
  and in a ``cache`` event, making the shared
  :class:`~repro.execution.disk_cache.DiskExpectationCache`'s contribution
  to each tenant's job visible.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from typing import Any, Dict, List, Optional, Sequence

from .protocol import JOB_STATES, TERMINAL_STATES

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    id               TEXT PRIMARY KEY,
    tenant           TEXT NOT NULL,
    kind             TEXT NOT NULL,
    job_key          TEXT,
    priority         INTEGER NOT NULL DEFAULT 0,
    state            TEXT NOT NULL,
    payload          TEXT NOT NULL,
    result           TEXT,
    error            TEXT,
    created_at       REAL NOT NULL,
    started_at       REAL,
    finished_at      REAL,
    cache_hits       INTEGER NOT NULL DEFAULT 0,
    cache_misses     INTEGER NOT NULL DEFAULT 0,
    attempts         INTEGER NOT NULL DEFAULT 0,
    max_attempts     INTEGER NOT NULL DEFAULT 1,
    deadline_seconds REAL,
    next_eligible_at REAL,
    lease_owner      TEXT,
    lease_expires_at REAL
);
CREATE INDEX IF NOT EXISTS jobs_by_key    ON jobs (job_key, state);
CREATE INDEX IF NOT EXISTS jobs_by_tenant ON jobs (tenant, created_at);
CREATE TABLE IF NOT EXISTS events (
    job_id      TEXT NOT NULL,
    seq         INTEGER NOT NULL,
    created_at  REAL NOT NULL,
    kind        TEXT NOT NULL,
    data        TEXT NOT NULL,
    PRIMARY KEY (job_id, seq)
);
"""

_JOB_COLUMNS = ("id", "tenant", "kind", "job_key", "priority", "state",
                "payload", "result", "error", "created_at", "started_at",
                "finished_at", "cache_hits", "cache_misses", "attempts",
                "max_attempts", "deadline_seconds", "next_eligible_at",
                "lease_owner", "lease_expires_at")

#: Columns added after the PR-6 schema, with the DDL used to backfill a
#: registry file created by an older server (ALTER TABLE migration).
_MIGRATIONS = (
    ("attempts", "INTEGER NOT NULL DEFAULT 0"),
    ("max_attempts", "INTEGER NOT NULL DEFAULT 1"),
    ("deadline_seconds", "REAL"),
    ("next_eligible_at", "REAL"),
    ("lease_owner", "TEXT"),
    ("lease_expires_at", "REAL"),
)


class RegistryError(RuntimeError):
    """An illegal registry operation (unknown job, bad state)."""


class RunRegistry:
    """Thread-safe job/event store over one SQLite database.

    One connection is shared across the server's threads under a lock —
    SQLite serializes writers anyway, and a single WAL connection keeps the
    registry free of cross-connection visibility windows.  ``path`` may be
    ``":memory:"`` (tests) or a filesystem path (production, reattach across
    server restarts).
    """

    def __init__(self, path: str = ":memory:"):
        self.path = str(path)
        self._lock = threading.Lock()
        self._connection = sqlite3.connect(self.path,
                                           check_same_thread=False)
        self._connection.row_factory = sqlite3.Row
        with self._lock:
            if self.path != ":memory:":
                self._connection.execute("PRAGMA journal_mode=WAL")
            self._connection.execute("PRAGMA busy_timeout=5000")
            self._connection.executescript(_SCHEMA)
            present = {row["name"] for row in self._connection.execute(
                "PRAGMA table_info(jobs)")}
            for column, ddl in _MIGRATIONS:
                if column not in present:
                    self._connection.execute(
                        f"ALTER TABLE jobs ADD COLUMN {column} {ddl}")
            self._connection.commit()

    # -- jobs ---------------------------------------------------------------
    def create_job(self, job_id: str, tenant: str, kind: str,
                   job_key: Optional[str], priority: int,
                   payload: Dict[str, Any], *, max_attempts: int = 1,
                   deadline_seconds: Optional[float] = None) -> None:
        with self._lock:
            self._connection.execute(
                "INSERT INTO jobs (id, tenant, kind, job_key, priority, "
                "state, payload, created_at, max_attempts, deadline_seconds) "
                "VALUES (?,?,?,?,?,?,?,?,?,?)",
                (job_id, tenant, kind, job_key, int(priority), "queued",
                 json.dumps(payload, sort_keys=True), time.time(),
                 max(1, int(max_attempts)),
                 None if deadline_seconds is None else
                 float(deadline_seconds)))
            self._connection.commit()

    def get_job(self, job_id: str) -> Optional[Dict[str, Any]]:
        with self._lock:
            row = self._connection.execute(
                "SELECT * FROM jobs WHERE id = ?", (job_id,)).fetchone()
        return self._job_dict(row) if row is not None else None

    def list_jobs(self, tenant: Optional[str] = None,
                  limit: int = 50) -> List[Dict[str, Any]]:
        query = "SELECT * FROM jobs"
        args: tuple = ()
        if tenant is not None:
            query += " WHERE tenant = ?"
            args = (tenant,)
        query += " ORDER BY created_at DESC LIMIT ?"
        with self._lock:
            rows = self._connection.execute(query,
                                            args + (int(limit),)).fetchall()
        return [self._job_dict(row) for row in rows]

    def find_inflight(self, job_key: str) -> Optional[str]:
        """The id of a queued/running job with this content key, if any."""
        with self._lock:
            row = self._connection.execute(
                "SELECT id FROM jobs WHERE job_key = ? AND state IN "
                "('queued', 'running') ORDER BY created_at LIMIT 1",
                (job_key,)).fetchone()
        return row["id"] if row is not None else None

    def transition(self, job_id: str, from_states: Sequence[str],
                   to_state: str) -> bool:
        """Atomically move a job between states; False if it was not in any
        of ``from_states`` (somebody else won the race)."""
        if to_state not in JOB_STATES:
            raise RegistryError(f"unknown state {to_state!r}")
        # Terminal states are absorbing: a finished row never moves again,
        # regardless of what a (buggy) caller passes as from_states.
        from_states = [state for state in from_states
                       if state not in TERMINAL_STATES]
        if not from_states:
            return False
        stamp = ", started_at = ?" if to_state == "running" else \
            (", finished_at = ?" if to_state in TERMINAL_STATES else "")
        placeholders = ",".join("?" for _ in from_states)
        args: list = [to_state]
        if stamp:
            args.append(time.time())
        args.append(job_id)
        args.extend(from_states)
        with self._lock:
            cursor = self._connection.execute(
                f"UPDATE jobs SET state = ?{stamp} WHERE id = ? AND state "
                f"IN ({placeholders})", args)
            self._connection.commit()
        return cursor.rowcount > 0

    # -- leases & retries ---------------------------------------------------
    def claim(self, job_id: str, lease_owner: str,
              lease_seconds: float) -> Optional[int]:
        """Atomically claim a queued job for one execution attempt.

        Moves the row ``queued -> running``, increments ``attempts``, stamps
        ``started_at`` and grants a lease to ``lease_owner``.  Returns the new
        attempt number (1-based) on success, ``None`` if the job was not
        queued (cancelled, already claimed, …).
        """
        now = time.time()
        with self._lock:
            cursor = self._connection.execute(
                "UPDATE jobs SET state = 'running', attempts = attempts + 1, "
                "started_at = ?, lease_owner = ?, lease_expires_at = ?, "
                "next_eligible_at = NULL WHERE id = ? AND state = 'queued'",
                (now, str(lease_owner), now + float(lease_seconds), job_id))
            if cursor.rowcount == 0:
                self._connection.commit()
                return None
            row = self._connection.execute(
                "SELECT attempts FROM jobs WHERE id = ?", (job_id,)).fetchone()
            self._connection.commit()
        return int(row["attempts"]) if row is not None else None

    def heartbeat(self, job_id: str, lease_owner: str,
                  lease_seconds: float) -> bool:
        """Extend the lease on a running job this owner holds."""
        with self._lock:
            cursor = self._connection.execute(
                "UPDATE jobs SET lease_expires_at = ? WHERE id = ? AND "
                "state = 'running' AND lease_owner = ?",
                (time.time() + float(lease_seconds), job_id,
                 str(lease_owner)))
            self._connection.commit()
        return cursor.rowcount > 0

    def requeue(self, job_id: str, next_eligible_at: Optional[float] = None,
                from_states: Sequence[str] = ("running",)) -> bool:
        """Return a non-terminal job to ``queued``, clearing its lease.

        ``next_eligible_at`` (absolute time) delays redispatch — the retry
        backoff.  Attempt count is preserved: only :meth:`claim` spends
        attempts, so requeueing a job that never ran is free.
        """
        from_states = [state for state in from_states
                       if state not in TERMINAL_STATES]
        if not from_states:
            return False
        placeholders = ",".join("?" for _ in from_states)
        with self._lock:
            cursor = self._connection.execute(
                f"UPDATE jobs SET state = 'queued', lease_owner = NULL, "
                f"lease_expires_at = NULL, next_eligible_at = ? "
                f"WHERE id = ? AND state IN ({placeholders})",
                [next_eligible_at, job_id] + list(from_states))
            self._connection.commit()
        return cursor.rowcount > 0

    def expired_running(self, now: Optional[float] = None
                        ) -> List[Dict[str, Any]]:
        """Running jobs whose lease is missing or expired at ``now``."""
        if now is None:
            now = time.time()
        with self._lock:
            rows = self._connection.execute(
                "SELECT * FROM jobs WHERE state = 'running' AND "
                "(lease_expires_at IS NULL OR lease_expires_at < ?)",
                (float(now),)).fetchall()
        return [self._job_dict(row) for row in rows]

    def running_jobs(self, lease_owner: Optional[str] = None
                     ) -> List[Dict[str, Any]]:
        """Running jobs, optionally only those leased to ``lease_owner``."""
        query = "SELECT * FROM jobs WHERE state = 'running'"
        args: tuple = ()
        if lease_owner is not None:
            query += " AND lease_owner = ?"
            args = (str(lease_owner),)
        with self._lock:
            rows = self._connection.execute(query, args).fetchall()
        return [self._job_dict(row) for row in rows]

    def record_result(self, job_id: str, result: Dict[str, Any],
                      cache_hits: int = 0, cache_misses: int = 0) -> None:
        with self._lock:
            self._connection.execute(
                "UPDATE jobs SET result = ?, cache_hits = ?, "
                "cache_misses = ? WHERE id = ?",
                (json.dumps(result, sort_keys=True), int(cache_hits),
                 int(cache_misses), job_id))
            self._connection.commit()

    def record_error(self, job_id: str, error: str) -> None:
        with self._lock:
            self._connection.execute(
                "UPDATE jobs SET error = ? WHERE id = ?",
                (str(error), job_id))
            self._connection.commit()

    # -- events -------------------------------------------------------------
    def append_event(self, job_id: str, kind: str,
                     data: Dict[str, Any]) -> int:
        """Persist one event; returns its per-job ``seq`` (1-based)."""
        with self._lock:
            row = self._connection.execute(
                "SELECT COALESCE(MAX(seq), 0) AS top FROM events "
                "WHERE job_id = ?", (job_id,)).fetchone()
            seq = int(row["top"]) + 1
            self._connection.execute(
                "INSERT INTO events (job_id, seq, created_at, kind, data) "
                "VALUES (?,?,?,?,?)",
                (job_id, seq, time.time(), kind,
                 json.dumps(data, sort_keys=True)))
            self._connection.commit()
        return seq

    def events_since(self, job_id: str,
                     after_seq: int = 0) -> List[Dict[str, Any]]:
        """All persisted events with ``seq > after_seq``, in order."""
        with self._lock:
            rows = self._connection.execute(
                "SELECT seq, created_at, kind, data FROM events "
                "WHERE job_id = ? AND seq > ? ORDER BY seq",
                (job_id, int(after_seq))).fetchall()
        return [{"job_id": job_id, "seq": int(row["seq"]),
                 "kind": row["kind"], "data": json.loads(row["data"])}
                for row in rows]

    # -- introspection ------------------------------------------------------
    def counts(self) -> Dict[str, int]:
        """Job counts per state (states with no jobs are omitted)."""
        with self._lock:
            rows = self._connection.execute(
                "SELECT state, COUNT(*) AS n FROM jobs GROUP BY state"
            ).fetchall()
        return {row["state"]: int(row["n"]) for row in rows}

    def close(self) -> None:
        with self._lock:
            self._connection.close()

    # -- helpers ------------------------------------------------------------
    @staticmethod
    def _job_dict(row: sqlite3.Row) -> Dict[str, Any]:
        entry = {column: row[column] for column in _JOB_COLUMNS}
        entry["payload"] = json.loads(entry["payload"])
        if entry["result"] is not None:
            entry["result"] = json.loads(entry["result"])
        return entry
