"""The wire protocol of the execution job server.

Versioned request/response **dataclasses** with a pure-JSON round trip —
every message is one JSON object on one line (newline-delimited JSON over
the local socket; the same objects travel as HTTP bodies and server-sent
event lines).  Nothing on the wire is ever pickled: circuits, observables
and noise models ride the :mod:`repro.io.serialization` dict formats, so a
shared service socket can never be made to execute code by a malicious
payload.

Four job kinds are accepted (``JOB_KINDS``):

``expectation``
    ⟨H⟩ for a list of bound circuits — the service-side mirror of
    :meth:`repro.execution.Executor.evaluate_observable`.
``sweep``
    ⟨H⟩ over a parameter sweep of one parametric template — the mirror of
    :meth:`repro.execution.Executor.evaluate_sweep`, streamed chunk by
    chunk.
``qec_memory``
    A seeded QEC Monte-Carlo memory experiment — the mirror of
    :func:`repro.qec.run_memory_sampling`, streamed as running failure
    counts with Wilson intervals.
``qec_rare_event``
    A variance-reduced low-``p`` logical-error-rate estimate — the mirror
    of :func:`repro.qec.run_rare_event_sampling`, streamed as running
    estimates with effective-n Wilson intervals and per-stratum
    breakdowns.

Use the ``*_payload`` helpers to build submission payloads from in-memory
objects; :func:`encode_line` / :func:`decode_line` convert between message
dataclasses and wire lines.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Type

#: Protocol version stamped into (and required on) every message.
PROTOCOL_VERSION = 1

#: The job kinds the server schedules.
JOB_KINDS = ("expectation", "sweep", "qec_memory", "qec_rare_event")

#: Job lifecycle states persisted in the run registry.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

#: Terminal states — once reached, a job row never changes again.
TERMINAL_STATES = ("done", "failed", "cancelled")


class ProtocolError(ValueError):
    """A message that cannot be decoded or validated."""


# ---------------------------------------------------------------------------
# Message registry
# ---------------------------------------------------------------------------

_MESSAGE_TYPES: Dict[str, Type] = {}


def message(type_name: str):
    """Class decorator registering a dataclass under a wire ``type`` tag."""
    def register(cls):
        cls.TYPE = type_name
        _MESSAGE_TYPES[type_name] = cls
        return cls
    return register


def encode_line(msg) -> str:
    """One wire line (newline-terminated JSON object) for a message."""
    payload = {"v": PROTOCOL_VERSION, "type": msg.TYPE}
    for f in dataclasses.fields(msg):
        payload[f.name] = getattr(msg, f.name)
    return json.dumps(payload, separators=(",", ":"),
                      sort_keys=True) + "\n"


def decode_line(line: str):
    """The message dataclass encoded on ``line`` (raises ProtocolError)."""
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as error:
        raise ProtocolError(f"not a JSON line: {error}") from None
    if not isinstance(payload, dict):
        raise ProtocolError("a protocol message must be a JSON object")
    version = payload.pop("v", None)
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"unsupported protocol version {version!r} "
            f"(this build speaks v{PROTOCOL_VERSION})")
    type_name = payload.pop("type", None)
    cls = _MESSAGE_TYPES.get(type_name)
    if cls is None:
        raise ProtocolError(f"unknown message type {type_name!r}")
    names = {f.name for f in dataclasses.fields(cls)}
    unknown = set(payload) - names
    if unknown:
        raise ProtocolError(
            f"unknown fields for {type_name!r}: {sorted(unknown)}")
    try:
        return cls(**payload)
    except TypeError as error:
        raise ProtocolError(f"malformed {type_name!r} message: {error}") \
            from None


# ---------------------------------------------------------------------------
# Requests
# ---------------------------------------------------------------------------


@message("submit")
@dataclass(frozen=True)
class SubmitRequest:
    """Submit one job; ``stream=True`` keeps the connection in event mode
    until the job reaches a terminal state.

    ``deadline`` is a per-job wall-clock budget in seconds (attempts that
    outlive it are cancelled and retried); ``max_attempts`` overrides the
    server's default retry budget (``1`` = fail on first error).  Both are
    optional and default to the server's configuration, so v1 clients that
    never send them keep their exact historical behavior.
    """

    kind: str
    payload: Dict[str, Any]
    tenant: str = "default"
    priority: int = 0
    stream: bool = False
    deadline: Optional[float] = None
    max_attempts: Optional[int] = None

    def validate(self) -> "SubmitRequest":
        if self.kind not in JOB_KINDS:
            raise ProtocolError(
                f"unknown job kind {self.kind!r} (expected one of "
                f"{JOB_KINDS})")
        if not isinstance(self.payload, dict):
            raise ProtocolError("payload must be a JSON object")
        if not self.tenant or not isinstance(self.tenant, str):
            raise ProtocolError("tenant must be a non-empty string")
        if self.deadline is not None and not (
                isinstance(self.deadline, (int, float))
                and float(self.deadline) > 0):
            raise ProtocolError("deadline must be a positive number")
        if self.max_attempts is not None and not (
                isinstance(self.max_attempts, int)
                and self.max_attempts >= 1):
            raise ProtocolError("max_attempts must be an integer >= 1")
        return self


@message("status")
@dataclass(frozen=True)
class StatusRequest:
    job_id: str


@message("result")
@dataclass(frozen=True)
class ResultRequest:
    """Fetch a job's final result; ``wait=True`` blocks (server-side) until
    the job reaches a terminal state."""

    job_id: str
    wait: bool = True


@message("attach")
@dataclass(frozen=True)
class AttachRequest:
    """Reattach to a job by id: replay persisted events after ``after_seq``,
    then stream live ones until the job is terminal, then send the result.
    This is the crashed-client recovery path — the run registry, not the
    connection, owns the job."""

    job_id: str
    after_seq: int = 0


@message("cancel")
@dataclass(frozen=True)
class CancelRequest:
    job_id: str


@message("jobs")
@dataclass(frozen=True)
class ListJobsRequest:
    tenant: Optional[str] = None
    limit: int = 50


@message("stats")
@dataclass(frozen=True)
class StatsRequest:
    pass


@message("ping")
@dataclass(frozen=True)
class PingRequest:
    pass


@message("shutdown")
@dataclass(frozen=True)
class ShutdownRequest:
    """Ask the server to shut down gracefully: stop accepting work, drain
    running jobs, persist final states, retire the executor pool."""

    drain: bool = True


# ---------------------------------------------------------------------------
# Responses
# ---------------------------------------------------------------------------


@message("submitted")
@dataclass(frozen=True)
class SubmittedResponse:
    """``deduped=True`` means an identical job (same content fingerprints)
    was already in flight and ``job_id`` names **that** job — exactly one
    execution will serve every submitter."""

    job_id: str
    state: str
    deduped: bool = False
    position: Optional[int] = None


@message("job")
@dataclass(frozen=True)
class JobResponse:
    job: Dict[str, Any]


@message("job-list")
@dataclass(frozen=True)
class JobListResponse:
    jobs: List[Dict[str, Any]]


@message("event")
@dataclass(frozen=True)
class EventResponse:
    """One streamed partial-result / lifecycle event (also the SSE body)."""

    job_id: str
    seq: int
    kind: str
    data: Dict[str, Any]


@message("result-data")
@dataclass(frozen=True)
class ResultResponse:
    job_id: str
    state: str
    result: Optional[Dict[str, Any]] = None
    error: Optional[str] = None


@message("error")
@dataclass(frozen=True)
class ErrorResponse:
    """``status`` mirrors HTTP semantics: 400 bad request, 404 unknown job,
    429 backpressure/quota rejection, 503 shutting down."""

    code: str
    message: str
    status: int = 400


@message("pong")
@dataclass(frozen=True)
class PongResponse:
    server: str = "repro.service"
    version: int = PROTOCOL_VERSION


@message("stats-data")
@dataclass(frozen=True)
class StatsResponse:
    stats: Dict[str, Any]


@message("ok")
@dataclass(frozen=True)
class OkResponse:
    detail: str = ""


# ---------------------------------------------------------------------------
# Job payload builders (client-side sugar, server-side contract)
# ---------------------------------------------------------------------------


def expectation_payload(circuits, observable, *, noise_model=None,
                        backend: Optional[str] = None,
                        trajectories: Optional[int] = None,
                        include_idle: bool = True,
                        chunk: Optional[int] = None,
                        policy=None) -> Dict[str, Any]:
    """Payload of an ``expectation`` job: ⟨observable⟩ per bound circuit.

    Mirrors :meth:`repro.execution.Executor.evaluate_observable`; ``chunk``
    bounds how many circuits the runner evaluates per streamed partial.
    ``policy`` (an :class:`~repro.execution.policy.ExecutionPolicy` or its
    payload dict) steers server-side fan-out; it never changes values.
    """
    from ..circuits.circuit import QuantumCircuit
    from ..io.serialization import (circuit_to_dict, noise_model_to_dict,
                                    pauli_sum_to_dict)
    if isinstance(circuits, QuantumCircuit):
        circuits = [circuits]
    payload = {
        "circuits": [circuit_to_dict(circuit) for circuit in circuits],
        "observable": pauli_sum_to_dict(observable),
        "include_idle": bool(include_idle),
    }
    if noise_model is not None and noise_model.has_noise():
        payload["noise_model"] = noise_model_to_dict(noise_model)
    if backend is not None:
        payload["backend"] = str(backend)
    if trajectories is not None:
        payload["trajectories"] = int(trajectories)
    if chunk is not None:
        payload["chunk"] = int(chunk)
    if policy is not None:
        payload["policy"] = _policy_payload(policy)
    return payload


def sweep_payload(template, parameter_sets, observable, *, noise_model=None,
                  backend: str = "auto",
                  trajectories: Optional[int] = None,
                  include_idle: bool = True,
                  chunk: Optional[int] = None,
                  policy=None) -> Dict[str, Any]:
    """Payload of a ``sweep`` job over one parametric template.

    Mirrors :meth:`repro.execution.Executor.evaluate_sweep`; the runner
    evaluates ``chunk`` points per streamed partial (all points in one batch
    when unset).  ``policy`` steers server-side fan-out; it never changes
    values.
    """
    from ..io.serialization import (noise_model_to_dict, pauli_sum_to_dict,
                                    template_to_dict)
    payload = {
        "template": template_to_dict(template),
        "parameter_sets": [[float(v) for v in values]
                           for values in parameter_sets],
        "observable": pauli_sum_to_dict(observable),
        "backend": str(backend),
        "include_idle": bool(include_idle),
    }
    if noise_model is not None and noise_model.has_noise():
        payload["noise_model"] = noise_model_to_dict(noise_model)
    if trajectories is not None:
        payload["trajectories"] = int(trajectories)
    if chunk is not None:
        payload["chunk"] = int(chunk)
    if policy is not None:
        payload["policy"] = _policy_payload(policy)
    return payload


def _policy_payload(policy) -> Dict[str, Any]:
    """The wire form of a policy argument (accepts a ready payload dict)."""
    if isinstance(policy, dict):
        return dict(policy)
    return policy.to_payload()


def qec_memory_payload(*, code: str = "repetition", distance: int,
                       rounds: int, error_rate: float,
                       measurement_error_rate: Optional[float] = None,
                       decoder: str = "mwpm", shots: int,
                       seed: Optional[int] = None,
                       chunk_blocks: Optional[int] = None) -> Dict[str, Any]:
    """Payload of a ``qec_memory`` job (a seeded Monte-Carlo memory run).

    The decoding graph is built server-side from this spec
    (``code``: ``"repetition"`` or ``"surface"``), so the wire carries a few
    numbers instead of a serialized graph.  ``decoder`` is one of
    ``"mwpm"``, ``"union_find"`` or ``"lookup"``.  Seeded jobs are
    deduplicated across clients and cached; an unseeded job is neither.
    ``chunk_blocks`` controls streaming granularity (sampling blocks of
    :data:`repro.qec.sampling.SHOT_BLOCK` shots per partial update).
    """
    payload = {
        "code": str(code),
        "distance": int(distance),
        "rounds": int(rounds),
        "error_rate": float(error_rate),
        "decoder": str(decoder),
        "shots": int(shots),
    }
    if measurement_error_rate is not None:
        payload["measurement_error_rate"] = float(measurement_error_rate)
    if seed is not None:
        payload["seed"] = int(seed)
    if chunk_blocks is not None:
        payload["chunk_blocks"] = int(chunk_blocks)
    return payload


def qec_rare_event_payload(*, code: str = "repetition", distance: int,
                           rounds: int, error_rate: float,
                           measurement_error_rate: Optional[float] = None,
                           decoder: str = "mwpm", shots: int,
                           method: str = "stratified",
                           seed: Optional[int] = None,
                           tilt: Optional[float] = None,
                           min_fault_weight: Optional[int] = None,
                           max_weight: Optional[int] = None,
                           pilot_shots: Optional[int] = None,
                           tail_rtol: Optional[float] = None,
                           chunk_blocks: Optional[int] = None
                           ) -> Dict[str, Any]:
    """Payload of a ``qec_rare_event`` job (variance-reduced low-``p`` run).

    Same graph/decoder spec as :func:`qec_memory_payload`; ``shots`` is the
    decode budget the estimator spends.  ``method`` is ``"stratified"``
    (weight-stratified subset sampling, the default — per-stratum partials
    stream out as the budget is spent) or ``"importance"`` (exponentially
    tilted importance sampling; ``tilt`` is the tilt parameter θ, auto-solved
    when unset).  ``min_fault_weight`` / ``max_weight`` / ``pilot_shots`` /
    ``tail_rtol`` tune the stratified estimator; unset values use the
    engine defaults documented on
    :func:`repro.qec.rare_event.run_rare_event_sampling`.
    """
    payload = qec_memory_payload(
        code=code, distance=distance, rounds=rounds, error_rate=error_rate,
        measurement_error_rate=measurement_error_rate, decoder=decoder,
        shots=shots, seed=seed, chunk_blocks=chunk_blocks)
    payload["method"] = str(method)
    if tilt is not None:
        payload["tilt"] = float(tilt)
    if min_fault_weight is not None:
        payload["min_fault_weight"] = int(min_fault_weight)
    if max_weight is not None:
        payload["max_weight"] = int(max_weight)
    if pilot_shots is not None:
        payload["pilot_shots"] = int(pilot_shots)
    if tail_rtol is not None:
        payload["tail_rtol"] = float(tail_rtol)
    return payload
